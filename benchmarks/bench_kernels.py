"""Kernel-layer perf bench — regenerates ``results/BENCH_perf.json``.

Thin pytest harness over :func:`repro.kernels.bench.run_bench` (the
same engine behind ``repro bench``): measures the five hot kernels on
every importable backend against the ``naive`` seed reference, one
end-to-end async engine solve per backend, and the setup-cache
cold/warm split, then persists the schema-versioned payload plus a
readable digest.

Scale: quick mode (64² grid) unless ``REPRO_SCALE >= 1`` or
``REPRO_BENCH_FULL=1``, which run the full 256² workhorse the
checked-in artifact was produced with.  Backends that are not
importable here (numba is the optional ``[perf]`` extra) are recorded
in the payload's ``backends.missing`` — absent, not zero.
"""

from __future__ import annotations

import json

from repro.kernels.bench import SCHEMA, format_report, run_bench
from repro.utils import env_float, env_int

from _common import emit


def test_bench_kernels(results_dir, benchmark):
    full = env_float("REPRO_SCALE", 0.25) >= 1.0 or env_int("REPRO_BENCH_FULL", 0) == 1
    payload = benchmark.pedantic(
        lambda: run_bench(quick=not full), iterations=1, rounds=1
    )

    # Sanity: the payload is the schema CI consumes...
    assert payload["schema"] == SCHEMA
    assert set(payload["kernels"]) == {
        "range_matvec",
        "range_residual",
        "jacobi_sweep",
        "prolong_add",
        "residual_norm",
    }
    measured = payload["backends"]["measured"]
    assert "numpy" in measured and "naive" in measured
    # ...and the plan-cached numpy backend did not regress below the
    # allocating seed path on the kernel the tentpole targets (loose
    # 1.2x guard: CI boxes are noisy, locally this is >2x).
    rm = payload["kernels"]["range_matvec"]
    assert rm["numpy"]["seconds_per_call"] < 1.2 * rm["naive"]["seconds_per_call"]
    # Setup memoization is the other headline: warm must be far
    # below cold (it is a dict hit vs a full AMG setup).
    sc = payload["setup_cache"]
    assert sc["warm_seconds"] < 0.1 * sc["cold_seconds"]

    (results_dir / "BENCH_perf.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    emit(results_dir, "bench_kernels", format_report(payload))
