"""Figure 6 — wall-clock vs number of threads for the four matrices.

Paper: wall-clock time to tolerance versus thread count (1..272) for
sync Mult, sync Multadd (lock-write) and async Multadd (lock-write,
local-res), omega-Jacobi smoothing.  Expected shape: Mult fastest at a
few threads; both additive variants scale better; async Multadd fastest
and flattest at high thread counts — the crossover is the paper's
headline scaling result.

Two kinds of numbers live here and must never be conflated:

- the pytest benches below regenerate the paper figure from the
  discrete-event machine model (``identity.backend = "perfmodel"``,
  ``measured = false``);
- ``python bench_fig6_scaling.py`` runs the *measured* speedup sweep —
  real wall-clock of the procs executor vs the GIL-bound threaded one
  on the 27pt problem — and persists ``BENCH_parallel.json``.  On a
  box without ≥2 usable cores the payload records an explicit
  ``ci_underpowered`` skip instead of a fake speedup.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core import MachineParams, PerfModel, run_procs, run_threaded
from repro.experiments import MethodSpec, cycles_to_tolerance, paper_hierarchy
from repro.problems import build_problem
from repro.problems.registry import table1_sizes
from repro.solvers import Multadd, MultiplicativeMultigrid
from repro.utils import env_float, format_table

from _common import commit_hash, emit, identity_block

THREADS = (1, 2, 4, 8, 17, 34, 68, 136, 272)
ALPHA = 0.7
TOL = 1e-6
TOL_BY_SET = {"mfem_elasticity": 1e-2}


def _run_matrix(name, runs):
    scale = env_float("REPRO_SCALE", 0.25)
    size = table1_sizes(scale)[name]
    p = build_problem(name, size, rhs_seed=0)
    tol = TOL_BY_SET.get(name, TOL)
    h = paper_hierarchy(name, p.A, aggressive_levels=2)
    kw = {"weight": p.jacobi_weight}

    # Measure required V-cycles once per method (thread-independent in
    # the convergence model).
    spec_sync_mult = MethodSpec("sync Mult", "mult")
    spec_sync_ma = MethodSpec("sync Multadd", "multadd")
    spec_async_ma = MethodSpec(
        "async Multadd", "multadd", asynchronous=True, rescomp="local", write="lock"
    )
    v_mult, _ = cycles_to_tolerance(
        spec_sync_mult, h, p.b, "jacobi", tol=tol, max_cycles=300, **kw
    )
    v_sma, _ = cycles_to_tolerance(
        spec_sync_ma, h, p.b, "jacobi", tol=tol, max_cycles=300, **kw
    )
    v_ama, _ = cycles_to_tolerance(
        spec_async_ma,
        h,
        p.b,
        "jacobi",
        tol=tol,
        max_cycles=300,
        runs=runs,
        alpha=ALPHA,
        **kw,
    )
    mult = MultiplicativeMultigrid(h, smoother="jacobi", **kw)
    ma = Multadd(h, smoother="jacobi", **kw)
    pm = PerfModel(MachineParams())
    rows = []
    for T in THREADS:
        t_mult = pm.time_mult(mult, T, v_mult) if v_mult else float("nan")
        t_sma = (
            pm.time_sync_additive(ma, T, v_sma, write="lock") if v_sma else float("nan")
        )
        t_ama = (
            pm.time_async(ma, T, v_ama, rescomp="local", write="lock")[0]
            if v_ama
            else float("nan")
        )
        rows.append([T, t_mult, t_sma, t_ama])
    headers = ["threads", "sync Mult", "sync Multadd", "async Multadd"]
    title = (
        f"Fig 6 — {name}: {p.n} rows; V-cycles to {tol:g}: "
        f"Mult={v_mult}, syncMA={v_sma}, asyncMA={v_ama}"
    )
    return format_table(headers, rows, title=title), rows


def _check_crossover(rows):
    finite = [r for r in rows if all(np.isfinite(v) for v in r[1:])]
    if len(finite) < 3:
        return
    # At the largest thread count async Multadd must beat Mult.
    last = finite[-1]
    assert last[3] < last[1]


def test_fig6_7pt(benchmark, results_dir, runs):
    text, rows = benchmark.pedantic(lambda: _run_matrix("7pt", runs), iterations=1, rounds=1)
    emit(results_dir, "fig6_7pt", text)
    _check_crossover(rows)


def test_fig6_27pt(benchmark, results_dir, runs):
    text, rows = benchmark.pedantic(lambda: _run_matrix("27pt", runs), iterations=1, rounds=1)
    emit(results_dir, "fig6_27pt", text)
    _check_crossover(rows)


def test_fig6_mfem_laplace(benchmark, results_dir, runs):
    text, rows = benchmark.pedantic(
        lambda: _run_matrix("mfem_laplace", runs), iterations=1, rounds=1
    )
    emit(results_dir, "fig6_mfem_laplace", text)
    _check_crossover(rows)


def test_fig6_mfem_elasticity(benchmark, results_dir, runs):
    text, rows = benchmark.pedantic(
        lambda: _run_matrix("mfem_elasticity", runs), iterations=1, rounds=1
    )
    emit(results_dir, "fig6_mfem_elasticity", text)
    _check_crossover(rows)


# ----------------------------------------------------------------------
# Measured scaling: procs vs threaded, real wall-clock
# ----------------------------------------------------------------------

PARALLEL_SCHEMA = "repro.bench_parallel/1"
#: CI gate — procs must beat threaded by this factor at --workers 2
#: on a runner that actually has the cores; see .github/workflows/ci.yml.
MIN_PROCS_SPEEDUP = 1.3


def _measured_solver(size: int):
    p = build_problem("27pt", size, rhs_seed=0)
    h = paper_hierarchy("27pt", p.A, aggressive_levels=2)
    return Multadd(h, smoother="jacobi", weight=p.jacobi_weight), p


def _best_of(fn, repeats: int):
    """Best wall-clock of `repeats` runs (load-noise robust) + last result."""
    best, res = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = fn()
        best = min(best, time.perf_counter() - t0)
    return best, res


def measured_scaling(
    workers_list=(1, 2, 4), size=40, tmax=150, repeats=3
) -> dict:
    """Fixed-work speedup sweep: criterion 1 pins every backend to the
    same ``ngrids * tmax`` corrections, so wall-clock ratios are honest
    speedups.  Returns the ``BENCH_parallel.json`` payload."""
    solver, p = _measured_solver(size)
    identity = identity_block("procs", measured=True)
    usable = identity["usable_cpus"]
    kw = dict(tmax=tmax, rescomp="local", write="lock", criterion="criterion1")

    rows = []
    t_threaded, res = _best_of(lambda: run_threaded(solver, p.b, **kw), repeats)
    assert not res.errors, res.errors
    rows.append(
        {
            "backend": "threaded",
            "workers": solver.ngrids,  # one thread per grid, GIL-shared
            "seconds": t_threaded,
            "rel_residual": float(res.rel_residual),
            "identity": identity_block("threaded", measured=True),
        }
    )
    times_procs = {}
    for w in workers_list:
        w = min(int(w), solver.ngrids)
        if w in times_procs:
            continue
        t_w, res = _best_of(
            lambda w=w: run_procs(solver, p.b, workers=w, **kw), repeats
        )
        assert not res.errors, res.errors
        times_procs[w] = t_w
        rows.append(
            {
                "backend": "procs",
                "workers": w,
                "seconds": t_w,
                "rel_residual": float(res.rel_residual),
                "identity": identity_block("procs", measured=True),
            }
        )

    w_lo = min(times_procs)
    speedups = {
        str(w): times_procs[w_lo] / times_procs[w] for w in sorted(times_procs)
    }
    w_cmp = 2 if 2 in times_procs else max(times_procs)
    procs_over_threaded = t_threaded / times_procs[w_cmp]
    # An honest skip beats a fake number: with every worker pinned to
    # the same core, "parallel" wall-clock only measures spawn overhead.
    underpowered = usable < 2
    passed = procs_over_threaded >= MIN_PROCS_SPEEDUP
    if underpowered:
        note = (
            f"only {usable} usable CPU(s): true-parallel speedup is "
            "physically unobtainable here; rows record the honest "
            "single-core wall-clock (spawn + shm overhead included)"
        )
    else:
        note = (
            f"procs[{w_cmp}] over threaded: {procs_over_threaded:.2f}x "
            f"(gate {MIN_PROCS_SPEEDUP}x: {'pass' if passed else 'FAIL'})"
        )
    return {
        "schema": PARALLEL_SCHEMA,
        "commit": commit_hash(),
        "identity": identity,
        "problem": {"set": "27pt", "size": size, "n": p.n, "nnz": p.nnz},
        "protocol": {
            "tmax": tmax,
            "criterion": "criterion1",
            "rescomp": "local",
            "write": "lock",
            "repeats": repeats,
            "timing": "best-of-repeats wall seconds, fixed-work runs",
        },
        "rows": rows,
        "speedup_vs_1worker_procs": speedups,
        "procs_over_threaded": {
            "workers": w_cmp,
            "speedup": procs_over_threaded,
            "min_required": MIN_PROCS_SPEEDUP,
            "passed": bool(passed),
        },
        "ci_underpowered": bool(underpowered),
        "note": note,
    }


def check_parallel(payload: dict) -> None:
    """The CI gate: measured speedup or an explicitly recorded skip."""
    assert payload["rows"], "no measured rows"
    assert all(r["identity"]["measured"] for r in payload["rows"])
    if payload["ci_underpowered"]:
        return  # honest single-core record; nothing to gate on
    assert payload["procs_over_threaded"]["passed"], payload["note"]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="measured procs-vs-threaded scaling sweep (27pt)"
    )
    ap.add_argument(
        "--workers",
        default="1,2,4",
        metavar="LIST",
        help="comma-separated procs worker counts (default: 1,2,4)",
    )
    ap.add_argument("--size", type=int, default=40, help="27pt grid edge")
    ap.add_argument("--tmax", type=int, default=150)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--check",
        action="store_true",
        help="enforce the CI speedup gate (exit 1 on failure)",
    )
    ap.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_parallel.json",
        metavar="PATH",
    )
    args = ap.parse_args(argv)
    workers = [int(w) for w in args.workers.split(",") if w.strip()]
    payload = measured_scaling(
        workers_list=workers, size=args.size, tmax=args.tmax, repeats=args.repeats
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    for r in payload["rows"]:
        print(
            f"{r['backend']:>8}[{r['workers']}]: {r['seconds']:.3f}s "
            f"(relres {r['rel_residual']:.2e})"
        )
    print(payload["note"])
    print(f"wrote {args.out}")
    if args.check:
        try:
            check_parallel(payload)
        except AssertionError as exc:
            print(f"CI gate failed: {exc}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
