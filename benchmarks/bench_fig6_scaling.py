"""Figure 6 — wall-clock vs number of threads for the four matrices.

Paper: wall-clock time to tolerance versus thread count (1..272) for
sync Mult, sync Multadd (lock-write) and async Multadd (lock-write,
local-res), omega-Jacobi smoothing.  Expected shape: Mult fastest at a
few threads; both additive variants scale better; async Multadd fastest
and flattest at high thread counts — the crossover is the paper's
headline scaling result.
"""

from __future__ import annotations

import numpy as np

from repro.core import MachineParams, PerfModel
from repro.experiments import MethodSpec, cycles_to_tolerance, paper_hierarchy
from repro.problems import build_problem
from repro.problems.registry import table1_sizes
from repro.solvers import Multadd, MultiplicativeMultigrid
from repro.utils import env_float, format_table

from _common import emit

THREADS = (1, 2, 4, 8, 17, 34, 68, 136, 272)
ALPHA = 0.7
TOL = 1e-6
TOL_BY_SET = {"mfem_elasticity": 1e-2}


def _run_matrix(name, runs):
    scale = env_float("REPRO_SCALE", 0.25)
    size = table1_sizes(scale)[name]
    p = build_problem(name, size, rhs_seed=0)
    tol = TOL_BY_SET.get(name, TOL)
    h = paper_hierarchy(name, p.A, aggressive_levels=2)
    kw = {"weight": p.jacobi_weight}

    # Measure required V-cycles once per method (thread-independent in
    # the convergence model).
    spec_sync_mult = MethodSpec("sync Mult", "mult")
    spec_sync_ma = MethodSpec("sync Multadd", "multadd")
    spec_async_ma = MethodSpec(
        "async Multadd", "multadd", asynchronous=True, rescomp="local", write="lock"
    )
    v_mult, _ = cycles_to_tolerance(
        spec_sync_mult, h, p.b, "jacobi", tol=tol, max_cycles=300, **kw
    )
    v_sma, _ = cycles_to_tolerance(
        spec_sync_ma, h, p.b, "jacobi", tol=tol, max_cycles=300, **kw
    )
    v_ama, _ = cycles_to_tolerance(
        spec_async_ma,
        h,
        p.b,
        "jacobi",
        tol=tol,
        max_cycles=300,
        runs=runs,
        alpha=ALPHA,
        **kw,
    )
    mult = MultiplicativeMultigrid(h, smoother="jacobi", **kw)
    ma = Multadd(h, smoother="jacobi", **kw)
    pm = PerfModel(MachineParams())
    rows = []
    for T in THREADS:
        t_mult = pm.time_mult(mult, T, v_mult) if v_mult else float("nan")
        t_sma = (
            pm.time_sync_additive(ma, T, v_sma, write="lock") if v_sma else float("nan")
        )
        t_ama = (
            pm.time_async(ma, T, v_ama, rescomp="local", write="lock")[0]
            if v_ama
            else float("nan")
        )
        rows.append([T, t_mult, t_sma, t_ama])
    headers = ["threads", "sync Mult", "sync Multadd", "async Multadd"]
    title = (
        f"Fig 6 — {name}: {p.n} rows; V-cycles to {tol:g}: "
        f"Mult={v_mult}, syncMA={v_sma}, asyncMA={v_ama}"
    )
    return format_table(headers, rows, title=title), rows


def _check_crossover(rows):
    finite = [r for r in rows if all(np.isfinite(v) for v in r[1:])]
    if len(finite) < 3:
        return
    # At the largest thread count async Multadd must beat Mult.
    last = finite[-1]
    assert last[3] < last[1]


def test_fig6_7pt(benchmark, results_dir, runs):
    text, rows = benchmark.pedantic(lambda: _run_matrix("7pt", runs), iterations=1, rounds=1)
    emit(results_dir, "fig6_7pt", text)
    _check_crossover(rows)


def test_fig6_27pt(benchmark, results_dir, runs):
    text, rows = benchmark.pedantic(lambda: _run_matrix("27pt", runs), iterations=1, rounds=1)
    emit(results_dir, "fig6_27pt", text)
    _check_crossover(rows)


def test_fig6_mfem_laplace(benchmark, results_dir, runs):
    text, rows = benchmark.pedantic(
        lambda: _run_matrix("mfem_laplace", runs), iterations=1, rounds=1
    )
    emit(results_dir, "fig6_mfem_laplace", text)
    _check_crossover(rows)


def test_fig6_mfem_elasticity(benchmark, results_dir, runs):
    text, rows = benchmark.pedantic(
        lambda: _run_matrix("mfem_elasticity", runs), iterations=1, rounds=1
    )
    emit(results_dir, "fig6_mfem_elasticity", text)
    _check_crossover(rows)
