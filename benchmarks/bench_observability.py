"""Tracing + live-telemetry overhead — solve wall time with the
observability layers on vs off; regenerates ``results/BENCH_observe.json``.

Measures the cost of the ``repro.observe`` instrumentation on the two
backends where it sits on a hot path: the sequential engine (events on
every chunked read/write micro-step) and the threaded executor (a
``TracedPolicy`` wrapping every stripe commit plus per-correction
events).  Three arms per backend, timed *alternately* (so machine
drift hits all equally) and compared on best-of-``BEST_OF`` wall time:

- **plain** — no tracer;
- **traced** — tracer on (the run-end trace satellite);
- **tracked** — tracer + the residual series the live detectors need
  (``track_trace`` on the engine — one extra residual norm per
  correction — and a ``monitor_interval`` sampling thread on the
  threaded executor).  This is everything ``--live`` *implies* except
  the collector itself;
- **live** — tracked + the :mod:`repro.observe.live` snapshot
  collector at the default 100 ms cadence (detectors on, no
  endpoint/profiler), i.e. what ``repro solve --live`` costs.

Two overheads are asserted: ``traced/plain`` (tracing is near-free)
and ``live/tracked`` (the collector's tail reads + detectors are
near-free on top of the residual series).  ``tracked/plain`` is
*reported but not bounded* — on the engine it is the price of a
residual norm per correction, an algorithm-measurement cost that
exists with or without the live layer (``repro trace run`` pays it
too).  Documented bound: <= 5% best-of for the two asserted ratios on
a quiet box (see docs/OBSERVABILITY.md for the design that makes this
hold — per-worker append-only ring buffers, no cross-thread locking
on the record path, cursor-based tail reads from the collector
thread).  The threaded arms' wall time additionally depends on GIL
interleaving, which any observer perturbs, so the assertions below
use loose guards (25% engine, 50% threaded) to keep a noisy shared
CI box from flaking;
``results/observability.txt`` and the JSON payload record what this
machine actually measured.

Runnable standalone (``python benchmarks/bench_observability.py``)
or through pytest like every other bench module.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.amg import SetupOptions, setup_hierarchy
from repro.core import run_async_engine, run_threaded
from repro.observe import LiveConfig, Tracer
from repro.problems import build_problem
from repro.solvers import Multadd
from repro.utils import format_table

BEST_OF = 7
TMAX = 10
SIZE = 16  # 4096 rows — big enough that numerical work dominates
CADENCE_S = 0.1  # the documented default --live snapshot interval

SCHEMA = "repro.bench.observe/v1"


def _best_of_arms(arms):
    """Alternate the arms so drift cancels; best-of wall per arm."""
    best = [float("inf")] * len(arms)
    for _ in range(BEST_OF):
        for i, arm in enumerate(arms):
            t0 = time.perf_counter()
            arm()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def run_bench():
    p = build_problem("7pt", SIZE, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1, max_coarse=20))
    solver = Multadd(h, smoother="jacobi", weight=0.9)

    def run_engine(tracer=None, live=None, tracked=False):
        return run_async_engine(
            solver, p.b, tmax=TMAX, seed=3, tracer=tracer, live=live,
            track_trace=tracked,
        )

    def run_thr(tracer=None, live=None, tracked=False):
        return run_threaded(
            solver, p.b, tmax=TMAX, write="lock", tracer=tracer, live=live,
            monitor_interval=CADENCE_S if tracked else None,
        )

    backends = {}
    for name, run in (("engine", run_engine), ("threaded", run_thr)):
        clock = "steps" if name == "engine" else "s"
        plain, traced, tracked, live = _best_of_arms(
            [
                run,
                lambda run=run, clock=clock: run(Tracer(clock=clock)),
                lambda run=run, clock=clock: run(
                    Tracer(clock=clock), tracked=True
                ),
                lambda run=run, clock=clock: run(
                    Tracer(clock=clock), LiveConfig(interval_s=CADENCE_S)
                ),
            ]
        )
        backends[name] = {
            "plain_ms": plain * 1e3,
            "traced_ms": traced * 1e3,
            "tracked_ms": tracked * 1e3,
            "live_ms": live * 1e3,
            "traced_overhead": traced / plain - 1.0,
            "tracked_overhead": tracked / plain - 1.0,
            "live_overhead": live / tracked - 1.0,
        }

    # Sanity: the observed arms actually observed something.
    traced_res = run_engine(Tracer(clock="steps"))
    live_res = run_engine(Tracer(clock="steps"), LiveConfig(interval_s=CADENCE_S))
    return {
        "schema": SCHEMA,
        "problem": {"set": "7pt", "size": SIZE, "tmax": TMAX},
        "best_of": BEST_OF,
        "cadence_s": CADENCE_S,
        "backends": backends,
        "sanity": {
            "traced_events": traced_res.trace_summary.events,
            "live_snapshots": len(live_res.live_summary.snapshots),
        },
    }


def check(payload):
    assert payload["sanity"]["traced_events"] > 0
    assert payload["sanity"]["live_snapshots"] >= 1
    for name, row in payload["backends"].items():
        # Loose CI guards; the documented quiet-box bound is 5%.  The
        # threaded arms get an extra margin: their wall time depends on
        # GIL interleaving, which any observer perturbs by 1-30% run to
        # run on a loaded box.
        guard = 0.5 if name == "threaded" else 0.25
        assert row["traced_overhead"] < guard, (
            f"{name} tracing overhead {row['traced_overhead']:.1%}"
            f" >= {guard:.0%}"
        )
        assert row["live_overhead"] < guard, (
            f"{name} live-collector overhead {row['live_overhead']:.1%}"
            f" >= {guard:.0%}"
        )


def digest(payload):
    rows = [
        [
            name,
            row["plain_ms"],
            row["traced_ms"],
            row["tracked_ms"],
            row["live_ms"],
            100.0 * row["traced_overhead"],
            100.0 * row["live_overhead"],
        ]
        for name, row in payload["backends"].items()
    ]
    return format_table(
        ["backend", "plain ms", "traced ms", "tracked ms", "live ms",
         "trace %", "live %"],
        rows,
        title=(
            f"Observability overhead (best of {payload['best_of']}, 7pt size "
            f"{payload['problem']['size']}, tmax={payload['problem']['tmax']}, "
            f"live cadence {payload['cadence_s'] * 1e3:.0f} ms)"
        ),
    )


def test_observability_overhead(benchmark, results_dir):
    from _common import emit

    payload = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    check(payload)
    (results_dir / "BENCH_observe.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    emit(results_dir, "observability", digest(payload))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_observe.json",
        metavar="PATH",
    )
    args = ap.parse_args(argv)
    payload = run_bench()
    check(payload)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(digest(payload))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
