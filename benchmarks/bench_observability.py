"""Tracing overhead — solve wall time with the tracer on vs off.

Measures the cost of the ``repro.observe`` instrumentation on the two
backends where it sits on a hot path: the sequential engine (events on
every chunked read/write micro-step) and the threaded executor (a
``TracedPolicy`` wrapping every stripe commit plus per-correction
events).  Methodology: the traced and plain arms are timed
*alternately* (so machine drift hits both equally) and compared on
best-of-``BEST_OF`` wall time; overhead = traced/plain - 1.

Documented bound: <= 5% best-of overhead on a quiet box at
representative sizes (see docs/OBSERVABILITY.md for the design that
makes this hold — per-worker append-only ring buffers, no cross-thread
locking on the record path, and residual snapshots that piggyback on
norms the run computes anyway instead of adding SpMVs).  The threaded
arm's wall time additionally depends on GIL interleaving, which the
tracer perturbs, so the assertion below uses a looser 25% guard to
keep a noisy shared CI box from flaking; ``results/observability.txt``
records what this machine actually measured.
"""

from __future__ import annotations

import time

from repro.amg import SetupOptions, setup_hierarchy
from repro.core import run_async_engine, run_threaded
from repro.observe import Tracer
from repro.problems import build_problem
from repro.solvers import Multadd
from repro.utils import format_table

from _common import emit

BEST_OF = 7
TMAX = 10
SIZE = 16  # 4096 rows — big enough that numerical work dominates


def _overhead_row(label, plain, traced):
    """Alternate the two arms so drift cancels; compare best-of runs."""
    t_plain = t_traced = float("inf")
    for _ in range(BEST_OF):
        t0 = time.perf_counter()
        plain()
        t_plain = min(t_plain, time.perf_counter() - t0)
        t0 = time.perf_counter()
        traced()
        t_traced = min(t_traced, time.perf_counter() - t0)
    over = t_traced / t_plain - 1.0
    return [label, t_plain * 1e3, t_traced * 1e3, 100.0 * over], over


def test_observability_overhead(benchmark, results_dir):
    p = build_problem("7pt", SIZE, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1, max_coarse=20))
    solver = Multadd(h, smoother="jacobi", weight=0.9)

    def run_engine(tracer=None):
        return run_async_engine(solver, p.b, tmax=TMAX, seed=3, tracer=tracer)

    def run_thr(tracer=None):
        return run_threaded(solver, p.b, tmax=TMAX, write="lock", tracer=tracer)

    rows = []
    row, eng_over = benchmark.pedantic(
        lambda: _overhead_row(
            "engine", run_engine, lambda: run_engine(Tracer(clock="steps"))
        ),
        iterations=1,
        rounds=1,
    )
    rows.append(row)
    row, thr_over = _overhead_row(
        "threaded", run_thr, lambda: run_thr(Tracer(clock="s"))
    )
    rows.append(row)

    # Sanity: a traced run actually produced events.
    traced = run_engine(Tracer(clock="steps"))
    assert traced.trace_summary is not None
    assert traced.trace_summary.events > 0

    emit(
        results_dir,
        "observability",
        format_table(
            ["backend", "plain ms", "traced ms", "overhead %"],
            rows,
            title=f"Tracing overhead (best of {BEST_OF}, 7pt size {SIZE}, tmax={TMAX})",
        ),
    )
    # Loose CI guard; the documented quiet-box bound is 5%.
    assert eng_over < 0.25, f"engine tracing overhead {eng_over:.1%} >= 25%"
    assert thr_over < 0.25, f"threaded tracing overhead {thr_over:.1%} >= 25%"
