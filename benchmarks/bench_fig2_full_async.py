"""Figure 2 — full-async convergence vs grid length, delta sweep.

Paper: final relative residual after 20 V-cycles versus grid length for
the fully-asynchronous model, alpha = 0.1, five maximum delays, both
the solution-based (Eq. 7) and residual-based (Eq. 10) versions, on the
27pt set.  Expected shape: flat in grid length; larger delta slower;
residual-based faster than solution-based at large delta.
"""

from __future__ import annotations

import numpy as np

from repro.amg import SetupOptions, setup_hierarchy
from repro.core import (
    ScheduleParams,
    simulate_full_async_residual,
    simulate_full_async_solution,
)
from repro.problems import build_problem
from repro.solvers import AFACx, Multadd
from repro.utils import format_table, scaled_sizes, spawn_seeds

from _common import emit, emit_series

DELTAS = (0, 1, 2, 4, 8)
PAPER_SIZES = (40, 50, 60, 70, 80)
ALPHA = 0.1


def _run(solver_cls, simulate, runs):
    sizes = scaled_sizes(PAPER_SIZES)
    rows = []
    for size in sizes:
        p = build_problem("27pt", size, rhs_seed=0)
        h = setup_hierarchy(
            p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1)
        )
        solver = solver_cls(h, smoother="jacobi", weight=0.9)
        sync = solver.solve(p.b, tmax=20).final_relres
        row = [size, p.n, sync]
        for delta in DELTAS:
            vals = []
            for s in spawn_seeds(hash((size, delta)) % 2**31, runs):
                sim = simulate(
                    solver,
                    p.b,
                    ScheduleParams(
                        alpha=ALPHA, delta=delta, updates_per_grid=20, seed=s
                    ),
                )
                vals.append(sim.rel_residual)
            row.append(float(np.mean(vals)))
        rows.append(row)
    headers = ["grid len", "rows", "sync"] + [f"d={d}" for d in DELTAS]
    return headers, rows


def test_fig2_full_async_solution_multadd(benchmark, results_dir, runs):
    headers, rows = benchmark.pedantic(
        lambda: _run(Multadd, simulate_full_async_solution, runs),
        iterations=1,
        rounds=1,
    )
    emit(
        results_dir,
        "fig2_multadd_solution",
        format_table(
            headers,
            rows,
            title="Fig 2 (Multadd, solution-based): full-async relres after 20 V-cycles",
        ),
    )
    # delta ladder: delta=0 at least as good as delta=16 on average.
    assert np.mean([r[3] for r in rows]) <= np.mean([r[-1] for r in rows]) * 1.5


def test_fig2_full_async_residual_multadd(benchmark, results_dir, runs):
    headers, rows = benchmark.pedantic(
        lambda: _run(Multadd, simulate_full_async_residual, runs),
        iterations=1,
        rounds=1,
    )
    emit(
        results_dir,
        "fig2_multadd_residual",
        format_table(
            headers,
            rows,
            title="Fig 2 (Multadd, residual-based): full-async relres after 20 V-cycles",
        ),
    )
    assert all(np.isfinite(r[-1]) for r in rows)


def test_fig2_residual_series(results_dir):
    """Persist representative full-async residual-vs-time series
    (solution- and residual-based) in the shared observe CSV format."""
    size = scaled_sizes(PAPER_SIZES)[-1]
    p = build_problem("27pt", size, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1))
    solver = Multadd(h, smoother="jacobi", weight=0.9)
    params = ScheduleParams(alpha=ALPHA, delta=4, updates_per_grid=20, seed=0)
    for name, simulate in (
        ("fig2_multadd_solution", simulate_full_async_solution),
        ("fig2_multadd_residual", simulate_full_async_residual),
    ):
        sim = simulate(solver, p.b, params, track_trace=True)
        path = emit_series(results_dir, name, sim)
        assert path.exists() and len(path.read_text().splitlines()) > 1


def test_fig2_full_async_afacx(benchmark, results_dir, runs):
    def both():
        return (
            _run(AFACx, simulate_full_async_solution, runs),
            _run(AFACx, simulate_full_async_residual, runs),
        )

    (h1, r1), (h2, r2) = benchmark.pedantic(both, iterations=1, rounds=1)
    emit(
        results_dir,
        "fig2_afacx",
        format_table(
            h1, r1, title="Fig 2 (AFACx, solution-based): full-async relres"
        )
        + "\n\n"
        + format_table(
            h2, r2, title="Fig 2 (AFACx, residual-based): full-async relres"
        ),
    )
    assert all(np.isfinite(r[-1]) for r in r1 + r2)
