"""Figure 1 — semi-async convergence vs grid length, alpha sweep.

Paper: final relative residual 2-norm after 20 V-cycles versus grid
length for the semi-asynchronous model (Eq. 6), delta = 0, on the 27pt
set, for five minimum update probabilities, with synchronous multigrid
as reference.  Expected shape: curves are flat in grid length (grid-
size independent convergence) and rise as alpha falls.
"""

from __future__ import annotations

import numpy as np

from repro.amg import SetupOptions, setup_hierarchy
from repro.core import ScheduleParams, simulate_semi_async
from repro.problems import build_problem
from repro.solvers import AFACx, Multadd
from repro.utils import format_table, scaled_sizes, spawn_seeds

from _common import emit, emit_series

ALPHAS = (0.1, 0.3, 0.5, 0.7, 0.9)
PAPER_SIZES = (40, 50, 60, 70, 80)


def _run(solver_cls, runs, **solver_kw):
    sizes = scaled_sizes(PAPER_SIZES)
    rows = []
    series = {}
    for size in sizes:
        p = build_problem("27pt", size, rhs_seed=0)
        h = setup_hierarchy(
            p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1)
        )
        solver = solver_cls(h, smoother="jacobi", weight=0.9, **solver_kw)
        sync = solver.solve(p.b, tmax=20).final_relres
        row = [size, p.n, sync]
        for alpha in ALPHAS:
            vals = []
            for s in spawn_seeds(hash((size, alpha)) % 2**31, runs):
                sim = simulate_semi_async(
                    solver,
                    p.b,
                    ScheduleParams(alpha=alpha, delta=0, updates_per_grid=20, seed=s),
                )
                vals.append(sim.rel_residual)
            row.append(float(np.mean(vals)))
        rows.append(row)
        series[size] = row[2:]
    headers = ["grid len", "rows", "sync"] + [f"a={a}" for a in ALPHAS]
    return headers, rows


def test_fig1_semi_async_multadd(benchmark, results_dir, runs):
    headers, rows = benchmark.pedantic(
        lambda: _run(Multadd, runs), iterations=1, rounds=1
    )
    emit(
        results_dir,
        "fig1_multadd",
        format_table(
            headers, rows, title="Fig 1 (Multadd): semi-async relres after 20 V-cycles"
        ),
    )
    # Shape assertion: larger alpha converges at least as fast on
    # average (the Fig-1 ladder).
    last_col = [r[-1] for r in rows]  # a=0.9 across sizes
    first_col = [r[3] for r in rows]  # a=0.1 across sizes
    assert np.mean(last_col) <= np.mean(first_col) * 1.5


def test_fig1_residual_series(results_dir):
    """Persist a representative semi-async residual-vs-time series in
    the shared observe CSV format (same file ``repro trace export
    --residuals`` writes)."""
    size = scaled_sizes(PAPER_SIZES)[-1]
    p = build_problem("27pt", size, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1))
    solver = Multadd(h, smoother="jacobi", weight=0.9)
    sim = simulate_semi_async(
        solver,
        p.b,
        ScheduleParams(alpha=0.5, delta=0, updates_per_grid=20, seed=0),
        track_trace=True,
    )
    path = emit_series(results_dir, "fig1_multadd", sim)
    assert path.exists() and len(path.read_text().splitlines()) > 1


def test_fig1_semi_async_afacx(benchmark, results_dir, runs):
    headers, rows = benchmark.pedantic(
        lambda: _run(AFACx, runs), iterations=1, rounds=1
    )
    emit(
        results_dir,
        "fig1_afacx",
        format_table(
            headers, rows, title="Fig 1 (AFACx): semi-async relres after 20 V-cycles"
        ),
    )
    assert all(np.isfinite(r[3]) for r in rows)
