"""Setup ablation: geometric vs algebraic hierarchies (beyond the paper).

The paper's asynchronous story is told entirely on BoomerAMG
hierarchies.  Is anything specific to AMG?  This bench runs the same
methods (sync Mult, sync Multadd, async Multadd local-res) on a
geometric hierarchy of the same operator and checks that the paper's
orderings are setup-agnostic — which they should be, since the
asynchronous machinery only sees `correction(k, r)`.
"""

from __future__ import annotations

import numpy as np

from repro.amg import SetupOptions, setup_hierarchy
from repro.core import run_async_engine
from repro.gmg import geometric_hierarchy
from repro.problems import build_problem
from repro.solvers import Multadd, MultiplicativeMultigrid
from repro.utils import format_table, spawn_seeds

from _common import emit


def test_gmg_vs_amg(benchmark, results_dir, runs):
    def run():
        n = 15  # odd grid length: geometric coarsening stays aligned
        p = build_problem("7pt", n, rhs_seed=0)
        h_amg = setup_hierarchy(p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1))
        h_gmg = geometric_hierarchy(p.A, n)
        rows = []
        for label, h in [("AMG (HMIS+agg)", h_amg), ("GMG (trilinear)", h_gmg)]:
            mult = MultiplicativeMultigrid(h, smoother="jacobi", weight=0.9)
            madd = Multadd(h, smoother="jacobi", weight=0.9)
            r_mult = mult.solve(p.b, tmax=20).final_relres
            r_madd = madd.solve(p.b, tmax=20).final_relres
            vals = [
                run_async_engine(
                    madd, p.b, tmax=20, seed=s, alpha=0.5
                ).rel_residual
                for s in spawn_seeds(hash(label) % 2**31, runs)
            ]
            rows.append(
                [
                    label,
                    h.nlevels,
                    round(h.operator_complexity(), 2),
                    r_mult,
                    r_madd,
                    float(np.mean(vals)),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        results_dir,
        "gmg_vs_amg",
        format_table(
            ["setup", "levels", "op cx", "sync Mult", "sync Multadd", "async Multadd"],
            rows,
            title="Setup ablation: the async story is hierarchy-agnostic (7pt, 15^3)",
        ),
    )
    # Both setups: all three methods converge, async close to sync.
    for row in rows:
        assert all(np.isfinite(v) and v < 1e-2 for v in row[3:])
        assert row[5] < row[3] * 1e3  # async within 3 orders of sync Mult
