"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path

__all__ = ["emit", "emit_series"]


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


def emit_series(results_dir: Path, name: str, result) -> Path:
    """Persist a result's residual-vs-time series as ``name.residuals.csv``.

    Accepts any backend result carrying ``residual_samples`` /
    ``residual_trace`` (see :func:`repro.observe.series_from_result`),
    so the figure benches share one plotting format with ``repro trace
    export --residuals``.
    """
    from repro.observe import series_from_result, write_residual_series

    path = results_dir / f"{name}.residuals.csv"
    write_residual_series(series_from_result(result), path)
    return path
