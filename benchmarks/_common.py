"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path

__all__ = ["emit"]


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
