"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

__all__ = ["commit_hash", "emit", "emit_payload", "emit_series", "identity_block"]


def commit_hash() -> str:
    """Current git commit, or ``"unknown"`` outside a checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                cwd=Path(__file__).parent,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def identity_block(backend: str, measured: bool, **extra) -> dict:
    """Provenance stamp for a benchmark payload (or payload row).

    Records which executor produced the numbers and on what hardware,
    so modeled rows (``backend="perfmodel"``, ``measured=False``) and
    measured wall-clock rows are never conflated when payloads are
    compared across machines.  ``cpu_affinity`` is the scheduler mask
    actually granted to this process (CI runners routinely pin fewer
    cores than ``cpu_count`` advertises).
    """
    try:
        affinity = sorted(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux fallback
        affinity = None
    block = {
        "backend": backend,
        "measured": bool(measured),
        "cpu_count": os.cpu_count() or 1,
        "cpu_affinity": affinity,
        "usable_cpus": len(affinity) if affinity is not None else (os.cpu_count() or 1),
    }
    block.update(extra)
    return block


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


def emit_payload(results_dir: Path, name: str, payload: dict) -> Path:
    """Persist a schema-versioned JSON payload under results/.

    Every payload must carry an ``identity`` block (see
    :func:`identity_block`) — refuse to write one that doesn't, so the
    modeled-vs-measured provenance can't silently go missing.
    """
    if "identity" not in payload:
        raise ValueError(f"payload {name!r} has no identity block")
    path = results_dir / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def emit_series(results_dir: Path, name: str, result) -> Path:
    """Persist a result's residual-vs-time series as ``name.residuals.csv``.

    Accepts any backend result carrying ``residual_samples`` /
    ``residual_trace`` (see :func:`repro.observe.series_from_result`),
    so the figure benches share one plotting format with ``repro trace
    export --residuals``.
    """
    from repro.observe import series_from_result, write_residual_series

    path = results_dir / f"{name}.residuals.csv"
    write_residual_series(series_from_result(result), path)
    return path
