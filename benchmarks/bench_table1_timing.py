"""Table I — time / corrects / V-cycles, 4 matrices x 4 smoothers x 12 methods.

Paper protocol (Section V): Criterion 2, 272 threads, tolerance 1e-9,
V-cycle counts on a grid of 5.  Convergence (V-cycles, corrects) is
measured with the sequential asynchronous engine; wall-clock is the
machine model's estimate at the measured cycle count (see DESIGN.md's
substitution table — absolute seconds are modeled, the method ordering
is the reproduced result).

The full 4x4x12 sweep is long; by default each matrix runs with its
paper smoother weight and all twelve methods for two smoothers
(omega-Jacobi + async GS, the paper's headline columns).  Set
``REPRO_TABLE1_FULL=1`` for all four smoother columns.
"""

from __future__ import annotations


from repro.experiments import TABLE1_METHODS, paper_hierarchy, table1_entry
from repro.problems import build_problem
from repro.problems.registry import table1_sizes
from repro.utils import env_float, env_int, format_table

from _common import commit_hash, emit, emit_payload, identity_block

ALPHA = 0.7  # modest imbalance: realistic for one NUMA node
NTHREADS = 272
TOL_DEFAULT = 1e-9
SCHEMA = "repro.bench_table1/1"


def _smoother_configs(full: bool):
    cfgs = [("omega-Jacobi", "jacobi", {}), ("async GS", "async_gs", {"nblocks": 4, "lambda_mode": "sweep"})]
    if full:
        cfgs[1:1] = [
            ("l1-Jacobi", "l1_jacobi", {}),
            ("hybrid JGS", "hybrid_jgs", {"nblocks": 4}),
        ]
    return cfgs


def _run_matrix(name, runs, tol, max_cycles=250):
    scale = env_float("REPRO_SCALE", 0.25)
    size = table1_sizes(scale)[name]
    p = build_problem(name, size, rhs_seed=0)
    # Table I: HMIS + two aggressive levels (elasticity: systems AMG,
    # no aggressive levels — see repro.experiments.paper_hierarchy).
    h = paper_hierarchy(name, p.A, aggressive_levels=2)
    full = env_int("REPRO_TABLE1_FULL", 0) == 1
    blocks = []
    for col_label, smoother, kw in _smoother_configs(full):
        if smoother == "jacobi":
            kw = dict(kw, weight=p.jacobi_weight)
        rows = []
        for spec in TABLE1_METHODS:
            e = table1_entry(
                spec,
                h,
                p.b,
                smoother,
                nthreads=NTHREADS,
                tol=tol,
                runs=runs,
                alpha=ALPHA,
                max_cycles=max_cycles,
                **kw,
            )
            t, c, v = e.cells()
            rows.append([spec.label, t, c, v])
        blocks.append((col_label, rows))
    title = f"Table I — {name}: {p.n} rows, {p.nnz} nonzeros (tol={tol:g})"
    parts = [title]
    for col_label, rows in blocks:
        parts.append(
            format_table(
                ["method", "time(s)", "corrects", "V-cycles"],
                rows,
                title=f"-- smoother: {col_label} --",
            )
        )
    # Schema-versioned payload twin of the text table.  The identity
    # block pins these as MODELED numbers (perfmodel seconds at the
    # measured cycle count, nthreads simulated) — never to be compared
    # against a measured `BENCH_parallel.json` row as if like-for-like.
    payload = {
        "schema": SCHEMA,
        "commit": commit_hash(),
        "identity": identity_block(
            "perfmodel", measured=False, nthreads_modeled=NTHREADS
        ),
        "problem": {"set": name, "size": size, "n": p.n, "nnz": p.nnz, "tol": tol},
        "smoothers": [
            {
                "smoother": col_label,
                "rows": [
                    {"method": m, "time_s": t, "corrects": c, "vcycles": v}
                    for m, t, c, v in rows
                ],
            }
            for col_label, rows in blocks
        ],
    }
    return "\n\n".join(parts), blocks, payload


def _tol(name):
    # The paper's 1e-9 needs hundreds of cycles for the FEM sets; at
    # benchmark scale we relax those two so the sweep stays minutes.
    from repro.utils import env_float

    base = env_float("REPRO_TABLE1_TOL", 0.0)
    if base > 0:
        return base
    if name in ("7pt", "27pt"):
        return TOL_DEFAULT
    # Our P1-tet elasticity substitute converges far more slowly than
    # the paper's matrices under classical AMG (no rigid-body-mode
    # interpolation); keep its sweep bounded.
    return 1e-2 if name == "mfem_elasticity" else 1e-6


def _check_paper_shape(blocks):
    """Common Table-I ordering claims, evaluated leniently.

    Only the omega-Jacobi column is asserted (the paper's headline
    comparison); the other columns are informational at benchmark
    scale, where V-cycle ratios between smoothers fluctuate more than
    the timing differences they would need to overcome.
    """
    for col_label, rows in blocks:
        if col_label != "omega-Jacobi":
            continue
        by = {r[0]: r for r in rows}
        mult = by["sync Mult"]
        best_async_ma = by["Multadd, lock-write, local-res"]
        # async Multadd local-res beats Mult in modeled wall-clock when
        # both converge (the paper's headline claim at 272 threads).
        if mult[1] is not None and best_async_ma[1] is not None:
            assert best_async_ma[1] < mult[1]


def test_table1_7pt(benchmark, results_dir, runs):
    text, blocks, payload = benchmark.pedantic(
        lambda: _run_matrix("7pt", runs, _tol("7pt")), iterations=1, rounds=1
    )
    emit(results_dir, "table1_7pt", text)
    emit_payload(results_dir, "table1_7pt", payload)
    _check_paper_shape(blocks)


def test_table1_27pt(benchmark, results_dir, runs):
    text, blocks, payload = benchmark.pedantic(
        lambda: _run_matrix("27pt", runs, _tol("27pt")), iterations=1, rounds=1
    )
    emit(results_dir, "table1_27pt", text)
    emit_payload(results_dir, "table1_27pt", payload)
    _check_paper_shape(blocks)


def test_table1_mfem_laplace(benchmark, results_dir, runs):
    text, blocks, payload = benchmark.pedantic(
        lambda: _run_matrix("mfem_laplace", runs, _tol("mfem_laplace")),
        iterations=1,
        rounds=1,
    )
    emit(results_dir, "table1_mfem_laplace", text)
    emit_payload(results_dir, "table1_mfem_laplace", payload)
    assert blocks  # table produced; divergences allowed on this set


def test_table1_mfem_elasticity(benchmark, results_dir, runs):
    text, blocks, payload = benchmark.pedantic(
        lambda: _run_matrix("mfem_elasticity", runs, _tol("mfem_elasticity"), max_cycles=300),
        iterations=1,
        rounds=1,
    )
    emit(results_dir, "table1_mfem_elasticity", text)
    emit_payload(results_dir, "table1_mfem_elasticity", payload)
    assert blocks
