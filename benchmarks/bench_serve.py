"""Solve-server serving benchmarks — regenerates
``results/BENCH_serve.json``.

Four measurements over one small operator (5pt, scaled size):

- **cold vs warm** — latency of the very first job (pays the AMG
  setup) against the warm median (setup-cache hit): the shared-cache
  claim in one number.
- **unbatched vs batched throughput** — one 40-job burst drained with
  coalescing off (``batch_max=1``) and on (``batch_max=8``): wall
  time, jobs/s, and per-job p50/p99 latency for both.
- **fault isolation** — a paced steady tenant's p99 latency alone
  (fault-free baseline) vs the same tenant riding alongside a
  crash-fault tenant and a deadline-busting tenant.  The acceptance
  claim recorded here: healthy-tenant p99 within **2x** of the
  fault-free baseline.

Both fault arms run ``ROUNDS`` times alternately and keep the minimum
p99 (same drift-cancelling idiom as the other benches); the 2x check
applies a small absolute floor so micro-second baselines on a quiet
box don't turn scheduler jitter into flakes.

Runnable standalone (``python benchmarks/bench_serve.py``) or through
pytest like every other bench module.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.kernels.setupcache import clear_setup_cache
from repro.problems import build_problem
from repro.resilience import parse_fault_spec
from repro.serve import ServeConfig, SolveServer
from repro.utils import env_int, format_table

SIZE = env_int("REPRO_SERVE_SIZE", 12)
BURST = env_int("REPRO_SERVE_BURST", 40)
STEADY_JOBS = env_int("REPRO_SERVE_STEADY", 30)
#: steady-tenant pacing: keeps arrival rate well below a single
#: core's service capacity so the p99 measures per-job isolation,
#: not queueing at saturation.
STEADY_PACE_S = 0.02
ROUNDS = 2
WORKERS = 2
#: absolute floor for the p99 ratio check: below this, scheduler
#: jitter — not the server — dominates the percentile.
P99_FLOOR_S = 0.005

SCHEMA = "repro.bench.serve/v1"


def _rhs(n, seed):
    return np.random.default_rng(seed).standard_normal(n)


def _percentiles(latencies_s):
    arr = np.asarray(latencies_s, dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
    }


def _start_server(problem, **config_kw):
    config_kw.setdefault("workers", WORKERS)
    config_kw.setdefault("tick_s", 0.002)
    server = SolveServer(ServeConfig(**config_kw)).start()
    server.register_operator(
        "good", problem.A, solver_kwargs={"weight": problem.jacobi_weight}
    )
    return server


def bench_cold_vs_warm(problem):
    clear_setup_cache()
    server = _start_server(problem)
    try:
        t0 = time.perf_counter()
        first = server.submit_named(
            "bench", "good", _rhs(problem.n, 0), deadline_s=120.0
        ).result(timeout=300.0)
        cold_s = time.perf_counter() - t0
        assert first is not None and first.status == "ok"
        warm = []
        for i in range(1, 11):
            res = server.submit_named(
                "bench", "good", _rhs(problem.n, i), deadline_s=120.0
            ).result(timeout=300.0)
            assert res is not None and res.status == "ok"
            warm.append(res.latency_s)
        warm_median_s = float(np.median(warm))
    finally:
        server.stop()
    return {
        "cold_first_latency_ms": cold_s * 1e3,
        "warm_median_latency_ms": warm_median_s * 1e3,
        "cold_over_warm": cold_s / max(warm_median_s, 1e-9),
    }


def bench_burst(problem, batch_max):
    server = _start_server(problem, batch_max=batch_max, max_depth=2 * BURST)
    try:
        t0 = time.perf_counter()
        tickets = [
            server.submit_named(
                "burst", "good", _rhs(problem.n, 100 + i), deadline_s=120.0
            )
            for i in range(BURST)
        ]
        results = [t.result(timeout=300.0) for t in tickets]
        wall_s = time.perf_counter() - t0
        assert all(r is not None and r.status == "ok" for r in results)
        coalesced = max(r.batched for r in results)
    finally:
        server.stop()
    row = {
        "jobs": BURST,
        "wall_s": wall_s,
        "jobs_per_s": BURST / wall_s,
        "max_batch": int(coalesced),
        "batched_jobs": int(
            server.metrics.flatten().get("serve.batched_jobs", 0)
        ),
    }
    row.update(_percentiles([r.latency_s for r in results]))
    return row


def _steady_p99(problem, with_faults):
    fault_plans = {}
    if with_faults:
        fault_plans["crashy"] = parse_fault_spec("crash:0@1", seed=11)
    server = _start_server(
        problem, batch_max=8, max_depth=64, fault_plans=fault_plans, seed=13
    )
    if with_faults:
        slow = build_problem("5pt", SIZE + 2)
        server.register_operator(
            "slow", slow.A, solver_kwargs={"weight": slow.jacobi_weight}
        )
    crashes = respawns = 0
    try:
        # Fault tenants are interleaved across the steady run (not
        # front-loaded) so the comparison measures isolation, not a
        # self-inflicted burst at t=0.
        steady, extras = [], []
        for i in range(STEADY_JOBS):
            steady.append(
                server.submit_named(
                    "steady", "good", _rhs(problem.n, 700 + i), deadline_s=120.0
                )
            )
            if with_faults and i % 6 == 3:
                extras.append(
                    server.submit_named(
                        "crashy", "good", _rhs(problem.n, 500 + i),
                        deadline_s=120.0, retries=1,
                    )
                )
            if with_faults and i % 4 == 1:
                extras.append(
                    server.submit_named(
                        "hasty", "slow", _rhs(slow.n, 600 + i), deadline_s=1e-4
                    )
                )
            time.sleep(STEADY_PACE_S)
        results = [t.result(timeout=300.0) for t in steady]
        for t in extras:
            assert t.result(timeout=300.0) is not None
        assert all(r is not None and r.status == "ok" for r in results)
        flat = server.metrics.flatten()
        crashes = int(flat.get("serve.worker_crashes", 0))
        respawns = int(flat.get("serve.workers_respawned", 0))
    finally:
        server.stop()
    p99 = _percentiles([r.latency_s for r in results])["p99_ms"]
    return p99, crashes, respawns


def bench_fault_isolation(problem):
    baseline_p99 = faulty_p99 = float("inf")
    crashes = respawns = 0
    for _ in range(ROUNDS):  # alternate the arms so drift cancels
        b, _, _ = _steady_p99(problem, with_faults=False)
        f, c, r = _steady_p99(problem, with_faults=True)
        baseline_p99 = min(baseline_p99, b)
        faulty_p99 = min(faulty_p99, f)
        crashes, respawns = max(crashes, c), max(respawns, r)
    floor_ms = P99_FLOOR_S * 1e3
    return {
        "steady_jobs": STEADY_JOBS,
        "rounds": ROUNDS,
        "baseline_p99_ms": baseline_p99,
        "faulty_p99_ms": faulty_p99,
        "p99_ratio": faulty_p99 / max(baseline_p99, 1e-9),
        "p99_floor_ms": floor_ms,
        "worker_crashes": crashes,
        "workers_respawned": respawns,
    }


def run_bench():
    from _common import identity_block

    problem = build_problem("5pt", SIZE, rhs_seed=0)
    payload = {
        "schema": SCHEMA,
        "problem": {"set": "5pt", "size": SIZE, "n": problem.n},
        "config": {"workers": WORKERS, "burst": BURST},
        "identity": identity_block("serve", measured=True),
        "cold_vs_warm": bench_cold_vs_warm(problem),
        "throughput": {
            "unbatched": bench_burst(problem, batch_max=1),
            "batched": bench_burst(problem, batch_max=8),
        },
        "fault_isolation": bench_fault_isolation(problem),
    }
    return payload


def check(payload):
    cold = payload["cold_vs_warm"]
    assert cold["cold_over_warm"] > 1.0, (
        "first job must pay the AMG setup the warm path skips"
    )
    batched = payload["throughput"]["batched"]
    assert batched["batched_jobs"] > 0, "burst never coalesced a batch"
    iso = payload["fault_isolation"]
    bound_ms = 2.0 * max(iso["baseline_p99_ms"], iso["p99_floor_ms"])
    assert iso["faulty_p99_ms"] <= bound_ms, (
        f"healthy-tenant p99 {iso['faulty_p99_ms']:.2f} ms under faults "
        f"exceeds 2x the fault-free baseline "
        f"({iso['baseline_p99_ms']:.2f} ms, floor "
        f"{iso['p99_floor_ms']:.1f} ms)"
    )
    assert iso["worker_crashes"] >= 1, "the crash tenant never crashed a worker"


def digest(payload):
    t = payload["throughput"]
    rows = [
        [
            arm,
            t[arm]["jobs_per_s"],
            t[arm]["p50_ms"],
            t[arm]["p99_ms"],
            t[arm]["max_batch"],
        ]
        for arm in ("unbatched", "batched")
    ]
    iso = payload["fault_isolation"]
    cold = payload["cold_vs_warm"]
    return format_table(
        ["arm", "jobs/s", "p50 ms", "p99 ms", "max batch"],
        rows,
        title=(
            f"Solve server ({BURST}-job burst, 5pt size {SIZE}, "
            f"{WORKERS} workers) — cold/warm "
            f"{cold['cold_first_latency_ms']:.1f}/"
            f"{cold['warm_median_latency_ms']:.1f} ms, healthy-p99 "
            f"ratio under faults {iso['p99_ratio']:.2f}x"
        ),
    )


def test_serve_benchmark(benchmark, results_dir):
    from _common import emit

    payload = benchmark.pedantic(run_bench, iterations=1, rounds=1)
    check(payload)
    (results_dir / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    emit(results_dir, "serve", digest(payload))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_serve.json",
        metavar="PATH",
    )
    args = ap.parse_args(argv)
    payload = run_bench()
    check(payload)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(digest(payload))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
