"""Figure 4 — relative residual vs #rows for all methods, 7pt & 27pt.

Paper: ||r||/||b|| after 20 V(1,1)-cycles versus number of rows, 68
threads, Criterion 1, for two smoothers (omega-Jacobi and async GS) and
the method ladder (sync Mult, sync Multadd, sync AFACx, async AFACx,
async Multadd global-res/local-res).  Expected shape: all asynchronous
methods are ~flat in problem size; global-res converges more slowly
than local-res.
"""

from __future__ import annotations

import numpy as np

from repro.amg import SetupOptions, setup_hierarchy
from repro.core import run_async_engine
from repro.problems import build_problem
from repro.solvers import AFACx, Multadd, MultiplicativeMultigrid
from repro.utils import format_table, scaled_sizes, spawn_seeds

from _common import emit, emit_series

PAPER_SIZES = (30, 40, 50, 60)
ALPHA = 0.5  # modest thread imbalance, as on a real shared-memory node

METHODS = (
    ("sync Mult", "mult", None, None),
    ("sync Multadd", "multadd", None, None),
    ("sync AFACx", "afacx", None, None),
    ("AFACx async", "afacx", "local", "lock"),
    ("Multadd global-res", "multadd", "global", "lock"),
    ("Multadd local-res", "multadd", "local", "lock"),
)


def _solver(kind, h, smoother, **kw):
    if kind == "multadd":
        return Multadd(h, smoother=smoother, **kw)
    kw.pop("lambda_mode", None)  # Multadd-only option
    if kind == "mult":
        return MultiplicativeMultigrid(h, smoother=smoother, **kw)
    return AFACx(h, smoother=smoother, **kw)


def _smoother_kwargs(smoother):
    if smoother == "jacobi":
        return {"weight": 0.9}
    return {"nblocks": 4, "lambda_mode": "sweep"}


def _run(test_set, smoother, runs):
    sizes = scaled_sizes(PAPER_SIZES)
    rows = []
    for size in sizes:
        p = build_problem(test_set, size, rhs_seed=0)
        h = setup_hierarchy(
            p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1)
        )
        row = [size, p.n]
        for label, kind, rescomp, write in METHODS:
            kw = _smoother_kwargs(smoother)
            solver = _solver(kind, h, smoother, **kw)
            if rescomp is None:
                res = solver.solve(p.b, tmax=20)
                row.append(float("nan") if res.diverged else res.final_relres)
            else:
                vals = []
                diverged = False
                for s in spawn_seeds(hash((size, label)) % 2**31, runs):
                    r = run_async_engine(
                        solver,
                        p.b,
                        tmax=20,
                        rescomp=rescomp,
                        write=write,
                        criterion="criterion1",
                        alpha=ALPHA,
                        seed=s,
                    )
                    if r.diverged:
                        diverged = True
                        break
                    vals.append(r.rel_residual)
                row.append(float("nan") if diverged else float(np.mean(vals)))
        rows.append(row)
    headers = ["grid len", "rows"] + [m[0] for m in METHODS]
    return headers, rows


def test_fig4_residual_series(results_dir):
    """Persist a representative async-engine residual-vs-time series
    (Multadd local-res, largest Fig-4 grid) in the shared observe CSV
    format."""
    size = scaled_sizes(PAPER_SIZES)[-1]
    p = build_problem("7pt", size, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1))
    solver = Multadd(h, smoother="jacobi", weight=0.9)
    res = run_async_engine(
        solver,
        p.b,
        tmax=20,
        rescomp="local",
        write="lock",
        criterion="criterion1",
        alpha=ALPHA,
        seed=0,
        track_trace=True,
    )
    path = emit_series(results_dir, "fig4_multadd_local", res)
    assert path.exists() and len(path.read_text().splitlines()) > 1


def test_fig4_7pt_jacobi(benchmark, results_dir, runs):
    headers, rows = benchmark.pedantic(
        lambda: _run("7pt", "jacobi", runs), iterations=1, rounds=1
    )
    emit(
        results_dir,
        "fig4_7pt_jacobi",
        format_table(headers, rows, title="Fig 4 (7pt, omega-Jacobi): relres after 20 cycles"),
    )
    # local-res at least as good as global-res on the largest grid.
    assert rows[-1][-1] <= rows[-1][-2] * 2 or np.isnan(rows[-1][-2])


def test_fig4_7pt_async_gs(benchmark, results_dir, runs):
    headers, rows = benchmark.pedantic(
        lambda: _run("7pt", "async_gs", runs), iterations=1, rounds=1
    )
    emit(
        results_dir,
        "fig4_7pt_async_gs",
        format_table(headers, rows, title="Fig 4 (7pt, async GS): relres after 20 cycles"),
    )
    assert np.isfinite(rows[-1][-1])


def test_fig4_27pt_jacobi(benchmark, results_dir, runs):
    headers, rows = benchmark.pedantic(
        lambda: _run("27pt", "jacobi", runs), iterations=1, rounds=1
    )
    emit(
        results_dir,
        "fig4_27pt_jacobi",
        format_table(headers, rows, title="Fig 4 (27pt, omega-Jacobi): relres after 20 cycles"),
    )
    # Grid-size independence of async local-res: last size within ~10x
    # of the first.
    col = [r[-1] for r in rows]
    assert col[-1] <= col[0] * 10 or col[-1] < 1e-4


def test_fig4_27pt_async_gs(benchmark, results_dir, runs):
    headers, rows = benchmark.pedantic(
        lambda: _run("27pt", "async_gs", runs), iterations=1, rounds=1
    )
    emit(
        results_dir,
        "fig4_27pt_async_gs",
        format_table(headers, rows, title="Fig 4 (27pt, async GS): relres after 20 cycles"),
    )
    assert np.isfinite(rows[-1][-1])
