"""Figure 5 — relative residual vs #rows, MFEM Laplace set.

Paper: same protocol as Fig. 4 but on the FEM Laplace (sphere) set with
*no aggressive coarsening*.  Expected shape: Multadd local-res
lock-write stays grid-size independent; AFACx and Multadd global-res
lose grid-size independence on this set (their curves rise with n).
"""

from __future__ import annotations

import numpy as np

from repro.amg import SetupOptions, setup_hierarchy
from repro.core import run_async_engine
from repro.problems import build_problem
from repro.solvers import AFACx, Multadd, MultiplicativeMultigrid
from repro.utils import format_table, scaled_sizes, spawn_seeds

from _common import emit

# Ball-mesh resolutions giving row counts in the paper's 8k-60k ballpark
# at scale 1; scaled down by default like everything else.
PAPER_SIZES = (24, 32, 40, 48)
ALPHA = 0.5

METHODS = (
    ("sync Mult", "mult", None, None),
    ("sync Multadd", "multadd", None, None),
    ("sync AFACx", "afacx", None, None),
    ("AFACx async", "afacx", "local", "lock"),
    ("Multadd global-res", "multadd", "global", "lock"),
    ("Multadd local-res", "multadd", "local", "lock"),
)


def _run(smoother, runs):
    sizes = scaled_sizes(PAPER_SIZES, minimum=8)
    rows = []
    for size in sizes:
        p = build_problem("mfem_laplace", size, rhs_seed=0)
        # Fig 5: no aggressive coarsening.
        h = setup_hierarchy(
            p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=0)
        )
        row = [size, p.n]
        for label, kind, rescomp, write in METHODS:
            if smoother == "jacobi":
                kw = {"weight": 0.5}  # the paper's FEM weight
            else:
                kw = {"nblocks": 4, "lambda_mode": "sweep"}
            kw2 = dict(kw)
            if kind != "multadd":
                kw2.pop("lambda_mode", None)  # Multadd-only option
            if kind == "mult":
                solver = MultiplicativeMultigrid(h, smoother=smoother, **kw2)
            elif kind == "multadd":
                solver = Multadd(h, smoother=smoother, **kw2)
            else:
                solver = AFACx(h, smoother=smoother, **kw2)
            if rescomp is None:
                res = solver.solve(p.b, tmax=20)
                row.append(float("nan") if res.diverged else res.final_relres)
            else:
                vals = []
                diverged = False
                for s in spawn_seeds(hash((size, label)) % 2**31, runs):
                    r = run_async_engine(
                        solver,
                        p.b,
                        tmax=20,
                        rescomp=rescomp,
                        write=write,
                        criterion="criterion1",
                        alpha=ALPHA,
                        seed=s,
                    )
                    if r.diverged:
                        diverged = True
                        break
                    vals.append(r.rel_residual)
                row.append(float("nan") if diverged else float(np.mean(vals)))
        rows.append(row)
    headers = ["mesh n", "rows"] + [m[0] for m in METHODS]
    return headers, rows


def test_fig5_fem_laplace_jacobi(benchmark, results_dir, runs):
    headers, rows = benchmark.pedantic(
        lambda: _run("jacobi", runs), iterations=1, rounds=1
    )
    emit(
        results_dir,
        "fig5_jacobi",
        format_table(
            headers, rows, title="Fig 5 (MFEM Laplace, omega-Jacobi): relres after 20 cycles"
        ),
    )
    # Multadd local-res must converge on every size.
    assert all(np.isfinite(r[-1]) and r[-1] < 1.0 for r in rows)


def test_fig5_fem_laplace_async_gs(benchmark, results_dir, runs):
    headers, rows = benchmark.pedantic(
        lambda: _run("async_gs", runs), iterations=1, rounds=1
    )
    emit(
        results_dir,
        "fig5_async_gs",
        format_table(
            headers, rows, title="Fig 5 (MFEM Laplace, async GS): relres after 20 cycles"
        ),
    )
    assert all(np.isfinite(r[-1]) for r in rows)
