"""Fault-tolerance study (beyond the paper's tables).

The paper motivates asynchrony as the way to tolerate stragglers and
stale reads *by construction*; Coleman & Sosonkina's fault-tolerance
results for accelerated asynchronous fixed-point methods predict the
stronger property this bench measures: under crashes, corrupted
corrections and message loss, a *guarded* asynchronous run degrades
gracefully — it pays **extra corrections**, not divergence — while the
same faults with the guard layer disabled diverge or stall.

Two sweeps on the 27-point Poisson problem:

- **engine sweep** (deterministic sequential executor): crash count x
  correction-corruption rate, guards on vs off;
- **distributed sweep** (discrete-event simulator): crash count x
  corruption rate x message-drop probability, guards on vs off
  (retransmission + restart + screening active when guarded).
"""

from __future__ import annotations


from repro.amg import SetupOptions, setup_hierarchy
from repro.core import run_async_engine
from repro.core.perfmodel import MachineParams
from repro.distributed import NetworkModel, simulate_distributed
from repro.problems import build_problem
from repro.resilience import CrashFault, FaultPlan, GuardPolicy
from repro.solvers import Multadd
from repro.utils import format_table

from _common import emit

TOL = 1e-6
TMAX = 60


def _solver():
    p = build_problem("27pt", 10, rhs_seed=0)
    h = setup_hierarchy(
        p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=0, max_coarse=20)
    )
    return Multadd(h, smoother="jacobi", weight=0.9), p.b


def _plan(ngrids: int, ncrash: int, corrupt_p: float, drop_p: float, seed: int):
    crashes = tuple(
        CrashFault(grid=1 + i, after=5) for i in range(min(ncrash, ngrids - 1))
    )
    return FaultPlan(
        crashes=crashes,
        corruption_probability=corrupt_p,
        corruption_mode="nan",
        drop_probability=drop_p,
        seed=seed,
    )


def _outcome(res) -> str:
    if res.diverged:
        return "diverged"
    if res.stalled:
        return "stalled"
    return "ok" if res.rel_residual < TOL else f"plateau"


def test_fault_tolerance_engine(benchmark, results_dir):
    def run():
        solver, b = _solver()
        guard = GuardPolicy(watchdog_microsteps=4000)
        rows = []
        for ncrash in (0, 1):
            for corrupt_p in (0.0, 0.01, 0.05):
                for guarded in (True, False):
                    plan = _plan(solver.ngrids, ncrash, corrupt_p, 0.0, seed=0)
                    res = run_async_engine(
                        solver,
                        b,
                        tmax=TMAX,
                        criterion="criterion2",
                        alpha=0.5,
                        seed=0,
                        faults=plan if plan.active else None,
                        guard=guard if guarded else None,
                    )
                    tele = res.telemetry
                    rows.append(
                        [
                            ncrash,
                            corrupt_p,
                            "on" if guarded else "off",
                            f"{res.rel_residual:.2e}",
                            _outcome(res),
                            f"{res.corrects:.0f}",
                            tele.corrections_rejected,
                            tele.restarts,
                        ]
                    )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        results_dir,
        "fault_tolerance_engine",
        format_table(
            [
                "crashes",
                "corrupt p",
                "guards",
                "relres",
                "outcome",
                "corrects",
                "rejected",
                "restarts",
            ],
            rows,
            title=(
                "Fault tolerance (engine, 27pt, criterion2, tmax "
                f"{TMAX}): graceful degradation with guards on"
            ),
        ),
    )
    by_key = {(r[0], r[1], r[2]): r for r in rows}
    # Guarded runs under simultaneous faults still converge below TOL...
    assert by_key[(1, 0.01, "on")][4] == "ok"
    # ... while the same faults unguarded diverge or stall.
    assert by_key[(1, 0.01, "off")][4] in ("diverged", "stalled")
    # Graceful degradation costs corrections, not divergence: the
    # guarded faulty run spends at least as many corrections as the
    # guarded fault-free one.
    assert float(by_key[(1, 0.01, "on")][5]) >= float(by_key[(0, 0.0, "on")][5])


def test_fault_tolerance_distributed(benchmark, results_dir):
    def run():
        solver, b = _solver()
        guard = GuardPolicy(watchdog_timeout=1e-4, retransmit_timeout=1e-5)
        mach = MachineParams(flop_rate=2e8, jitter=0.1)
        rows = []
        for ncrash in (0, 1):
            for corrupt_p in (0.0, 0.01):
                for drop_p in (0.0, 0.05, 0.2):
                    for guarded in (True, False):
                        plan = _plan(solver.ngrids, ncrash, corrupt_p, drop_p, seed=0)
                        res = simulate_distributed(
                            solver,
                            b,
                            tmax=TMAX,
                            strategy="global",
                            network=NetworkModel(seed=0),
                            machine=mach,
                            nthreads_total=4,
                            criterion="criterion2",
                            seed=0,
                            # Unguarded crashed runs never satisfy
                            # criterion2; a tight event budget turns
                            # them into fast "stalled" rows.
                            max_events=120_000,
                            faults=plan if plan.active else None,
                            guard=guard if guarded else None,
                        )
                        tele = res.telemetry
                        rows.append(
                            [
                                ncrash,
                                corrupt_p,
                                drop_p,
                                "on" if guarded else "off",
                                f"{res.rel_residual:.2e}",
                                _outcome(res),
                                f"{res.corrects:.0f}",
                                tele.retransmissions,
                                tele.restarts,
                            ]
                        )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        results_dir,
        "fault_tolerance_distributed",
        format_table(
            [
                "crashes",
                "corrupt p",
                "drop p",
                "guards",
                "relres",
                "outcome",
                "corrects",
                "retx",
                "restarts",
            ],
            rows,
            title=(
                "Fault tolerance (distributed, 27pt, criterion2, tmax "
                f"{TMAX}): crash x corruption x drop sweep"
            ),
        ),
    )
    by_key = {(r[0], r[1], r[2], r[3]): r for r in rows}
    # The acceptance triple: 1 crash + 1% corruption + 5% drop.
    assert by_key[(1, 0.01, 0.05, "on")][5] == "ok"
    assert by_key[(1, 0.01, 0.05, "off")][5] in ("diverged", "stalled")
    # Message loss alone never deadlocks an asynchronous method; with
    # retransmission it does not even cost accuracy at this budget.
    assert by_key[(0, 0.0, 0.2, "on")][5] == "ok"
