"""Shared benchmark infrastructure.

Each ``bench_*.py`` file regenerates one table or figure of the paper
(see DESIGN.md section 4).  Conventions:

- Problem sizes are the paper's scaled by ``REPRO_SCALE`` (default
  0.25); ``REPRO_SCALE=1 REPRO_RUNS=20`` reproduces the paper's setup.
- Every bench *prints* the regenerated table/series (visible with
  ``pytest -s``) and also appends it to ``benchmarks/results/*.txt`` so
  a captured run still leaves the artifacts behind.
- The ``benchmark`` fixture times one representative unit of work per
  experiment so ``pytest benchmarks/ --benchmark-only`` doubles as a
  performance regression harness for the library itself.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def runs() -> int:
    from repro.utils import env_int

    return env_int("REPRO_RUNS", 2)



