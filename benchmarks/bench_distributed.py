"""Distributed-memory study (beyond the paper's tables).

The paper's conclusion conjectures that global-res is the natural
distributed formulation.  This bench quantifies the trade on the
message-passing simulator:

- **flops**: global-res ships residual increments, so no process ever
  recomputes a full fine-grid residual — it must not cost more flops
  than local-res.
- **staleness**: sweep the network latency and compare the two
  strategies' final residuals at a fixed correction budget — in the
  network-bound regime both degrade; the question is who degrades
  more gracefully.
"""

from __future__ import annotations

import numpy as np

from repro.amg import SetupOptions, setup_hierarchy
from repro.core.perfmodel import MachineParams
from repro.distributed import NetworkModel, simulate_distributed
from repro.problems import build_problem
from repro.solvers import Multadd
from repro.utils import format_table, spawn_seeds

from _common import emit

LATENCIES = (1e-7, 1e-6, 1e-5, 1e-4)


def _solver():
    p = build_problem("27pt", 10, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1))
    return Multadd(h, smoother="jacobi", weight=0.9), p.b


def test_distributed_latency_sweep(benchmark, results_dir, runs):
    def run():
        solver, b = _solver()
        mach = MachineParams(flop_rate=2e8, jitter=0.1)
        rows = []
        for lat in LATENCIES:
            per_strategy = {}
            for strategy in ("global", "local"):
                vals = []
                for s in spawn_seeds(hash((lat, strategy)) % 2**31, runs):
                    res = simulate_distributed(
                        solver,
                        b,
                        tmax=20,
                        strategy=strategy,
                        network=NetworkModel(latency=lat, jitter=0.1, seed=s),
                        machine=mach,
                        nthreads_total=8,
                        seed=s,
                    )
                    vals.append(res.rel_residual)
                per_strategy[strategy] = float(np.mean(vals))
            rows.append([lat, per_strategy["global"], per_strategy["local"]])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        results_dir,
        "distributed_latency",
        format_table(
            ["latency (s)", "global-res relres", "local-res relres"],
            rows,
            title="Distributed study: relres after 20 corrections/grid vs network latency",
        ),
    )
    # Both strategies converge at low latency.
    assert rows[0][1] < 1e-2 and rows[0][2] < 1e-2


def test_distributed_flops_accounting(benchmark, results_dir):
    def run():
        solver, b = _solver()
        mach = MachineParams(flop_rate=2e8, jitter=0.0)
        out = []
        for strategy in ("global", "local"):
            res = simulate_distributed(
                solver,
                b,
                tmax=20,
                strategy=strategy,
                machine=mach,
                nthreads_total=8,
                seed=0,
            )
            out.append(
                [strategy, res.flops_total, res.messages, res.wall_time, res.rel_residual]
            )
        return out

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        results_dir,
        "distributed_flops",
        format_table(
            ["strategy", "total flops", "messages", "sim wall (s)", "relres"],
            rows,
            title="Distributed study: global-res vs local-res cost accounting",
        ),
    )
    # The paper's conjecture, cost side: global-res never needs more flops.
    assert rows[0][1] <= rows[1][1] * 1.01


def test_distributed_message_loss(benchmark, results_dir, runs):
    """Loss tolerance: asynchronous methods never deadlock on drops.

    A lost message permanently stales the receivers' replicas; the cost
    is accuracy per correction budget, growing with the loss rate —
    but the iteration keeps making progress (nothing ever waits).
    """

    def run():
        solver, b = _solver()
        mach = MachineParams(flop_rate=2e8, jitter=0.1)
        rows = []
        for drop in (0.0, 0.05, 0.15, 0.3):
            per_strategy = {}
            for strategy in ("global", "local"):
                vals, lost = [], 0
                for s in spawn_seeds(hash((drop, strategy)) % 2**31, runs):
                    res = simulate_distributed(
                        solver,
                        b,
                        tmax=20,
                        strategy=strategy,
                        network=NetworkModel(drop_probability=drop, seed=s),
                        machine=mach,
                        nthreads_total=8,
                        seed=s,
                    )
                    vals.append(res.rel_residual)
                    lost = res.dropped
                per_strategy[strategy] = (float(np.mean(vals)), lost)
            rows.append(
                [
                    drop,
                    per_strategy["global"][0],
                    per_strategy["local"][0],
                    per_strategy["global"][1],
                ]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        results_dir,
        "distributed_loss",
        format_table(
            ["drop prob", "global-res relres", "local-res relres", "msgs lost"],
            rows,
            title="Distributed study: message loss vs relres after 20 corrections/grid",
        ),
    )
    # Monotone degradation, no blow-up.
    assert rows[0][1] <= rows[-1][1]
    assert all(np.isfinite(r[1]) and np.isfinite(r[2]) for r in rows)
