"""Ablation benchmarks for the design choices DESIGN.md calls out.

Beyond the paper's tables/figures, these isolate the individual
mechanisms:

1. Smoothed vs plain interpolants in Multadd (why Multadd is not BPX).
2. BPX divergence as a solver vs BPX as a CG preconditioner.
3. Write-policy cost ladder in the machine model (lock vs atomic).
4. Criterion 1 vs Criterion 2 correction overshoot.
5. Aggressive-coarsening levels vs operator complexity and convergence.
6. Asynchronous-smoother chunk granularity (chaotic-GS fidelity knob).
"""

from __future__ import annotations

import numpy as np

from repro.amg import SetupOptions, setup_hierarchy
from repro.core import MachineParams, PerfModel, run_async_engine
from repro.problems import build_problem
from repro.solvers import BPX, Multadd, PCG
from repro.utils import format_table

from _common import emit


def _problem():
    return build_problem("27pt", 10, rhs_seed=0)


def test_ablation_smoothed_interpolants(benchmark, results_dir):
    """Multadd with plain interpolants over-corrects like BPX."""

    def run():
        p = _problem()
        # Deep hierarchy (no aggressive coarsening): the BPX
        # over-correction compounds with the number of levels.
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=0))
        smoothed = Multadd(h, smoother="jacobi", weight=0.9).solve(p.b, tmax=15)
        plain = BPX(h, smoother="jacobi", weight=0.9).solve(p.b, tmax=15)
        return smoothed, plain

    smoothed, plain = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        ["Multadd (smoothed P, sym Lambda)", smoothed.final_relres, smoothed.diverged],
        ["BPX (plain P, plain Lambda)", plain.final_relres, plain.diverged],
    ]
    emit(
        results_dir,
        "ablation_interpolants",
        format_table(
            ["variant", "relres after 15 cycles", "diverged"],
            rows,
            title="Ablation: smoothed interpolants are what make additive MG a solver",
        ),
    )
    assert not smoothed.diverged
    assert plain.diverged or plain.final_relres > 1.0


def test_ablation_bpx_as_preconditioner(benchmark, results_dir):
    """Divergent BPX becomes an excellent CG preconditioner."""

    def run():
        p = _problem()
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
        bpx = BPX(h, smoother="jacobi", weight=0.9)
        plain_cg = PCG(p.A).solve(p.b, tol=1e-9, maxiter=2000)
        bpx_cg = PCG.with_additive_preconditioner(bpx).solve(p.b, tol=1e-9, maxiter=2000)
        return plain_cg, bpx_cg

    plain_cg, bpx_cg = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        ["CG (no preconditioner)", plain_cg.cycles, plain_cg.final_relres],
        ["CG + BPX", bpx_cg.cycles, bpx_cg.final_relres],
    ]
    emit(
        results_dir,
        "ablation_bpx_pcg",
        format_table(
            ["method", "iterations to 1e-9", "final relres"],
            rows,
            title="Ablation: BPX as preconditioner",
        ),
    )
    assert bpx_cg.cycles < plain_cg.cycles


def test_ablation_write_policy_cost(benchmark, results_dir):
    """Machine-model cost ladder: lock < atomic for vector updates."""

    def run():
        p = _problem()
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
        ma = Multadd(h, smoother="jacobi", weight=0.9)
        pm = PerfModel(MachineParams(jitter=0.0))
        out = []
        for write in ("lock", "atomic"):
            t, _ = pm.time_async(ma, 68, 20, write=write)
            out.append([write, t])
        return out

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        results_dir,
        "ablation_write_policy",
        format_table(
            ["write policy", "modeled time (s) for 20 cycles"],
            rows,
            title="Ablation: write-policy overhead (68 threads)",
        ),
    )
    assert rows[0][1] < rows[1][1]


def test_ablation_criteria(benchmark, results_dir, runs):
    """Criterion 2 makes fast grids overshoot; Criterion 1 does not."""

    def run():
        p = _problem()
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
        ma = Multadd(h, smoother="jacobi", weight=0.9)
        out = []
        for crit in ("criterion1", "criterion2"):
            res = run_async_engine(
                ma, p.b, tmax=20, criterion=crit, alpha=0.3, seed=0
            )
            out.append([crit, float(res.counts.mean()), float(res.counts.max()), res.rel_residual])
        return out

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        results_dir,
        "ablation_criteria",
        format_table(
            ["criterion", "mean corrects", "max corrects", "relres"],
            rows,
            title="Ablation: stopping criteria (tmax=20, alpha=0.3)",
        ),
    )
    assert rows[0][1] == 20.0
    assert rows[1][1] >= 20.0


def test_ablation_aggressive_levels(benchmark, results_dir):
    """Aggressive coarsening trades convergence for complexity."""

    def run():
        p = _problem()
        out = []
        for agg in (0, 1, 2):
            h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=agg))
            ma = Multadd(h, smoother="jacobi", weight=0.9)
            res = ma.solve(p.b, tmax=15)
            out.append(
                [agg, h.nlevels, round(h.operator_complexity(), 2), res.final_relres]
            )
        return out

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        results_dir,
        "ablation_aggressive",
        format_table(
            ["aggressive levels", "levels", "op complexity", "relres(15)"],
            rows,
            title="Ablation: aggressive coarsening",
        ),
    )
    # More aggressive coarsening must reduce operator complexity.
    assert rows[2][2] <= rows[0][2]


def test_ablation_async_gs_chunk(benchmark, results_dir):
    """Chunk size of the sequential async-GS model: finer = more chaotic."""

    def run():
        p = _problem()
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
        out = []
        for chunk in (1, 16, 256):
            ma = Multadd(
                h,
                smoother="async_gs",
                nblocks=4,
                chunk=chunk,
                lambda_mode="sweep",
            )
            res = ma.solve(p.b, tmax=15)
            out.append([chunk, res.final_relres])
        return out

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        results_dir,
        "ablation_chunk",
        format_table(
            ["chunk", "relres(15)"],
            rows,
            title="Ablation: async-GS chunk granularity",
        ),
    )
    assert all(np.isfinite(r[1]) and r[1] < 1.0 for r in rows)


def test_ablation_sa_vs_classical_elasticity(benchmark, results_dir):
    """Smoothed aggregation with rigid-body modes vs classical AMG.

    The paper's elasticity weakness is a *setup* limitation: classical
    interpolation only carries constants.  SA with the rigid-body
    near-nullspace (an extension; BoomerAMG cannot do this) repairs
    the convergence rate, and asynchronous Multadd inherits the
    repaired hierarchy unchanged.
    """
    import numpy as np

    from repro.amg import rigid_body_modes, setup_sa_hierarchy
    from repro.experiments import paper_hierarchy
    from repro.problems import random_rhs
    from repro.problems.fem import elasticity_cantilever
    from repro.solvers import MultiplicativeMultigrid, Multadd

    def run():
        A, mesh, free = elasticity_cantilever(6, 6, 6, length=2.0, return_mesh=True)
        free_nodes = free.reshape(-1, 3)[:, 0] // 3
        B = rigid_body_modes(mesh.nodes[free_nodes])
        b = random_rhs(A.shape[0], 0)
        h_cl = paper_hierarchy("mfem_elasticity", A)
        h_sa = setup_sa_hierarchy(A, B=B, block_size=3)
        out = []
        for label, h in [("classical (paper setup)", h_cl), ("SA + rigid-body modes", h_sa)]:
            m = MultiplicativeMultigrid(h, smoother="gs")
            res = m.solve(b, tmax=40)
            hist = res.residual_history
            rate = (hist[-1] / hist[-10]) ** (1 / 9) if len(hist) >= 10 else float("nan")
            out.append([label + " / Mult", res.final_relres, round(rate, 3)])
            ma = Multadd(h, smoother="gs", lambda_mode="minv")
            res2 = ma.solve(b, tmax=40)
            out.append([label + " / Multadd", res2.final_relres, None])
        return out

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(
        results_dir,
        "ablation_sa_elasticity",
        format_table(
            ["setup / method", "relres(40)", "late rate"],
            rows,
            title="Ablation: SA + rigid-body modes repairs elasticity",
        ),
    )
    # SA Mult must clearly beat classical Mult on elasticity.
    assert rows[2][1] < rows[0][1] * 0.1
