"""Elastic-membership churn bench — regenerates ``results/BENCH_churn.json``.

Three claims about :mod:`repro.distributed.elastic`, measured and
persisted as one schema-versioned payload:

- **degradation** — with ≥10% of the rank pool crashing mid-solve, an
  elastic + guarded run still converges (``degraded``, not failed,
  with detection/eviction/repartition/handoff visible in telemetry),
  while the same physical failures on the static simulator stall it;
- **scale** — a churn-free 1024-rank simulation completes in seconds,
  the event-loop refactor's headline (indexed heap, O(1) dedup,
  vectorized membership scans);
- **identity** — a churn-free elastic run is bit-identical to the
  plain simulator under fixed seeds, so elasticity is free until used.

Runnable standalone (``python benchmarks/bench_churn.py [--full]``)
or through pytest like every other bench module.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.amg import SetupOptions, setup_hierarchy
from repro.core.perfmodel import MachineParams
from repro.distributed import ChurnPlan, ElasticityPolicy, simulate_distributed
from repro.problems import build_problem
from repro.resilience import CrashFault, FaultPlan, GuardPolicy
from repro.solvers import Multadd
from repro.utils import format_table

SCHEMA = "repro.bench_churn/1"
TOL = 1e-4
TMAX = 25
MAX_EVENTS = 150_000

#: compute-bound machine: per-correction compute well above network
#: latency, so convergence is limited by capacity — the regime where
#: losing ranks must show up as degradation, not noise.
_MACHINE = MachineParams(flop_rate=2e8, jitter=0.1)
_GUARD = GuardPolicy(watchdog_timeout=1e-4, retransmit_timeout=1e-5)
_POLICY = ElasticityPolicy(heartbeat_interval=2e-4)


def _commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).parent,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _solver(full: bool):
    name, size = ("27pt", 10) if full else ("7pt", 8)
    p = build_problem(name, size, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=0, max_coarse=20))
    return Multadd(h, smoother="jacobi", weight=0.9), p.b, {
        "set": name,
        "size": size,
        "n": int(p.A.shape[0]),
    }


def _outcome(res) -> str:
    if res.diverged:
        return "diverged"
    if res.stalled:
        return "stalled"
    return "ok" if res.rel_residual < TOL else "plateau"


def _row(res) -> dict:
    tel = res.telemetry
    return {
        "outcome": _outcome(res),
        "degraded": bool(res.degraded),
        "rel_residual": float(res.rel_residual),
        "corrects": float(res.corrects),
        "rank_crashes": tel.rank_crashes,
        "member_suspects": tel.member_suspects,
        "member_evictions": tel.member_evictions,
        "repartitions": tel.repartitions,
        "handoffs": tel.handoffs,
        "retransmissions": tel.retransmissions,
        "membership": dict(res.membership),
    }


def churn_sweep(solver, b) -> list:
    """Elastic+guarded vs static under the same physical crash load."""
    ng = solver.ngrids
    nranks = 2 * ng
    rows = []
    for frac in (0.0, 0.1, 0.25):
        ncrash = int(round(frac * nranks))
        churn = ChurnPlan.random(nranks, frac, 2e-3, seed=1) if ncrash else None
        res = simulate_distributed(
            solver,
            b,
            tmax=TMAX,
            criterion="criterion2",
            machine=_MACHINE,
            nthreads_total=nranks,
            nranks=nranks,
            elastic=_POLICY,
            churn=churn,
            guard=_GUARD,
            seed=3,
            max_events=MAX_EVENTS,
        )
        rows.append({"churn_fraction": frac, "mode": "elastic+guard", **_row(res)})
        # Static comparator: the same fraction of compute lost, but as
        # unrecoverable grid-process crashes on the non-elastic path.
        ncrash_grids = min(max(ncrash // 2, 1), ng - 1) if ncrash else 0
        static = simulate_distributed(
            solver,
            b,
            tmax=TMAX,
            criterion="criterion2",
            machine=_MACHINE,
            nthreads_total=nranks,
            seed=3,
            max_events=MAX_EVENTS,
            faults=FaultPlan(
                crashes=tuple(CrashFault(1 + i, 3) for i in range(ncrash_grids))
            )
            if ncrash_grids
            else None,
        )
        rows.append({"churn_fraction": frac, "mode": "static", **_row(static)})
    # Thin pool (one rank per grid): any crash leaves its grid with no
    # survivor, so recovery must go through a checkpoint handoff.
    from repro.distributed import ChurnEvent

    thin = simulate_distributed(
        solver,
        b,
        tmax=TMAX,
        criterion="criterion2",
        machine=_MACHINE,
        nthreads_total=ng,
        nranks=ng,
        elastic=_POLICY,
        churn=ChurnPlan(events=(ChurnEvent(1e-3, "crash", 1),)),
        guard=_GUARD,
        seed=3,
        max_events=MAX_EVENTS,
    )
    rows.append({"churn_fraction": 1.0 / ng, "mode": "thin+handoff", **_row(thin)})
    return rows


def scale_run(solver, b, nranks: int = 1024) -> dict:
    """Churn-free pool of ``nranks`` ranks: the event-loop stress test."""
    t0 = time.perf_counter()
    res = simulate_distributed(
        solver,
        b,
        tmax=10,
        machine=_MACHINE,
        nthreads_total=nranks,
        nranks=nranks,
        elastic=ElasticityPolicy(),
        seed=3,
        max_events=MAX_EVENTS,
    )
    elapsed = time.perf_counter() - t0
    return {
        "nranks": nranks,
        "bench_seconds": elapsed,
        "completed": bool(np.all(res.counts == 10)),
        "outcome": _outcome(res),
        "degraded": bool(res.degraded),
        "messages": int(res.messages),
        "corrections": int(res.counts.sum()),
    }


def identity_check(solver, b) -> dict:
    """Churn-free elastic vs plain: bitwise-equal iterates, same clock."""
    kw = dict(
        tmax=15,
        machine=_MACHINE,
        nthreads_total=4,
        seed=3,
        max_events=MAX_EVENTS,
    )
    plain = simulate_distributed(solver, b, **kw)
    el = simulate_distributed(solver, b, elastic=ElasticityPolicy(), **kw)
    return {
        "x_bitwise_equal": bool(np.array_equal(plain.x, el.x)),
        "wall_time_equal": bool(plain.wall_time == el.wall_time),
        "messages_equal": bool(plain.messages == el.messages),
        "counts_equal": bool(np.array_equal(plain.counts, el.counts)),
    }


def run_bench(full: bool = False) -> dict:
    solver, b, problem = _solver(full)
    return {
        "schema": SCHEMA,
        "commit": _commit(),
        "quick": not full,
        "seed": 3,
        "problem": problem,
        "policy": {
            "heartbeat_interval": _POLICY.heartbeat_interval,
            "suspect_timeout": _POLICY.suspect_timeout,
            "evict_timeout": _POLICY.evict_timeout,
        },
        "churn_sweep": churn_sweep(solver, b),
        "scale": scale_run(solver, b),
        "identity": identity_check(solver, b),
    }


def check(payload: dict) -> None:
    """The acceptance assertions; shared by pytest and standalone runs."""
    sweep = {(r["churn_fraction"], r["mode"]): r for r in payload["churn_sweep"]}
    # (a) elastic + guarded converges at >= 10% rank churn, degraded —
    # with the full detection/recovery chain visible in telemetry...
    for frac in (0.1, 0.25):
        el = sweep[(frac, "elastic+guard")]
        assert el["outcome"] == "ok", el
        assert el["degraded"], el
        assert el["rank_crashes"] >= 1
        assert el["member_evictions"] >= 1
        assert el["repartitions"] >= 1
    # ...while the static simulator stalls or diverges under the same
    # physical failure load.
    assert sweep[(0.1, "static")]["outcome"] in ("stalled", "diverged")
    # Churn-free elastic matches churn-free static: no degradation.
    assert not sweep[(0.0, "elastic+guard")]["degraded"]
    # The thin-pool row exercises the checkpoint handoff path.
    thin = next(r for r in payload["churn_sweep"] if r["mode"] == "thin+handoff")
    assert thin["outcome"] == "ok" and thin["degraded"] and thin["handoffs"] >= 1
    # (b) the 1024-rank churn-free simulation completes, fast.
    assert payload["scale"]["completed"]
    assert payload["scale"]["bench_seconds"] < 120.0
    # (c) churn-free elastic is bit-identical to the plain simulator.
    assert all(payload["identity"].values()), payload["identity"]


def digest(payload: dict) -> str:
    rows = [
        [
            f"{r['churn_fraction']:.0%}",
            r["mode"],
            r["outcome"],
            "yes" if r["degraded"] else "no",
            f"{r['rel_residual']:.2e}",
            r["member_evictions"],
            r["repartitions"],
            r["handoffs"],
        ]
        for r in payload["churn_sweep"]
    ]
    table = format_table(
        ["churn", "mode", "outcome", "degraded", "relres", "evict", "repart", "handoff"],
        rows,
        title=(
            f"Elastic churn sweep ({payload['problem']['set']}, criterion2, "
            f"tmax {TMAX}): elastic degrades, static stalls"
        ),
    )
    sc = payload["scale"]
    ident = "bit-identical" if all(payload["identity"].values()) else "DIVERGED"
    return (
        f"{table}\n\n"
        f"scale: {sc['nranks']} ranks churn-free in {sc['bench_seconds']:.2f}s "
        f"({sc['corrections']} corrections, {sc['messages']} messages)\n"
        f"identity: churn-free elastic vs plain — {ident}\n"
    )


def test_bench_churn(benchmark, results_dir):
    from repro.utils import env_float, env_int

    from _common import emit

    full = env_float("REPRO_SCALE", 0.25) >= 1.0 or env_int("REPRO_BENCH_FULL", 0) == 1
    payload = benchmark.pedantic(lambda: run_bench(full=full), iterations=1, rounds=1)
    check(payload)
    (results_dir / "BENCH_churn.json").write_text(json.dumps(payload, indent=2) + "\n")
    emit(results_dir, "bench_churn", digest(payload))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--full", action="store_true", help="27pt problem (slower)")
    ap.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_churn.json",
        metavar="PATH",
    )
    args = ap.parse_args(argv)
    payload = run_bench(full=args.full)
    check(payload)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(digest(payload))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
