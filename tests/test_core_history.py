"""Unit tests for repro.core.history."""

import numpy as np
import pytest

from repro.core import VectorHistory


class TestVectorHistory:
    def test_initial_state(self):
        h = VectorHistory(np.arange(4.0), depth=3)
        assert np.array_equal(h.get(0), np.arange(4.0))
        assert h.latest_instant == 0

    def test_push_and_get(self):
        h = VectorHistory(np.zeros(3), depth=3)
        h.push(np.ones(3), 1)
        h.push(2 * np.ones(3), 2)
        assert np.array_equal(h.get(1), np.ones(3))
        assert np.array_equal(h.get(2), 2 * np.ones(3))

    def test_eviction(self):
        h = VectorHistory(np.zeros(2), depth=2)
        h.push(np.ones(2), 1)
        h.push(2 * np.ones(2), 2)
        with pytest.raises(KeyError, match="evicted"):
            h.get(0)

    def test_future_read_rejected(self):
        h = VectorHistory(np.zeros(2), depth=2)
        with pytest.raises(KeyError):
            h.get(1)

    def test_non_consecutive_push_rejected(self):
        h = VectorHistory(np.zeros(2), depth=2)
        with pytest.raises(ValueError, match="consecutive"):
            h.push(np.ones(2), 3)

    def test_gather_mixes_instants(self):
        h = VectorHistory(np.zeros(4), depth=4)
        h.push(np.full(4, 1.0), 1)
        h.push(np.full(4, 2.0), 2)
        out = h.gather(np.array([0, 1, 2, 1]))
        assert np.array_equal(out, [0.0, 1.0, 2.0, 1.0])

    def test_gather_requires_full_length(self):
        h = VectorHistory(np.zeros(3), depth=2)
        with pytest.raises(ValueError):
            h.gather(np.array([0, 0]))

    def test_gather_evicted_raises(self):
        h = VectorHistory(np.zeros(2), depth=2)
        h.push(np.ones(2), 1)
        h.push(np.ones(2), 2)
        with pytest.raises(KeyError):
            h.gather(np.array([0, 2]))

    def test_get_returns_copy(self):
        h = VectorHistory(np.zeros(2), depth=2)
        v = h.get(0)
        v[:] = 9.0
        assert np.array_equal(h.get(0), np.zeros(2))

    def test_latest(self):
        h = VectorHistory(np.zeros(2), depth=3)
        h.push(np.full(2, 5.0), 1)
        assert np.array_equal(h.latest(), [5.0, 5.0])

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            VectorHistory(np.zeros(2), depth=0)

    def test_ring_wraparound_long_run(self):
        h = VectorHistory(np.zeros(1), depth=3)
        for t in range(1, 50):
            h.push(np.array([float(t)]), t)
            assert h.get(t)[0] == t
            if t >= 2:
                assert h.get(t - 2)[0] == t - 2
