"""Unit tests for the hard stencil extensions."""

import numpy as np
import pytest

from repro.amg import SetupOptions, classical_strength, setup_hierarchy
from repro.linalg import is_async_convergent
from repro.problems import (
    anisotropic_laplacian_3d,
    convection_diffusion_3d,
    random_rhs,
    shifted_laplacian_3d,
)
from repro.solvers import Multadd, MultiplicativeMultigrid


class TestAnisotropic:
    def test_isotropic_limit_is_7pt(self):
        from repro.problems import laplacian_7pt

        A = anisotropic_laplacian_3d(5, 1.0, 1.0, 1.0)
        assert abs(A - laplacian_7pt(5)).max() < 1e-14

    def test_spd(self):
        A = anisotropic_laplacian_3d(4, 1.0, 1.0, 1e-2)
        w = np.linalg.eigvalsh(A.toarray())
        assert w.min() > 0

    def test_strength_follows_anisotropy(self):
        # With eps_z tiny, z-couplings are weak: strength keeps only
        # x/y neighbours.
        n = 5
        A = anisotropic_laplacian_3d(n, 1.0, 1.0, 1e-3)
        S = classical_strength(A, theta=0.25)
        i = 2 * n * n + 2 * n + 2  # centre point
        strong = set(S.indices[S.indptr[i] : S.indptr[i + 1]])
        assert i + 1 not in strong and i - 1 not in strong  # z neighbours weak
        assert i + n in strong and i + n * n in strong

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            anisotropic_laplacian_3d(4, eps_z=0.0)

    def test_multigrid_converges_semicoarsened(self):
        A = anisotropic_laplacian_3d(8, 1.0, 1.0, 1e-2)
        h = setup_hierarchy(A, SetupOptions(aggressive_levels=0))
        s = MultiplicativeMultigrid(h, smoother="jacobi", weight=0.9)
        res = s.solve(random_rhs(A.shape[0], 0), tmax=30)
        assert res.final_relres < 1e-3


class TestConvectionDiffusion:
    def test_nonsymmetric(self):
        A = convection_diffusion_3d(5, peclet=5.0)
        assert abs(A - A.T).max() > 0.1

    def test_m_matrix_signs(self):
        A = convection_diffusion_3d(5, peclet=5.0).tocoo()
        off = A.data[A.row != A.col]
        assert np.all(off <= 1e-14)

    def test_peclet_zero_symmetric(self):
        A = convection_diffusion_3d(4, peclet=0.0)
        assert abs(A - A.T).max() < 1e-14

    def test_invalid_peclet(self):
        with pytest.raises(ValueError):
            convection_diffusion_3d(4, peclet=-1.0)

    def test_async_multadd_runs_nonsymmetric(self):
        # The asynchronous machinery never requires symmetry; Multadd
        # with the plain (minv) Lambda still converges at modest Peclet.
        from repro.core import run_async_engine

        A = convection_diffusion_3d(8, peclet=2.0)
        h = setup_hierarchy(A, SetupOptions(aggressive_levels=0))
        ma = Multadd(h, smoother="jacobi", weight=0.9, lambda_mode="minv")
        res = run_async_engine(ma, random_rhs(A.shape[0], 1), tmax=25, seed=0)
        assert res.rel_residual < 1e-2


class TestShifted:
    def test_indefinite_shift_rejected(self):
        with pytest.raises(ValueError, match="indefinite"):
            shifted_laplacian_3d(6, sigma=10.0)

    def test_valid_shift_spd(self):
        A = shifted_laplacian_3d(4, sigma=0.3)
        w = np.linalg.eigvalsh(A.toarray())
        assert w.min() > 0

    def test_shift_weakens_async_guarantee(self):
        # rho(|G|) grows with the shift: the Chazan-Miranker margin of
        # weighted Jacobi shrinks (and eventually vanishes).
        from repro.linalg import abs_iteration_matrix_rho

        A0 = shifted_laplacian_3d(6, sigma=0.0)
        A1 = shifted_laplacian_3d(6, sigma=0.2)
        assert abs_iteration_matrix_rho(A1, 0.9) > abs_iteration_matrix_rho(A0, 0.9)
