"""Unit tests for the ASCII plotting utilities."""

import pytest

from repro.utils import ascii_semilogy, ascii_timeline


class TestSemilogy:
    def test_basic_render(self):
        out = ascii_semilogy({"a": [1.0, 0.1, 0.01]}, width=20, height=6)
        assert "o=a" in out
        assert out.count("o") >= 3

    def test_title(self):
        out = ascii_semilogy({"a": [1.0, 0.5]}, title="hello")
        assert out.splitlines()[0] == "hello"

    def test_multiple_series_markers(self):
        out = ascii_semilogy({"a": [1.0, 0.1], "b": [1.0, 0.2]})
        assert "o=a" in out and "x=b" in out

    def test_skips_nonpositive(self):
        out = ascii_semilogy({"a": [1.0, -1.0, float("nan"), 0.1]})
        assert "o" in out

    def test_constant_series_handled(self):
        out = ascii_semilogy({"a": [1.0, 1.0, 1.0]})
        assert "o" in out

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_semilogy({})
        with pytest.raises(ValueError):
            ascii_semilogy({"a": [-1.0, float("nan")]})
        with pytest.raises(ValueError):
            ascii_semilogy({"a": [1.0]})


class TestTimeline:
    def test_rows_per_grid(self):
        out = ascii_timeline([(0, 0, 1), (1, 1, 2)], 2)
        lines = [l for l in out.splitlines() if l.startswith("grid")]
        assert len(lines) == 2

    def test_busy_marks(self):
        out = ascii_timeline([(0, 0.0, 1.0)], 1, width=10)
        assert "#" in out

    def test_grid_out_of_range(self):
        with pytest.raises(ValueError):
            ascii_timeline([(5, 0, 1)], 2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_timeline([], 2)

    def test_zero_span(self):
        out = ascii_timeline([(0, 1.0, 1.0)], 1)
        assert "grid  0" in out
