"""Tests for elastic membership, recovery, and the event-loop refactor.

Covers the :mod:`repro.distributed.elastic` membership protocol, the
:mod:`repro.distributed.events` queue/dedup structures, the
bit-identity contract of churn-free elastic runs, degradation
semantics under churn, and the resync/restart interaction property.
"""

import heapq

import numpy as np
import pytest

from repro.core.perfmodel import MachineParams
from repro.distributed import (
    ChurnEvent,
    ChurnPlan,
    DedupIndex,
    ElasticityPolicy,
    IndexedEventQueue,
    MembershipManager,
    NetworkModel,
    parse_churn_spec,
    simulate_distributed,
)
from repro.distributed.elastic import ACTIVE, DEAD, JOINING, LEFT, SUSPECT
from repro.observe import Metrics
from repro.observe.events import EVENT_KINDS, MEMBER, RETRY
from repro.resilience import CrashFault, FaultPlan, GuardPolicy
from repro.solvers import Multadd


@pytest.fixture(scope="module")
def multadd(hier_7pt_agg):
    return Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)


#: compute-bound machine so replicas stay fresh and runs converge fast
_MACHINE = MachineParams(flop_rate=2e8, jitter=0.1)


def _run(solver, b, **kw):
    kw.setdefault("machine", _MACHINE)
    kw.setdefault("nthreads_total", 4)
    kw.setdefault("tmax", 15)
    kw.setdefault("seed", 3)
    kw.setdefault("max_events", 120_000)
    return simulate_distributed(solver, b, **kw)


# ----------------------------------------------------------------------
# Event queue / dedup index
# ----------------------------------------------------------------------
class TestIndexedEventQueue:
    def test_pop_order_matches_tuple_heap(self):
        rng = np.random.default_rng(0)
        times = rng.uniform(0, 1, size=200)
        q = IndexedEventQueue()
        ref = []
        for i, t in enumerate(times):
            q.push(float(t), "e", i)
            heapq.heappush(ref, (float(t), i))
        got = [q.pop()[2] for _ in range(len(times))]
        expect = [heapq.heappop(ref)[1] for _ in range(len(times))]
        assert got == expect

    def test_equal_times_pop_in_push_order(self):
        q = IndexedEventQueue()
        for i in range(5):
            q.push(1.0, "e", i)
        assert [q.pop()[2] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_cancel_skips_event(self):
        q = IndexedEventQueue()
        q.push(1.0, "a", 0)
        h = q.push(0.5, "b", 1)
        assert q.cancel(h)
        assert len(q) == 1
        t, kind, proc, _ = q.pop()
        assert (kind, proc) == ("a", 0)

    def test_cancel_is_idempotent_and_o1(self):
        q = IndexedEventQueue()
        h = q.push(1.0, "a", 0)
        assert q.cancel(h)
        assert not q.cancel(h)
        assert q.cancel(None) is False
        assert len(q) == 0
        assert not q

    def test_pending_by_kind(self):
        q = IndexedEventQueue()
        q.push(1.0, "done", 0)
        q.push(2.0, "hb", -1)
        h = q.push(3.0, "done", 1)
        assert q.pending("done") == 2
        assert q.pending("hb") == 1
        assert q.pending() == 3
        q.cancel(h)
        assert q.pending("done") == 1
        q.pop()
        assert q.pending("done") == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedEventQueue().pop()


class TestDedupIndex:
    def test_first_delivery_once(self):
        d = DedupIndex(2)
        assert d.first_delivery(0, 7)
        assert not d.first_delivery(0, 7)
        assert d.first_delivery(1, 7)  # per destination

    def test_clear_rank_forgets(self):
        d = DedupIndex(2)
        d.first_delivery(0, 7)
        d.clear_rank(0)
        assert d.seen_count(0) == 0
        assert d.first_delivery(0, 7)


# ----------------------------------------------------------------------
# Churn plans and policy
# ----------------------------------------------------------------------
class TestChurnPlan:
    def test_random_is_deterministic(self):
        a = ChurnPlan.random(40, 0.25, 2.0, seed=5)
        b = ChurnPlan.random(40, 0.25, 2.0, seed=5)
        assert a == b
        assert len(a.events) == 10
        assert all(e.kind == "crash" for e in a.events)
        assert len({e.rank for e in a.events}) == 10  # distinct targets

    def test_random_other_seed_differs(self):
        a = ChurnPlan.random(40, 0.25, 2.0, seed=5)
        b = ChurnPlan.random(40, 0.25, 2.0, seed=6)
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(-1.0, "crash", 0)
        with pytest.raises(ValueError):
            ChurnEvent(0.0, "flood", 0)
        with pytest.raises(ValueError):
            ChurnEvent(0.0, "stall", 0, duration=0.0)
        with pytest.raises(ValueError):
            ChurnEvent(0.0, "crash", -1)
        with pytest.raises(ValueError):
            ChurnPlan.random(10, 1.5, 1.0)

    def test_parse_spec(self):
        plan = parse_churn_spec(
            "crash:3@0.5; stall:1@0.2,duration=0.3; join:@1.0; leave:2@0.8"
        )
        kinds = [e.kind for e in plan.events]
        assert kinds == ["stall", "crash", "leave", "join"]  # sorted by time
        assert plan.events[0].duration == pytest.approx(0.3)
        assert plan.events[3].rank == -1

    def test_parse_random_clause(self):
        plan = parse_churn_spec("random:0.2@1.0,nranks=20,seed=3")
        assert len(plan.events) == 4
        assert plan == parse_churn_spec("random:0.2@1.0,nranks=20,seed=3")

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_churn_spec("crash:3")  # missing @time
        with pytest.raises(ValueError):
            parse_churn_spec("meteor:1@0.5")
        with pytest.raises(ValueError):
            parse_churn_spec("random:0.2@1.0")  # missing nranks


class TestElasticityPolicy:
    def test_derived_timeouts(self):
        pol = ElasticityPolicy(heartbeat_interval=2e-3)
        assert pol.suspect_timeout == pytest.approx(6e-3)
        assert pol.evict_timeout == pytest.approx(1.2e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticityPolicy(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            ElasticityPolicy(suspect_timeout=5.0, evict_timeout=1.0)
        with pytest.raises(ValueError):
            ElasticityPolicy(min_ranks=0)
        with pytest.raises(ValueError):
            ElasticityPolicy(retry_jitter=-0.1)


# ----------------------------------------------------------------------
# MembershipManager protocol
# ----------------------------------------------------------------------
def _mm(nranks=4, ngrids=4, **pol):
    return MembershipManager(
        ngrids,
        nranks=nranks,
        work=np.array([10.0, 40.0, 30.0, 20.0])[:ngrids],
        policy=ElasticityPolicy(heartbeat_interval=1.0, **pol),
    )


class TestMembershipManager:
    def test_initial_assignment_covers_all_grids(self):
        mm = _mm(nranks=8)
        assert np.all(mm.staffed())
        assert mm.capacities(0.0).sum() == 8
        assert mm.believed_ranks() == 8

    def test_crash_is_silent_until_scanned(self):
        mm = _mm()
        g = int(mm.rank_grid[1])
        mm.apply_churn(ChurnEvent(0.5, "crash", 1), 0.5)
        assert not mm.alive[1]
        assert mm.rank_state[1] == ACTIVE  # belief unchanged: no omniscience
        assert mm.capacity(g, 0.5) == 0  # but capacity drops instantly

    def test_suspect_then_evict_timeline(self):
        mm = _mm()
        mm.scan(1.0)
        mm.apply_churn(ChurnEvent(1.5, "crash", 2), 1.5)
        assert not mm.scan(2.0)  # silent for 1.0 < suspect_timeout (3.0)
        assert mm.rank_state[2] == ACTIVE
        assert not mm.scan(4.5)  # silent 3.5 > suspect, < evict (6.0)
        assert mm.rank_state[2] == SUSPECT
        assert mm.scan(7.5)  # silent 6.5 > evict → membership change
        assert mm.rank_state[2] == DEAD
        assert mm.rank_grid[2] == -1

    def test_stall_then_recover(self):
        mm = _mm()
        mm.scan(1.0)
        g = int(mm.rank_grid[0])
        mm.apply_churn(ChurnEvent(1.5, "stall", 0, duration=4.0), 1.5)
        assert mm.capacity(g, 2.0) == 0  # stalled rank contributes nothing
        assert mm.next_stall_end(g, 2.0) == pytest.approx(5.5)
        mm.scan(4.5)
        assert mm.rank_state[0] == SUSPECT
        assert not mm.scan(6.0)  # beats again after the stall: recovery
        assert mm.rank_state[0] == ACTIVE
        assert mm.rank_grid[0] == g  # assignment kept across recovery

    def test_join_lifecycle(self):
        mm = _mm()
        mm.apply_churn(ChurnEvent(0.5, "join", -1), 0.5)
        assert mm.rank_state[4] == JOINING
        assert mm.believed_ranks() == 4  # not yet admitted
        assert mm.scan(1.0)
        assert mm.rank_state[4] == ACTIVE
        assert mm.believed_ranks() == 5

    def test_leave_is_announced(self):
        mm = _mm()
        changed = mm.apply_churn(ChurnEvent(0.5, "leave", 3), 0.5)
        assert changed
        assert mm.rank_state[3] == LEFT
        assert mm.believed_ranks() == 3

    def test_repartition_parks_and_hands_off(self):
        mm = _mm()  # one rank per grid
        mm.scan(1.0)
        mm.apply_churn(ChurnEvent(1.5, "crash", 1), 1.5)
        for t in (4.5, 7.5):
            mm.scan(t)
        teams, handoffs = mm.repartition(7.5)
        assert teams.sum() == 3
        assert teams[0] == 0  # smallest-work grid parked
        # grid 1 (largest work) is re-staffed by grid 0's old rank and
        # needs a checkpoint handoff; no survivor of its old team.
        assert teams[1] == 1
        assert handoffs == [1]
        assert not mm.staffed()[0]

    def test_repartition_moves_minimally(self):
        mm = _mm(nranks=8)
        before = mm.rank_grid.copy()
        teams, handoffs = mm.repartition(1.0)
        assert np.array_equal(mm.rank_grid, before)  # nothing changed
        assert handoffs == []

    def test_census(self):
        mm = _mm()
        mm.apply_churn(ChurnEvent(0.5, "leave", 3), 0.5)
        cen = mm.census()
        assert cen["initial_ranks"] == 4
        assert cen["active"] == 3
        assert cen["left"] == 1
        assert cen["physically_alive"] == 3

    def test_grid_down_routing(self):
        mm = _mm(nranks=0)
        mm.mark_grid_down(2)
        assert mm.grid_down[2]
        mm.mark_grid_up(2)
        assert not mm.grid_down[2]

    def test_retry_backoff_no_draw_without_jitter(self):
        mm = _mm()
        assert mm.retry_backoff_factor() == 1.0
        jm = _mm(retry_jitter=0.5)
        f = jm.retry_backoff_factor()
        assert 1.0 <= f <= 1.5


# ----------------------------------------------------------------------
# Bit-identity of churn-free elastic runs
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("strategy", ["global", "local"])
    def test_churn_free_elastic_equals_plain(self, multadd, b_7pt, strategy):
        plain = _run(multadd, b_7pt, strategy=strategy)
        el = _run(multadd, b_7pt, strategy=strategy, elastic=ElasticityPolicy())
        assert np.array_equal(plain.x, el.x)  # bitwise
        assert plain.wall_time == el.wall_time
        assert plain.messages == el.messages
        assert np.array_equal(plain.counts, el.counts)
        assert plain.rel_residual == el.rel_residual
        assert not el.degraded

    def test_membership_streams_never_touch_solver_rng(self, multadd, b_7pt):
        # Heartbeat jitter draws from a private stream: turning it on
        # must not perturb the solve (churn-free membership never
        # changes state regardless of jittered arrival times).
        plain = _run(multadd, b_7pt)
        el = _run(
            multadd,
            b_7pt,
            elastic=ElasticityPolicy(heartbeat_jitter=0.5, seed=123),
        )
        assert np.array_equal(plain.x, el.x)
        assert plain.wall_time == el.wall_time
        assert plain.messages == el.messages

    def test_identity_holds_under_guarded_message_faults(self, multadd, b_7pt):
        kw = dict(
            faults=FaultPlan(drop_probability=0.05, seed=11),
            guard=GuardPolicy(retransmit_timeout=1e-5, watchdog_timeout=1e-4),
        )
        plain = _run(multadd, b_7pt, **kw)
        el = _run(multadd, b_7pt, elastic=ElasticityPolicy(), **kw)
        assert np.array_equal(plain.x, el.x)
        assert plain.wall_time == el.wall_time
        assert plain.dropped == el.dropped
        assert plain.telemetry.retransmissions == el.telemetry.retransmissions


# ----------------------------------------------------------------------
# Degradation under churn
# ----------------------------------------------------------------------
class TestDegradation:
    GUARD = GuardPolicy(watchdog_timeout=1e-4, retransmit_timeout=1e-5)
    POLICY = ElasticityPolicy(heartbeat_interval=2e-4)

    def test_rank_crash_degrades_but_converges(self, multadd, b_7pt):
        ng = multadd.ngrids
        churn = ChurnPlan(events=(ChurnEvent(1e-3, "crash", 1),))
        res = _run(
            multadd,
            b_7pt,
            criterion="criterion2",
            nthreads_total=ng,
            nranks=ng,
            elastic=self.POLICY,
            churn=churn,
            guard=self.GUARD,
        )
        assert not res.diverged and not res.stalled
        assert res.degraded
        assert res.rel_residual < 1e-3
        assert res.membership["dead"] == 1
        assert res.membership["parked_grids"] == 1
        tel = res.telemetry
        assert tel.rank_crashes == 1
        assert tel.member_suspects >= 1
        assert tel.member_evictions == 1
        assert tel.repartitions >= 1
        assert tel.handoffs >= 1

    def test_unguarded_static_run_stalls_instead(self, multadd, b_7pt):
        res = _run(
            multadd,
            b_7pt,
            criterion="criterion2",
            faults=FaultPlan(crashes=(CrashFault(1, 3),)),
        )
        assert res.stalled and not res.degraded

    def test_stall_then_return_recovers_full_strength(self, multadd, b_7pt):
        ng = multadd.ngrids
        churn = ChurnPlan(events=(ChurnEvent(5e-4, "stall", 0, duration=2e-3),))
        res = _run(
            multadd,
            b_7pt,
            criterion="criterion2",
            nthreads_total=ng,
            nranks=ng,
            elastic=self.POLICY,
            churn=churn,
        )
        assert not res.diverged and not res.stalled
        assert res.rel_residual < 1e-3
        assert res.telemetry.rank_stalls == 1
        assert res.membership["physically_alive"] == ng
        assert np.all(res.counts >= 15)  # everyone finished after the pause

    def test_join_adds_capacity(self, multadd, b_7pt):
        ng = multadd.ngrids
        churn = ChurnPlan(events=(ChurnEvent(5e-4, "join", -1),))
        res = _run(
            multadd,
            b_7pt,
            nthreads_total=ng,
            nranks=ng,
            elastic=self.POLICY,
            churn=churn,
        )
        assert not res.diverged and not res.stalled
        assert res.telemetry.member_joins == 1
        assert res.membership["active"] == ng + 1

    def test_thousand_rank_run_completes(self, multadd, b_7pt):
        res = _run(
            multadd,
            b_7pt,
            tmax=10,
            nthreads_total=1024,
            nranks=1024,
            elastic=ElasticityPolicy(),
        )
        assert not res.diverged and not res.stalled and not res.degraded
        assert np.all(res.counts == 10)
        assert res.nranks == 1024


# ----------------------------------------------------------------------
# resync_replica × Guard.try_restart interaction
# ----------------------------------------------------------------------
class TestRestartResync:
    """A restarted process must re-enter from a consistent checkpoint.

    The property (over seeds): every replica read a grid performs —
    including the first one after a watchdog restart — observes a commit
    epoch that is exactly the number of corrections committed before the
    read.  A torn iterate would surface as an impossible epoch.
    """

    GUARD = GuardPolicy(watchdog_timeout=1e-4, retransmit_timeout=1e-5)

    @pytest.mark.parametrize("seed", range(5))
    def test_restart_reads_consistent_epoch(self, multadd, b_7pt, seed):
        from repro.observe import Tracer

        tracer = Tracer(clock="sim")
        res = _run(
            multadd,
            b_7pt,
            seed=seed,
            criterion="criterion2",
            faults=FaultPlan(crashes=(CrashFault(1, 3),), seed=seed),
            guard=self.GUARD,
            tracer=tracer,
        )
        assert res.telemetry.restarts >= 1
        assert not res.diverged and not res.stalled
        assert res.rel_residual < 1e-3
        events = tracer.events()
        restarts = [e for e in events if e.kind == "guard" and e.tag == "restart"]
        assert restarts
        commits = sorted(e.t for e in events if e.kind == "correct_end")
        reads = [e for e in events if e.kind == "read"]
        t_restart = restarts[0].t
        post = [e for e in reads if e.t >= t_restart]
        assert post, "restarted grid never read again"
        for e in reads:
            lo = sum(1 for tc in commits if tc < e.t)
            hi = sum(1 for tc in commits if tc <= e.t)
            assert lo <= e.a <= hi, (
                f"read at t={e.t} observed epoch {e.a}, but only "
                f"[{lo}, {hi}] commits had happened — torn state"
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_restart_budget_respected(self, multadd, b_7pt, seed):
        guard = GuardPolicy(
            watchdog_timeout=1e-4, retransmit_timeout=1e-5, max_restarts=1
        )
        res = _run(
            multadd,
            b_7pt,
            seed=seed,
            faults=FaultPlan(crashes=(CrashFault(0, 2), CrashFault(1, 4))),
            guard=guard,
        )
        assert res.telemetry.restarts <= 1


# ----------------------------------------------------------------------
# Telemetry and observability surface
# ----------------------------------------------------------------------
class TestTelemetryAccounting:
    def test_message_accounting_identity(self, multadd, b_7pt):
        res = _run(
            multadd,
            b_7pt,
            faults=FaultPlan(drop_probability=0.1, seed=2),
            guard=GuardPolicy(retransmit_timeout=1e-5, watchdog_timeout=1e-4),
        )
        tel = res.telemetry
        assert tel.messages_sent == tel.messages_delivered + tel.messages_dropped
        assert tel.messages_delivered == res.messages
        assert tel.messages_dropped == res.dropped
        assert sum(tel.delivery_attempts.values()) == tel.messages_delivered
        # retries happened and some messages needed more than one attempt
        assert tel.retransmissions > 0
        assert any(k > 1 for k in tel.delivery_attempts)

    def test_delivery_histogram_flattened_for_metrics(self, multadd, b_7pt):
        res = _run(
            multadd,
            b_7pt,
            faults=FaultPlan(drop_probability=0.1, seed=2),
            guard=GuardPolicy(retransmit_timeout=1e-5, watchdog_timeout=1e-4),
        )
        metrics = Metrics()
        res.telemetry.register_into(metrics)
        collected = metrics.collect()["providers"]["resilience"]
        assert collected["messages_sent"] == res.telemetry.messages_sent
        assert collected["delivery_attempts[1]"] > 0
        assert "delivery_attempts[2]" in collected
        assert isinstance(metrics.format(), str)

    def test_merge_folds_histograms(self):
        from repro.resilience import FaultTelemetry

        a, b = FaultTelemetry(), FaultTelemetry()
        a.record_delivery(1)
        a.record_delivery(2)
        b.record_delivery(2)
        b.bump("member_joins")
        a.merge(b)
        assert a.delivery_attempts == {1: 1, 2: 2}
        assert a.member_joins == 1
        with pytest.raises(ValueError):
            a.record_delivery(0)

    def test_member_retry_event_kinds_registered(self):
        assert MEMBER in EVENT_KINDS and RETRY in EVENT_KINDS

    def test_member_events_traced_and_exported(self, multadd, b_7pt):
        from repro.observe import Tracer, to_chrome_trace

        ng = multadd.ngrids
        tracer = Tracer(clock="sim")
        churn = ChurnPlan(events=(ChurnEvent(1e-3, "crash", 1),))
        res = _run(
            multadd,
            b_7pt,
            criterion="criterion2",
            nthreads_total=ng,
            nranks=ng,
            elastic=ElasticityPolicy(heartbeat_interval=2e-4),
            churn=churn,
            guard=GuardPolicy(watchdog_timeout=1e-4, retransmit_timeout=1e-5),
            tracer=tracer,
        )
        assert res.degraded
        events = tracer.events()
        tags = {e.tag for e in events if e.kind == MEMBER}
        assert {"crash", "suspect", "evict", "repartition", "handoff"} <= tags
        chrome = to_chrome_trace(events, clock="sim")
        names = {ev.get("name", "") for ev in chrome["traceEvents"]}
        assert any(name.startswith("member:") for name in names)
