"""Unit tests for the experiment harness (Table-I protocol)."""

import numpy as np
import pytest

from repro.experiments import (
    TABLE1_METHODS,
    MethodSpec,
    Table1Entry,
    build_solver,
    cycles_to_tolerance,
    default_hierarchy,
    mean_final_relres,
    table1_entry,
)
from repro.solvers import AFACx, Multadd, MultiplicativeMultigrid


class TestMethodSpec:
    def test_twelve_methods(self):
        assert len(TABLE1_METHODS) == 12

    def test_labels_match_paper(self):
        labels = [m.label for m in TABLE1_METHODS]
        assert labels[0] == "sync Mult"
        assert "r-Multadd, atomic-write, local-res" in labels

    def test_validation(self):
        with pytest.raises(ValueError):
            MethodSpec("x", "cg")
        with pytest.raises(ValueError):
            MethodSpec("x", "multadd", rescomp="psychic")
        with pytest.raises(ValueError):
            MethodSpec("x", "multadd", write="hope")

    def test_build_solver_types(self, hier_7pt_agg):
        assert isinstance(
            build_solver(TABLE1_METHODS[0], hier_7pt_agg, "jacobi", weight=0.9),
            MultiplicativeMultigrid,
        )
        assert isinstance(
            build_solver(TABLE1_METHODS[1], hier_7pt_agg, "jacobi", weight=0.9),
            Multadd,
        )
        assert isinstance(
            build_solver(TABLE1_METHODS[3], hier_7pt_agg, "jacobi", weight=0.9),
            AFACx,
        )


class TestMeanFinalRelres:
    def test_sync_deterministic(self, hier_7pt_agg, b_7pt):
        r1 = mean_final_relres(
            TABLE1_METHODS[0], hier_7pt_agg, b_7pt, "jacobi", tmax=10, weight=0.9
        )
        r2 = mean_final_relres(
            TABLE1_METHODS[0], hier_7pt_agg, b_7pt, "jacobi", tmax=10, weight=0.9
        )
        assert r1 == r2

    def test_async_averages_runs(self, hier_7pt_agg, b_7pt):
        r = mean_final_relres(
            TABLE1_METHODS[8],
            hier_7pt_agg,
            b_7pt,
            "jacobi",
            tmax=10,
            runs=2,
            weight=0.9,
            alpha=0.5,
        )
        assert np.isfinite(r) and r < 1.0


class TestCyclesToTolerance:
    def test_sync_mult(self, hier_7pt_agg, b_7pt):
        v, c = cycles_to_tolerance(
            TABLE1_METHODS[0],
            hier_7pt_agg,
            b_7pt,
            "jacobi",
            tol=1e-6,
            max_cycles=100,
            weight=0.9,
        )
        assert v is not None and v % 5 == 0
        assert c == v

    def test_async_multadd(self, hier_7pt_agg, b_7pt):
        v, c = cycles_to_tolerance(
            TABLE1_METHODS[8],
            hier_7pt_agg,
            b_7pt,
            "jacobi",
            tol=1e-6,
            max_cycles=100,
            runs=2,
            alpha=0.5,
            weight=0.9,
        )
        assert v is not None
        assert c >= v - 1e-9  # criterion-2 overshoot

    def test_divergent_returns_none(self, hier_7pt, b_7pt):
        # BPX-style divergence is not in the specs, so emulate with an
        # impossible tolerance within tiny max_cycles.
        v, c = cycles_to_tolerance(
            TABLE1_METHODS[0],
            hier_7pt,
            b_7pt,
            "jacobi",
            tol=1e-30,
            max_cycles=10,
            weight=0.9,
        )
        assert v is None and np.isnan(c)


class TestTable1Entry:
    def test_full_entry(self, hier_7pt_agg, b_7pt):
        e = table1_entry(
            TABLE1_METHODS[1],
            hier_7pt_agg,
            b_7pt,
            "jacobi",
            nthreads=68,
            tol=1e-6,
            runs=1,
            max_cycles=100,
            weight=0.9,
        )
        assert not e.diverged
        assert e.time > 0
        assert e.vcycles is not None

    def test_cells_dagger(self):
        e = Table1Entry("x", None, None, None)
        assert e.cells() == (None, None, None)

    def test_default_hierarchy_options(self, A_7pt):
        h = default_hierarchy(A_7pt, aggressive_levels=1)
        assert h.options.coarsen_type == "hmis"
        assert h.options.aggressive_levels == 1
