"""Unit tests for Gauss-Seidel and hybrid JGS smoothers."""

import numpy as np
import pytest

from repro.linalg import lower_triangle
from repro.smoothers import GaussSeidel, HybridJGS, make_smoother


class TestGaussSeidel:
    def test_m_is_lower_triangle(self, A_7pt):
        s = GaussSeidel(A_7pt)
        assert abs(s.M - lower_triangle(A_7pt)).max() == 0.0

    def test_minv_matches_dense_solve(self, A_7pt):
        s = GaussSeidel(A_7pt)
        r = np.random.default_rng(0).standard_normal(A_7pt.shape[0])
        ref = np.linalg.solve(lower_triangle(A_7pt).toarray(), r)
        assert np.allclose(s.minv(r), ref)

    def test_minv_t_matches_transpose_solve(self, A_7pt):
        s = GaussSeidel(A_7pt)
        r = np.random.default_rng(1).standard_normal(A_7pt.shape[0])
        ref = np.linalg.solve(lower_triangle(A_7pt).toarray().T, r)
        assert np.allclose(s.minv_t(r), ref)

    def test_sweep_matches_classic_gs(self, A_1d):
        # One GS sweep row by row equals x + M^{-1}(b - A x).
        n = A_1d.shape[0]
        b = np.ones(n)
        x0 = np.zeros(n)
        s = GaussSeidel(A_1d)
        x1 = s.sweep(x0, b)
        x_ref = x0.copy()
        Ad = A_1d.toarray()
        for i in range(n):
            x_ref[i] = (b[i] - Ad[i, :i] @ x_ref[:i] - Ad[i, i + 1 :] @ x_ref[i + 1 :]) / Ad[i, i]
        assert np.allclose(x1, x_ref)

    def test_converges_faster_than_jacobi(self, A_7pt, b_7pt):
        from repro.smoothers import WeightedJacobi

        gs = GaussSeidel(A_7pt)
        ja = WeightedJacobi(A_7pt, weight=0.9)
        xg = gs.sweep(np.zeros(A_7pt.shape[0]), b_7pt, nsweeps=10)
        xj = ja.sweep(np.zeros(A_7pt.shape[0]), b_7pt, nsweeps=10)
        rg = np.linalg.norm(b_7pt - A_7pt @ xg)
        rj = np.linalg.norm(b_7pt - A_7pt @ xj)
        assert rg < rj

    def test_symmetrized_apply_generic_path(self, A_7pt):
        s = GaussSeidel(A_7pt)
        r = np.random.default_rng(2).standard_normal(A_7pt.shape[0])
        M = s.M.toarray()
        ref = np.linalg.solve(
            M.T, (M + M.T - A_7pt.toarray()) @ np.linalg.solve(M, r)
        )
        assert np.allclose(s.symmetrized_apply(r), ref)


class TestHybridJGS:
    def test_m_block_structure(self, A_7pt):
        s = HybridJGS(A_7pt, nblocks=4)
        M = s.M.tocoo()
        block_of = np.empty(A_7pt.shape[0], dtype=int)
        for bid, (lo, hi) in enumerate(s.blocks):
            block_of[lo:hi] = bid
        assert np.all(block_of[M.row] == block_of[M.col])
        assert np.all(M.col <= M.row)

    def test_one_block_equals_gs(self, A_7pt):
        h = HybridJGS(A_7pt, nblocks=1)
        g = GaussSeidel(A_7pt)
        r = np.ones(A_7pt.shape[0])
        assert np.allclose(h.minv(r), g.minv(r))

    def test_n_blocks_equals_rows_is_jacobi(self, A_1d):
        from repro.smoothers import WeightedJacobi

        n = A_1d.shape[0]
        h = HybridJGS(A_1d, nblocks=n)
        j = WeightedJacobi(A_1d, weight=1.0)
        r = np.random.default_rng(3).standard_normal(n)
        assert np.allclose(h.minv(r), j.minv(r))

    def test_sweep_reduces_residual(self, A_7pt, b_7pt):
        s = HybridJGS(A_7pt, nblocks=8)
        x = s.sweep(np.zeros(A_7pt.shape[0]), b_7pt, nsweeps=10)
        assert np.linalg.norm(b_7pt - A_7pt @ x) < np.linalg.norm(b_7pt)

    def test_block_diag_solve_independence(self, A_7pt):
        # Each block solve only uses data within the block: perturbing
        # r outside a block must not change that block's output.
        s = HybridJGS(A_7pt, nblocks=4)
        r = np.ones(A_7pt.shape[0])
        y1 = s.minv(r)
        r2 = r.copy()
        lo, hi = s.blocks[2]
        r2[:lo] += 5.0
        y2 = s.minv(r2)
        assert np.allclose(y1[lo:hi], y2[lo:hi])

    def test_invalid_nblocks(self, A_7pt):
        with pytest.raises(ValueError):
            HybridJGS(A_7pt, nblocks=0)

    def test_registry(self, A_7pt):
        s = make_smoother("hybrid_jgs", A_7pt, nblocks=3)
        assert isinstance(s, HybridJGS)
        assert s.nblocks == 3

    def test_minv_flops_scales_with_m(self, A_7pt):
        s = HybridJGS(A_7pt, nblocks=4)
        assert s.minv_flops() == pytest.approx(2.0 * s.M.nnz)
