"""Property-based tests for the asynchronous core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import ScheduleParams, StalenessSchedule, VectorHistory
from repro.core.criteria import Criterion1, Criterion2


class TestScheduleProperties:
    @given(
        st.integers(1, 10),
        st.floats(0.05, 1.0),
        st.integers(0, 10),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_reads_always_admissible(self, ngrids, alpha, delta, seed):
        params = ScheduleParams(alpha=alpha, delta=delta, seed=seed)
        s = StalenessSchedule(ngrids, params)
        last = np.zeros(ngrids, dtype=int)
        for t in range(1, 40):
            for k in range(ngrids):
                z = s.read_instant(k, t)
                assert max(last[k], t - delta, 0) <= z <= t
                last[k] = max(last[k], z)

    @given(st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_run_terminates(self, ngrids, seed):
        params = ScheduleParams(alpha=0.2, updates_per_grid=5, seed=seed)
        s = StalenessSchedule(ngrids, params)
        for t in range(10000):
            for k in s.active_set(t):
                s.record_update(int(k))
            if s.all_done:
                break
        assert s.all_done

    @given(st.integers(2, 8), st.integers(0, 2**31 - 1), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_componentwise_window(self, ngrids, seed, n):
        params = ScheduleParams(alpha=0.5, delta=4, seed=seed)
        s = StalenessSchedule(ngrids, params)
        for t in range(1, 20):
            z = s.read_instants(0, t, n)
            assert z.min() >= max(0, t - 4)
            assert z.max() <= t


class TestHistoryProperties:
    @given(st.integers(1, 6), st.lists(st.integers(0, 100), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_reads_within_depth_always_correct(self, depth, values):
        h = VectorHistory(np.array([0.0]), depth=depth)
        stored = {0: 0.0}
        for t, v in enumerate(values, start=1):
            h.push(np.array([float(v)]), t)
            stored[t] = float(v)
            # All instants within the retention window read back exactly.
            for past in range(max(0, t - depth + 1), t + 1):
                assert h.get(past)[0] == stored[past]


class TestCriteriaProperties:
    @given(st.integers(1, 6), st.integers(1, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_criterion1_stops_exactly(self, ngrids, tmax, seed):
        c = Criterion1(ngrids, tmax)
        rng = np.random.default_rng(seed)
        while not c.all_done():
            k = int(rng.integers(ngrids))
            if not c.grid_done(k):
                c.record(k)
        assert np.all(c.counts == tmax)

    @given(st.integers(1, 6), st.integers(1, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_criterion2_minimum_reached(self, ngrids, tmax, seed):
        c = Criterion2(ngrids, tmax)
        rng = np.random.default_rng(seed)
        guard = 0
        while not c.all_done() and guard < 100000:
            k = int(rng.integers(ngrids))
            c.record(k)
            guard += 1
        assert np.all(c.counts >= tmax)
