"""Unit tests for repro.problems.fem.assembly.

The load-bearing checks are the patch tests: P1 elements must reproduce
linear fields exactly, so the stiffness matrix must annihilate linear
functions in the interior (Laplace) and rigid-body modes (elasticity).
"""

import numpy as np
import pytest

from repro.problems.fem.assembly import (
    assemble_scalar_stiffness,
    assemble_vector_stiffness,
    eliminate_dirichlet,
    p1_gradients,
)
from repro.problems.fem.mesh import beam_mesh, cube_mesh


class TestP1Gradients:
    def test_partition_of_unity(self):
        m = cube_mesh(2)
        grads, _ = p1_gradients(m)
        # Gradients of the four barycentric coords sum to zero.
        assert np.allclose(grads.sum(axis=1), 0.0)

    def test_linear_reproduction(self):
        m = cube_mesh(2)
        grads, _ = p1_gradients(m)
        # For u(x) = a.x, nodal interpolation is exact: the element
        # gradient sum_a u(p_a) grad_a must equal a.
        a = np.array([1.0, -2.0, 0.5])
        u = m.nodes @ a
        per_elem = np.einsum("ea,eax->ex", u[m.tets], grads)
        assert np.allclose(per_elem, a)

    def test_volumes_positive(self):
        m = cube_mesh(3)
        _, vols = p1_gradients(m)
        assert np.all(vols > 0)


class TestScalarStiffness:
    def test_symmetry(self):
        m = cube_mesh(3)
        A = assemble_scalar_stiffness(m)
        assert abs(A - A.T).max() < 1e-13

    def test_annihilates_constants(self):
        m = cube_mesh(3)
        A = assemble_scalar_stiffness(m)
        assert np.abs(A @ np.ones(m.n_nodes)).max() < 1e-12

    def test_patch_test_linear(self):
        # Full stiffness applied to a linear field is zero at interior
        # nodes (Galerkin orthogonality for P1-exact fields).
        m = cube_mesh(3)
        A = assemble_scalar_stiffness(m)
        u = m.nodes @ np.array([1.0, 2.0, 3.0])
        res = A @ u
        assert np.abs(res[m.interior_nodes()]).max() < 1e-12

    def test_spd_after_elimination(self):
        m = cube_mesh(3)
        A_full = assemble_scalar_stiffness(m)
        A, _ = eliminate_dirichlet(A_full, m.boundary_nodes)
        w = np.linalg.eigvalsh(A.toarray())
        assert w.min() > 0

    def test_kappa_scales(self):
        m = cube_mesh(2)
        A1 = assemble_scalar_stiffness(m, kappa=1.0)
        A2 = assemble_scalar_stiffness(m, kappa=2.0)
        assert abs(A2 - 2 * A1).max() < 1e-13

    def test_per_element_kappa(self):
        m = cube_mesh(2)
        kap = np.ones(m.n_tets)
        A1 = assemble_scalar_stiffness(m, kappa=kap)
        A2 = assemble_scalar_stiffness(m, kappa=1.0)
        assert abs(A1 - A2).max() == 0.0


class TestVectorStiffness:
    def test_symmetry(self):
        m = beam_mesh(3, 2, 2)
        A = assemble_vector_stiffness(m)
        assert abs(A - A.T).max() < 1e-12

    def test_annihilates_translations(self):
        m = beam_mesh(3, 2, 2)
        A = assemble_vector_stiffness(m)
        for c in range(3):
            u = np.zeros(3 * m.n_nodes)
            u[c::3] = 1.0
            assert np.abs(A @ u).max() < 1e-11

    def test_annihilates_rotations(self):
        # Infinitesimal rigid rotations are in the elasticity kernel.
        m = beam_mesh(3, 2, 2)
        A = assemble_vector_stiffness(m)
        x = m.nodes
        rot = np.zeros((m.n_nodes, 3))
        rot[:, 0] = -x[:, 1]
        rot[:, 1] = x[:, 0]  # rotation about z
        u = rot.ravel()
        assert np.abs(A @ u).max() < 1e-10

    def test_spd_after_clamping(self):
        m = beam_mesh(3, 2, 2)
        A_full = assemble_vector_stiffness(m)
        dofs = (3 * m.boundary_nodes[:, None] + np.arange(3)).ravel()
        A, _ = eliminate_dirichlet(A_full, dofs)
        w = np.linalg.eigvalsh(A.toarray())
        assert w.min() > 0

    def test_bad_poisson_raises(self):
        m = beam_mesh(2, 2, 2)
        with pytest.raises(ValueError, match="Poisson"):
            assemble_vector_stiffness(m, poisson=0.5)

    def test_stiffer_material_stiffer_matrix(self):
        m = beam_mesh(3, 2, 2)
        A1 = assemble_vector_stiffness(m, youngs=1.0)
        A10 = assemble_vector_stiffness(m, youngs=10.0)
        assert abs(A10 - 10 * A1).max() < 1e-10


class TestEliminateDirichlet:
    def test_free_indices(self):
        m = cube_mesh(2)
        A_full = assemble_scalar_stiffness(m)
        A, free = eliminate_dirichlet(A_full, m.boundary_nodes)
        assert A.shape[0] == free.size == m.interior_nodes().size
        assert not np.intersect1d(free, m.boundary_nodes).size

    def test_out_of_range_raises(self):
        m = cube_mesh(2)
        A_full = assemble_scalar_stiffness(m)
        with pytest.raises(ValueError):
            eliminate_dirichlet(A_full, np.array([m.n_nodes + 5]))

    def test_all_constrained_raises(self):
        m = cube_mesh(2)
        A_full = assemble_scalar_stiffness(m)
        with pytest.raises(ValueError):
            eliminate_dirichlet(A_full, np.arange(m.n_nodes))


class TestManufacturedSolution:
    def test_poisson_convergence(self):
        # -lap u = 3 pi^2 sin(pi x)sin(pi y)sin(pi z) on the unit cube;
        # FEM solution must approach the exact one as the mesh refines.
        errors = []
        for n in (4, 8):
            m = cube_mesh(n)
            A_full = assemble_scalar_stiffness(m)
            # P1 load vector via mass-lumped quadrature (exact enough
            # for a convergence *ratio* check).
            f = (
                3
                * np.pi**2
                * np.sin(np.pi * m.nodes[:, 0])
                * np.sin(np.pi * m.nodes[:, 1])
                * np.sin(np.pi * m.nodes[:, 2])
            )
            vols = m.volumes()
            lump = np.zeros(m.n_nodes)
            np.add.at(lump, m.tets.ravel(), np.repeat(vols / 4.0, 4))
            rhs = lump * f
            A, free = eliminate_dirichlet(A_full, m.boundary_nodes)
            u = np.zeros(m.n_nodes)
            u[free] = np.linalg.solve(A.toarray(), rhs[free])
            exact = (
                np.sin(np.pi * m.nodes[:, 0])
                * np.sin(np.pi * m.nodes[:, 1])
                * np.sin(np.pi * m.nodes[:, 2])
            )
            errors.append(np.abs(u - exact).max())
        assert errors[1] < 0.5 * errors[0]  # roughly O(h^2) -> 4x
