"""Unit tests for unknown-based systems AMG (num_functions > 1)."""

import numpy as np
import pytest

from repro.amg import SetupOptions, setup_hierarchy
from repro.amg.hierarchy import _filter_cross_function
from repro.linalg import as_csr
from repro.problems import random_rhs
from repro.problems.fem import elasticity_cantilever
from repro.solvers import MultiplicativeMultigrid


@pytest.fixture(scope="module")
def A_beam():
    return elasticity_cantilever(6, 6, 6, length=2.0)


class TestFilterCrossFunction:
    def test_only_same_function_entries_survive(self, A_beam):
        n = A_beam.shape[0]
        functions = np.arange(n) % 3
        F = _filter_cross_function(A_beam, functions)
        coo = F.tocoo()
        assert np.all(functions[coo.row] == functions[coo.col])

    def test_diagonal_preserved(self, A_beam):
        functions = np.arange(A_beam.shape[0]) % 3
        F = _filter_cross_function(A_beam, functions)
        assert np.allclose(F.diagonal(), A_beam.diagonal())

    def test_scalar_identity(self, A_beam):
        functions = np.zeros(A_beam.shape[0], dtype=np.int64)
        F = _filter_cross_function(A_beam, functions)
        assert (F != as_csr(A_beam)).nnz == 0


class TestSystemsSetup:
    def test_function_map_propagates(self, A_beam):
        h = setup_hierarchy(
            A_beam,
            SetupOptions(aggressive_levels=0, strength_norm="abs", num_functions=3),
        )
        for lv in h.levels:
            assert lv.functions is not None
            assert lv.functions.shape == (lv.n,)
        # The coarse function map keeps all three unknowns represented.
        assert set(np.unique(h.levels[1].functions)) == {0, 1, 2}

    def test_interpolation_block_structure(self, A_beam):
        # Unknown-based P never couples different unknowns.
        h = setup_hierarchy(
            A_beam,
            SetupOptions(aggressive_levels=0, strength_norm="abs", num_functions=3),
        )
        lv = h.levels[0]
        coo = lv.P.tocoo()
        fine_f = lv.functions
        coarse_f = h.levels[1].functions
        assert np.all(fine_f[coo.row] == coarse_f[coo.col])

    def test_explicit_functions_override(self, A_beam):
        funcs = np.arange(A_beam.shape[0]) % 3
        h = setup_hierarchy(
            A_beam,
            SetupOptions(aggressive_levels=0, strength_norm="abs"),
            functions=funcs,
        )
        assert h.levels[0].functions is not None

    def test_wrong_length_functions_raise(self, A_beam):
        with pytest.raises(ValueError, match="one unknown id per dof"):
            setup_hierarchy(A_beam, SetupOptions(), functions=np.array([0, 1]))

    def test_scalar_problems_unaffected(self, A_7pt):
        h1 = setup_hierarchy(A_7pt, SetupOptions(aggressive_levels=0, seed=3))
        h2 = setup_hierarchy(
            A_7pt, SetupOptions(aggressive_levels=0, seed=3, num_functions=1)
        )
        assert [lv.n for lv in h1.levels] == [lv.n for lv in h2.levels]


class TestSystemsConvergence:
    def test_unknown_based_beats_scalar_on_elasticity(self, A_beam):
        b = random_rhs(A_beam.shape[0], seed=0)
        rels = {}
        for nf in (1, 3):
            h = setup_hierarchy(
                A_beam,
                SetupOptions(
                    aggressive_levels=0, strength_norm="abs", num_functions=nf
                ),
            )
            m = MultiplicativeMultigrid(h, smoother="jacobi", weight=0.5)
            rels[nf] = m.solve(b, tmax=60).final_relres
        assert rels[3] < rels[1]

    def test_aggressive_with_systems_stays_stable(self, A_beam):
        b = random_rhs(A_beam.shape[0], seed=1)
        h = setup_hierarchy(
            A_beam,
            SetupOptions(aggressive_levels=2, strength_norm="abs", num_functions=3),
        )
        m = MultiplicativeMultigrid(h, smoother="jacobi", weight=0.5)
        res = m.solve(b, tmax=40)
        assert not res.diverged
