"""Unit tests for repro.utils."""

import pytest

from repro.utils import (
    axpy_flops,
    dot_flops,
    env_float,
    env_int,
    format_table,
    scaled_sizes,
    spawn_seeds,
    spmv_flops,
)


class TestEnv:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_X", raising=False)
        assert env_float("REPRO_X", 1.5) == 1.5
        assert env_int("REPRO_X", 3) == 3

    def test_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "2.5")
        assert env_float("REPRO_X", 0.0) == 2.5
        monkeypatch.setenv("REPRO_X", "7")
        assert env_int("REPRO_X", 0) == 7

    def test_bad_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "abc")
        with pytest.raises(ValueError):
            env_float("REPRO_X", 0.0)
        with pytest.raises(ValueError):
            env_int("REPRO_X", 0)

    def test_empty_treated_as_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "")
        assert env_int("REPRO_X", 4) == 4


class TestScaledSizes:
    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1.0")
        assert scaled_sizes([40, 60, 80]) == [40, 60, 80]

    def test_dedup_after_rounding(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        out = scaled_sizes([40, 50, 60], minimum=4)
        assert len(out) == len(set(out))

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        out = scaled_sizes([40], minimum=6)
        assert out == [6]

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            scaled_sizes([10])


class TestSeeds:
    def test_count(self):
        assert len(spawn_seeds(0, 5)) == 5

    def test_deterministic(self):
        assert spawn_seeds(42, 3) == spawn_seeds(42, 3)

    def test_independent(self):
        s = spawn_seeds(0, 100)
        assert len(set(s)) == 100

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "b"], [[1, 2.5], [3, None]])
        assert "a" in out and "b" in out
        assert "+" in out  # dagger for divergence

    def test_title(self):
        out = format_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_nan_as_dagger(self):
        out = format_table(["x"], [[float("nan")]])
        assert "+" in out

    def test_scientific_for_small(self):
        out = format_table(["x"], [[1.5e-7]])
        assert "e-07" in out


class TestFlops:
    def test_values(self):
        assert spmv_flops(100) == 200.0
        assert axpy_flops(10) == 20.0
        assert dot_flops(10) == 20.0
