"""Smoke tests: every shipped example must run end to end.

Examples are loaded as modules and their ``main()`` run with a small
size argument, so breakage in the public API surfaces here.
"""

import importlib.util
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def _run_example(name: str, argv: list) -> None:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    old = sys.argv
    sys.argv = [str(path)] + argv
    try:
        mod.main()
    finally:
        sys.argv = old


class TestExamples:
    def test_quickstart(self, capsys):
        _run_example("quickstart", ["8"])
        out = capsys.readouterr().out
        assert "async Multadd" in out

    def test_async_model_study(self, capsys):
        _run_example("async_model_study", ["8"])
        out = capsys.readouterr().out
        assert "semi-async" in out
        assert "full-async" in out

    def test_elasticity_beam(self, capsys):
        _run_example("elasticity_beam", ["6"])
        out = capsys.readouterr().out
        assert "Elasticity" in out

    def test_smoother_shootout(self, capsys):
        _run_example("smoother_shootout", ["8"])
        out = capsys.readouterr().out
        assert "async GS" in out
        assert "Chebyshev" in out

    def test_scaling_study(self, capsys):
        _run_example("scaling_study", ["7pt", "8"])
        out = capsys.readouterr().out
        assert "modeled wall-clock" in out or "failed to converge" in out

    def test_distributed_latency(self, capsys):
        _run_example("distributed_latency", ["8"])
        out = capsys.readouterr().out
        assert "distributed-latency study" in out

    def test_residual_vs_time(self, capsys):
        _run_example("residual_vs_time", ["8"])
        out = capsys.readouterr().out
        assert "threaded local-res" in out
        assert "per-grid compute intervals" in out
