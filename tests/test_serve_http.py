"""Tests for the serve HTTP front-end: /metrics, /healthz, /stats,
/submit, the OpenMetrics rendering, and the stalled-collect 503."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.observe import Metrics, parse_openmetrics
from repro.problems import build_problem
from repro.serve import ServeConfig, ServeHTTPServer, SolveServer, metrics_to_openmetrics


def get(port, path, timeout=10.0):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as resp:
        return resp.status, resp.read().decode("utf-8")


def post(port, path, payload, timeout=60.0):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


@pytest.fixture()
def served():
    server = SolveServer(ServeConfig(workers=2, tick_s=0.005)).start()
    p = build_problem("5pt", 10)
    server.register_operator(
        "poisson", p.A, solver_kwargs={"weight": p.jacobi_weight}
    )
    http = ServeHTTPServer(server, port=0).start()
    try:
        yield server, http
    finally:
        http.stop()
        server.stop()


class TestOpenMetricsRendering:
    def test_snapshot_parses_and_round_trips(self):
        m = Metrics()
        m.counter("serve.jobs.ok").inc(3)
        m.gauge("serve.queue_depth").set(2.0)
        m.histogram("serve.latency_s.t", (0.1, 1.0)).observe(0.05)
        m.histogram("serve.latency_s.t", (0.1, 1.0)).observe(0.5)
        text = metrics_to_openmetrics(m)
        assert text.endswith("# EOF\n")
        parsed = parse_openmetrics(text)
        assert parsed[("serve_jobs_ok", ())] == 3.0
        assert parsed[("serve_queue_depth", ())] == 2.0
        assert parsed[("serve_latency_s_t_count", ())] == 2.0
        assert parsed[("serve_latency_s_t_bucket", (("le", "0.1"),))] == 1.0
        assert parsed[("serve_latency_s_t_bucket", (("le", "+Inf"),))] == 2.0

    def test_provider_values_included(self):
        m = Metrics()
        m.register_provider("pool", lambda: {"alive": 4.0})
        parsed = parse_openmetrics(metrics_to_openmetrics(m))
        assert parsed[("pool_alive", ())] == 4.0


class TestEndpoints:
    def test_healthz(self, served):
        _, http = served
        status, body = get(http.port, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["workers_alive"] == 2

    def test_submit_then_metrics_and_stats(self, served):
        server, http = served
        status, result = post(
            http.port,
            "/submit",
            {"tenant": "acme", "operator": "poisson", "rhs_seed": 1},
        )
        assert status == 200
        assert result["status"] == "ok"
        assert result["rel_residual"] <= 1e-8
        assert result["deadline_met"] is True

        status, body = get(http.port, "/metrics")
        assert status == 200
        parsed = parse_openmetrics(body)
        assert parsed[("serve_jobs_ok_acme", ())] == 1.0
        assert ("setupcache_hits", ()) in parsed
        assert ("breaker_closed", ()) in parsed

        status, body = get(http.port, "/stats")
        stats = json.loads(body)
        assert status == 200
        assert stats["metrics"]["serve.jobs.ok"] == 1

    def test_submit_explicit_rhs_and_unknown_operator(self, served):
        server, http = served
        n = server.operator("poisson").n
        status, result = post(
            http.port,
            "/submit",
            {"tenant": "acme", "operator": "poisson", "b": [1.0] * n},
        )
        assert status == 200 and result["status"] == "ok"
        with pytest.raises(urllib.error.HTTPError) as err:
            post(http.port, "/submit", {"tenant": "acme", "operator": "nope"})
        assert err.value.code == 400

    def test_missing_fields_is_400_not_500(self, served):
        _, http = served
        with pytest.raises(urllib.error.HTTPError) as err:
            post(http.port, "/submit", {"operator": "poisson"})
        assert err.value.code == 400

    def test_unknown_path_404(self, served):
        _, http = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(http.port, "/nope")
        assert err.value.code == 404


class TestStalledCollect:
    def test_stalled_provider_yields_503_not_hang(self):
        server = SolveServer(ServeConfig(workers=1))
        release = threading.Event()

        def wedged():
            release.wait(timeout=30.0)
            return {"late": 1.0}

        server.metrics.register_provider("wedged", wedged)
        http = ServeHTTPServer(server, port=0, collect_timeout_s=0.2).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(http.port, "/metrics")
            assert err.value.code == 503
            assert b"stalled" in err.value.read()
            # Unwedge: the next scrape serves normally.
            release.set()
            status, body = get(http.port, "/metrics")
            assert status == 200
            assert ("wedged_late", ()) in parse_openmetrics(body)
        finally:
            http.stop()
