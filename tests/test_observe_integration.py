"""Backend integration tests for repro.observe.

Covers the trace-determinism satellite (engine fixed-seed streams,
threaded merge consistency), the analyzer's model-conformance bridge,
TraceSummary attachment on all three result dataclasses, and a CLI
smoke of ``repro trace run/report/export``.
"""

import json

import pytest

from repro.core.engine import run_async_engine
from repro.core.threaded import run_threaded
from repro.distributed import simulate_distributed
from repro.observe import TraceAnalyzer, Tracer, read_events_jsonl
from repro.solvers import Multadd


@pytest.fixture(scope="module")
def solver(hier_7pt_agg):
    return Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)


def engine_events(solver, b, **kw):
    tracer = Tracer(clock="steps")
    res = run_async_engine(solver, b, tmax=6, seed=3, tracer=tracer, **kw)
    return res, tracer


class TestEngineTracing:
    def test_fixed_seed_streams_identical(self, solver, b_7pt):
        _, t1 = engine_events(solver, b_7pt)
        _, t2 = engine_events(solver, b_7pt)
        e1, e2 = t1.events(), t2.events()
        # The algorithmic stream is bit-identical; per-kernel timing
        # events carry measured wall seconds (field `a`), so they are
        # compared modulo the measured duration.
        algo1 = [e for e in e1 if e.kind != "kernel"]
        algo2 = [e for e in e2 if e.kind != "kernel"]
        assert algo1 == algo2
        assert len(algo1) > 0
        k1 = [(e.t, e.grid, e.b, e.tag) for e in e1 if e.kind == "kernel"]
        k2 = [(e.t, e.grid, e.b, e.tag) for e in e2 if e.kind == "kernel"]
        assert k1 == k2
        assert len(k1) > 0

    def test_counts_match_result(self, solver, b_7pt):
        res, tracer = engine_events(solver, b_7pt)
        ends = {}
        for e in tracer.events():
            if e.kind == "correct_end":
                ends[e.grid] = ends.get(e.grid, 0) + 1
        assert ends == {k: c for k, c in enumerate(res.counts) if c}

    def test_residual_events_match_trace(self, solver, b_7pt):
        tracer = Tracer(clock="steps")
        res = run_async_engine(
            solver, b_7pt, tmax=6, seed=3, track_trace=True, tracer=tracer
        )
        rel = [e.a for e in tracer.events() if e.kind == "residual"]
        assert rel == list(res.residual_trace)

    def test_summary_attached_and_optional(self, solver, b_7pt):
        res, tracer = engine_events(solver, b_7pt)
        assert res.trace_summary is not None
        assert res.trace_summary.clock == "steps"
        assert res.trace_summary.corrections == sum(res.counts)
        bare = run_async_engine(solver, b_7pt, tmax=4, seed=3)
        assert bare.trace_summary is None

    def test_staleness_is_bounded_by_epochs(self, solver, b_7pt):
        res, tracer = engine_events(solver, b_7pt)
        total = sum(res.counts)
        for e in tracer.events():
            if e.kind == "correct_end":
                assert -1.0 <= e.b <= total


class TestThreadedTracing:
    @pytest.fixture(scope="class")
    def run(self, solver, b_7pt):
        tracer = Tracer(clock="s")
        res = run_threaded(solver, b_7pt, tmax=10, write="lock", tracer=tracer)
        return res, tracer

    def test_summary_attached(self, run):
        res, tracer = run
        assert res.trace_summary is not None
        assert res.trace_summary.clock == "s"
        assert res.trace_summary.corrections == sum(res.counts)

    def test_merged_stream_happens_before(self, run):
        """Per grid, the merged stream alternates begin/end and carries
        monotone non-decreasing timestamps — the per-worker buffers
        merge into a consistent happens-before order."""
        res, tracer = run
        open_correction = {}
        last_t = {}
        ends = {}
        for e in tracer.events():
            if e.kind not in ("correct_begin", "correct_end"):
                continue
            assert e.t >= last_t.get(e.grid, 0.0)
            last_t[e.grid] = e.t
            if e.kind == "correct_begin":
                assert not open_correction.get(e.grid, False)
                open_correction[e.grid] = True
            else:
                assert open_correction.get(e.grid, False)
                open_correction[e.grid] = False
                ends[e.grid] = ends.get(e.grid, 0) + 1
        assert not any(open_correction.values())
        assert ends == {k: c for k, c in enumerate(res.counts) if c}

    def test_no_monotone_read_violations(self, run):
        _, tracer = run
        an = TraceAnalyzer(tracer.events(), {"clock": "s"})
        assert an.monotone_violations() == 0

    def test_lock_waits_recorded(self, run):
        _, tracer = run
        writes = [e for e in tracer.events() if e.kind == "write"]
        assert writes
        assert all(e.a >= 0.0 for e in writes)

    def test_global_residual_from_monitor(self, solver, b_7pt):
        tracer = Tracer(clock="s")
        run_threaded(
            solver, b_7pt, tmax=10, monitor_interval=0.02, tracer=tracer
        )
        globals_ = [
            e for e in tracer.events() if e.kind == "residual" and e.tag == "global"
        ]
        assert globals_
        assert all(e.worker == "monitor" for e in globals_)


class TestDistributedTracing:
    @pytest.fixture(scope="class")
    def run(self, solver, b_7pt):
        tracer = Tracer(clock="sim")
        res = simulate_distributed(solver, b_7pt, tmax=6, seed=11, tracer=tracer)
        return res, tracer

    def test_summary_attached(self, run):
        res, tracer = run
        assert res.trace_summary is not None
        assert res.trace_summary.clock == "sim"
        assert res.trace_summary.corrections == sum(res.counts)

    def test_fixed_seed_streams_identical(self, solver, b_7pt):
        t1, t2 = Tracer(clock="sim"), Tracer(clock="sim")
        simulate_distributed(solver, b_7pt, tmax=5, seed=11, tracer=t1)
        simulate_distributed(solver, b_7pt, tmax=5, seed=11, tracer=t2)
        # Algorithmic stream is deterministic; `kernel` timing events
        # carry measured wall seconds (field `a`), compared without it.
        algo1 = [e for e in t1.events() if e.kind != "kernel"]
        algo2 = [e for e in t2.events() if e.kind != "kernel"]
        assert algo1 == algo2
        k1 = [(e.t, e.grid, e.b, e.tag) for e in t1.events() if e.kind == "kernel"]
        k2 = [(e.t, e.grid, e.b, e.tag) for e in t2.events() if e.kind == "kernel"]
        assert k1 == k2

    def test_message_events_present(self, run):
        _, tracer = run
        tags = {e.tag for e in tracer.events() if e.kind == "msg"}
        assert "send" in tags and "recv" in tags

    def test_conformance_report_passes(self, run):
        res, tracer = run
        an = TraceAnalyzer(tracer.events(), {"clock": "sim", "n": 512})
        rep = an.conformance(staleness_bound=max(4.0, an.max_staleness()))
        assert rep.passed, rep.summary()
        assert rep.staleness_samples == sum(res.counts)


class TestAnalyzerOnRealTrace:
    def test_psi_and_fairness_from_engine(self, solver, b_7pt):
        _, tracer = engine_events(solver, b_7pt, track_trace=True)
        an = TraceAnalyzer(tracer.events(), {"clock": "steps"})
        psi = an.psi_sizes()
        assert psi and all(s >= 1 for s in psi)
        fair = an.fairness()
        assert 0.0 < fair["jain"] <= 1.0
        assert "residual vs time" in an.report()


class TestCliTrace:
    def test_run_report_export(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.jsonl"
        argv = [
            "trace", "run", "--set", "7pt", "--size", "8",
            "--backend", "threaded", "--tmax", "6", "--out", str(out),
        ]
        assert main(argv) == 0
        meta, evs = read_events_jsonl(out)
        assert meta["backend"] == "threaded" and meta["clock"] == "s"
        assert evs
        capsys.readouterr()

        assert main(["trace", "report", str(out)]) == 0
        rep = capsys.readouterr().out
        assert "corrections:" in rep and "residual vs time" in rep

        chrome = tmp_path / "run.chrome.json"
        csv = tmp_path / "run.csv"
        assert (
            main([
                "trace", "export", str(out),
                "--chrome", str(chrome), "--residuals", str(csv),
            ])
            == 0
        )
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert csv.read_text().startswith("t,relres")

    def test_solve_trace_requires_async(self, capsys):
        from repro.cli import main

        rc = main([
            "solve", "--set", "7pt", "--size", "8", "--trace", "/tmp/x.jsonl",
        ])
        assert rc != 0
