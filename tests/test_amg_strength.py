"""Unit tests for repro.amg.strength."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.amg import classical_strength, strength_transpose_counts


class TestClassicalStrength:
    def test_laplacian_all_strong(self, A_1d):
        # Uniform off-diagonals: everything is strong at theta <= 1.
        S = classical_strength(A_1d, theta=0.25)
        offdiag = A_1d.nnz - A_1d.shape[0]
        assert S.nnz == offdiag

    def test_no_diagonal(self, A_7pt):
        S = classical_strength(A_7pt)
        assert np.all(S.diagonal() == 0.0)

    def test_threshold_filters(self):
        # Row 0 has couplings -4 and -1: theta=0.5 keeps only the -4.
        A = sp.csr_matrix(
            np.array([[6.0, -4.0, -1.0], [-4.0, 6.0, -1.0], [-1.0, -1.0, 6.0]])
        )
        S = classical_strength(A, theta=0.5)
        assert S[0, 1] != 0 and S[0, 2] == 0

    def test_positive_offdiag_never_strong_min_norm(self):
        A = sp.csr_matrix(np.array([[2.0, 1.0], [1.0, 2.0]]))
        S = classical_strength(A, theta=0.1, norm="min")
        assert S.nnz == 0

    def test_abs_norm_sees_positive(self):
        A = sp.csr_matrix(np.array([[2.0, 1.0], [1.0, 2.0]]))
        S = classical_strength(A, theta=0.1, norm="abs")
        assert S.nnz == 2

    def test_theta_zero_keeps_all_negative(self, A_7pt):
        S0 = classical_strength(A_7pt, theta=0.0)
        S9 = classical_strength(A_7pt, theta=0.9)
        assert S0.nnz >= S9.nnz

    def test_invalid_theta(self, A_1d):
        with pytest.raises(ValueError):
            classical_strength(A_1d, theta=1.5)

    def test_invalid_norm(self, A_1d):
        with pytest.raises(ValueError):
            classical_strength(A_1d, norm="spectral")

    def test_nonsquare_raises(self):
        with pytest.raises(ValueError):
            classical_strength(sp.csr_matrix(np.ones((2, 3))))

    def test_diagonal_matrix_no_strength(self):
        S = classical_strength(sp.identity(5, format="csr"))
        assert S.nnz == 0

    def test_pattern_binary(self, A_27pt):
        S = classical_strength(A_27pt)
        assert set(np.unique(S.data)) <= {1.0}


class TestTransposeCounts:
    def test_symmetric_matrix_counts(self, A_1d):
        S = classical_strength(A_1d, theta=0.25)
        counts = strength_transpose_counts(S)
        # Interior points influence 2 neighbours, endpoints 1.
        assert counts[0] == 1 and counts[1] == 2

    def test_sum_equals_nnz(self, A_7pt):
        S = classical_strength(A_7pt)
        assert strength_transpose_counts(S).sum() == S.nnz

    def test_empty(self):
        S = sp.csr_matrix((4, 4))
        assert np.all(strength_transpose_counts(S) == 0)
