"""Unit tests for repro.amg.interp."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.amg import (
    CPOINT,
    aggressive_coarsening,
    classical_interpolation,
    classical_strength,
    direct_interpolation,
    hmis_coarsening,
    multipass_interpolation,
    rs_coarsening,
    truncate_interpolation,
)


@pytest.fixture(scope="module")
def setup_7pt(A_7pt):
    S = classical_strength(A_7pt, theta=0.25)
    split = rs_coarsening(S)
    return A_7pt, S, split


def _common_checks(P, split):
    nc = int((split == CPOINT).sum())
    assert P.shape[1] == nc
    cpts = np.flatnonzero(split == CPOINT)
    # C rows are exact identity rows.
    sub = P[cpts].toarray()
    assert np.allclose(sub, np.eye(nc))


class TestDirectInterpolation:
    def test_shape_and_identity_rows(self, setup_7pt):
        A, S, split = setup_7pt
        P = direct_interpolation(A, S, split)
        _common_checks(P, split)

    def test_row_sums_interior_one(self, setup_7pt):
        # Zero-row-sum rows (pure interior) must interpolate constants
        # exactly: P row sum == 1.
        A, S, split = setup_7pt
        P = direct_interpolation(A, S, split)
        rowsum_A = np.asarray(A.sum(axis=1)).ravel()
        rowsum_P = np.asarray(P.sum(axis=1)).ravel()
        interior = np.abs(rowsum_A) < 1e-12
        fpts = split != CPOINT
        sel = interior & fpts
        if sel.any():
            assert np.allclose(rowsum_P[sel], 1.0, atol=1e-12)

    def test_weights_nonnegative_for_mmatrix(self, setup_7pt):
        A, S, split = setup_7pt
        P = direct_interpolation(A, S, split)
        assert P.data.min() >= 0.0

    def test_1d_exact_halves(self, A_1d):
        S = classical_strength(A_1d)
        split = rs_coarsening(S)
        P = direct_interpolation(A_1d, S, split)
        fpts = np.flatnonzero(split != CPOINT)
        for i in fpts:
            row = P[int(i)].toarray().ravel()
            nz = row[row != 0]
            # interior F points average their two C neighbours
            if nz.size == 2:
                assert np.allclose(nz, 0.5)


class TestClassicalInterpolation:
    def test_shape_and_identity_rows(self, setup_7pt):
        A, S, split = setup_7pt
        P = classical_interpolation(A, S, split)
        _common_checks(P, split)

    def test_interior_rows_interpolate_constants(self, setup_7pt):
        A, S, split = setup_7pt
        P = classical_interpolation(A, S, split)
        rowsum_A = np.asarray(A.sum(axis=1)).ravel()
        rowsum_P = np.asarray(P.sum(axis=1)).ravel()
        sel = (np.abs(rowsum_A) < 1e-12) & (split != CPOINT)
        if sel.any():
            assert np.allclose(rowsum_P[sel], 1.0, atol=1e-10)

    def test_better_than_direct_for_two_level(self, setup_7pt):
        # Classical interpolation should give a two-level method at
        # least as good as direct interpolation (rates on a small
        # homogeneous iteration).
        A, S, split = setup_7pt
        from repro.amg import galerkin_product
        import scipy.sparse.linalg as spla

        def two_level_rate(P):
            Ac = galerkin_product(A, P)
            lu = spla.splu(Ac.tocsc())
            d = A.diagonal()
            rng = np.random.default_rng(0)
            x = rng.standard_normal(A.shape[0])
            for _ in range(15):
                x = x - 0.9 / d * (A @ x)  # smooth
                x = x - P @ lu.solve(P.T @ (A @ x))  # correct
                x = x - 0.9 / d * (A @ x)
                nrm = np.linalg.norm(x)
                x /= nrm
            return nrm

        r_classical = two_level_rate(classical_interpolation(A, S, split))
        r_direct = two_level_rate(direct_interpolation(A, S, split))
        assert r_classical <= r_direct + 0.05

    def test_columns_only_c_points(self, setup_7pt):
        A, S, split = setup_7pt
        P = classical_interpolation(A, S, split)
        # every column corresponds to a C point; total columns == #C
        assert P.shape[1] == (split == CPOINT).sum()


class TestMultipassInterpolation:
    def test_covers_aggressive_f_points(self, A_7pt):
        S = classical_strength(A_7pt, theta=0.25)
        split = aggressive_coarsening(S, coarsener="pmis", seed=0)
        P = multipass_interpolation(A_7pt, S, split)
        # With aggressive coarsening many F points have no strong C
        # neighbour; multipass must still give them nonzero rows.
        row_nnz = np.diff(P.indptr)
        fpts = split != CPOINT
        frac_covered = (row_nnz[fpts] > 0).mean()
        assert frac_covered > 0.95

    def test_identity_on_c(self, A_7pt):
        S = classical_strength(A_7pt, theta=0.25)
        split = aggressive_coarsening(S, coarsener="pmis", seed=0)
        P = multipass_interpolation(A_7pt, S, split)
        _common_checks(P, split)

    def test_constant_preservation_zero_rowsum_matrix(self, A_7pt):
        # On a matrix with zero row sums everywhere (graph Laplacian of
        # the 7pt grid, no Dirichlet truncation), multipass rows must
        # interpolate constants exactly — rowsum(P) == 1 for every
        # covered row.  (On Dirichlet-truncated matrices rows adjacent
        # to the boundary legitimately sum to < 1.)
        import scipy.sparse as sp

        offdiag = A_7pt - sp.diags(A_7pt.diagonal())
        degrees = -np.asarray(offdiag.sum(axis=1)).ravel()
        G = (sp.diags(degrees) + offdiag).tocsr()
        S = classical_strength(G, theta=0.25)
        split = aggressive_coarsening(S, coarsener="pmis", seed=0)
        P = multipass_interpolation(G, S, split)
        covered = np.diff(P.indptr) > 0
        rowsum_P = np.asarray(P.sum(axis=1)).ravel()
        assert np.allclose(rowsum_P[covered], 1.0, atol=1e-8)


class TestTruncation:
    def test_noop_when_disabled(self, setup_7pt):
        A, S, split = setup_7pt
        P = classical_interpolation(A, S, split)
        P2 = truncate_interpolation(P, 0.0, 0)
        assert (P != P2).nnz == 0

    def test_drops_small_entries(self, setup_7pt):
        A, S, split = setup_7pt
        P = classical_interpolation(A, S, split)
        P2 = truncate_interpolation(P, trunc_factor=0.5)
        assert P2.nnz <= P.nnz

    def test_preserves_row_sums(self, setup_7pt):
        A, S, split = setup_7pt
        P = classical_interpolation(A, S, split)
        P2 = truncate_interpolation(P, trunc_factor=0.3)
        assert np.allclose(
            np.asarray(P.sum(axis=1)).ravel(),
            np.asarray(P2.sum(axis=1)).ravel(),
            atol=1e-12,
        )

    def test_max_per_row(self, setup_7pt):
        A, S, split = setup_7pt
        P = classical_interpolation(A, S, split)
        P2 = truncate_interpolation(P, max_per_row=2)
        assert np.diff(P2.indptr).max() <= 2

    def test_invalid_factor(self, setup_7pt):
        A, S, split = setup_7pt
        P = classical_interpolation(A, S, split)
        with pytest.raises(ValueError):
            truncate_interpolation(P, trunc_factor=1.5)
