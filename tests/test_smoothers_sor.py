"""Unit tests for the SOR/SSOR smoothers (extension)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import csr_diagonal, lower_triangle
from repro.smoothers import SOR, SSOR, GaussSeidel, make_smoother
from repro.solvers import Multadd, MultiplicativeMultigrid


class TestSOR:
    def test_omega_one_is_gs(self, A_7pt):
        s = SOR(A_7pt, omega=1.0)
        g = GaussSeidel(A_7pt)
        r = np.random.default_rng(0).standard_normal(A_7pt.shape[0])
        assert np.allclose(s.minv(r), g.minv(r))

    def test_m_matrix_structure(self, A_7pt):
        s = SOR(A_7pt, omega=1.5)
        d = csr_diagonal(A_7pt)
        M_ref = sp.diags(d / 1.5) + lower_triangle(A_7pt, strict=True)
        assert abs(s.M - M_ref.tocsr()).max() < 1e-14

    def test_converges(self, A_7pt, b_7pt):
        s = SOR(A_7pt, omega=1.4)
        x = s.sweep(np.zeros(A_7pt.shape[0]), b_7pt, nsweeps=30)
        assert np.linalg.norm(b_7pt - A_7pt @ x) < 0.1 * np.linalg.norm(b_7pt)

    def test_overrelaxation_accelerates_1d(self, A_1d):
        b = np.ones(A_1d.shape[0])
        res = {}
        for omega in (1.0, 1.7):
            s = SOR(A_1d, omega=omega)
            x = s.sweep(np.zeros_like(b), b, nsweeps=40)
            res[omega] = np.linalg.norm(b - A_1d @ x)
        assert res[1.7] < res[1.0]

    def test_invalid_omega(self, A_1d):
        with pytest.raises(ValueError):
            SOR(A_1d, omega=2.0)
        with pytest.raises(ValueError):
            SOR(A_1d, omega=0.0)

    def test_registry(self, A_1d):
        assert isinstance(make_smoother("sor", A_1d, omega=1.1), SOR)


class TestSSOR:
    def test_symmetric_operator(self, A_7pt):
        s = SSOR(A_7pt, omega=1.3)
        rng = np.random.default_rng(1)
        u, v = rng.standard_normal((2, A_7pt.shape[0]))
        assert float(s.minv(u) @ v) == pytest.approx(float(u @ s.minv(v)), rel=1e-10)

    def test_minv_matches_forward_backward(self, A_7pt):
        # One SSOR application == forward SOR sweep + backward sweep on
        # the error equation, from a zero guess.
        s = SSOR(A_7pt, omega=1.3)
        sor = SOR(A_7pt, omega=1.3)
        r = np.random.default_rng(2).standard_normal(A_7pt.shape[0])
        y1 = sor.minv(r)
        y = y1 + sor.minv_t(r - A_7pt @ y1)
        assert np.allclose(s.minv(r), y)

    def test_m_apply_inverse_pair(self, A_7pt):
        s = SSOR(A_7pt, omega=1.3)
        r = np.random.default_rng(3).standard_normal(A_7pt.shape[0])
        assert np.allclose(s.m_apply(s.minv(r)), r)

    def test_multadd_with_ssor_equals_ssor_symmetric_vcycle(self, hier_7pt, b_7pt):
        # Multadd's Lambda for SSOR is one SSOR application
        # (lambda_mode="minv" since SSOR is already symmetrized);
        # the cycle must equal a symmetric V(1,1) with SOR pre and
        # transposed-SOR post smoothing... verified here simply by
        # convergence (the exact-equivalence test lives with Jacobi).
        ma = Multadd(hier_7pt, smoother="ssor", lambda_mode="minv")
        res = ma.solve(b_7pt, tmax=20)
        assert res.final_relres < 1e-4

    def test_inside_mult(self, hier_7pt, b_7pt):
        m = MultiplicativeMultigrid(hier_7pt, smoother="ssor")
        res = m.solve(b_7pt, tmax=10)
        assert res.final_relres < 1e-4

    def test_registry(self, A_1d):
        assert isinstance(make_smoother("ssor", A_1d), SSOR)
