"""Parity tests: the sequential engine and the threaded executor must
be two implementations of the *same* Algorithm 5.

Exact trajectories differ (that is the point of asynchrony), but the
semantic contracts must agree: same correction counting under both
criteria, same convergence class per (rescomp, write) cell, and the
global-res staleness pathology must appear in both backends.
"""

import numpy as np
import pytest

from repro.core import run_async_engine, run_threaded
from repro.solvers import Multadd


@pytest.fixture(scope="module")
def multadd(hier_27pt):
    return Multadd(hier_27pt, smoother="jacobi", weight=0.9)


@pytest.fixture(scope="module")
def b_27(A_27pt):
    from repro.problems import random_rhs

    return random_rhs(A_27pt.shape[0], seed=11)


class TestCountingParity:
    @pytest.mark.parametrize("tmax", [3, 8])
    def test_criterion1_counts_identical(self, multadd, b_27, tmax):
        eng = run_async_engine(
            multadd, b_27, tmax=tmax, criterion="criterion1", seed=0
        )
        thr = run_threaded(multadd, b_27, tmax=tmax, criterion="criterion1")
        assert np.array_equal(eng.counts, thr.counts)

    def test_criterion2_minimum_identical(self, multadd, b_27):
        eng = run_async_engine(
            multadd, b_27, tmax=6, criterion="criterion2", seed=0
        )
        thr = run_threaded(multadd, b_27, tmax=6, criterion="criterion2")
        assert eng.counts.min() >= 6
        assert thr.counts.min() >= 6


class TestConvergenceClassParity:
    @pytest.mark.parametrize("rescomp", ["local", "rupdate"])
    def test_robust_modes_converge_in_both(self, multadd, b_27, rescomp):
        eng = run_async_engine(
            multadd, b_27, tmax=20, rescomp=rescomp, seed=0, alpha=0.5
        )
        thr = run_threaded(multadd, b_27, tmax=20, rescomp=rescomp)
        assert eng.rel_residual < 1e-2
        assert thr.rel_residual < 1e-2

    def test_global_res_degraded_in_both(self, multadd, b_27):
        # Both backends must show global-res lagging local-res.
        eng_l = run_async_engine(
            multadd, b_27, tmax=20, rescomp="local", seed=0, alpha=0.3
        ).rel_residual
        eng_g = run_async_engine(
            multadd, b_27, tmax=20, rescomp="global", seed=0, alpha=0.3
        ).rel_residual
        thr_l = run_threaded(multadd, b_27, tmax=20, rescomp="local").rel_residual
        thr_g = run_threaded(multadd, b_27, tmax=20, rescomp="global").rel_residual
        assert eng_l < eng_g
        assert thr_l < thr_g

    def test_final_iterate_solves_same_system(self, multadd, b_27, A_27pt):
        # Both backends converge to the same solution (not merely the
        # same residual norm).
        import scipy.sparse.linalg as spla

        x_star = spla.spsolve(A_27pt.tocsc(), b_27)
        eng = run_async_engine(multadd, b_27, tmax=40, seed=0, alpha=0.7)
        thr = run_threaded(multadd, b_27, tmax=40, criterion="criterion2")
        scale = np.abs(x_star).max()
        assert np.abs(eng.x - x_star).max() < 1e-3 * scale
        assert np.abs(thr.x - x_star).max() < 1e-3 * scale
