"""Unit tests for the real-thread executor."""

import numpy as np
import pytest

from repro.core import run_threaded
from repro.solvers import AFACx, Multadd


@pytest.fixture(scope="module")
def multadd(hier_7pt_agg):
    return Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)


class TestThreaded:
    def test_local_lock_converges(self, multadd, b_7pt):
        res = run_threaded(multadd, b_7pt, tmax=20, criterion="criterion1")
        assert res.rel_residual < 1e-2
        assert not res.errors

    def test_criterion1_exact_counts(self, multadd, b_7pt):
        res = run_threaded(multadd, b_7pt, tmax=8, criterion="criterion1")
        assert np.all(res.counts == 8)

    def test_criterion2_counts_at_least(self, multadd, b_7pt):
        res = run_threaded(multadd, b_7pt, tmax=8, criterion="criterion2")
        assert np.all(res.counts >= 8)

    @pytest.mark.parametrize("rescomp", ["local", "global", "rupdate"])
    def test_rescomp_modes(self, multadd, b_7pt, rescomp):
        res = run_threaded(
            multadd, b_7pt, tmax=10, rescomp=rescomp, criterion="criterion1"
        )
        # global-res with unpaced one-thread-per-grid workers can
        # legitimately stall or blow past 1.0 (extreme staleness — the
        # very pathology Fig. 4/5 document), so require only a sane run.
        assert np.isfinite(res.rel_residual)
        assert not res.errors
        if rescomp != "global":
            assert res.rel_residual < 1.0

    @pytest.mark.parametrize("write", ["lock", "atomic", "unsafe"])
    def test_write_policies(self, multadd, b_7pt, write):
        res = run_threaded(
            multadd, b_7pt, tmax=10, write=write, criterion="criterion1"
        )
        # Even unsafe writes converge here in practice (updates rarely
        # collide in a GIL runtime) — just check the run is sane.
        assert np.isfinite(res.rel_residual)
        assert not res.errors

    def test_afacx_threaded(self, hier_7pt_agg, b_7pt):
        af = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9)
        res = run_threaded(af, b_7pt, tmax=15, criterion="criterion1")
        assert res.rel_residual < 0.5
        assert not res.errors

    def test_wall_time_positive(self, multadd, b_7pt):
        res = run_threaded(multadd, b_7pt, tmax=5, criterion="criterion1")
        assert res.wall_time > 0

    def test_invalid_rescomp(self, multadd, b_7pt):
        with pytest.raises(ValueError):
            run_threaded(multadd, b_7pt, rescomp="telepathic")

    def test_async_gs_smoother_threaded(self, hier_7pt_agg, b_7pt):
        # The paper's best configuration: async multigrid + async
        # smoothing, with real threads.
        ma = Multadd(
            hier_7pt_agg, smoother="async_gs", nblocks=4, lambda_mode="sweep"
        )
        res = run_threaded(ma, b_7pt, tmax=15, criterion="criterion1")
        assert res.rel_residual < 0.1
        assert not res.errors


class TestResidualMonitor:
    def test_samples_recorded(self, multadd, b_7pt):
        res = run_threaded(
            multadd,
            b_7pt,
            tmax=30,
            criterion="criterion2",
            monitor_interval=0.002,
        )
        assert len(res.residual_samples) >= 1
        times = [t for t, _ in res.residual_samples]
        assert times == sorted(times)

    def test_samples_show_decrease(self, multadd, b_7pt):
        res = run_threaded(
            multadd,
            b_7pt,
            tmax=60,
            criterion="criterion2",
            monitor_interval=0.001,
        )
        rels = [r for _, r in res.residual_samples]
        if len(rels) >= 2:
            assert rels[-1] <= rels[0]

    def test_invalid_interval(self, multadd, b_7pt):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            run_threaded(multadd, b_7pt, tmax=2, monitor_interval=0.0)

    def test_no_monitor_by_default(self, multadd, b_7pt):
        res = run_threaded(multadd, b_7pt, tmax=3)
        assert res.residual_samples == []
