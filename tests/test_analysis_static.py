"""Tests for the whole-program static analysis (repro.analysis.static)."""

import ast
import json
import time
from pathlib import Path

import pytest

from repro.analysis.linter import default_root
from repro.analysis.project import ProjectIndex, module_name_for
from repro.analysis.rules import Finding
from repro.analysis.static import (
    Baseline,
    analyze_escapes,
    analyze_project,
    apply_baseline,
    build_callgraph,
    build_cfg,
    fingerprint,
    solve,
    to_sarif,
)
from repro.analysis.static.dataflow import (
    TOP,
    LiveVariables,
    ReachingDefinitions,
    must_discard,
    must_join,
    must_union,
)
from repro.analysis.static.escape import free_names
from repro.analysis.static.lockset import analyze_locksets, summarize_function


def _func(source, name=None):
    tree = ast.parse(source)
    funcs = [
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    if name is None:
        return funcs[0]
    return next(f for f in funcs if f.name == name)


def _index(source, relpath="mod.py"):
    return ProjectIndex.from_sources({relpath: source})


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------


class TestCFG:
    def test_straight_line_single_block(self):
        cfg = build_cfg(_func("def f():\n    a = 1\n    b = 2\n    return b\n"))
        # entry -> body -> exit; the body is one block.
        body_blocks = [
            b for b in cfg.blocks.values() if b.bid not in (cfg.entry, cfg.exit) and b.stmts
        ]
        assert len(body_blocks) == 1
        assert cfg.exit in body_blocks[0].succs

    def test_if_branches_and_join(self):
        cfg = build_cfg(
            _func(
                "def f(c):\n"
                "    if c:\n"
                "        a = 1\n"
                "    else:\n"
                "        a = 2\n"
                "    return a\n"
            )
        )
        header = next(
            b
            for b in cfg.blocks.values()
            if any(isinstance(s, ast.If) for s in b.stmts)
        )
        assert len(header.succs) == 2

    def test_while_has_back_edge(self):
        cfg = build_cfg(_func("def f(n):\n    while n > 0:\n        n -= 1\n"))
        header = next(
            b
            for b in cfg.blocks.values()
            if any(isinstance(s, ast.While) for s in b.stmts)
        )
        # Some block inside the loop must edge back to the header.
        assert any(header.bid in cfg.blocks[s].succs for s in header.succs)

    def test_return_edges_to_exit_and_dead_code_is_orphaned(self):
        cfg = build_cfg(_func("def f():\n    return 1\n    x = 2\n"))
        stmts = [s for _, s in cfg.statements()]
        # The dead `x = 2` is still collected (orphan block) ...
        assert any(isinstance(s, ast.Assign) for s in stmts)
        # ... but carries no flow into the exit.
        orphan = next(
            b
            for b in cfg.blocks.values()
            if any(isinstance(s, ast.Assign) for s in b.stmts)
        )
        assert not orphan.preds

    def test_with_region_markers_bracket_body(self):
        from repro.analysis.static.cfg import RegionEnter, RegionExit

        cfg = build_cfg(_func("def f(lk):\n    with lk:\n        a = 1\n    b = 2\n"))
        kinds = [type(s).__name__ for _, s in cfg.statements()]
        assert "RegionEnter" in kinds and "RegionExit" in kinds
        flat = [s for _, s in cfg.statements()]
        enter = next(i for i, s in enumerate(flat) if isinstance(s, RegionEnter))
        exit_ = next(i for i, s in enumerate(flat) if isinstance(s, RegionExit))
        assert enter < exit_

    def test_try_finally_reaches_finally_from_handler_and_body(self):
        cfg = build_cfg(
            _func(
                "def f():\n"
                "    try:\n"
                "        a = 1\n"
                "    except ValueError:\n"
                "        a = 2\n"
                "    finally:\n"
                "        b = 3\n"
            )
        )
        fin = next(
            b
            for b in cfg.blocks.values()
            if any(
                isinstance(s, ast.Assign)
                and isinstance(s.targets[0], ast.Name)
                and s.targets[0].id == "b"
                for s in b.stmts
            )
        )
        assert len(fin.preds) >= 2  # normal path + handler path

    def test_rpo_starts_at_entry(self):
        cfg = build_cfg(_func("def f(c):\n    if c:\n        a = 1\n    return 0\n"))
        order = cfg.rpo()
        assert order[0] == cfg.entry


# ----------------------------------------------------------------------
# Dataflow engine + library analyses
# ----------------------------------------------------------------------


class TestDataflow:
    def test_must_lattice_ops(self):
        s1 = frozenset({"a", "b"})
        s2 = frozenset({"b", "c"})
        assert must_join(TOP, s1) == s1
        assert must_join(s1, TOP) == s1
        assert must_join(s1, s2) == frozenset({"b"})
        assert must_union(TOP, s1) is TOP
        assert must_union(s1, frozenset({"z"})) == s1 | {"z"}
        assert must_discard(TOP, s1) is TOP
        assert must_discard(s1, frozenset({"a"})) == frozenset({"b"})

    def test_reaching_definitions_kill_and_merge(self):
        cfg = build_cfg(
            _func(
                "def f(c):\n"
                "    a = 1\n"
                "    if c:\n"
                "        a = 2\n"
                "    return a\n"
            )
        )
        result = solve(cfg, ReachingDefinitions())
        exit_in = result.block_in[cfg.exit]
        lines = sorted(line for name, line in exit_in if name == "a")
        # Both the line-2 and the line-4 definitions may reach the exit.
        assert lines == [2, 4]

    def test_reaching_definitions_loop_fixpoint(self):
        cfg = build_cfg(
            _func("def f(n):\n    i = 0\n    while i < n:\n        i = i + 1\n")
        )
        result = solve(cfg, ReachingDefinitions())
        exit_in = result.block_in[cfg.exit]
        assert {line for name, line in exit_in if name == "i"} == {2, 4}

    def test_live_variables_backward(self):
        cfg = build_cfg(
            _func("def f(a, b):\n    c = a + 1\n    return c\n")
        )
        result = solve(cfg, LiveVariables())
        entry_live = result.block_out[cfg.entry]
        assert "a" in entry_live
        assert "b" not in entry_live  # never read

    def test_stmt_values_replay_forward_only(self):
        cfg = build_cfg(_func("def f(a):\n    b = a\n    return b\n"))
        result = solve(cfg, LiveVariables())
        with pytest.raises(ValueError):
            list(result.stmt_values())


# ----------------------------------------------------------------------
# Project index + call graph
# ----------------------------------------------------------------------


class TestProjectIndex:
    def test_module_names(self):
        assert module_name_for("core/threaded.py") == "core.threaded"
        assert module_name_for("kernels/__init__.py") == "kernels"
        assert module_name_for("__init__.py") == ""

    def test_parses_tree_once_and_collects_errors(self):
        idx = ProjectIndex.from_sources({"good.py": "x = 1\n"})
        assert len(idx) == 1
        assert idx.get("good.py").tree is idx.get("good.py").tree

    def test_from_root_on_real_tree(self):
        idx = ProjectIndex.from_root(default_root())
        assert len(idx) > 50
        assert not idx.parse_errors


class TestCallGraph:
    def test_module_level_resolution(self):
        cg = build_callgraph(
            _index("def g():\n    pass\n\ndef f():\n    g()\n")
        )
        sites = cg.callees_of("mod:f")
        assert any("mod:g" in s.callees for s in sites)

    def test_nested_closure_resolution(self):
        cg = build_callgraph(
            _index(
                "def outer():\n"
                "    def inner():\n"
                "        pass\n"
                "    inner()\n"
            )
        )
        sites = cg.callees_of("mod:outer")
        assert any("mod:outer.inner" in s.callees for s in sites)

    def test_self_method_resolution_through_base(self):
        cg = build_callgraph(
            _index(
                "class Base:\n"
                "    def helper(self):\n"
                "        pass\n"
                "class Child(Base):\n"
                "    def run(self):\n"
                "        self.helper()\n"
            )
        )
        sites = cg.callees_of("mod:Child.run")
        assert any("mod:Base.helper" in s.callees for s in sites)

    def test_relative_import_resolution(self):
        cg = build_callgraph(
            ProjectIndex.from_sources(
                {
                    "pkg/__init__.py": "",
                    "pkg/util.py": "def two_norm(x):\n    return x\n",
                    "pkg/solver.py": (
                        "from .util import two_norm\n"
                        "def solve(x):\n"
                        "    return two_norm(x)\n"
                    ),
                }
            )
        )
        sites = cg.callees_of("pkg.solver:solve")
        assert any("pkg.util:two_norm" in s.callees for s in sites)

    def test_reexport_chain_through_init(self):
        cg = build_callgraph(
            ProjectIndex.from_sources(
                {
                    "pkg/__init__.py": "from .impl import work\n",
                    "pkg/impl.py": "def work():\n    pass\n",
                    "main.py": (
                        "from pkg import work\n"
                        "def go():\n"
                        "    work()\n"
                    ),
                }
            )
        )
        sites = cg.callees_of("main:go")
        assert any("pkg.impl:work" in s.callees for s in sites)

    def test_unresolved_receiver_kept_as_method_site(self):
        cg = build_callgraph(_index("def f(pol, a):\n    pol.add(a, a)\n"))
        sites = cg.callees_of("mod:f")
        assert len(sites) == 1
        assert sites[0].kind == "method"
        assert sites[0].receiver == "pol" and sites[0].attr == "add"

    def test_callers_reverse_map(self):
        cg = build_callgraph(_index("def g():\n    pass\n\ndef f():\n    g()\n"))
        callers = cg.callers_of("mod:g")
        assert [c[0] for c in callers] == ["mod:f"]

    def test_real_tree_resolves_threaded_worker(self):
        idx = ProjectIndex.from_root(default_root())
        cg = build_callgraph(idx)
        assert "core.threaded:run_threaded.worker" in cg.functions
        assert "core.threaded:run_threaded" in cg.functions


# ----------------------------------------------------------------------
# Escape analysis
# ----------------------------------------------------------------------


ESCAPE_SRC = (
    "import threading\n"
    "import numpy as np\n"
    "def setup(A, b, n):\n"
    "    x = np.zeros(n)\n"
    "    r = b - A @ x\n"
    "    meta = {'n': n}\n"
    "    def worker(k):\n"
    "        r[k] = x[k]\n"
    "    t = threading.Thread(target=worker)\n"
    "    t.start()\n"
    "    return x\n"
)


class TestEscape:
    def test_shared_is_computed_not_name_matched(self):
        cg = build_callgraph(_index(ESCAPE_SRC))
        escapes = analyze_escapes(cg)
        assert set(escapes["mod:setup"].shared) == {"x", "r"}
        # `meta` is not array-valued; never shared.
        assert "meta" not in escapes["mod:setup"].shared

    def test_closure_called_directly_does_not_escape(self):
        src = (
            "import numpy as np\n"
            "def setup(n):\n"
            "    x = np.zeros(n)\n"
            "    def helper():\n"
            "        return x\n"
            "    return helper()\n"
        )
        cg = build_callgraph(_index(src))
        assert analyze_escapes(cg) == {}

    def test_escaping_closure_attributed_shared_set(self):
        cg = build_callgraph(_index(ESCAPE_SRC))
        escapes = analyze_escapes(cg)
        assert set(escapes["mod:setup.worker"].shared) == {"x", "r"}

    def test_free_names_honours_local_bindings(self):
        fn = _func("def w(k):\n    local = k + 1\n    return shared[local]\n")
        free = free_names(fn)
        assert "shared" in free
        assert "local" not in free and "k" not in free

    def test_real_tree_escapes_only_runtime_closures(self):
        idx = ProjectIndex.from_root(default_root())
        cg = build_callgraph(idx)
        escapes = analyze_escapes(cg)
        assert "core.threaded:run_threaded" in escapes
        assert set(escapes["core.threaded:run_threaded"].shared) == {"x", "r"}


# ----------------------------------------------------------------------
# Lockset analysis
# ----------------------------------------------------------------------


class TestLocksetIntra:
    def _summary(self, src, name):
        cg = build_callgraph(_index(src))
        qual = f"mod:{name}"
        return summarize_function(cg, cg.functions[qual])

    def test_with_lock_covers_write(self):
        src = (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "def f(x):\n"
            "    with _lock:\n"
            "        x[0] = 1\n"
        )
        s = self._summary(src, "f")
        assert len(s.writes) == 1
        held = s.writes[0].held
        assert held is not TOP and len(held) == 1

    def test_acquire_release_with_alias_and_try_finally(self):
        # The racecheck.CheckedWrite pattern: alias a striped lock to a
        # local, acquire/release around a try/finally.
        src = (
            "class W:\n"
            "    def add(self, target, update):\n"
            "        lock = self._locks[0]\n"
            "        lock.acquire()\n"
            "        try:\n"
            "            target[0] += update[0]\n"
            "        finally:\n"
            "            lock.release()\n"
            "        tail = 1\n"
        )
        cg = build_callgraph(_index(src))
        s = summarize_function(cg, cg.functions["mod:W.add"])
        write = next(w for w in s.writes if w.target == "target")
        assert write.held is not TOP and len(write.held) == 1
        assert next(iter(write.held)).collection is not None

    def test_conditional_acquire_is_not_must_held(self):
        src = (
            "def f(lock, x, c):\n"
            "    if c:\n"
            "        lock.acquire()\n"
            "    x[0] = 1\n"
        )
        s = self._summary(src, "f")
        write = next(w for w in s.writes if w.target == "x")
        assert write.held == frozenset()

    def test_region_exit_drops_lock(self):
        src = (
            "import threading\n"
            "_lock = threading.Lock()\n"
            "def f(x):\n"
            "    with _lock:\n"
            "        x[0] = 1\n"
            "    x[1] = 2\n"
        )
        s = self._summary(src, "f")
        helds = {ast.unparse(w.node): w.held for w in s.writes}
        assert len(helds["x[0] = 1"]) == 1
        assert helds["x[1] = 2"] == frozenset()

    def test_policy_vars_from_factory_wrapper_and_annotation(self):
        src = (
            "from writes import make_write_policy\n"
            "def f(n, pol2: 'WritePolicy', x, e):\n"
            "    pol = make_write_policy('lock', n)\n"
            "    pol = wrap(pol)\n"
            "    pol.add(x, e)\n"
            "    pol2.assign_slice(x, 0, 1, e)\n"
        )
        s = self._summary(src, "f")
        assert {"pol", "pol2"} <= s.policy_vars
        assert s.covered_targets == {"x"}


class TestLocksetInterproc:
    def test_caller_lock_protects_callee_write(self):
        src = (
            "import threading\n"
            "import numpy as np\n"
            "_lock = threading.Lock()\n"
            "def helper(x):\n"
            "    x[0] += 1\n"
            "def setup(n):\n"
            "    x = np.zeros(n)\n"
            "    def worker():\n"
            "        with _lock:\n"
            "            helper(x)\n"
            "    t = threading.Thread(target=worker)\n"
            "    t.start()\n"
        )
        cg = build_callgraph(_index(src))
        report = analyze_locksets(cg)
        assert report.races == []

    def test_unprotected_helper_write_is_a_race(self):
        src = (
            "import threading\n"
            "import numpy as np\n"
            "def helper(x):\n"
            "    x[0] += 1\n"
            "def setup(n):\n"
            "    x = np.zeros(n)\n"
            "    def worker():\n"
            "        helper(x)\n"
            "    t = threading.Thread(target=worker)\n"
            "    t.start()\n"
        )
        cg = build_callgraph(_index(src))
        report = analyze_locksets(cg)
        assert len(report.races) == 1
        assert report.races[0].func == "mod:helper"

    def test_policy_covered_write_is_not_a_race(self):
        src = (
            "import threading\n"
            "import numpy as np\n"
            "def make_write_policy(kind, n):\n"
            "    return object()\n"
            "def setup(n):\n"
            "    x = np.zeros(n)\n"
            "    pol = make_write_policy('lock', n)\n"
            "    def worker():\n"
            "        e = np.zeros(n)\n"
            "        pol.add(x, e)\n"
            "    t = threading.Thread(target=worker)\n"
            "    t.start()\n"
        )
        cg = build_callgraph(_index(src))
        report = analyze_locksets(cg)
        assert report.races == []

    def test_context_intersects_over_call_sites(self):
        # Two callers, only one holds the lock -> the callee context is
        # empty and the write is a race.
        src = (
            "import threading\n"
            "import numpy as np\n"
            "_lock = threading.Lock()\n"
            "def helper(x):\n"
            "    x[0] += 1\n"
            "def setup(n):\n"
            "    x = np.zeros(n)\n"
            "    def worker():\n"
            "        with _lock:\n"
            "            helper(x)\n"
            "        helper(x)\n"
            "    t = threading.Thread(target=worker)\n"
            "    t.start()\n"
        )
        cg = build_callgraph(_index(src))
        report = analyze_locksets(cg)
        assert len(report.races) == 1

    def test_lock_order_cycle_across_functions(self):
        src = (
            "import threading\n"
            "lock_a = threading.Lock()\n"
            "lock_b = threading.Lock()\n"
            "def path1(d):\n"
            "    with lock_a:\n"
            "        under_a(d)\n"
            "def under_a(d):\n"
            "    with lock_b:\n"
            "        d[0] = 1\n"
            "def path2(d):\n"
            "    with lock_b:\n"
            "        under_b(d)\n"
            "def under_b(d):\n"
            "    with lock_a:\n"
            "        d[0] = 2\n"
        )
        cg = build_callgraph(_index(src))
        report = analyze_locksets(cg)
        assert len(report.order_violations) == 2
        assert all("opposite order" in v.message for v in report.order_violations)

    def test_consistent_order_no_violation(self):
        src = (
            "import threading\n"
            "lock_a = threading.Lock()\n"
            "lock_b = threading.Lock()\n"
            "def path1(d):\n"
            "    with lock_a:\n"
            "        under(d)\n"
            "def path2(d):\n"
            "    with lock_a:\n"
            "        under(d)\n"
            "def under(d):\n"
            "    with lock_b:\n"
            "        d[0] = 1\n"
        )
        cg = build_callgraph(_index(src))
        report = analyze_locksets(cg)
        assert report.order_violations == []

    def test_cross_function_stripe_acquisition_flagged(self):
        src = (
            "class W:\n"
            "    def outer(self, s):\n"
            "        with self._locks[s]:\n"
            "            self.inner(s)\n"
            "    def inner(self, s):\n"
            "        with self._locks[s]:\n"
            "            pass\n"
        )
        cg = build_callgraph(_index(src))
        report = analyze_locksets(cg)
        stripe = [v for v in report.order_violations if "same collection" in v.message]
        assert len(stripe) == 1
        assert stripe[0].func == "mod:W.inner"

    def test_intra_function_stripe_sweep_not_flagged(self):
        # Ascending one-at-a-time sweeps (AtomicWrite) are clean: the
        # lock is released before the next acquisition.
        src = (
            "class W:\n"
            "    def add(self, t, u):\n"
            "        for s in range(4):\n"
            "            with self._locks[s]:\n"
            "                t[s] += u[s]\n"
        )
        cg = build_callgraph(_index(src))
        report = analyze_locksets(cg)
        assert report.order_violations == []


# ----------------------------------------------------------------------
# Baseline ratchet + SARIF
# ----------------------------------------------------------------------


def _finding(code="RPR009", path="a.py", line=3, message="race on 'x'"):
    return Finding(code=code, message=message, path=path, line=line)


class TestBaseline:
    def test_fingerprint_is_line_free(self):
        f1 = _finding(line=3)
        f2 = _finding(line=300)
        assert fingerprint(f1) == fingerprint(f2)
        assert fingerprint(f1) != fingerprint(_finding(message="race on 'y'"))

    def test_roundtrip(self, tmp_path):
        bl = Baseline.from_findings([_finding(), _finding(), _finding(path="b.py")])
        p = tmp_path / "baseline.json"
        bl.save(p)
        loaded = Baseline.load(p)
        assert loaded.entries == bl.entries
        assert sum(loaded.entries.values()) == 3

    def test_ratchet_pins_old_flags_new(self):
        old = _finding()
        bl = Baseline.from_findings([old])
        new_findings = [_finding(line=5), _finding(message="race on 'y'", line=9)]
        new, pinned = apply_baseline(new_findings, bl)
        assert len(pinned) == 1 and pinned[0].line == 5
        assert len(new) == 1 and "y" in new[0].message

    def test_count_ratchet(self):
        bl = Baseline.from_findings([_finding()])
        # Two identical findings, one pinned -> one is new.
        new, pinned = apply_baseline([_finding(line=3), _finding(line=8)], bl)
        assert len(pinned) == 1 and len(new) == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        bl = Baseline.load(tmp_path / "nope.json")
        assert bl.entries == {}

    def test_checked_in_baseline_matches_clean_tree(self):
        repo_baseline = Path(__file__).parent.parent / ".analysis-baseline.json"
        data = json.loads(repo_baseline.read_text(encoding="utf-8"))
        assert data["findings"] == []


class TestSarif:
    def test_structure_and_rules(self):
        doc = to_sarif([_finding()], [])
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["RPR009"]
        res = run["results"][0]
        assert res["ruleId"] == "RPR009"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "a.py"
        assert loc["region"]["startLine"] == 3

    def test_suppressed_findings_become_notes(self):
        sup = _finding()
        sup.suppressed = True
        sup.justification = "policy covers this"
        doc = to_sarif([], [sup])
        res = doc["runs"][0]["results"][0]
        assert res["level"] == "note"
        assert res["suppressions"][0]["justification"] == "policy covers this"

    def test_serializable(self):
        json.dumps(to_sarif([_finding()], []))


# ----------------------------------------------------------------------
# Whole-tree acceptance
# ----------------------------------------------------------------------


class TestWholeTree:
    def test_clean_tree_has_no_static_findings(self):
        idx = ProjectIndex.from_root(default_root())
        _cg, _escapes, report = analyze_project(idx)
        assert report.races == []
        assert report.order_violations == []

    def test_analyze_project_memoizes_on_index(self):
        idx = ProjectIndex.from_root(default_root())
        first = analyze_project(idx)
        second = analyze_project(idx)
        assert first[0] is second[0]
        assert first[2] is second[2]

    def test_runs_under_ten_seconds(self):
        idx = ProjectIndex.from_root(default_root())
        t0 = time.perf_counter()
        analyze_project(idx)
        elapsed = time.perf_counter() - t0
        assert elapsed < 10.0, f"static analysis took {elapsed:.2f}s"

    def test_cli_gate_with_baseline_passes(self, tmp_path):
        from repro.analysis.__main__ import main

        sarif = tmp_path / "out.sarif"
        rc = main(
            [
                "--strict",
                "--baseline",
                str(Path(__file__).parent.parent / ".analysis-baseline.json"),
                "--sarif",
                str(sarif),
                "--quiet",
            ]
        )
        assert rc == 0
        doc = json.loads(sarif.read_text(encoding="utf-8"))
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-analyze"

    def test_update_baseline_writes_file(self, tmp_path):
        from repro.analysis.__main__ import main

        target = tmp_path / "bl.json"
        rc = main(["--baseline", str(target), "--update-baseline", "--quiet"])
        assert rc == 0
        data = json.loads(target.read_text(encoding="utf-8"))
        assert data["version"] == 1
        assert data["findings"] == []  # the tree is clean

    def test_no_static_flag_skips_project_rules(self):
        from repro.analysis.__main__ import main

        fixture = Path(__file__).parent / "fixtures" / "rule_violations.py"
        # With static passes the fixture fails; without, RPR009/RPR010
        # cannot fire (scope rules still skip the per-file ones here).
        rc_static = main([str(fixture), "--quiet"])
        rc_nostatic = main([str(fixture), "--no-static", "--quiet"])
        assert rc_static == 1
        assert rc_nostatic in (0, 1)  # per-file scoped rules may not apply
