"""Property-based tests: serialization round-trips and model invariants."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.io import read_matrix_market, write_matrix_market
from repro.io.serialize import _pack_csr, _unpack_csr


@st.composite
def random_sparse(draw, max_n=20):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(1, max_n))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    dense = rng.standard_normal((n, m))
    dense[rng.uniform(size=(n, m)) < 0.6] = 0.0
    return sp.csr_matrix(dense)


class TestSerializationProperties:
    @given(random_sparse())
    @settings(max_examples=40, deadline=None)
    def test_csr_pack_roundtrip(self, M):
        blob = {}
        _pack_csr("X", M, blob)
        M2 = _unpack_csr("X", blob)
        assert (M != M2).nnz == 0

    @given(random_sparse())
    @settings(max_examples=25, deadline=None)
    def test_matrix_market_roundtrip(self, M):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as d:
            f = Path(d) / "m.mtx"
            write_matrix_market(f, M)
            M2 = read_matrix_market(f)
            assert M2.shape == M.shape
            if M.nnz:
                assert abs(M - M2).max() < 1e-14
            else:
                assert M2.nnz == 0


class TestModelInvariantsProperty:
    @given(st.integers(0, 2**31 - 1), st.floats(0.2, 1.0), st.integers(0, 4))
    @settings(max_examples=10, deadline=None)
    def test_models_never_lose_correction_count(self, seed, alpha, delta):
        # Whatever the schedule, every grid performs exactly its budget.
        from repro.amg import SetupOptions, setup_hierarchy
        from repro.core import ScheduleParams, simulate_full_async_residual
        from repro.problems import laplacian_7pt, random_rhs
        from repro.solvers import Multadd

        A = laplacian_7pt(6)
        h = setup_hierarchy(A, SetupOptions(aggressive_levels=1))
        ma = Multadd(h, smoother="jacobi", weight=0.9)
        res = simulate_full_async_residual(
            ma,
            random_rhs(A.shape[0], 0),
            ScheduleParams(alpha=alpha, delta=delta, updates_per_grid=5, seed=seed),
        )
        assert np.all(res.corrections_per_grid == 5)
        # The reported residual is exactly b - A x (model consistency).
        r = random_rhs(A.shape[0], 0) - ma.A @ res.x
        assert np.linalg.norm(r) / np.linalg.norm(random_rhs(A.shape[0], 0)) == (
            res.rel_residual
        )
