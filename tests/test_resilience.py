"""Unit tests for the resilience layer: plans, parsing, injector, guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    FaultTelemetry,
    Guard,
    GuardPolicy,
    StallFault,
    parse_fault_spec,
)


class TestFaultPlanValidation:
    def test_default_plan_is_inactive(self):
        plan = FaultPlan()
        assert not plan.active
        assert not plan

    def test_any_fault_activates(self):
        assert FaultPlan(crashes=(CrashFault(0, 1),)).active
        assert FaultPlan(stalls=(StallFault(0, 1, 2.0),)).active
        assert FaultPlan(corruption_probability=0.1).active
        assert FaultPlan(drop_probability=0.1).active
        assert FaultPlan(duplicate_probability=0.1).active
        assert FaultPlan(delay_probability=0.1).active

    @pytest.mark.parametrize(
        "kw",
        [
            {"corruption_probability": 1.0},
            {"corruption_probability": -0.1},
            {"drop_probability": 1.5},
            {"duplicate_probability": -1e-9},
            {"delay_probability": 2.0},
            {"corruption_mode": "flip"},
            {"corruption_scale": 0.0},
            {"delay_factor": -1.0},
        ],
    )
    def test_bad_parameters_raise(self, kw):
        with pytest.raises(ValueError):
            FaultPlan(**kw)

    def test_bad_fault_coordinates_raise(self):
        with pytest.raises(ValueError):
            CrashFault(-1, 0)
        with pytest.raises(ValueError):
            StallFault(0, -2, 1.0)
        with pytest.raises(ValueError):
            StallFault(0, 0, 0.0)

    def test_lists_are_normalised_to_tuples(self):
        plan = FaultPlan(crashes=[CrashFault(1, 5)], stalls=[StallFault(0, 1, 3.0)])
        assert isinstance(plan.crashes, tuple)
        assert isinstance(plan.stalls, tuple)


class TestParseFaultSpec:
    def test_full_spec(self):
        plan = parse_fault_spec(
            "crash:1@5; stall:2@3,duration=200; corrupt:p=0.01,mode=scale,scale=1e6;"
            "drop:p=0.05; dup:p=0.02; delay:p=0.1,factor=5",
            seed=42,
        )
        assert plan.crashes == (CrashFault(1, 5),)
        assert plan.stalls == (StallFault(2, 3, 200.0),)
        assert plan.corruption_probability == 0.01
        assert plan.corruption_mode == "scale"
        assert plan.corruption_scale == 1e6
        assert plan.drop_probability == 0.05
        assert plan.duplicate_probability == 0.02
        assert plan.delay_probability == 0.1
        assert plan.delay_factor == 5.0
        assert plan.seed == 42

    def test_keyword_form_equals_shorthand(self):
        assert (
            parse_fault_spec("crash:grid=1,after=5").crashes
            == parse_fault_spec("crash:1@5").crashes
        )

    def test_repeated_clauses_accumulate(self):
        plan = parse_fault_spec("crash:0@1;crash:2@4")
        assert plan.crashes == (CrashFault(0, 1), CrashFault(2, 4))

    def test_empty_spec_is_inactive(self):
        assert not parse_fault_spec("").active
        assert not parse_fault_spec(" ; ; ").active

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_spec("explode:p=0.5")

    def test_missing_option_raises(self):
        with pytest.raises(ValueError, match="missing option"):
            parse_fault_spec("corrupt:mode=nan")
        with pytest.raises(ValueError, match="missing option"):
            parse_fault_spec("crash:after=3")

    def test_garbage_clause_raises(self):
        with pytest.raises(ValueError):
            parse_fault_spec("crash:1@5,2@6,3@7")


class TestFaultInjector:
    def test_out_of_range_grid_raises(self):
        plan = FaultPlan(crashes=(CrashFault(5, 1),))
        with pytest.raises(ValueError, match="out of range"):
            FaultInjector(plan, ngrids=3)

    def test_crash_is_one_shot(self):
        inj = FaultInjector(FaultPlan(crashes=(CrashFault(1, 3),)), ngrids=2)
        assert not inj.crash_due(1, 2)
        assert inj.crash_due(1, 3)
        # The sentence is consumed: a restarted replacement survives.
        assert not inj.crash_due(1, 3)
        assert not inj.crash_due(1, 100)
        assert not inj.crash_due(0, 100)

    def test_earliest_crash_wins(self):
        plan = FaultPlan(crashes=(CrashFault(0, 9), CrashFault(0, 4)))
        inj = FaultInjector(plan, ngrids=1)
        assert inj.crash_due(0, 4)

    def test_stall_lookup(self):
        inj = FaultInjector(FaultPlan(stalls=(StallFault(2, 7, 50.0),)), ngrids=3)
        assert inj.stall_due(2, 7) == 50.0
        assert inj.stall_due(2, 6) is None
        assert inj.stall_due(1, 7) is None

    @pytest.mark.parametrize(
        "mode,check",
        [
            ("nan", lambda v: np.isnan(v).any()),
            ("inf", lambda v: np.isinf(v).any()),
            ("scale", lambda v: np.abs(v).max() > 1e6),
        ],
    )
    def test_corruption_modes(self, mode, check):
        plan = FaultPlan(
            corruption_probability=0.999, corruption_mode=mode, corruption_scale=1e8
        )
        inj = FaultInjector(plan, ngrids=1)
        e = np.ones(16)
        tele = FaultTelemetry()
        out = inj.corrupt(e, tele)
        assert check(out)
        # Only one entry is perturbed and the input is untouched.
        assert np.all(e == 1.0)
        assert np.sum(out != 1.0) == 1
        assert tele.injected_corruptions == 1

    def test_corrupt_noop_at_zero_probability(self):
        inj = FaultInjector(FaultPlan(), ngrids=1)
        e = np.ones(8)
        assert inj.corrupt(e) is e

    def test_corruption_stream_independent_of_message_faults(self):
        # Enabling drop/dup/delay must not perturb the corruption
        # sequence for a fixed seed (independent spawned streams).
        base = FaultPlan(corruption_probability=0.5, corruption_mode="scale", seed=3)
        noisy = FaultPlan(
            corruption_probability=0.5,
            corruption_mode="scale",
            drop_probability=0.3,
            duplicate_probability=0.3,
            delay_probability=0.3,
            seed=3,
        )
        a, bnj = FaultInjector(base, 2), FaultInjector(noisy, 2)
        for _ in range(50):
            # Interleave message sampling on one side only.
            bnj.message_dropped(), bnj.message_duplicated(), bnj.message_delay_factor()
            ea = a.corrupt(np.ones(32))
            eb = bnj.corrupt(np.ones(32))
            np.testing.assert_array_equal(ea, eb)

    def test_message_fault_rates(self):
        plan = FaultPlan(
            drop_probability=0.3, duplicate_probability=0.1, delay_probability=0.2
        )
        inj = FaultInjector(plan, ngrids=1)
        n = 4000
        drops = sum(inj.message_dropped() for _ in range(n)) / n
        dups = sum(inj.message_duplicated() for _ in range(n)) / n
        delays = sum(inj.message_delay_factor() is not None for _ in range(n)) / n
        assert abs(drops - 0.3) < 0.05
        assert abs(dups - 0.1) < 0.05
        assert abs(delays - 0.2) < 0.05
        assert inj.message_delay_factor() in (None, plan.delay_factor)


class TestGuardPolicy:
    @pytest.mark.parametrize(
        "kw",
        [
            {"on_magnitude": "ignore"},
            {"magnitude_bound": 0.0},
            {"spike_factor": 1.0},
            {"checkpoint_interval": 0},
            {"checkpoint_period_s": 0.0},
            {"max_rollbacks": -1},
            {"max_restarts": -2},
            {"max_retransmits": -1},
            {"watchdog_timeout": 0.0},
            {"retransmit_timeout": -1e-3},
            {"restart_delay": -0.1},
        ],
    )
    def test_bad_policy_raises(self, kw):
        with pytest.raises(ValueError):
            GuardPolicy(**kw)


class TestGuardScreen:
    def test_finite_correction_passes_through(self):
        g = Guard(GuardPolicy(), ref_norm=1.0)
        e = np.array([1.0, -2.0, 3.0])
        np.testing.assert_array_equal(g.screen(e), e)
        assert g.telemetry.corrections_rejected == 0

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_rejected(self, bad):
        g = Guard(GuardPolicy(), ref_norm=1.0)
        assert g.screen(np.array([1.0, bad])) is None
        assert g.telemetry.corrections_rejected == 1

    def test_magnitude_reject(self):
        g = Guard(GuardPolicy(magnitude_bound=10.0), ref_norm=2.0)
        assert g.screen(np.array([0.0, 21.0])) is None  # 21 > 10 * 2
        np.testing.assert_array_equal(
            g.screen(np.array([0.0, 19.0])), np.array([0.0, 19.0])
        )

    def test_magnitude_clamp(self):
        g = Guard(
            GuardPolicy(magnitude_bound=10.0, on_magnitude="clamp"), ref_norm=1.0
        )
        out = g.screen(np.array([0.0, 40.0]))
        np.testing.assert_allclose(out, np.array([0.0, 10.0]))
        assert g.telemetry.corrections_clamped == 1
        assert g.telemetry.corrections_rejected == 0

    def test_empty_vector_passes(self):
        g = Guard(GuardPolicy(), ref_norm=1.0)
        assert g.screen(np.zeros(0)).size == 0


class TestGuardCheckpointRollback:
    def test_checkpoint_then_rollback_on_spike(self):
        g = Guard(GuardPolicy(spike_factor=10.0), ref_norm=1.0)
        x1 = np.array([1.0, 2.0])
        action, restore = g.checkpoint_or_rollback(x1, 0.1)
        assert action == "checkpoint" and restore is None
        action, restore = g.checkpoint_or_rollback(np.array([9.0, 9.0]), 5.0)
        assert action == "rollback"
        np.testing.assert_array_equal(restore, x1)
        assert g.telemetry.rollbacks == 1

    def test_nonfinite_residual_triggers_rollback(self):
        g = Guard(GuardPolicy(), ref_norm=1.0)
        g.checkpoint_or_rollback(np.zeros(2), 0.5)
        action, restore = g.checkpoint_or_rollback(np.ones(2), np.nan)
        assert action == "rollback" and restore is not None

    def test_restore_is_a_copy(self):
        g = Guard(GuardPolicy(), ref_norm=1.0)
        x = np.array([1.0])
        g.checkpoint_or_rollback(x, 0.5)
        x[0] = 99.0  # mutating the offered iterate must not taint the snapshot
        _, restore = g.checkpoint_or_rollback(x, np.inf)
        assert restore[0] == 1.0

    def test_budget_exhaustion(self):
        g = Guard(GuardPolicy(max_rollbacks=1), ref_norm=1.0)
        g.checkpoint_or_rollback(np.zeros(1), 0.5)
        assert g.checkpoint_or_rollback(np.ones(1), np.inf)[0] == "rollback"
        assert g.checkpoint_or_rollback(np.ones(1), np.inf)[0] == "none"

    def test_spike_without_checkpoint_is_none(self):
        g = Guard(GuardPolicy(), ref_norm=1.0)
        action, restore = g.checkpoint_or_rollback(np.ones(1), np.nan)
        assert action == "none" and restore is None


class TestGuardRestart:
    def test_budget(self):
        g = Guard(GuardPolicy(max_restarts=2), ref_norm=1.0)
        assert g.try_restart() and g.try_restart()
        assert not g.try_restart()
        assert g.telemetry.restarts == 2

    def test_disabled(self):
        g = Guard(GuardPolicy(restart_crashed=False), ref_norm=1.0)
        assert not g.try_restart()
        assert g.telemetry.restarts == 0


class TestTelemetry:
    def test_bump_and_as_dict(self):
        t = FaultTelemetry()
        t.bump("injected_crashes")
        t.bump("retransmissions", 3)
        d = t.as_dict()
        assert d["injected_crashes"] == 1
        assert d["retransmissions"] == 3
        assert "_lock" not in d

    def test_negative_bump_raises(self):
        with pytest.raises(ValueError):
            FaultTelemetry().bump("rollbacks", -1)

    def test_totals(self):
        t = FaultTelemetry()
        t.bump("injected_corruptions", 4)
        t.bump("injected_stalls")
        t.bump("corrections_rejected", 2)
        t.bump("restarts")
        assert t.total_injected == 5
        assert t.total_recovery_actions == 3

    def test_merge(self):
        a, b = FaultTelemetry(), FaultTelemetry()
        a.bump("rollbacks")
        b.bump("rollbacks", 2)
        b.bump("injected_crashes")
        assert a.merge(b) is a
        assert a.rollbacks == 3 and a.injected_crashes == 1

    def test_summary(self):
        t = FaultTelemetry()
        assert "no faults" in t.summary()
        t.bump("injected_crashes")
        assert "injected_crashes=1" in t.summary()
