"""Unit tests for the diagonal smoothers (omega-Jacobi, l1-Jacobi)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import l1_row_norms, a_norm
from repro.smoothers import L1Jacobi, WeightedJacobi, make_smoother


class TestWeightedJacobi:
    def test_minv_formula(self, A_7pt):
        s = WeightedJacobi(A_7pt, weight=0.9)
        r = np.arange(A_7pt.shape[0], dtype=float)
        assert np.allclose(s.minv(r), 0.9 * r / A_7pt.diagonal())

    def test_m_apply_inverse_pair(self, A_7pt):
        s = WeightedJacobi(A_7pt, weight=0.7)
        r = np.random.default_rng(0).standard_normal(A_7pt.shape[0])
        assert np.allclose(s.m_apply(s.minv(r)), r)

    def test_symmetric_m(self, A_7pt):
        s = WeightedJacobi(A_7pt, weight=0.9)
        r = np.ones(A_7pt.shape[0])
        assert np.allclose(s.minv(r), s.minv_t(r))

    def test_sweep_reduces_residual(self, A_7pt, b_7pt):
        s = WeightedJacobi(A_7pt, weight=0.9)
        x = np.zeros(A_7pt.shape[0])
        r0 = np.linalg.norm(b_7pt)
        x = s.sweep(x, b_7pt, nsweeps=5)
        assert np.linalg.norm(b_7pt - A_7pt @ x) < r0

    def test_sweep_does_not_mutate_input(self, A_7pt, b_7pt):
        s = WeightedJacobi(A_7pt)
        x = np.zeros(A_7pt.shape[0])
        s.sweep(x, b_7pt)
        assert np.all(x == 0.0)

    def test_zero_sweeps_identity(self, A_7pt, b_7pt):
        s = WeightedJacobi(A_7pt)
        x = np.ones(A_7pt.shape[0])
        assert np.allclose(s.sweep(x, b_7pt, nsweeps=0), x)

    def test_invalid_weight(self, A_7pt):
        with pytest.raises(ValueError):
            WeightedJacobi(A_7pt, weight=0.0)
        with pytest.raises(ValueError):
            WeightedJacobi(A_7pt, weight=2.5)

    def test_negative_sweeps_raise(self, A_7pt, b_7pt):
        s = WeightedJacobi(A_7pt)
        with pytest.raises(ValueError):
            s.sweep(np.zeros(A_7pt.shape[0]), b_7pt, nsweeps=-1)

    def test_symmetrized_apply_matches_formula(self, A_7pt):
        s = WeightedJacobi(A_7pt, weight=0.9)
        r = np.random.default_rng(1).standard_normal(A_7pt.shape[0])
        d = A_7pt.diagonal() / 0.9
        M = sp.diags(d)
        ref = sp.diags(1 / d) @ ((M + M.T - A_7pt) @ (sp.diags(1 / d) @ r))
        assert np.allclose(s.symmetrized_apply(r), ref)

    def test_symmetrized_equals_forward_backward_sweeps(self, A_7pt):
        # Lambda r == the correction of one forward sweep followed by
        # one transposed sweep applied to residual r (zero guess).
        s = WeightedJacobi(A_7pt, weight=0.9)
        r = np.random.default_rng(2).standard_normal(A_7pt.shape[0])
        y1 = s.minv(r)
        y2 = y1 + s.minv_t(r - A_7pt @ y1)
        assert np.allclose(s.symmetrized_apply(r), y2)

    def test_iteration_matrix_small(self):
        A = sp.csr_matrix(np.array([[2.0, -1.0], [-1.0, 2.0]]))
        s = WeightedJacobi(A, weight=1.0)
        G = s.iteration_matrix().toarray()
        assert np.allclose(G, np.array([[0.0, 0.5], [0.5, 0.0]]))

    def test_flops_positive(self, A_7pt):
        s = WeightedJacobi(A_7pt)
        assert s.flops_per_sweep() > 2 * A_7pt.nnz


class TestL1Jacobi:
    def test_diagonal_is_l1_norms(self, A_7pt):
        s = L1Jacobi(A_7pt)
        assert np.allclose(s.smoothing_diagonal, l1_row_norms(A_7pt))

    def test_provably_convergent_on_spd(self, A_7pt):
        assert L1Jacobi(A_7pt).is_provably_convergent()

    def test_monotone_a_norm_decay(self, A_7pt, b_7pt):
        # The l1-Jacobi guarantee: error decreases monotonically in the
        # A-norm on SPD matrices.
        import scipy.sparse.linalg as spla

        s = L1Jacobi(A_7pt)
        x_star = spla.spsolve(A_7pt.tocsc(), b_7pt)
        x = np.zeros(A_7pt.shape[0])
        prev = a_norm(A_7pt, x - x_star)
        for _ in range(10):
            x = s.sweep(x, b_7pt)
            cur = a_norm(A_7pt, x - x_star)
            assert cur <= prev + 1e-12
            prev = cur

    def test_more_damped_than_jacobi(self, A_7pt):
        sl = L1Jacobi(A_7pt)
        sw = WeightedJacobi(A_7pt, weight=0.9)
        assert np.all(sl.smoothing_diagonal >= sw.smoothing_diagonal - 1e-12)

    def test_registry(self, A_7pt):
        s = make_smoother("l1_jacobi", A_7pt)
        assert isinstance(s, L1Jacobi)


class TestRegistry:
    def test_unknown_name(self, A_7pt):
        with pytest.raises(KeyError):
            make_smoother("kaczmarz", A_7pt)

    def test_kwargs_forwarded(self, A_7pt):
        s = make_smoother("jacobi", A_7pt, weight=0.5)
        assert s.weight == 0.5
