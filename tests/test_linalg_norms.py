"""Unit tests for repro.linalg.norms."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import a_norm, rel_residual_norm, two_norm


class TestTwoNorm:
    def test_basic(self):
        assert two_norm(np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_zero(self):
        assert two_norm(np.zeros(5)) == 0.0

    def test_returns_python_float(self):
        assert isinstance(two_norm(np.ones(3)), float)


class TestANorm:
    def test_identity_reduces_to_two_norm(self):
        v = np.array([3.0, 4.0])
        assert a_norm(sp.identity(2, format="csr"), v) == pytest.approx(5.0)

    def test_spd_value(self, A_1d):
        v = np.ones(A_1d.shape[0])
        expected = np.sqrt(v @ (A_1d @ v))
        assert a_norm(A_1d, v) == pytest.approx(expected)

    def test_indefinite_raises(self):
        M = sp.csr_matrix(np.diag([1.0, -1.0]))
        with pytest.raises(ValueError, match="SPD"):
            a_norm(M, np.array([0.0, 1.0]))

    def test_tiny_negative_roundoff_clamped(self):
        M = sp.csr_matrix(np.diag([1.0, 0.0]))
        assert a_norm(M, np.array([0.0, 1.0])) == 0.0


class TestRelResidualNorm:
    def test_zero_at_solution(self, A_1d):
        x = np.linspace(0, 1, A_1d.shape[0])
        b = A_1d @ x
        assert rel_residual_norm(A_1d, x, b) == pytest.approx(0.0, abs=1e-14)

    def test_one_at_zero_guess(self, A_1d):
        b = np.ones(A_1d.shape[0])
        assert rel_residual_norm(A_1d, np.zeros_like(b), b) == pytest.approx(1.0)

    def test_zero_rhs_absolute_fallback(self, A_1d):
        x = np.ones(A_1d.shape[0])
        val = rel_residual_norm(A_1d, x, np.zeros_like(x))
        assert val == pytest.approx(two_norm(A_1d @ x))
