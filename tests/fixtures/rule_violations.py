"""Seeded violations of every RPR rule — linter test fixture.

This file is *linted as text* by ``tests/test_analysis_linter.py``
(with ``ignore_scope=True``); it is never imported, never collected by
pytest, and excluded from ruff (``extend-exclude = ["tests/fixtures"]``).
Every block below must keep triggering exactly the rule named above it.
"""

import threading
import time

import numpy as np

_locks = [threading.Lock() for _ in range(4)]


def rpr001_direct_shared_mutation(x, r, e, lo, hi, vals):
    # RPR001: direct mutation of the shared iterate / residual.
    x += e
    x[lo:hi] += e[lo:hi]
    r[lo:hi] = vals


def rpr002_nested_and_descending(data):
    # RPR002: nested acquisition of two stripe locks...
    with _locks[0]:
        with _locks[1]:
            data += 1
    # ...and a descending stripe sweep.
    for s in reversed(range(4)):
        with _locks[s]:
            data += 1


def rpr003_unseeded_randomness():
    # RPR003: legacy module-level RNG and unseeded default_rng().
    noise = np.random.rand(3)
    rng = np.random.default_rng()
    return noise, rng


def rpr004_wall_clock():
    # RPR004: wall-clock time in a measurement.
    start = time.time()
    return time.time() - start


from dataclasses import dataclass  # noqa: E402


@dataclass
class BrokenResult:
    # RPR005: missing 'stalled'/'telemetry', and a shared mutable default.
    x: float = 0.0
    errors: list = []


import logging  # noqa: E402

log = logging.getLogger("fixture")


def rpr006_hot_path_emission(corrections):
    # RPR006: print/logging emission inside an executor loop.
    for e in corrections:
        print("applying", e)
        log.debug("correction %s", e)
    while corrections:
        logging.info("still going")
        corrections.pop()


def rpr007_hot_loop_allocation(A, xs, n):
    # RPR007: per-iteration O(n) allocation / format conversion.
    acc = np.zeros(n)
    for x in xs:
        out = np.zeros(n)
        rows = np.repeat(np.arange(n), 2)
        acc += out[rows[:n]]
    while n > 0:
        tmp = np.empty(n)
        B = A.tocsr()
        acc[:n] += tmp + B.diagonal()[:n]
        n -= 1
    return acc


def rpr008_membership_writes(mm, grid_down, rank_state):
    # RPR008: membership state mutated outside MembershipManager.
    grid_down[0] = True
    mm.alive[3] = False
    mm.rank_state = rank_state
    mm.last_heard[2] += 1.0
    return mm


def rpr009_apply_correction(iterate, update):
    # RPR009: raw write to an array that is shared in the *caller* —
    # the escaping worker closure below hands `iterate` to this
    # helper, so the interprocedural pass must flag the write even
    # though this function looks innocent in isolation.  (Names are
    # deliberately not in RPR001's list: only the whole-program pass
    # can see this.)
    iterate += update


def rpr009_spawn_unguarded_helper(A, b, n):
    # Escape seed: iterate and resid are created here and flow into
    # `worker`, which is handed off as a value (Thread target) — both
    # arrays are statically shared from that point on.
    iterate = np.zeros(n)
    resid = b - A @ iterate

    def worker(k):
        # RPR009: raw write to an escaping shared array, no lock held.
        resid[k] += 1.0
        update = np.zeros(n)
        rpr009_apply_correction(iterate, update)

    t = threading.Thread(target=worker, args=(0,), daemon=True)
    t.start()
    return iterate


_order_lock_a = threading.Lock()
_order_lock_b = threading.Lock()


def rpr010_first_order(data):
    # Takes A here, then B inside the callee: the A -> B edge.
    with _order_lock_a:
        _rpr010_under_a(data)


def _rpr010_under_a(data):
    # RPR010: acquires B while the caller holds A...
    with _order_lock_b:
        data[0] = 1.0


def rpr010_inverted_order(data):
    # ...while this path takes B first, then A inside its callee —
    # the opposite order, a cross-function deadlock cycle.
    with _order_lock_b:
        _rpr010_under_b(data)


def _rpr010_under_b(data):
    # RPR010: acquires A while the caller holds B.
    with _order_lock_a:
        data[0] = 2.0


_buffer_lock = threading.Lock()


def on_snapshot_blocking(snap, sink, sock):
    # RPR011: blocking work inside a live snapshot callback.
    time.sleep(0.1)
    fh = open("/tmp/snap.json", "a")
    fh.write(str(snap))
    sock.sendall(b"snap")
    _buffer_lock.acquire()


class FixtureStallDetector:
    # RPR011: detector update doing I/O instead of pure math.
    def update(self, snap):
        with open("/tmp/alerts.log") as fh:
            return fh.readline()

    def _check(self, snap):
        time.sleep(0.01)
        return None


# RPR012: fork-unsafe module-level state for the procs executor —
# spawn children re-import the module and get private copies.
_worker_cache = {}
_result_rows: list = []
_module_lock = threading.Lock()
_scratch = np.zeros(16)


class SharedVectors:
    # Allowed: the one place np.frombuffer views may be constructed.
    def __init__(self, buf):
        self.x = np.frombuffer(buf, dtype=np.float64)


def rpr012_rogue_view(shm):
    # RPR012: a raw shared-memory view outside the SharedVectors helper.
    return np.frombuffer(shm.buf, dtype=np.float64)


import queue  # noqa: E402
from multiprocessing import JoinableQueue  # noqa: E402


def rpr013_unbounded_queues(n):
    # RPR013: unbounded queue construction in the serve layer.
    inbox = queue.Queue()
    lifo = queue.LifoQueue(0)
    prio = queue.PriorityQueue(maxsize=0)
    simple = queue.SimpleQueue()
    joinable = JoinableQueue()
    bounded = queue.Queue(maxsize=n)  # allowed: caller-bounded depth
    return inbox, lifo, prio, simple, joinable, bounded


def rpr013_unbounded_blocking(q, t, lock, cond):
    # RPR013: blocking primitives with no timeout bound.
    item = q.get()
    t.join()
    lock.acquire()
    cond.wait()
    ok = q.get(timeout=1.0)  # allowed: bounded wait
    lock.acquire(blocking=False)  # allowed: cannot wait at all
    return item, ok
