"""Seeded violations of every RPR rule — linter test fixture.

This file is *linted as text* by ``tests/test_analysis_linter.py``
(with ``ignore_scope=True``); it is never imported, never collected by
pytest, and excluded from ruff (``extend-exclude = ["tests/fixtures"]``).
Every block below must keep triggering exactly the rule named above it.
"""

import threading
import time

import numpy as np

_locks = [threading.Lock() for _ in range(4)]


def rpr001_direct_shared_mutation(x, r, e, lo, hi, vals):
    # RPR001: direct mutation of the shared iterate / residual.
    x += e
    x[lo:hi] += e[lo:hi]
    r[lo:hi] = vals


def rpr002_nested_and_descending(data):
    # RPR002: nested acquisition of two stripe locks...
    with _locks[0]:
        with _locks[1]:
            data += 1
    # ...and a descending stripe sweep.
    for s in reversed(range(4)):
        with _locks[s]:
            data += 1


def rpr003_unseeded_randomness():
    # RPR003: legacy module-level RNG and unseeded default_rng().
    noise = np.random.rand(3)
    rng = np.random.default_rng()
    return noise, rng


def rpr004_wall_clock():
    # RPR004: wall-clock time in a measurement.
    start = time.time()
    return time.time() - start


from dataclasses import dataclass  # noqa: E402


@dataclass
class BrokenResult:
    # RPR005: missing 'stalled'/'telemetry', and a shared mutable default.
    x: float = 0.0
    errors: list = []


import logging  # noqa: E402

log = logging.getLogger("fixture")


def rpr006_hot_path_emission(corrections):
    # RPR006: print/logging emission inside an executor loop.
    for e in corrections:
        print("applying", e)
        log.debug("correction %s", e)
    while corrections:
        logging.info("still going")
        corrections.pop()


def rpr007_hot_loop_allocation(A, xs, n):
    # RPR007: per-iteration O(n) allocation / format conversion.
    acc = np.zeros(n)
    for x in xs:
        out = np.zeros(n)
        rows = np.repeat(np.arange(n), 2)
        acc += out[rows[:n]]
    while n > 0:
        tmp = np.empty(n)
        B = A.tocsr()
        acc[:n] += tmp + B.diagonal()[:n]
        n -= 1
    return acc


def rpr008_membership_writes(mm, grid_down, rank_state):
    # RPR008: membership state mutated outside MembershipManager.
    grid_down[0] = True
    mm.alive[3] = False
    mm.rank_state = rank_state
    mm.last_heard[2] += 1.0
    return mm
