"""Unit tests for FCG and W/F-cycles (extensions)."""

import numpy as np
import pytest

from repro.solvers import FCG, Multadd, MultiplicativeMultigrid, PCG


class TestWFCycles:
    def test_w_cycle_at_least_as_good(self, hier_7pt, b_7pt):
        v = MultiplicativeMultigrid(hier_7pt, smoother="jacobi", weight=0.9)
        w = MultiplicativeMultigrid(hier_7pt, smoother="jacobi", weight=0.9, gamma=2)
        rv = v.solve(b_7pt, tmax=8).final_relres
        rw = w.solve(b_7pt, tmax=8).final_relres
        assert rw <= rv * 1.05

    def test_f_cycle_between_v_and_w(self, hier_7pt, b_7pt):
        f = MultiplicativeMultigrid(
            hier_7pt, smoother="jacobi", weight=0.9, gamma=2, f_cycle=True
        )
        res = f.solve(b_7pt, tmax=8)
        assert res.final_relres < 1e-3

    def test_gamma_one_unchanged(self, hier_7pt, b_7pt):
        # Explicit gamma=1 must equal the default V-cycle exactly.
        a = MultiplicativeMultigrid(hier_7pt, smoother="jacobi", weight=0.9)
        b_ = MultiplicativeMultigrid(hier_7pt, smoother="jacobi", weight=0.9, gamma=1)
        x0 = np.zeros(a.n)
        assert np.allclose(a.cycle(x0, b_7pt), b_.cycle(x0, b_7pt))

    def test_invalid_gamma(self, hier_7pt):
        with pytest.raises(ValueError):
            MultiplicativeMultigrid(hier_7pt, gamma=0)


class TestFCG:
    def test_plain_fcg_matches_cg_on_fixed_precond(self, A_7pt, b_7pt):
        # With a fixed SPD preconditioner FCG and PCG should take a
        # comparable number of iterations.
        d = A_7pt.diagonal()
        precond = lambda r: r / d  # noqa: E731
        fcg = FCG(A_7pt, precond).solve(b_7pt, tol=1e-8, maxiter=1000)
        pcg = PCG(A_7pt, precond).solve(b_7pt, tol=1e-8, maxiter=1000)
        assert fcg.final_relres < 1e-8
        assert abs(fcg.cycles - pcg.cycles) <= max(3, 0.2 * pcg.cycles)

    def test_async_preconditioner_converges(self, hier_7pt_agg, b_7pt):
        ma = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        fcg = FCG.with_async_preconditioner(ma, tmax=1, alpha=0.5, seed=0)
        res = fcg.solve(b_7pt, tol=1e-9, maxiter=100)
        assert res.final_relres < 1e-9
        assert res.cycles < 30

    def test_async_preconditioner_beats_unpreconditioned(self, hier_7pt_agg, b_7pt, A_7pt):
        ma = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        fcg = FCG.with_async_preconditioner(ma, tmax=1, seed=1)
        plain = FCG(A_7pt).solve(b_7pt, tol=1e-8, maxiter=2000)
        pre = fcg.solve(b_7pt, tol=1e-8, maxiter=200)
        assert pre.cycles < plain.cycles

    def test_varying_preconditioner_changes_runs(self, hier_7pt_agg, b_7pt):
        # Different seeds => different schedules => (slightly)
        # different iteration paths — the flexibility being exercised.
        ma = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        r1 = FCG.with_async_preconditioner(ma, seed=1, alpha=0.2).solve(b_7pt, tol=1e-10)
        r2 = FCG.with_async_preconditioner(ma, seed=2, alpha=0.2).solve(b_7pt, tol=1e-10)
        assert r1.residual_history != r2.residual_history

    def test_invalid_mmax(self, A_7pt):
        with pytest.raises(ValueError):
            FCG(A_7pt, mmax=0)

    def test_maxiter_respected(self, A_7pt, b_7pt):
        res = FCG(A_7pt).solve(b_7pt, tol=1e-16, maxiter=4)
        assert res.cycles == 4
