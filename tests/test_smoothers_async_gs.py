"""Unit tests for the asynchronous Gauss-Seidel smoother."""

import numpy as np
import pytest

from repro.smoothers import AsyncGS, HybridJGS, make_smoother


class TestAsyncGS:
    def test_sweep_reduces_residual(self, A_7pt, b_7pt):
        s = AsyncGS(A_7pt, nblocks=8, seed=0)
        x = s.sweep(np.zeros(A_7pt.shape[0]), b_7pt, nsweeps=10)
        assert np.linalg.norm(b_7pt - A_7pt @ x) < np.linalg.norm(b_7pt)

    def test_nondeterministic_across_calls(self, A_7pt, b_7pt):
        s = AsyncGS(A_7pt, nblocks=8, seed=0)
        x1 = s.sweep(np.zeros(A_7pt.shape[0]), b_7pt)
        x2 = s.sweep(np.zeros(A_7pt.shape[0]), b_7pt)
        assert not np.allclose(x1, x2)

    def test_seed_reproducible(self, A_7pt, b_7pt):
        s1 = AsyncGS(A_7pt, nblocks=8, seed=5)
        s2 = AsyncGS(A_7pt, nblocks=8, seed=5)
        assert np.allclose(
            s1.sweep(np.zeros(A_7pt.shape[0]), b_7pt),
            s2.sweep(np.zeros(A_7pt.shape[0]), b_7pt),
        )

    def test_chunk_one_chaotic_gs_converges(self, A_1d):
        # With chunk=1 every relaxation sees all previous updates — a
        # strict chaotic Gauss-Seidel.  Chazan-Miranker applies
        # (rho(|G_jacobi|) = cos(pi h) < 1), so the iteration converges
        # for every interleaving.
        # Use a diagonally-dominated variant so the smoother's own
        # asymptotic rate is fast and the test is about the chaotic
        # schedule, not about 1-D Laplacian smoothness.
        import scipy.sparse as sp

        A = (A_1d + sp.identity(A_1d.shape[0])).tocsr()
        b = np.ones(A.shape[0])
        for seed in range(5):
            s = AsyncGS(A, nblocks=4, chunk=1, seed=seed)
            x = s.sweep(np.zeros_like(b), b, nsweeps=60)
            rel = np.linalg.norm(b - A @ x) / np.linalg.norm(b)
            assert rel < 1e-8

    def test_interleaving_covers_all_rows(self, A_7pt):
        s = AsyncGS(A_7pt, nblocks=4, chunk=16, seed=1)
        order = s._interleaved_chunks()
        rows = np.sort(
            np.concatenate([np.arange(*s._chunk_ranges[ci]) for ci in order])
        )
        assert np.array_equal(rows, np.arange(A_7pt.shape[0]))

    def test_blocks_stay_ordered_within(self, A_7pt):
        # A thread relaxes its own rows in order: within each block the
        # chunks appear in ascending row order.
        s = AsyncGS(A_7pt, nblocks=4, chunk=16, seed=2)
        order = s._interleaved_chunks()
        block_of = np.empty(A_7pt.shape[0], dtype=int)
        for bid, (lo, hi) in enumerate(s.blocks):
            block_of[lo:hi] = bid
        last_row = {}
        for ci in order:
            lo, hi = s._chunk_ranges[ci]
            bid = block_of[lo]
            if bid in last_row:
                assert lo > last_row[bid]
            last_row[bid] = hi - 1

    def test_chunk_update_is_gs_not_jacobi(self, A_elas):
        # The within-chunk relaxation must be a triangular (GS) solve:
        # on elasticity (rho(D^{-1}A) > 2) an undamped Jacobi chunk
        # update explodes within a few sweeps, while the GS mini-sweep
        # stays bounded (it barely converges — the matrix is extremely
        # ill-conditioned — but it must not blow up).
        b = np.ones(A_elas.shape[0])
        s = AsyncGS(A_elas, nblocks=4, chunk=32, seed=0)
        x = s.sweep(np.zeros_like(b), b, nsweeps=20)
        rel = np.linalg.norm(b - A_elas @ x) / np.linalg.norm(b)
        assert np.isfinite(rel) and rel < 2.0

    def test_async_gs_smooths_inside_multigrid_on_elasticity(self):
        # The smoother *role* is what matters: async GS inside a
        # V-cycle converges on elasticity (systems AMG), which the old
        # Jacobi-style chunk update could not do.
        from repro.experiments import paper_hierarchy
        from repro.problems import build_problem
        from repro.solvers import MultiplicativeMultigrid

        p = build_problem("mfem_elasticity", 5, rhs_seed=0)
        h = paper_hierarchy("mfem_elasticity", p.A)
        m = MultiplicativeMultigrid(h, smoother="async_gs", nblocks=4)
        res = m.solve(p.b, tmax=60)
        assert not res.diverged
        assert res.final_relres < 0.1

    def test_sync_minv_is_deterministic_hybrid(self, A_7pt):
        s = AsyncGS(A_7pt, nblocks=4, seed=0)
        h = HybridJGS(A_7pt, nblocks=4)
        r = np.ones(A_7pt.shape[0])
        assert np.allclose(s.sync_minv(r), h.minv(r))

    def test_invalid_chunk(self, A_7pt):
        with pytest.raises(ValueError):
            AsyncGS(A_7pt, chunk=0)

    def test_registry(self, A_7pt):
        s = make_smoother("async_gs", A_7pt, nblocks=2, chunk=8)
        assert isinstance(s, AsyncGS)

    def test_minv_is_one_async_sweep_zero_guess(self, A_7pt):
        s = AsyncGS(A_7pt, nblocks=4, seed=9)
        r = np.ones(A_7pt.shape[0])
        y = s.minv(r)
        # From a zero guess one sweep cannot be zero and must reduce
        # the error equation residual.
        assert np.linalg.norm(r - A_7pt @ y) < np.linalg.norm(r)
