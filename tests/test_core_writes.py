"""Unit tests for write policies (Section IV race handling)."""

import threading

import numpy as np
import pytest

from repro.core import AtomicWrite, LockWrite, UnsafeWrite, make_write_policy


@pytest.mark.parametrize("policy_name", ["lock", "atomic", "unsafe"])
class TestBasicSemantics:
    def test_add(self, policy_name):
        pol = make_write_policy(policy_name, 10)
        target = np.zeros(10)
        pol.add(target, np.arange(10.0))
        assert np.array_equal(target, np.arange(10.0))

    def test_assign_slice(self, policy_name):
        pol = make_write_policy(policy_name, 10)
        target = np.zeros(10)
        pol.assign_slice(target, 3, 7, np.full(4, 2.0))
        assert np.array_equal(target[3:7], np.full(4, 2.0))
        assert np.array_equal(target[:3], np.zeros(3))

    def test_read_copy(self, policy_name):
        pol = make_write_policy(policy_name, 5)
        src = np.arange(5.0)
        out = pol.read(src)
        out[:] = -1
        assert np.array_equal(src, np.arange(5.0))


class TestConcurrency:
    @pytest.mark.parametrize("policy_name", ["lock", "atomic"])
    def test_no_lost_updates(self, policy_name):
        # Many concurrent adders: a correct policy loses nothing.
        n = 2048
        pol = make_write_policy(policy_name, n)
        target = np.zeros(n)
        nthreads, reps = 8, 50

        def adder():
            for _ in range(reps):
                pol.add(target, np.ones(n))

        threads = [threading.Thread(target=adder) for _ in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert np.all(target == nthreads * reps)


class TestAtomicWrite:
    def test_stripe_count(self):
        pol = AtomicWrite(1000, stripe=256)
        assert pol.nstripes == 4

    def test_stripe_ranges_cover(self):
        pol = AtomicWrite(1000, stripe=300)
        spans = list(pol._ranges())
        assert spans[0][1] == 0
        assert spans[-1][2] == 1000
        total = sum(b - a for _, a, b in spans)
        assert total == 1000

    def test_partial_slice_ranges(self):
        pol = AtomicWrite(1000, stripe=100)
        spans = list(pol._ranges(250, 450))
        covered = sorted((a, b) for _, a, b in spans)
        assert covered[0][0] == 250 and covered[-1][1] == 450

    def test_invalid_stripe(self):
        with pytest.raises(ValueError):
            AtomicWrite(10, stripe=0)


class TestRegistry:
    def test_unknown(self):
        with pytest.raises(KeyError):
            make_write_policy("transactional", 10)

    def test_names(self):
        assert LockWrite(4).name == "lock"
        assert AtomicWrite(4).name == "atomic"
        assert UnsafeWrite(4).name == "unsafe"
