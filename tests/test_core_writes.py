"""Unit tests for write policies (Section IV race handling)."""

import threading

import numpy as np
import pytest

from repro.core import AtomicWrite, LockWrite, UnsafeWrite, make_write_policy


@pytest.mark.parametrize("policy_name", ["lock", "atomic", "unsafe"])
class TestBasicSemantics:
    def test_add(self, policy_name):
        pol = make_write_policy(policy_name, 10)
        target = np.zeros(10)
        pol.add(target, np.arange(10.0))
        assert np.array_equal(target, np.arange(10.0))

    def test_assign_slice(self, policy_name):
        pol = make_write_policy(policy_name, 10)
        target = np.zeros(10)
        pol.assign_slice(target, 3, 7, np.full(4, 2.0))
        assert np.array_equal(target[3:7], np.full(4, 2.0))
        assert np.array_equal(target[:3], np.zeros(3))

    def test_read_copy(self, policy_name):
        pol = make_write_policy(policy_name, 5)
        src = np.arange(5.0)
        out = pol.read(src)
        out[:] = -1
        assert np.array_equal(src, np.arange(5.0))


class TestConcurrency:
    @pytest.mark.parametrize("policy_name", ["lock", "atomic"])
    def test_no_lost_updates(self, policy_name):
        # Many concurrent adders: a correct policy loses nothing.
        n = 2048
        pol = make_write_policy(policy_name, n)
        target = np.zeros(n)
        nthreads, reps = 8, 50

        def adder():
            for _ in range(reps):
                pol.add(target, np.ones(n))

        threads = [threading.Thread(target=adder) for _ in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert np.all(target == nthreads * reps)


class TestInterleaving:
    """Consistency under a concurrent reader (Section IV semantics)."""

    def test_lock_reader_never_sees_half_applied_update(self):
        # LockWrite's contract: the whole-vector update is atomic, so a
        # reader observes either all of an add or none of it — every
        # read of a uniformly-incremented vector is itself uniform.
        n = 4096
        pol = LockWrite(n)
        target = np.zeros(n)
        stop = threading.Event()
        bad = []

        def writer():
            delta = np.ones(n)
            while not stop.is_set():
                pol.add(target, delta)

        def reader():
            for _ in range(300):
                snap = pol.read(target)
                if snap.min() != snap.max():
                    bad.append((snap.min(), snap.max()))
            stop.set()

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not bad, f"reader saw torn whole-vector updates: {bad[:3]}"

    def test_atomic_reader_sees_consistent_stripes(self):
        # AtomicWrite only promises per-stripe consistency: a concurrent
        # reader may see an update half-committed *across* stripes, but
        # never within one stripe.
        n, stripe = 4096, 512
        pol = AtomicWrite(n, stripe=stripe)
        target = np.zeros(n)
        stop = threading.Event()
        bad = []

        def writer():
            delta = np.ones(n)
            while not stop.is_set():
                pol.add(target, delta)

        def reader():
            for _ in range(300):
                snap = pol.read(target)
                for _, a, b in pol._ranges():
                    seg = snap[a:b]
                    if seg.min() != seg.max():
                        bad.append((a, b))
            stop.set()

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not bad, f"reader saw torn stripes: {bad[:3]}"

    def test_atomic_concurrent_adds_disjoint_slices(self):
        # Writers assigning disjoint slices through the same policy
        # never corrupt each other's region.
        n = 1024
        pol = AtomicWrite(n, stripe=128)
        target = np.zeros(n)
        nthreads = 4
        width = n // nthreads

        def assigner(i):
            lo, hi = i * width, (i + 1) * width
            for _ in range(100):
                pol.assign_slice(target, lo, hi, np.full(width, float(i + 1)))

        threads = [
            threading.Thread(target=assigner, args=(i,)) for i in range(nthreads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(nthreads):
            assert np.all(target[i * width : (i + 1) * width] == i + 1)


class TestAtomicWrite:
    def test_stripe_count(self):
        pol = AtomicWrite(1000, stripe=256)
        assert pol.nstripes == 4

    def test_stripe_ranges_cover(self):
        pol = AtomicWrite(1000, stripe=300)
        spans = list(pol._ranges())
        assert spans[0][1] == 0
        assert spans[-1][2] == 1000
        total = sum(b - a for _, a, b in spans)
        assert total == 1000

    def test_partial_slice_ranges(self):
        pol = AtomicWrite(1000, stripe=100)
        spans = list(pol._ranges(250, 450))
        covered = sorted((a, b) for _, a, b in spans)
        assert covered[0][0] == 250 and covered[-1][1] == 450

    def test_invalid_stripe(self):
        with pytest.raises(ValueError):
            AtomicWrite(10, stripe=0)


class TestRegistry:
    def test_unknown(self):
        with pytest.raises(KeyError):
            make_write_policy("transactional", 10)

    def test_names(self):
        assert LockWrite(4).name == "lock"
        assert AtomicWrite(4).name == "atomic"
        assert UnsafeWrite(4).name == "unsafe"
