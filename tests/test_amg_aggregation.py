"""Unit tests for smoothed-aggregation AMG (extension)."""

import numpy as np
import pytest

from repro.amg.aggregation import (
    rigid_body_modes,
    sa_strength,
    setup_sa_hierarchy,
    smoothed_prolongator,
    standard_aggregation,
    tentative_prolongator,
    _block_condense,
)
from repro.problems import random_rhs
from repro.problems.fem import elasticity_cantilever
from repro.solvers import Multadd, MultiplicativeMultigrid


@pytest.fixture(scope="module")
def elas_setup():
    A, mesh, free = elasticity_cantilever(5, 5, 5, length=2.0, return_mesh=True)
    free_nodes = free.reshape(-1, 3)[:, 0] // 3
    B = rigid_body_modes(mesh.nodes[free_nodes])
    return A, B


class TestSAStrength:
    def test_theta_zero_full_offdiag(self, A_7pt):
        S = sa_strength(A_7pt, theta=0.0)
        assert S.nnz == A_7pt.nnz - A_7pt.shape[0]

    def test_no_diagonal(self, A_7pt):
        S = sa_strength(A_7pt, theta=0.08)
        assert np.all(S.diagonal() == 0)

    def test_invalid_theta(self, A_7pt):
        with pytest.raises(ValueError):
            sa_strength(A_7pt, theta=1.0)


class TestAggregation:
    def test_every_node_assigned(self, A_7pt):
        S = sa_strength(A_7pt, theta=0.08)
        agg = standard_aggregation(S)
        assert np.all(agg >= 0)

    def test_aggregates_contiguous_ids(self, A_7pt):
        S = sa_strength(A_7pt, theta=0.08)
        agg = standard_aggregation(S)
        ids = np.unique(agg)
        assert np.array_equal(ids, np.arange(ids.size))

    def test_empty_graph_gives_singletons(self):
        import scipy.sparse as sp

        S = sp.csr_matrix((5, 5))
        agg = standard_aggregation(S)
        assert np.array_equal(agg, np.arange(5))

    def test_seed_aggregates_contain_neighborhood(self, A_1d):
        S = sa_strength(A_1d, theta=0.0)
        agg = standard_aggregation(S)
        # 1-D: pass-1 aggregates are triples (node + 2 neighbours).
        assert np.bincount(agg).max() >= 3


class TestBlockCondense:
    def test_shape(self, elas_setup):
        A, _ = elas_setup
        C = _block_condense(A, 3)
        assert C.shape[0] == A.shape[0] // 3

    def test_indivisible_raises(self, A_7pt):
        with pytest.raises(ValueError):
            _block_condense(A_7pt, 7)


class TestTentativeProlongator:
    def test_reproduces_nullspace_exactly(self, elas_setup):
        A, B = elas_setup
        C = _block_condense(A, 3)
        agg = standard_aggregation(sa_strength(C, 0.08))
        T, Bc = tentative_prolongator(agg, B, block_size=3)
        assert np.abs(T @ Bc - B).max() < 1e-12

    def test_orthonormal_columns(self, elas_setup):
        A, B = elas_setup
        C = _block_condense(A, 3)
        agg = standard_aggregation(sa_strength(C, 0.08))
        T, _ = tentative_prolongator(agg, B, block_size=3)
        G = (T.T @ T).toarray()
        assert np.allclose(G, np.eye(G.shape[0]), atol=1e-12)

    def test_scalar_constant_vector(self, A_7pt):
        S = sa_strength(A_7pt, theta=0.08)
        agg = standard_aggregation(S)
        T, Bc = tentative_prolongator(agg, np.ones((A_7pt.shape[0], 1)))
        assert np.abs(T @ Bc - 1.0).max() < 1e-12


class TestSmoothedProlongator:
    def test_denser_than_tentative(self, A_7pt):
        S = sa_strength(A_7pt, theta=0.08)
        agg = standard_aggregation(S)
        T, _ = tentative_prolongator(agg, np.ones((A_7pt.shape[0], 1)))
        P = smoothed_prolongator(A_7pt, T)
        assert P.nnz > T.nnz

    def test_explicit_omega(self, A_7pt):
        S = sa_strength(A_7pt, theta=0.08)
        agg = standard_aggregation(S)
        T, _ = tentative_prolongator(agg, np.ones((A_7pt.shape[0], 1)))
        P = smoothed_prolongator(A_7pt, T, omega=0.5)
        d = A_7pt.diagonal()
        import scipy.sparse as sp

        ref = T - sp.diags(0.5 / d) @ (A_7pt @ T)
        assert abs(P - ref.tocsr()).max() < 1e-12


class TestRigidBodyModes:
    def test_shape(self):
        B = rigid_body_modes(np.random.default_rng(0).standard_normal((10, 3)))
        assert B.shape == (30, 6)

    def test_in_elasticity_nullspace_before_clamping(self):
        from repro.problems.fem.assembly import assemble_vector_stiffness
        from repro.problems.fem.mesh import beam_mesh

        m = beam_mesh(3, 2, 2)
        A_full = assemble_vector_stiffness(m)
        B = rigid_body_modes(m.nodes)
        assert np.abs(A_full @ B).max() < 1e-9

    def test_bad_coords(self):
        with pytest.raises(ValueError):
            rigid_body_modes(np.zeros((4, 2)))


class TestSAHierarchy:
    def test_poisson_converges(self, A_7pt, b_7pt):
        h = setup_sa_hierarchy(A_7pt)
        m = MultiplicativeMultigrid(h, smoother="jacobi", weight=0.9)
        res = m.solve(b_7pt, tmax=20)
        assert res.final_relres < 1e-5

    def test_levels_spd(self, A_7pt):
        h = setup_sa_hierarchy(A_7pt)
        for lv in h.levels:
            w = np.linalg.eigvalsh(lv.A.toarray())
            assert w.min() > -1e-10

    def test_low_operator_complexity(self, A_7pt):
        h = setup_sa_hierarchy(A_7pt)
        assert h.operator_complexity() < 2.5

    def test_elasticity_with_rbm_converges(self, elas_setup):
        A, B = elas_setup
        h = setup_sa_hierarchy(A, B=B, block_size=3)
        b = random_rhs(A.shape[0], 0)
        m = MultiplicativeMultigrid(h, smoother="gs")
        res = m.solve(b, tmax=60)
        assert not res.diverged
        assert res.final_relres < 0.5

    def test_unsmoothed_variant(self, A_7pt, b_7pt):
        h_pa = setup_sa_hierarchy(A_7pt, smooth=False)
        h_sa = setup_sa_hierarchy(A_7pt, smooth=True)
        m_pa = MultiplicativeMultigrid(h_pa, smoother="jacobi", weight=0.9)
        m_sa = MultiplicativeMultigrid(h_sa, smoother="jacobi", weight=0.9)
        r_pa = m_pa.solve(b_7pt, tmax=15).final_relres
        r_sa = m_sa.solve(b_7pt, tmax=15).final_relres
        assert r_sa < r_pa  # smoothing the prolongator must help

    def test_solver_compatible_with_async_engine(self, A_7pt, b_7pt):
        from repro.core import run_async_engine

        h = setup_sa_hierarchy(A_7pt)
        ma = Multadd(h, smoother="jacobi", weight=0.9)
        res = run_async_engine(ma, b_7pt, tmax=20, seed=0)
        assert res.rel_residual < 1e-2

    def test_b_size_mismatch_raises(self, A_7pt):
        with pytest.raises(ValueError):
            setup_sa_hierarchy(A_7pt, B=np.ones((7, 1)))
