"""Property-based tests for solver-level invariants."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.amg import SetupOptions, setup_hierarchy
from repro.solvers import AFACx, Multadd, MultiplicativeMultigrid


@st.composite
def laplacian_2d(draw):
    n = draw(st.integers(4, 9))
    K = sp.diags([-np.ones(n - 1), 2 * np.ones(n), -np.ones(n - 1)], [-1, 0, 1])
    A = sp.kron(K, sp.identity(n)) + sp.kron(sp.identity(n), K)
    return A.tocsr(), draw(st.integers(0, 2**31 - 1))


class TestSolverProperties:
    @given(laplacian_2d())
    @settings(max_examples=15, deadline=None)
    def test_mult_monotone(self, arg):
        A, seed = arg
        h = setup_hierarchy(A, SetupOptions(aggressive_levels=0, seed=seed % 100))
        s = MultiplicativeMultigrid(h, smoother="jacobi", weight=0.9)
        rng = np.random.default_rng(seed)
        b = rng.uniform(-1, 1, A.shape[0])
        res = s.solve(b, tmax=8)
        hist = res.residual_history
        assert all(a >= b_ - 1e-13 for a, b_ in zip(hist, hist[1:]))

    @given(laplacian_2d())
    @settings(max_examples=15, deadline=None)
    def test_multadd_equivalence_random_problems(self, arg):
        # The equivalence theorem must hold for every hierarchy, not
        # just the fixture one.
        import copy

        from repro.amg.hierarchy import Hierarchy

        A, seed = arg
        h = setup_hierarchy(A, SetupOptions(aggressive_levels=0, seed=seed % 100))
        lvs = [copy.copy(lv) for lv in h.levels[:2]]
        lvs[-1] = copy.copy(lvs[-1])
        lvs[-1].P = None
        lvs[-1].R = None
        ht = Hierarchy(levels=lvs, options=h.options)
        rng = np.random.default_rng(seed)
        b = rng.uniform(-1, 1, A.shape[0])
        mult = MultiplicativeMultigrid(ht, smoother="jacobi", weight=0.9, symmetric=True)
        madd = Multadd(ht, smoother="jacobi", weight=0.9, lambda_mode="symmetrized")
        x0 = np.zeros(A.shape[0])
        x1, x2 = mult.cycle(x0, b), madd.cycle(x0, b)
        assert np.allclose(x1, x2, rtol=1e-10, atol=1e-12)

    @given(laplacian_2d())
    @settings(max_examples=10, deadline=None)
    def test_corrections_linear_afacx(self, arg):
        A, seed = arg
        h = setup_hierarchy(A, SetupOptions(aggressive_levels=0, seed=seed % 100))
        s = AFACx(h, smoother="jacobi", weight=0.9)
        rng = np.random.default_rng(seed)
        u, v = rng.standard_normal((2, A.shape[0]))
        k = s.ngrids - 1
        assert np.allclose(
            s.correction(k, u - 2 * v),
            s.correction(k, u) - 2 * s.correction(k, v),
            atol=1e-10,
        )

    @given(laplacian_2d())
    @settings(max_examples=10, deadline=None)
    def test_additive_cycle_decomposition(self, arg):
        A, seed = arg
        h = setup_hierarchy(A, SetupOptions(aggressive_levels=0, seed=seed % 100))
        s = Multadd(h, smoother="jacobi", weight=0.9)
        rng = np.random.default_rng(seed)
        b = rng.uniform(-1, 1, A.shape[0])
        x0 = rng.standard_normal(A.shape[0])
        r = b - A @ x0
        total = sum(s.correction(k, r) for k in range(s.ngrids))
        assert np.allclose(s.cycle(x0, b), x0 + total, atol=1e-11)
