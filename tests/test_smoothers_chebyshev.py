"""Unit tests for the Chebyshev smoother (extension)."""

import numpy as np
import pytest

from repro.smoothers import Chebyshev, make_smoother


class TestChebyshev:
    def test_sweep_reduces_residual(self, A_7pt, b_7pt):
        s = Chebyshev(A_7pt, degree=3)
        x = s.sweep(np.zeros(A_7pt.shape[0]), b_7pt, nsweeps=3)
        assert np.linalg.norm(b_7pt - A_7pt @ x) < 0.5 * np.linalg.norm(b_7pt)

    def test_higher_degree_smooths_better(self, A_7pt, b_7pt):
        res = []
        for deg in (1, 4):
            s = Chebyshev(A_7pt, degree=deg)
            x = s.sweep(np.zeros(A_7pt.shape[0]), b_7pt, nsweeps=2)
            res.append(np.linalg.norm(b_7pt - A_7pt @ x))
        assert res[1] < res[0]

    def test_linear_operator(self, A_7pt):
        # minv is a fixed polynomial: must be exactly linear.
        s = Chebyshev(A_7pt, degree=3)
        rng = np.random.default_rng(0)
        u, v = rng.standard_normal((2, A_7pt.shape[0]))
        lhs = s.minv(2.0 * u + 3.0 * v)
        rhs = 2.0 * s.minv(u) + 3.0 * s.minv(v)
        assert np.allclose(lhs, rhs)

    def test_symmetric_operator(self, A_7pt):
        # p(D^{-1}A)D^{-1} is symmetric: <Bu, v> == <u, Bv>.
        s = Chebyshev(A_7pt, degree=2)
        rng = np.random.default_rng(1)
        u, v = rng.standard_normal((2, A_7pt.shape[0]))
        assert float(s.minv(u) @ v) == pytest.approx(float(u @ s.minv(v)), rel=1e-10)

    def test_lmax_override(self, A_7pt):
        s = Chebyshev(A_7pt, degree=2, lmax=2.0)
        assert s.lmax == 2.0

    def test_invalid_params(self, A_7pt):
        with pytest.raises(ValueError):
            Chebyshev(A_7pt, degree=0)
        with pytest.raises(ValueError):
            Chebyshev(A_7pt, alpha=0.5)

    def test_m_apply_not_available(self, A_7pt):
        s = Chebyshev(A_7pt)
        with pytest.raises(NotImplementedError):
            s.m_apply(np.ones(A_7pt.shape[0]))

    def test_registry(self, A_7pt):
        assert isinstance(make_smoother("chebyshev", A_7pt), Chebyshev)
