"""Cross-module integration tests: full pipelines end to end.

Each test runs a complete paper workflow — problem generation, AMG
setup, solver construction, (a)synchronous execution, measurement —
on scaled-down sizes, checking the qualitative findings the paper
reports.
"""

import numpy as np

from repro import (
    AFACx,
    Multadd,
    MultiplicativeMultigrid,
    SetupOptions,
    build_problem,
    setup_hierarchy,
)
from repro.core import (
    MachineParams,
    PerfModel,
    ScheduleParams,
    run_async_engine,
    run_threaded,
    simulate_semi_async,
)
from repro.experiments import TABLE1_METHODS, table1_entry


class TestPaperFindings:
    """Scaled-down versions of the paper's headline claims."""

    def test_grid_size_independent_convergence_async(self):
        """Fig 4: async Multadd relres after 20 cycles is ~flat in n."""
        rels = []
        for size in (10, 14):  # both multi-level hierarchies
            p = build_problem("7pt", size, rhs_seed=1)
            h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
            ma = Multadd(h, smoother="jacobi", weight=0.9)
            vals = [
                run_async_engine(
                    ma, p.b, tmax=20, seed=s, alpha=0.5
                ).rel_residual
                for s in range(2)
            ]
            rels.append(np.mean(vals))
        # Flatness: residual does not degrade by more than ~an order
        # of magnitude as the grid grows.
        assert rels[-1] < rels[0] * 10
        assert all(r < 1e-2 for r in rels)

    def test_local_res_beats_global_res(self):
        """Fig 4/5: local-res converges faster than global-res."""
        p = build_problem("27pt", 8, rhs_seed=2)
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
        ma = Multadd(h, smoother="jacobi", weight=0.9)
        loc = np.mean(
            [
                run_async_engine(
                    ma, p.b, tmax=20, rescomp="local", seed=s, alpha=0.3
                ).rel_residual
                for s in range(3)
            ]
        )
        glo = np.mean(
            [
                run_async_engine(
                    ma, p.b, tmax=20, rescomp="global", seed=s, alpha=0.3
                ).rel_residual
                for s in range(3)
            ]
        )
        assert loc < glo

    def test_async_gs_best_smoother(self):
        """Table I: async GS needs the fewest V-cycles.

        Compare smoothers by relres after a fixed cycle budget on the
        synchronous solver (the paper's V-cycle ordering).
        """
        p = build_problem("7pt", 8, rhs_seed=3)
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
        rel = {}
        for smoother, kw in [
            ("l1_jacobi", {}),
            ("async_gs", {"nblocks": 4, "lambda_mode": "sweep"}),
        ]:
            ma = Multadd(h, smoother=smoother, **kw)
            rel[smoother] = ma.solve(p.b, tmax=15).final_relres
        assert rel["async_gs"] < rel["l1_jacobi"]

    def test_fig6_crossover(self):
        """Fig 6: Mult wins at few threads, async Multadd at many."""
        p = build_problem("7pt", 10, rhs_seed=4)
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
        mult = MultiplicativeMultigrid(h, smoother="jacobi", weight=0.9)
        ma = Multadd(h, smoother="jacobi", weight=0.9)
        pm = PerfModel(MachineParams(jitter=0.0))
        t_mult_1 = pm.time_mult(mult, 1, 20)
        t_async_1, _ = pm.time_async(ma, 1, 20)
        t_mult_272 = pm.time_mult(mult, 272, 20)
        t_async_272, _ = pm.time_async(ma, 272, 20)
        assert t_mult_1 < t_async_1
        assert t_async_272 < t_mult_272

    def test_multadd_beats_afacx_cycles(self):
        """Table I: Multadd needs fewer V-cycles than AFACx."""
        p = build_problem("7pt", 8, rhs_seed=5)
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
        ma = Multadd(h, smoother="jacobi", weight=0.9).solve(p.b, 20).final_relres
        af = AFACx(h, smoother="jacobi", weight=0.9).solve(p.b, 20).final_relres
        assert ma < af

    def test_semi_async_alpha_ladder(self):
        """Fig 1: decreasing alpha slows but does not break convergence."""
        p = build_problem("27pt", 7, rhs_seed=6)
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
        ma = Multadd(h, smoother="jacobi", weight=0.9)
        rels = []
        for alpha in (0.9, 0.5, 0.1):
            vals = [
                simulate_semi_async(
                    ma, p.b, ScheduleParams(alpha=alpha, delta=0, seed=s)
                ).rel_residual
                for s in range(3)
            ]
            rels.append(np.mean(vals))
        assert rels[0] <= rels[-1]
        assert rels[-1] < 1e-2


class TestFullPipelines:
    def test_table1_entry_pipeline_all_methods(self):
        """Every Table-I method spec produces a sane entry."""
        p = build_problem("7pt", 7, rhs_seed=0)
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
        for spec in TABLE1_METHODS:
            e = table1_entry(
                spec,
                h,
                p.b,
                "jacobi",
                nthreads=68,
                tol=1e-5,
                runs=1,
                max_cycles=150,
                alpha=0.7,
                weight=0.9,
            )
            if not e.diverged:
                assert e.time > 0
                assert e.corrects >= e.vcycles - 1e-9

    def test_elasticity_pipeline(self):
        from repro.experiments import paper_hierarchy

        p = build_problem("mfem_elasticity", 6, rhs_seed=0)
        h = paper_hierarchy("mfem_elasticity", p.A)
        assert h.levels[0].functions is not None  # systems AMG in effect
        ma = Multadd(h, smoother="jacobi", weight=0.5)
        res = run_async_engine(ma, p.b, tmax=15, seed=0, alpha=0.5)
        assert np.isfinite(res.rel_residual)
        assert res.rel_residual < 1.0

    def test_fem_laplace_pipeline_threaded(self):
        p = build_problem("mfem_laplace", 8, rhs_seed=0)
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=0))
        ma = Multadd(h, smoother="jacobi", weight=0.5)
        res = run_threaded(ma, p.b, tmax=15, criterion="criterion2")
        assert res.rel_residual < 0.5
        assert not res.errors

    def test_public_api_quickstart(self):
        """The README quickstart must work verbatim."""
        from repro import build_problem, setup_hierarchy, SetupOptions, Multadd
        from repro.core import run_async_engine

        p = build_problem("7pt", 12)
        h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
        solver = Multadd(h, smoother="jacobi", weight=0.9)
        result = run_async_engine(solver, p.b, tmax=20)
        assert result.rel_residual < 1e-3
