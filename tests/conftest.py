"""Shared fixtures: small, fast test problems and hierarchies.

Session-scoped because AMG setup is the slow part; tests must not
mutate fixture objects (solvers copy what they change).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.amg import SetupOptions, setup_hierarchy
from repro.problems import laplacian_7pt, laplacian_27pt, random_rhs
from repro.problems.fem import elasticity_cantilever, laplace_on_ball


def poisson1d(n: int) -> sp.csr_matrix:
    """1-D Dirichlet Laplacian — the smallest meaningful SPD matrix."""
    return sp.diags(
        [-np.ones(n - 1), 2.0 * np.ones(n), -np.ones(n - 1)],
        offsets=[-1, 0, 1],
        format="csr",
    ).tocsr()


@pytest.fixture(scope="session")
def A_1d():
    return poisson1d(32)


@pytest.fixture(scope="session")
def A_7pt():
    return laplacian_7pt(8)  # 512 rows


@pytest.fixture(scope="session")
def A_27pt():
    return laplacian_27pt(8)


@pytest.fixture(scope="session")
def A_ball():
    return laplace_on_ball(10)


@pytest.fixture(scope="session")
def A_elas():
    return elasticity_cantilever(8, 3, 3)


@pytest.fixture(scope="session")
def b_7pt(A_7pt):
    return random_rhs(A_7pt.shape[0], seed=7)


@pytest.fixture(scope="session")
def b_27pt(A_27pt):
    return random_rhs(A_27pt.shape[0], seed=27)


@pytest.fixture(scope="session")
def hier_7pt(A_7pt):
    return setup_hierarchy(A_7pt, SetupOptions(aggressive_levels=0, max_coarse=20))


@pytest.fixture(scope="session")
def hier_7pt_agg(A_7pt):
    return setup_hierarchy(A_7pt, SetupOptions(aggressive_levels=1, max_coarse=20))


@pytest.fixture(scope="session")
def hier_27pt(A_27pt):
    return setup_hierarchy(A_27pt, SetupOptions(aggressive_levels=1, max_coarse=20))


@pytest.fixture(scope="session")
def hier_ball(A_ball):
    return setup_hierarchy(A_ball, SetupOptions(aggressive_levels=0, max_coarse=20))


@pytest.fixture(scope="session")
def hier_elas(A_elas):
    return setup_hierarchy(
        A_elas,
        SetupOptions(aggressive_levels=0, strength_norm="abs", max_coarse=30),
    )
