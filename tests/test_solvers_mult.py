"""Unit tests for the multiplicative V-cycle solver (Mult baseline)."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.linalg import rel_residual_norm
from repro.solvers import MultiplicativeMultigrid


class TestVcycle:
    def test_converges_7pt(self, hier_7pt, b_7pt):
        s = MultiplicativeMultigrid(hier_7pt, smoother="jacobi", weight=0.9)
        res = s.solve(b_7pt, tmax=20)
        assert res.final_relres < 1e-5
        assert not res.diverged

    def test_grid_independent_rate(self):
        # The defining multigrid property: rates do not degrade with n.
        from repro.amg import SetupOptions, setup_hierarchy
        from repro.problems import laplacian_7pt, random_rhs

        rates = []
        for n in (6, 12):
            A = laplacian_7pt(n)
            h = setup_hierarchy(A, SetupOptions(aggressive_levels=0))
            s = MultiplicativeMultigrid(h, smoother="jacobi", weight=0.9)
            res = s.solve(random_rhs(A.shape[0], seed=0), tmax=10)
            rates.append(res.residual_history[-1] / res.residual_history[-2])
        assert rates[1] < max(2.5 * rates[0], 0.7)

    def test_monotone_convergence(self, hier_7pt, b_7pt):
        s = MultiplicativeMultigrid(hier_7pt, smoother="jacobi", weight=0.9)
        res = s.solve(b_7pt, tmax=15)
        hist = np.array(res.residual_history)
        assert np.all(np.diff(hist) < 1e-12)

    def test_converges_to_exact_solution(self, hier_7pt, b_7pt, A_7pt):
        s = MultiplicativeMultigrid(hier_7pt, smoother="jacobi", weight=0.9)
        res = s.solve(b_7pt, tmax=60)
        x_star = spla.spsolve(A_7pt.tocsc(), b_7pt)
        assert np.allclose(res.x, x_star, atol=1e-6)

    def test_v21_faster_than_v11(self, hier_7pt, b_7pt):
        s11 = MultiplicativeMultigrid(hier_7pt, smoother="jacobi", weight=0.9)
        s22 = MultiplicativeMultigrid(
            hier_7pt, smoother="jacobi", weight=0.9, pre_sweeps=2, post_sweeps=2
        )
        r11 = s11.solve(b_7pt, tmax=8).final_relres
        r22 = s22.solve(b_7pt, tmax=8).final_relres
        assert r22 < r11

    def test_nonzero_initial_guess(self, hier_7pt, b_7pt, A_7pt):
        s = MultiplicativeMultigrid(hier_7pt, smoother="jacobi", weight=0.9)
        x0 = np.random.default_rng(0).standard_normal(A_7pt.shape[0])
        res = s.solve(b_7pt, tmax=20, x0=x0)
        assert res.final_relres < 1e-4

    def test_symmetric_variant_converges(self, hier_7pt, b_7pt):
        s = MultiplicativeMultigrid(
            hier_7pt, smoother="hybrid_jgs", nblocks=4, symmetric=True
        )
        res = s.solve(b_7pt, tmax=20)
        assert res.final_relres < 1e-4

    def test_gs_smoother_faster_than_jacobi(self, hier_7pt, b_7pt):
        sj = MultiplicativeMultigrid(hier_7pt, smoother="jacobi", weight=0.9)
        sg = MultiplicativeMultigrid(hier_7pt, smoother="gs")
        assert sg.solve(b_7pt, tmax=8).final_relres < sj.solve(b_7pt, tmax=8).final_relres

    def test_invalid_sweeps(self, hier_7pt):
        with pytest.raises(ValueError):
            MultiplicativeMultigrid(hier_7pt, pre_sweeps=-1)

    def test_cycle_flops_positive(self, hier_7pt):
        s = MultiplicativeMultigrid(hier_7pt, smoother="jacobi")
        assert s.cycle_flops() > 0

    def test_elasticity_converges(self, hier_elas, A_elas):
        from repro.problems import random_rhs

        b = random_rhs(A_elas.shape[0], seed=2)
        s = MultiplicativeMultigrid(hier_elas, smoother="jacobi", weight=0.5)
        res = s.solve(b, tmax=60)
        # Classical AMG on elasticity converges but slowly (the paper's
        # Table I needs ~190 cycles to 1e-9 on this set); require
        # steady monotone progress rather than a tight tolerance.
        assert not res.diverged
        assert res.final_relres < 0.5
        hist = np.array(res.residual_history)
        assert np.all(np.diff(hist) < 1e-12)

    def test_history_length(self, hier_7pt, b_7pt):
        s = MultiplicativeMultigrid(hier_7pt, smoother="jacobi", weight=0.9)
        res = s.solve(b_7pt, tmax=7)
        assert len(res.residual_history) == 7
        assert res.cycles == 7
