"""Tests for the RPR project linter (repro.analysis)."""

from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, lint_source, run_linter, rule_by_code

FIXTURE = Path(__file__).parent / "fixtures" / "rule_violations.py"
ALL_CODES = (
    "RPR001",
    "RPR002",
    "RPR003",
    "RPR004",
    "RPR005",
    "RPR006",
    "RPR007",
    "RPR008",
    "RPR009",
    "RPR010",
    "RPR011",
    "RPR012",
    "RPR013",
)


def lint_fixture(**kwargs):
    source = FIXTURE.read_text(encoding="utf-8")
    return lint_source(source, "fixtures/rule_violations.py", ignore_scope=True, **kwargs)


class TestRuleRegistry:
    def test_all_rules_present(self):
        assert sorted(r.code for r in ALL_RULES) == sorted(ALL_CODES)

    def test_metadata_complete(self):
        for rule in ALL_RULES:
            assert rule.code.startswith("RPR")
            assert rule.name
            assert rule.description
            assert rule.hint, f"{rule.code} has no fixit hint"

    def test_rule_by_code(self):
        assert rule_by_code("RPR003").name == "seeded-generator-rng"
        with pytest.raises(KeyError):
            rule_by_code("RPR999")


class TestFixtureViolations:
    """The seeded fixture is flagged by every rule."""

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_rule_fires(self, code):
        active, _ = lint_fixture()
        assert any(f.code == code for f in active), f"{code} did not fire"

    def test_rpr001_counts(self):
        active, _ = lint_fixture()
        assert len([f for f in active if f.code == "RPR001"]) == 3

    def test_rpr002_both_patterns(self):
        active, _ = lint_fixture()
        msgs = [f.message for f in active if f.code == "RPR002"]
        assert any("nested" in m for m in msgs)
        assert any("descending" in m for m in msgs)

    def test_rpr005_both_contracts(self):
        active, _ = lint_fixture()
        msgs = [f.message for f in active if f.code == "RPR005"]
        assert any("missing required result field" in m for m in msgs)
        assert any("mutable default" in m for m in msgs)

    def test_rpr006_print_and_logging(self):
        active, _ = lint_fixture()
        msgs = [f.message for f in active if f.code == "RPR006"]
        assert len(msgs) == 3  # print, bound logger, logging module
        assert any("print()" in m for m in msgs)
        assert any("log.debug()" in m for m in msgs)
        assert any("logging.info()" in m for m in msgs)

    def test_rpr006_scoped_to_executors(self):
        source = "for i in range(3):\n    print(i)\n"
        active, _ = lint_source(source, "utils/plotting.py")
        assert not any(f.code == "RPR006" for f in active)
        active, _ = lint_source(source, "core/engine.py")
        assert any(f.code == "RPR006" for f in active)

    def test_rpr006_ignores_emission_outside_loops(self):
        source = "print('run header')\nfor i in range(3):\n    x = i\n"
        active, _ = lint_source(source, "core/engine.py")
        assert not any(f.code == "RPR006" for f in active)

    def test_rpr007_constructors_and_conversion(self):
        active, _ = lint_fixture()
        msgs = [f.message for f in active if f.code == "RPR007"]
        # for-loop: zeros, repeat, arange; while-loop: empty, tocsr.
        assert len(msgs) == 5
        assert any("np.zeros()" in m for m in msgs)
        assert any("np.repeat()" in m for m in msgs)
        assert any("np.arange()" in m for m in msgs)
        assert any("np.empty()" in m for m in msgs)
        assert any(".tocsr()" in m for m in msgs)

    def test_rpr007_ignores_hoisted_allocation(self):
        source = (
            "import numpy as np\n"
            "buf = np.zeros(100)\n"
            "for i in range(3):\n"
            "    buf[i] = i\n"
        )
        active, _ = lint_source(source, "core/engine.py")
        assert not any(f.code == "RPR007" for f in active)

    def test_rpr007_scoped_to_executors(self):
        source = "import numpy as np\nfor i in range(3):\n    v = np.zeros(8)\n"
        active, _ = lint_source(source, "solvers/multadd.py")
        assert not any(f.code == "RPR007" for f in active)
        active, _ = lint_source(source, "distributed/simulator.py")
        assert any(f.code == "RPR007" for f in active)

    def test_rpr007_tracks_numpy_alias(self):
        source = "import numpy\nwhile True:\n    v = numpy.empty(8)\n"
        active, _ = lint_source(source, "core/threaded.py")
        assert any(f.code == "RPR007" for f in active)

    def test_rpr008_counts(self):
        active, _ = lint_fixture()
        msgs = [f.message for f in active if f.code == "RPR008"]
        # grid_down subscript, mm.alive subscript, mm.rank_state
        # attribute rebind, mm.last_heard augmented subscript.
        assert len(msgs) == 4
        assert any("'grid_down'" in m for m in msgs)
        assert any("'rank_state'" in m for m in msgs)

    def test_rpr008_allows_manager_internals(self):
        source = (
            "class MembershipManager:\n"
            "    def mark_grid_down(self, g):\n"
            "        self.grid_down[g] = True\n"
        )
        active, _ = lint_source(source, "distributed/elastic.py")
        assert not any(f.code == "RPR008" for f in active)

    def test_rpr008_scoped_to_distributed(self):
        source = "def f(mm):\n    mm.alive[0] = False\n"
        active, _ = lint_source(source, "core/engine.py")
        assert not any(f.code == "RPR008" for f in active)
        active, _ = lint_source(source, "distributed/simulator.py")
        assert any(f.code == "RPR008" for f in active)

    def test_rpr009_counts_and_interprocedural_reach(self):
        active, _ = lint_fixture()
        msgs = [f.message for f in active if f.code == "RPR009"]
        # The raw write inside the escaping worker closure, plus the
        # write inside the helper the worker hands the array to.
        assert len(msgs) == 2
        assert any("'resid'" in m and "escaping array" in m for m in msgs)
        assert any("'iterate'" in m and "shared argument" in m for m in msgs)

    def test_rpr010_cycle_both_directions(self):
        active, _ = lint_fixture()
        msgs = [f.message for f in active if f.code == "RPR010"]
        assert len(msgs) == 2
        assert all("opposite order" in m for m in msgs)

    def test_rpr011_counts_and_kinds(self):
        active, _ = lint_fixture()
        msgs = [f.message for f in active if f.code == "RPR011"]
        # on_snapshot_blocking: sleep, open, .write, .sendall, .acquire;
        # FixtureStallDetector.update: open, .readline; _check: sleep.
        assert len(msgs) == 8
        assert any("time.sleep()" in m for m in msgs)
        assert any("open()" in m for m in msgs)
        assert any(".write()" in m for m in msgs)
        assert any(".sendall()" in m for m in msgs)
        assert any(".acquire()" in m for m in msgs)
        assert any(".readline()" in m for m in msgs)

    def test_rpr011_scoped_to_observe_live_modules(self):
        source = "import time\ndef on_snapshot(s):\n    time.sleep(1)\n"
        active, _ = lint_source(source, "core/engine.py")
        assert not any(f.code == "RPR011" for f in active)
        active, _ = lint_source(source, "observe/live.py")
        assert any(f.code == "RPR011" for f in active)

    def test_rpr011_ignores_pure_detectors_and_plain_defs(self):
        source = (
            "import time\n"
            "class QuietDetector:\n"
            "    def update(self, snap):\n"
            "        return max(snap)\n"
            "def writer_thread(fh):\n"
            "    # not a callback: I/O is allowed in the sinks.\n"
            "    fh.write('x')\n"
            "    time.sleep(0.1)\n"
        )
        active, _ = lint_source(source, "observe/live.py")
        assert not any(f.code == "RPR011" for f in active)

    def test_rpr011_bare_sleep_import(self):
        source = "from time import sleep\ndef _on_alert(a):\n    sleep(0.5)\n"
        active, _ = lint_source(source, "observe/alerts.py")
        msgs = [f.message for f in active if f.code == "RPR011"]
        assert len(msgs) == 1
        assert "sleep()" in msgs[0]

    def test_rpr012_module_state_and_rogue_views(self):
        active, _ = lint_fixture()
        msgs = [f.message for f in active if f.code == "RPR012"]
        # Module-level: the _locks listcomp, three bare Lock()s, the
        # RPR012 block's dict/list/Lock/np.zeros; plus one rogue
        # np.frombuffer outside SharedVectors.
        assert len(msgs) == 9
        assert sum("synchronization primitive" in m for m in msgs) == 4
        assert any("np.zeros()" in m for m in msgs)
        assert sum("np.frombuffer outside SharedVectors" in m for m in msgs) == 1

    def test_rpr012_scoped_to_parallel_module(self):
        source = "_cache = {}\n"
        active, _ = lint_source(source, "core/threaded.py")
        assert not any(f.code == "RPR012" for f in active)
        active, _ = lint_source(source, "core/parallel.py")
        assert any(f.code == "RPR012" for f in active)

    def test_rpr012_allows_immutable_constants_and_local_state(self):
        source = (
            "import numpy as np\n"
            "_COUNTERS = ('a', 'b')\n"
            "_EXIT = 17\n"
            "class SharedVectors:\n"
            "    def __init__(self, buf):\n"
            "        self.x = np.frombuffer(buf)\n"
            "def worker():\n"
            "    local = {}\n"
            "    buf = np.zeros(4)\n"
            "    return local, buf\n"
        )
        active, _ = lint_source(source, "core/parallel.py")
        assert not any(f.code == "RPR012" for f in active)

    def test_rpr013_queues_and_blocking_calls(self):
        active, _ = lint_fixture()
        msgs = [f.message for f in active if f.code == "RPR013"]
        # 5 unbounded constructions + 4 unbounded blocking calls in
        # the RPR013 blocks, plus the bare .acquire() seeded for
        # RPR011 (double-flagged here under ignore_scope).
        assert len(msgs) == 10
        assert sum("SimpleQueue() cannot be bounded" in m for m in msgs) == 1
        assert sum("unbounded Queue()" in m for m in msgs) == 1
        assert sum("unbounded LifoQueue()" in m for m in msgs) == 1
        assert sum("unbounded PriorityQueue()" in m for m in msgs) == 1
        assert sum("unbounded JoinableQueue()" in m for m in msgs) == 1
        assert any(".get() with no timeout" in m for m in msgs)
        assert any(".join() with no timeout" in m for m in msgs)
        assert any(".wait() with no timeout" in m for m in msgs)

    def test_rpr013_allows_bounded_and_nonblocking(self):
        source = (
            "import queue\n"
            "def f(q, t, lock, d, parts):\n"
            "    good = queue.Queue(maxsize=64)\n"
            "    item = q.get(timeout=0.5)\n"
            "    t.join(2.0)\n"
            "    lock.acquire(blocking=False)\n"
            "    return good, item, d.get('key'), ', '.join(parts)\n"
        )
        active, _ = lint_source(source, "repro/serve/admission.py")
        assert not any(f.code == "RPR013" for f in active)

    def test_rpr013_scoped_to_serve(self):
        source = "import queue\nq = queue.Queue()\n"
        active, _ = lint_source(source, "core/engine.py")
        assert not any(f.code == "RPR013" for f in active)
        active, _ = lint_source(source, "repro/serve/server.py")
        assert any(f.code == "RPR013" for f in active)

    def test_findings_carry_hint_and_location(self):
        active, _ = lint_fixture()
        for f in active:
            assert f.line > 0
            assert f.path == "fixtures/rule_violations.py"
            formatted = f.format()
            assert f.code in formatted


class TestScope:
    def test_rpr001_scoped_to_executors(self):
        source = "def f(x, e):\n    x += e\n"
        active, _ = lint_source(source, "some/other/module.py")
        assert not any(f.code == "RPR001" for f in active)
        active, _ = lint_source(source, "core/threaded.py")
        assert any(f.code == "RPR001" for f in active)


class TestSuppression:
    SRC = "import time\nt = time.time()  # repro: noqa[RPR004] {just}\n"

    def test_justified_noqa_suppresses(self):
        active, suppressed = lint_source(
            self.SRC.format(just="boot banner, not a duration"), "m.py", strict=True
        )
        assert not any(f.code == "RPR004" for f in active)
        sup = [f for f in suppressed if f.code == "RPR004"]
        assert len(sup) == 1
        assert sup[0].justification == "boot banner, not a duration"

    def test_bare_noqa_suppresses_all_codes_non_strict(self):
        source = "import time\nt = time.time()  # repro: noqa\n"
        active, suppressed = lint_source(source, "m.py", strict=False)
        assert not active
        assert suppressed

    def test_strict_rejects_unjustified_noqa(self):
        source = "import time\nt = time.time()  # repro: noqa[RPR004]\n"
        active, suppressed = lint_source(source, "m.py", strict=True)
        assert not suppressed
        assert len(active) == 1
        assert "suppression rejected" in active[0].message

    def test_noqa_for_other_code_does_not_suppress(self):
        source = "import time\nt = time.time()  # repro: noqa[RPR003] wrong code\n"
        active, _ = lint_source(source, "m.py", strict=True)
        assert any(f.code == "RPR004" for f in active)

    def test_noqa_on_wrapped_statement_tail(self):
        # The statement header wraps; the noqa sits on its last
        # physical line, not the line the finding anchors to.
        source = (
            "import time\n"
            "t = time.time(\n"
            ")  # repro: noqa[RPR004] boot banner, not a duration\n"
        )
        active, suppressed = lint_source(source, "m.py", strict=True)
        assert not any(f.code == "RPR004" for f in active)
        assert any(f.code == "RPR004" for f in suppressed)

    def test_noqa_on_decorator_line(self):
        # RPR005 anchors on the ClassDef; a noqa on the decorator line
        # (part of the construct) must suppress it.
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass  # repro: noqa[RPR005] legacy result shim\n"
            "class LegacyResult:\n"
            "    x: float = 0.0\n"
        )
        active, suppressed = lint_source(source, "m.py", strict=True)
        assert not any(f.code == "RPR005" for f in active)
        assert any(f.code == "RPR005" for f in suppressed)

    def test_noqa_on_class_line_of_decorated_class(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class LegacyResult:  # repro: noqa[RPR005] legacy result shim\n"
            "    x: float = 0.0\n"
        )
        active, suppressed = lint_source(source, "m.py", strict=True)
        assert not any(f.code == "RPR005" for f in active)
        assert any(f.code == "RPR005" for f in suppressed)

    def test_noqa_inside_body_does_not_leak_to_header(self):
        # A noqa on a body line must not suppress a finding anchored
        # to the construct's header.
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class LegacyResult:\n"
            "    x: float = 0.0  # repro: noqa[RPR005] wrong line\n"
        )
        active, _ = lint_source(source, "m.py", strict=True)
        assert any(
            f.code == "RPR005" and "missing required" in f.message for f in active
        )


class TestRepoIsClean:
    def test_installed_tree_passes_strict(self):
        report = run_linter(strict=True)
        assert report.files_checked > 50
        assert report.ok, report.format()

    def test_every_suppression_is_justified(self):
        report = run_linter(strict=True)
        for f in report.suppressed:
            assert f.justification, f.format()

    def test_report_format_summary_line(self):
        report = run_linter(strict=True)
        assert "finding(s)" in report.format()
