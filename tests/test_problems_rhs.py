"""Unit tests for repro.problems.rhs."""

import numpy as np
import pytest

from repro.problems.rhs import ones_rhs, random_rhs, smooth_rhs


class TestRandomRhs:
    def test_range(self):
        b = random_rhs(1000, seed=0)
        assert b.min() >= -1.0 and b.max() <= 1.0

    def test_deterministic(self):
        assert np.array_equal(random_rhs(50, seed=3), random_rhs(50, seed=3))

    def test_seeds_differ(self):
        assert not np.array_equal(random_rhs(50, seed=1), random_rhs(50, seed=2))

    def test_length(self):
        assert random_rhs(17).shape == (17,)

    def test_negative_n_raises(self):
        with pytest.raises(ValueError):
            random_rhs(-1)


class TestOnesRhs:
    def test_values(self):
        assert np.all(ones_rhs(5) == 1.0)


class TestSmoothRhs:
    def test_endpoint_behaviour(self):
        b = smooth_rhs(9, waves=1)
        assert b[4] == pytest.approx(1.0)  # peak of half sine

    def test_more_waves_oscillate(self):
        b = smooth_rhs(100, waves=4)
        signs = np.sign(b[np.abs(b) > 1e-9])
        assert (np.diff(signs) != 0).sum() >= 3
