"""Unit tests for repro.amg.aggressive."""

import numpy as np
import pytest

from repro.amg import (
    CPOINT,
    aggressive_coarsening,
    classical_strength,
    hmis_coarsening,
    second_pass_strength,
)


@pytest.fixture(scope="module")
def S_7pt(A_7pt):
    return classical_strength(A_7pt, theta=0.25)


class TestSecondPassStrength:
    def test_shape_is_cpoint_square(self, S_7pt):
        split = hmis_coarsening(S_7pt, seed=0)
        Scc = second_pass_strength(S_7pt, split, npaths=1)
        nc = int((split == CPOINT).sum())
        assert Scc.shape == (nc, nc)

    def test_no_diagonal(self, S_7pt):
        split = hmis_coarsening(S_7pt, seed=0)
        Scc = second_pass_strength(S_7pt, split)
        assert np.all(Scc.diagonal() == 0)

    def test_npaths_two_sparser(self, S_7pt):
        split = hmis_coarsening(S_7pt, seed=0)
        s1 = second_pass_strength(S_7pt, split, npaths=1)
        s2 = second_pass_strength(S_7pt, split, npaths=2)
        assert s2.nnz <= s1.nnz

    def test_invalid_npaths(self, S_7pt):
        split = hmis_coarsening(S_7pt, seed=0)
        with pytest.raises(ValueError):
            second_pass_strength(S_7pt, split, npaths=0)


class TestAggressiveCoarsening:
    def test_coarser_than_single_pass(self, S_7pt):
        single = hmis_coarsening(S_7pt, seed=0)
        double = aggressive_coarsening(S_7pt, coarsener="hmis", seed=0)
        assert (double == CPOINT).sum() < (single == CPOINT).sum()

    def test_aggressive_c_subset_of_first_pass_c(self, S_7pt):
        # The second pass only removes C points, never adds.
        first = hmis_coarsening(S_7pt, nparts=8, seed=0)
        agg = aggressive_coarsening(S_7pt, coarsener="hmis", seed=0, nparts=8)
        agg_c = np.flatnonzero(agg == CPOINT)
        first_c = np.flatnonzero(first == CPOINT)
        assert np.all(np.isin(agg_c, first_c))

    def test_pmis_variant(self, S_7pt):
        agg = aggressive_coarsening(S_7pt, coarsener="pmis", seed=0)
        assert (agg == CPOINT).sum() >= 1

    def test_unknown_coarsener(self, S_7pt):
        with pytest.raises(ValueError):
            aggressive_coarsening(S_7pt, coarsener="cljp")

    def test_everything_decided(self, S_7pt):
        agg = aggressive_coarsening(S_7pt, coarsener="hmis", seed=0)
        assert set(np.unique(agg)) <= {-1, 1}
