"""End-to-end tests for the in-process solve server (repro.serve).

Threaded paths keep their assertions timing-robust (statuses, counters,
ticket resolution); anything that needs determinism (batched bitwise
parity) drives the worker path synchronously via ``_process_group``.
"""

from time import perf_counter

import numpy as np
import pytest

from repro.problems import build_problem
from repro.resilience import parse_fault_spec
from repro.serve import (
    Job,
    JobSpec,
    OPEN,
    ServeConfig,
    SolveServer,
    TERMINAL_STATUSES,
)


def make_server(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("tick_s", 0.005)
    return SolveServer(ServeConfig(**kw))


def rhs(n, seed):
    return np.random.default_rng(seed).standard_normal(n)


class TestLifecycle:
    def test_submit_before_start_is_rejected(self):
        server = make_server()
        p = build_problem("5pt", 8)
        ref = server.register_operator("op", p.A)
        ticket = server.submit(JobSpec(tenant="t", operator=ref, b=rhs(ref.n, 0)))
        res = ticket.result(timeout=1.0)
        assert res.status == "rejected" and res.cause == "shutdown"

    def test_stop_is_clean_and_idempotent(self):
        server = make_server().start()
        server.stop()
        server.stop()
        assert server.alive_threads() == []

    def test_unknown_operator_raises(self):
        server = make_server()
        with pytest.raises(KeyError):
            server.operator("nope")


class TestEndToEnd:
    def test_multi_tenant_jobs_converge(self):
        server = make_server().start()
        try:
            p = build_problem("5pt", 10)
            server.register_operator(
                "poisson", p.A, solver_kwargs={"weight": p.jacobi_weight}
            )
            tickets = [
                server.submit_named(f"tenant-{i % 3}", "poisson", rhs(p.n, i))
                for i in range(9)
            ]
            results = [t.result(timeout=30.0) for t in tickets]
            assert all(r is not None for r in results)
            assert [r.status for r in results] == ["ok"] * 9
            for r in results:
                assert r.rel_residual <= 1e-8
                assert r.deadline_met
                assert r.attempts == 1
        finally:
            server.stop()
        flat = server.metrics.flatten()
        assert flat["serve.jobs.ok"] == 9
        assert flat["serve.jobs.ok.tenant-0"] == 3
        assert flat["serve.slo.met.tenant-1"] == 3
        assert server.alive_threads() == []

    def test_results_ring_and_stats(self):
        server = make_server(result_history=4).start()
        try:
            p = build_problem("5pt", 8)
            server.register_operator("op", p.A)
            for i in range(6):
                server.submit_named("t", "op", rhs(p.n, i)).result(timeout=30.0)
        finally:
            server.stop()
        assert len(server.recent_results()) == 4  # bounded ring
        stats = server.stats()
        assert stats["queue_depth"] == 0
        assert stats["workers_alive"] == 0
        assert stats["setup_cache"]["entries"] >= 1
        assert stats["metrics"]["serve.jobs.ok"] == 6


class TestBatchedParity:
    def test_grouped_jobs_bitwise_equal_solo(self):
        # Drive the worker path synchronously: one group of 4 versus
        # four singleton groups must produce bitwise-identical
        # iterates (the coalescing-is-free claim, server-level).
        p = build_problem("5pt", 10)
        columns = [rhs(p.n, s) for s in range(4)]

        def run(grouping):
            server = make_server()
            ref = server.register_operator(
                "op", p.A, solver_kwargs={"weight": p.jacobi_weight}
            )
            jobs = []
            for b in columns:
                jobs.append(
                    Job.create(
                        JobSpec(tenant="t", operator=ref, b=b, deadline_s=60.0),
                        now=perf_counter(),
                    )
                )
            if grouping == "batched":
                server._process_group(jobs)
            else:
                for job in jobs:
                    server._process_group([job])
            return [job.ticket.result(timeout=1.0) for job in jobs]

        batched = run("batched")
        solo = run("solo")
        assert [r.batched for r in batched] == [4, 4, 4, 4]
        assert [r.batched for r in solo] == [1, 1, 1, 1]
        for got, ref_r in zip(batched, solo):
            assert got.status == ref_r.status == "ok"
            assert np.array_equal(got.x, ref_r.x)
            assert got.rel_residual == ref_r.rel_residual
            assert got.cycles == ref_r.cycles


class TestFaultIsolation:
    def test_crash_fails_only_that_job_and_pool_self_heals(self):
        server = make_server(
            fault_plans={"crashy": parse_fault_spec("crash:0@1", seed=3)}
        ).start()
        try:
            p = build_problem("5pt", 10)
            server.register_operator(
                "op", p.A, solver_kwargs={"weight": p.jacobi_weight}
            )
            crashy = server.submit_named(
                "crashy", "op", rhs(p.n, 0), deadline_s=30.0, retries=1
            )
            healthy = server.submit_named("calm", "op", rhs(p.n, 1), deadline_s=30.0)
            res_c = crashy.result(timeout=30.0)
            res_h = healthy.result(timeout=30.0)
            # The injected crash killed attempt 1 only; the retry ran
            # on a fresh injector-free sentence and converged.
            assert res_c.status == "ok" and res_c.attempts == 2
            assert res_h.status == "ok" and res_h.attempts == 1
            flat = server.metrics.flatten()
            assert flat["serve.worker_crashes"] >= 1
            assert flat["serve.workers_respawned"] >= 1
            assert flat["serve.retries.crashy"] == 1
            # The pool healed: submit again and it still serves.
            again = server.submit_named("calm", "op", rhs(p.n, 2), deadline_s=30.0)
            assert again.result(timeout=30.0).status == "ok"
        finally:
            server.stop()
        assert server.alive_threads() == []

    def test_crash_without_retry_budget_fails_with_cause(self):
        server = make_server(
            fault_plans={"crashy": parse_fault_spec("crash:0@1", seed=3)}
        ).start()
        try:
            p = build_problem("5pt", 10)
            server.register_operator("op", p.A)
            res = server.submit_named(
                "crashy", "op", rhs(p.n, 0), retries=0, deadline_s=30.0
            ).result(timeout=30.0)
            assert res.status == "failed" and res.cause == "worker_crash"
        finally:
            server.stop()


class TestDegradation:
    def test_deadline_buster_returns_degraded_with_honest_residual(self):
        server = make_server().start()
        try:
            p = build_problem("5pt", 12)
            server.register_operator("op", p.A)
            res = server.submit_named(
                "hasty", "op", rhs(p.n, 0), deadline_s=1e-4
            ).result(timeout=30.0)
            assert res.status == "degraded" and res.cause == "deadline"
            assert res.stalled and not res.deadline_met
            assert res.x is not None
            # The residual reported is the real residual of the
            # returned iterate (x = 0 ⇒ rel exactly 1, or a partial
            # iterate with its recomputed norm).
            assert 0.0 < res.rel_residual <= 1.0
            flat = server.metrics.flatten()
            assert flat["serve.slo.missed.hasty"] == 1
        finally:
            server.stop()

    def test_cycle_budget_exhaustion_degrades(self):
        server = make_server().start()
        try:
            p = build_problem("5pt", 10)
            server.register_operator("op", p.A)
            res = server.submit_named(
                "t", "op", rhs(p.n, 0), tol=1e-14, tmax=2, deadline_s=30.0
            ).result(timeout=30.0)
            assert res.status == "degraded" and res.cause == "cycle_budget"
            assert res.stalled and res.cycles == 2
        finally:
            server.stop()


class TestBreakerIntegration:
    def test_poisoned_operator_trips_then_recloses_on_healthy(self):
        server = make_server(
            workers=1, failure_threshold=2, reset_timeout_s=0.2
        ).start()
        try:
            p = build_problem("5pt", 10)
            # weight 1.95 diverges on the 5pt operator; the default
            # guard throttles it into a no-progress degraded loop,
            # which the breaker counts as failure.
            server.register_operator(
                "poison", p.A, solver_kwargs={"weight": 1.95}
            )
            fp = server.operator("poison").fingerprint
            statuses = []
            for i in range(2):
                res = server.submit_named(
                    "t", "poison", rhs(p.n, i), tmax=5, deadline_s=30.0
                ).result(timeout=30.0)
                statuses.append((res.status, res.cause))
            assert server.breaker.state(fp) == OPEN
            fast = server.submit_named(
                "t", "poison", rhs(p.n, 9), deadline_s=30.0
            ).result(timeout=30.0)
            assert fast.status == "rejected" and fast.cause == "circuit_open"
            # A healthy operator under the same matrix keeps serving:
            # the fingerprint covers the solver config, so the breaker
            # blackout is scoped to the poisoned config.
            server.register_operator(
                "healthy", p.A, solver_kwargs={"weight": p.jacobi_weight}
            )
            ok = server.submit_named(
                "t", "healthy", rhs(p.n, 10), deadline_s=30.0
            ).result(timeout=30.0)
            assert ok.status == "ok"
            pairs = [
                (frm, to) for _, key, frm, to in server.breaker.transitions
                if key == fp
            ]
            assert ("closed", "open") in pairs
        finally:
            server.stop()


class TestOverloadAndErrors:
    def test_burst_past_max_depth_is_rejected_not_buffered(self):
        server = make_server(workers=1, max_depth=2, batch_max=1).start()
        try:
            p = build_problem("5pt", 12)
            server.register_operator("op", p.A)
            tickets = [
                server.submit_named("burst", "op", rhs(p.n, i), deadline_s=30.0)
                for i in range(40)
            ]
            results = [t.result(timeout=60.0) for t in tickets]
            assert all(r is not None for r in results)
            assert all(r.status in TERMINAL_STATUSES for r in results)
            rejected = [r for r in results if r.status == "rejected"]
            assert rejected, "a 40-job burst against depth 2 must shed load"
            assert all(
                r.cause in ("overloaded", "shed") for r in rejected
            )
        finally:
            server.stop()
        assert server.alive_threads() == []

    def test_solver_construction_error_fails_job_with_cause(self):
        server = make_server().start()
        try:
            p = build_problem("5pt", 8)
            # weight 2.5 is rejected by the smoother constructor: the
            # defensive worker path must fail the job, not hang it.
            server.register_operator("broken", p.A, solver_kwargs={"weight": 2.5})
            res = server.submit_named(
                "t", "broken", rhs(p.n, 0), retries=0, deadline_s=10.0
            ).result(timeout=30.0)
            assert res.status == "failed"
            assert res.cause == "internal:ValueError"
            assert server.metrics.flatten()["serve.internal_errors"] >= 1
        finally:
            server.stop()
