"""Unit tests for the geometric multigrid backend."""

import numpy as np
import pytest

from repro.gmg import coarse_grid_size, geometric_hierarchy, trilinear_interpolation
from repro.gmg.structured import _interp_1d
from repro.problems import laplacian_7pt, laplacian_27pt, random_rhs
from repro.solvers import AFACx, Multadd, MultiplicativeMultigrid


class TestInterp1D:
    def test_shape(self):
        P = _interp_1d(7)
        assert P.shape == (7, 3)

    def test_coincident_weight_one(self):
        P = _interp_1d(7).toarray()
        for j in range(3):
            assert P[2 * j + 1, j] == 1.0

    def test_neighbour_weights(self):
        P = _interp_1d(7).toarray()
        assert P[0, 0] == 0.5
        assert P[2, 0] == 0.5 and P[2, 1] == 0.5

    def test_linear_functions_reproduced_interior(self):
        # Linear interpolation is exact for linear data.
        n = 9
        P = _interp_1d(n).toarray()
        xc = np.array([2 * j + 1 for j in range(n // 2)], dtype=float)
        vals = P @ (2.0 * xc + 1.0)
        x = np.arange(n, dtype=float)
        interior = (x >= 1) & (x <= n - 2)
        assert np.allclose(vals[interior], (2.0 * x + 1.0)[interior])

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            _interp_1d(1)


class TestTrilinear:
    def test_shape(self):
        P = trilinear_interpolation(7)
        assert P.shape == (343, 27)

    def test_weights_are_dyadic(self):
        P = trilinear_interpolation(5)
        assert set(np.unique(P.data)) <= {1.0, 0.5, 0.25, 0.125}

    def test_coarse_grid_size(self):
        assert coarse_grid_size(7) == 3
        assert coarse_grid_size(8) == 4
        with pytest.raises(ValueError):
            coarse_grid_size(0)


class TestGeometricHierarchy:
    def test_levels_shrink_by_eight(self):
        A = laplacian_7pt(15)
        h = geometric_hierarchy(A, 15)
        sizes = [lv.n for lv in h.levels]
        assert sizes[0] == 15**3 and sizes[1] == 7**3 and sizes[2] == 3**3

    def test_size_mismatch_raises(self):
        A = laplacian_7pt(7)
        with pytest.raises(ValueError):
            geometric_hierarchy(A, 8)

    def test_too_small_raises(self):
        A = laplacian_7pt(2)
        with pytest.raises(ValueError):
            geometric_hierarchy(A, 2)

    def test_coarse_operators_spd(self):
        A = laplacian_7pt(7)
        h = geometric_hierarchy(A, 7)
        for lv in h.levels:
            w = np.linalg.eigvalsh(lv.A.toarray())
            assert w.min() > 0

    def test_mult_grid_independent(self):
        # The canonical GMG result: rates flat in n for the 7pt cube.
        rates = []
        for n in (7, 15):
            A = laplacian_7pt(n)
            h = geometric_hierarchy(A, n)
            s = MultiplicativeMultigrid(h, smoother="jacobi", weight=0.9)
            res = s.solve(random_rhs(A.shape[0], seed=0), tmax=10)
            rates.append(res.residual_history[-1] / res.residual_history[-2])
        assert rates[1] < 0.7  # bounded V(1,1) rate (omega-Jacobi smoothing)
        assert rates[1] < rates[0] + 0.15  # flat in n

    def test_multadd_equivalence_holds_on_gmg(self):
        # The Multadd == symmetric V(1,1) identity is hierarchy-
        # agnostic; verify on a geometric hierarchy too.
        A = laplacian_7pt(7)
        h = geometric_hierarchy(A, 7)
        b = random_rhs(A.shape[0], seed=1)
        mult = MultiplicativeMultigrid(h, smoother="jacobi", weight=0.9, symmetric=True)
        madd = Multadd(h, smoother="jacobi", weight=0.9, lambda_mode="symmetrized")
        x0 = np.zeros(A.shape[0])
        x1, x2 = mult.cycle(x0, b), madd.cycle(x0, b)
        assert np.allclose(x1, x2, rtol=1e-11, atol=1e-13)

    def test_afacx_runs_on_gmg(self):
        A = laplacian_27pt(7)
        h = geometric_hierarchy(A, 7)
        s = AFACx(h, smoother="jacobi", weight=0.9)
        res = s.solve(random_rhs(A.shape[0], seed=2), tmax=25)
        assert res.final_relres < 1e-2

    def test_async_engine_on_gmg(self):
        from repro.core import run_async_engine

        A = laplacian_7pt(15)
        h = geometric_hierarchy(A, 15)
        ma = Multadd(h, smoother="jacobi", weight=0.9)
        res = run_async_engine(ma, random_rhs(A.shape[0], seed=3), tmax=20, seed=0)
        assert res.rel_residual < 1e-3

    def test_agrees_with_amg_convergence_class(self):
        # AMG and GMG hierarchies must both yield convergent, grid-
        # independent Multadd on the same operator (rates may differ).
        from repro.amg import SetupOptions, setup_hierarchy

        A = laplacian_7pt(15)
        b = random_rhs(A.shape[0], seed=4)
        h_g = geometric_hierarchy(A, 15)
        h_a = setup_hierarchy(A, SetupOptions(aggressive_levels=1))
        r_g = Multadd(h_g, smoother="jacobi", weight=0.9).solve(b, tmax=20)
        r_a = Multadd(h_a, smoother="jacobi", weight=0.9).solve(b, tmax=20)
        assert r_g.final_relres < 1e-4
        assert r_a.final_relres < 1e-4
