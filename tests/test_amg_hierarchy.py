"""Unit tests for repro.amg.hierarchy, galerkin, smoothed_interp."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.amg import (
    SetupOptions,
    galerkin_product,
    setup_hierarchy,
    smoothed_interpolants,
)
from repro.amg.smoothed_interp import smoothed_two_level_interpolant


class TestGalerkin:
    def test_symmetric(self, A_7pt, hier_7pt):
        P = hier_7pt.levels[0].P
        Ac = galerkin_product(A_7pt, P)
        assert abs(Ac - Ac.T).max() == 0.0

    def test_spd_preserved(self, A_7pt, hier_7pt):
        P = hier_7pt.levels[0].P
        Ac = galerkin_product(A_7pt, P)
        w = np.linalg.eigvalsh(Ac.toarray())
        assert w.min() > 0

    def test_matches_dense_triple_product(self, A_1d):
        h = setup_hierarchy(A_1d, SetupOptions(aggressive_levels=0, max_coarse=4))
        P = h.levels[0].P
        dense = P.T.toarray() @ A_1d.toarray() @ P.toarray()
        assert np.allclose(h.levels[1].A.toarray(), dense)

    def test_shape_mismatch_raises(self, A_7pt):
        P = sp.csr_matrix(np.ones((3, 2)))
        with pytest.raises(ValueError):
            galerkin_product(A_7pt, P)


class TestSetupHierarchy:
    def test_levels_decrease(self, hier_7pt):
        sizes = [lv.n for lv in hier_7pt.levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_coarse_limit_respected(self, hier_7pt):
        assert hier_7pt.levels[-1].n <= 3 * hier_7pt.options.max_coarse

    def test_all_levels_spd(self, hier_7pt):
        for lv in hier_7pt.levels:
            w = np.linalg.eigvalsh(lv.A.toarray())
            assert w.min() > -1e-10

    def test_restriction_is_transpose(self, hier_7pt):
        for lv in hier_7pt.levels[:-1]:
            assert abs(lv.R - lv.P.T).max() == 0.0

    def test_aggressive_coarsens_faster(self, hier_7pt, hier_7pt_agg):
        r0 = hier_7pt.levels[0].n / hier_7pt.levels[1].n
        r1 = hier_7pt_agg.levels[0].n / hier_7pt_agg.levels[1].n
        assert r1 > r0

    def test_operator_complexity_sane(self, hier_7pt_agg):
        assert 1.0 < hier_7pt_agg.operator_complexity() < 6.0

    def test_elasticity_hierarchy_builds(self, hier_elas):
        assert hier_elas.nlevels >= 2

    def test_max_levels(self, A_7pt):
        h = setup_hierarchy(A_7pt, SetupOptions(max_levels=2, aggressive_levels=0))
        assert h.nlevels <= 2

    def test_summary_contains_complexity(self, hier_7pt):
        s = hier_7pt.summary()
        assert "operator complexity" in s

    def test_interpolate_restrict_chain_shapes(self, hier_7pt):
        h = hier_7pt
        k = h.coarsest
        v = np.ones(h.levels[k].n)
        fine = h.interpolate_to_fine(k, v)
        assert fine.shape == (h.levels[0].n,)
        back = h.restrict_from_fine(k, fine)
        assert back.shape == (h.levels[k].n,)

    def test_chain_adjointness(self, hier_7pt):
        # <P_k^0 v, w> == <v, (P_k^0)^T w> for the applied chains.
        h = hier_7pt
        k = h.coarsest
        rng = np.random.default_rng(0)
        v = rng.standard_normal(h.levels[k].n)
        w = rng.standard_normal(h.levels[0].n)
        lhs = float(h.interpolate_to_fine(k, v) @ w)
        rhs = float(v @ h.restrict_from_fine(k, w))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_direct_interp_option(self, A_7pt):
        h = setup_hierarchy(
            A_7pt, SetupOptions(interp_type="direct", aggressive_levels=0)
        )
        assert h.nlevels >= 2

    def test_unknown_options_raise(self, A_7pt):
        with pytest.raises(ValueError):
            setup_hierarchy(A_7pt, SetupOptions(coarsen_type="magic"))
        with pytest.raises(ValueError):
            # aggressive levels use multipass regardless of interp_type,
            # so disable them to hit the interp dispatch.
            setup_hierarchy(
                A_7pt, SetupOptions(interp_type="magic", aggressive_levels=0)
            )


class TestSmoothedInterpolants:
    def test_formula_jacobi(self, hier_7pt):
        lv = hier_7pt.levels[0]
        Pb = smoothed_two_level_interpolant(lv.A, lv.P, kind="jacobi", weight=0.9)
        d = lv.A.diagonal()
        dense = lv.P.toarray() - (0.9 / d)[:, None] * (lv.A @ lv.P).toarray()
        assert np.allclose(Pb.toarray(), dense)

    def test_formula_l1(self, hier_7pt):
        from repro.linalg import l1_row_norms

        lv = hier_7pt.levels[0]
        Pb = smoothed_two_level_interpolant(lv.A, lv.P, kind="l1_jacobi")
        d = l1_row_norms(lv.A)
        dense = lv.P.toarray() - (1.0 / d)[:, None] * (lv.A @ lv.P).toarray()
        assert np.allclose(Pb.toarray(), dense)

    def test_one_per_level(self, hier_7pt):
        Pbars = smoothed_interpolants(hier_7pt)
        assert len(Pbars) == hier_7pt.nlevels - 1

    def test_denser_than_plain(self, hier_7pt):
        Pbars = smoothed_interpolants(hier_7pt)
        assert Pbars[0].nnz > hier_7pt.levels[0].P.nnz

    def test_unknown_kind(self, hier_7pt):
        lv = hier_7pt.levels[0]
        with pytest.raises(ValueError):
            smoothed_two_level_interpolant(lv.A, lv.P, kind="gs")
