"""Unit tests for the discrete-event machine model."""

import numpy as np
import pytest

from repro.core import MachineParams, PerfModel
from repro.solvers import Multadd, MultiplicativeMultigrid


@pytest.fixture(scope="module")
def solvers(hier_7pt_agg):
    return (
        MultiplicativeMultigrid(hier_7pt_agg, smoother="jacobi", weight=0.9),
        Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9),
    )


class TestMachineParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachineParams(flop_rate=0)
        with pytest.raises(ValueError):
            MachineParams(jitter=-0.1)


class TestBarrier:
    def test_single_thread_free(self):
        pm = PerfModel()
        assert pm.barrier(1) == 0.0

    def test_grows_with_threads(self):
        pm = PerfModel()
        assert pm.barrier(64) > pm.barrier(4) > 0


class TestTimings:
    def test_times_positive(self, solvers):
        mult, madd = solvers
        pm = PerfModel(MachineParams(jitter=0.0))
        assert pm.time_mult(mult, 16, 10) > 0
        assert pm.time_sync_additive(madd, 16, 10) > 0
        t, counts = pm.time_async(madd, 16, 10)
        assert t > 0 and np.all(counts >= 10)

    def test_time_scales_with_cycles(self, solvers):
        mult, _ = solvers
        pm = PerfModel(MachineParams(jitter=0.0))
        t10 = pm.time_mult(mult, 8, 10)
        t20 = pm.time_mult(mult, 8, 20)
        assert t20 == pytest.approx(2 * t10, rel=0.05)

    def test_mult_fastest_at_one_thread(self, solvers):
        # Fig 6 low-thread regime: Multadd's redundant work loses.
        mult, madd = solvers
        pm = PerfModel(MachineParams(jitter=0.0))
        assert pm.time_mult(mult, 1, 20) < pm.time_sync_additive(madd, 1, 20)

    def test_async_beats_mult_at_many_threads(self, solvers):
        # Fig 6 high-thread regime: barrier costs sink Mult.
        mult, madd = solvers
        pm = PerfModel(MachineParams(jitter=0.0))
        t_mult = pm.time_mult(mult, 272, 20)
        t_async, _ = pm.time_async(madd, 272, 20)
        assert t_async < t_mult

    def test_crossover_exists(self, solvers):
        mult, madd = solvers
        pm = PerfModel(MachineParams(jitter=0.0))
        wins = []
        for T in (1, 2, 4, 8, 16, 32, 64, 128, 272):
            t_mult = pm.time_mult(mult, T, 20)
            t_async, _ = pm.time_async(madd, T, 20)
            wins.append(t_async < t_mult)
        assert not wins[0] and wins[-1]

    def test_atomic_slower_than_lock(self, solvers):
        # Table I: atomic-write generally loses to lock-write.
        _, madd = solvers
        pm = PerfModel(MachineParams(jitter=0.0))
        t_lock, _ = pm.time_async(madd, 64, 20, write="lock")
        t_atomic, _ = pm.time_async(madd, 64, 20, write="atomic")
        assert t_lock < t_atomic

    def test_criterion2_overshoots(self, solvers):
        _, madd = solvers
        pm = PerfModel(MachineParams(jitter=0.3, seed=1))
        _, c1 = pm.time_async(madd, 64, 20, criterion="criterion1")
        _, c2 = pm.time_async(madd, 64, 20, criterion="criterion2")
        assert c2.mean() >= c1.mean()

    def test_jitter_changes_times(self, solvers):
        _, madd = solvers
        t1, _ = PerfModel(MachineParams(jitter=0.3, seed=1)).time_async(madd, 16, 10)
        t2, _ = PerfModel(MachineParams(jitter=0.3, seed=2)).time_async(madd, 16, 10)
        assert t1 != t2

    def test_unknown_write_raises(self, solvers):
        _, madd = solvers
        pm = PerfModel()
        with pytest.raises(ValueError):
            pm.time_async(madd, 8, 5, write="psychic")

    def test_unknown_criterion_raises(self, solvers):
        _, madd = solvers
        with pytest.raises(ValueError):
            PerfModel().time_async(madd, 8, 5, criterion="criterion3")

    def test_global_res_cheaper_per_correction_than_local(self, solvers):
        # The paper: global-res needs *less computation* per thread (it
        # refreshes only its own rows of the shared residual).  Null
        # out the fixed lock cost so the comparison isolates compute.
        _, madd = solvers
        pm = PerfModel(MachineParams(jitter=0.0, lock_cost=0.0))
        t_local, _ = pm.time_async(madd, 64, 20, rescomp="local")
        t_global, _ = pm.time_async(madd, 64, 20, rescomp="global")
        assert t_global < t_local
