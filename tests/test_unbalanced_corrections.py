"""The paper's conclusion claim: balance matters.

"It is possible to show that if the number of corrections is not
balanced (e.g., far more corrections from some grids compared to
others), then grid-independent convergence is lost."  We test the
operative mechanism with explicit per-grid update probabilities.
"""

import numpy as np
import pytest

from repro.amg import SetupOptions, setup_hierarchy
from repro.core import ScheduleParams, simulate_semi_async
from repro.problems import build_problem
from repro.solvers import Multadd


def _solver(size):
    p = build_problem("7pt", size, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
    return Multadd(h, smoother="jacobi", weight=0.9), p.b


class TestUnbalancedCorrections:
    def test_p_override_validation(self):
        from repro.core import StalenessSchedule

        with pytest.raises(ValueError):
            StalenessSchedule(3, ScheduleParams(), p_override=np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            StalenessSchedule(2, ScheduleParams(), p_override=np.array([0.0, 1.0]))

    def test_p_override_used(self):
        from repro.core import StalenessSchedule

        p = np.array([0.25, 1.0, 0.5])
        s = StalenessSchedule(3, ScheduleParams(seed=0), p_override=p)
        assert np.array_equal(s.p, p)

    def test_starving_the_fine_grid_hurts_most(self):
        # The fine grid carries the smoothing of the high frequencies;
        # making *it* the slow grid degrades convergence more than
        # slowing a middle grid.
        solver, b = _solver(10)
        ng = solver.ngrids

        def run(slow_grid):
            p = np.ones(ng)
            p[slow_grid] = 0.1
            vals = [
                simulate_semi_async(
                    solver,
                    b,
                    ScheduleParams(alpha=0.1, updates_per_grid=20, seed=s),
                    p_override=p,
                ).rel_residual
                for s in range(3)
            ]
            return float(np.mean(vals))

        slow_fine = run(0)
        balanced = float(
            np.mean(
                [
                    simulate_semi_async(
                        solver,
                        b,
                        ScheduleParams(alpha=1.0, updates_per_grid=20, seed=s),
                    ).rel_residual
                    for s in range(3)
                ]
            )
        )
        assert slow_fine > balanced

    def test_unbalance_degrades_with_grid_size(self):
        # With one grid updating 10x less often, the residual after a
        # fixed correction budget worsens relative to the balanced run
        # as the problem grows — the "lost grid-size independence"
        # mechanism (measured as the unbalanced/balanced ratio).
        ratios = []
        for size in (8, 12):
            solver, b = _solver(size)
            ng = solver.ngrids
            p = np.ones(ng)
            p[0] = 0.1
            unbal = np.mean(
                [
                    simulate_semi_async(
                        solver,
                        b,
                        ScheduleParams(alpha=0.1, updates_per_grid=20, seed=s),
                        p_override=p,
                    ).rel_residual
                    for s in range(3)
                ]
            )
            bal = np.mean(
                [
                    simulate_semi_async(
                        solver,
                        b,
                        ScheduleParams(alpha=1.0, updates_per_grid=20, seed=s),
                    ).rel_residual
                    for s in range(3)
                ]
            )
            ratios.append(unbal / bal)
        assert all(r > 1.0 for r in ratios)
