"""Unit tests for repro.problems.fem.mesh."""

import numpy as np
import pytest

from repro.problems.fem.mesh import TetMesh, ball_mesh, beam_mesh, cube_mesh


class TestCubeMesh:
    def test_counts(self):
        m = cube_mesh(2)
        assert m.n_nodes == 27
        assert m.n_tets == 6 * 8

    def test_volumes_positive_and_sum_to_cube(self):
        m = cube_mesh(3, extent=2.0)
        v = m.volumes()
        assert np.all(v > 0)
        assert v.sum() == pytest.approx(8.0)

    def test_boundary_nodes_on_surface(self):
        m = cube_mesh(3)
        for i in m.boundary_nodes:
            p = m.nodes[i]
            assert np.isclose(p, 0.0).any() or np.isclose(p, 1.0).any()

    def test_interior_nodes_complement(self):
        m = cube_mesh(3)
        interior = m.interior_nodes()
        assert len(interior) + len(m.boundary_nodes) == m.n_nodes
        assert len(interior) == (3 - 1) ** 3

    def test_conforming_no_orphan_nodes(self):
        m = cube_mesh(2)
        assert np.array_equal(np.unique(m.tets), np.arange(m.n_nodes))


class TestBallMesh:
    def test_inside_sphere(self):
        m = ball_mesh(8, radius=1.0)
        centroids = m.nodes[m.tets].mean(axis=1)
        assert np.all(np.linalg.norm(centroids, axis=1) <= 1.0 + 1e-12)

    def test_volume_approaches_sphere(self):
        m = ball_mesh(16, radius=1.0)
        vol = m.volumes().sum()
        sphere = 4.0 / 3.0 * np.pi
        assert abs(vol - sphere) / sphere < 0.15

    def test_interior_nonempty(self):
        m = ball_mesh(8)
        assert m.interior_nodes().size > 0

    def test_too_coarse_raises(self):
        with pytest.raises(ValueError):
            ball_mesh(2)

    def test_nodes_compressed(self):
        m = ball_mesh(6)
        assert np.array_equal(np.unique(m.tets), np.arange(m.n_nodes))


class TestBeamMesh:
    def test_clamped_face_only(self):
        m = beam_mesh(6, 2, 2)
        assert np.allclose(m.nodes[m.boundary_nodes, 0], 0.0)

    def test_materials_split_along_x(self):
        m = beam_mesh(8, 2, 2, n_materials=2, length=8.0)
        centroids = m.nodes[m.tets].mean(axis=1)
        left = m.material[centroids[:, 0] < 3.9]
        right = m.material[centroids[:, 0] > 4.1]
        assert np.all(left == 0)
        assert np.all(right == 1)

    def test_material_count(self):
        m = beam_mesh(9, 2, 2, n_materials=3)
        assert set(np.unique(m.material)) == {0, 1, 2}

    def test_invalid_materials(self):
        with pytest.raises(ValueError):
            beam_mesh(4, 2, 2, n_materials=0)


class TestTetMeshValidation:
    def test_shape_checks(self):
        with pytest.raises(ValueError):
            TetMesh(np.zeros((3, 2)), np.zeros((1, 4), dtype=int), np.array([]))
        with pytest.raises(ValueError):
            TetMesh(np.zeros((3, 3)), np.zeros((1, 3), dtype=int), np.array([]))

    def test_default_material(self):
        m = cube_mesh(2)
        assert np.all(m.material == 0)

    def test_material_length_check(self):
        with pytest.raises(ValueError):
            TetMesh(
                np.zeros((4, 3)),
                np.array([[0, 1, 2, 3]]),
                np.array([]),
                material=np.array([0, 1]),
            )
