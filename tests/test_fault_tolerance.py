"""Fault injection against the three executors, plus the acceptance run.

The headline property (ISSUE acceptance): on 27-point Poisson under
simultaneous faults — one crashed grid, 1% corrupted corrections, and
(distributed) 5% message drop — a guarded run of every backend still
reaches ``rel_residual < 1e-6``, while the identical unguarded run
diverges or stalls.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amg import SetupOptions, setup_hierarchy
from repro.core import run_async_engine
from repro.core.perfmodel import MachineParams
from repro.core.threaded import run_threaded
from repro.distributed import NetworkModel, simulate_distributed
from repro.problems import laplacian_27pt, random_rhs
from repro.resilience import CrashFault, FaultPlan, GuardPolicy, StallFault
from repro.solvers import Multadd

TOL = 1e-6

# The acceptance fault cocktail: grid 1 dies after 5 corrections and
# 1% of corrections are NaN-poisoned; distributed runs add 5% drop.
CRASH_PLAN = FaultPlan(crashes=(CrashFault(1, 5),), seed=0)
COCKTAIL = FaultPlan(
    crashes=(CrashFault(1, 5),),
    corruption_probability=0.01,
    corruption_mode="nan",
    seed=0,
)
COCKTAIL_DROP = FaultPlan(
    crashes=(CrashFault(1, 5),),
    corruption_probability=0.01,
    corruption_mode="nan",
    drop_probability=0.05,
    seed=0,
)


@pytest.fixture(scope="module")
def multadd27():
    # aggressive_levels=0 keeps >= 3 grids on the small problem, so one
    # crashed grid still leaves a multilevel method behind.
    A = laplacian_27pt(8)
    h = setup_hierarchy(A, SetupOptions(aggressive_levels=0, max_coarse=20))
    solver = Multadd(h, smoother="jacobi", weight=0.9)
    assert solver.ngrids >= 3
    return solver


@pytest.fixture(scope="module")
def b27():
    return random_rhs(512, seed=7)


def _engine(solver, b, **kw):
    kw.setdefault("tmax", 40)
    kw.setdefault("criterion", "criterion2")
    kw.setdefault("alpha", 0.5)
    kw.setdefault("seed", 0)
    return run_async_engine(solver, b, **kw)


class TestEngineFaults:
    def test_crash_guarded_recovers(self, multadd27, b27):
        res = _engine(
            multadd27,
            b27,
            faults=CRASH_PLAN,
            guard=GuardPolicy(watchdog_microsteps=2000),
        )
        assert not res.diverged and not res.stalled
        assert res.rel_residual < TOL
        assert res.telemetry.injected_crashes == 1
        assert res.telemetry.watchdog_detections >= 1
        assert res.telemetry.restarts == 1

    def test_crash_unguarded_stalls(self, multadd27, b27):
        # Criterion2 needs every grid to reach tmax; a dead grid makes
        # that impossible, and without guards nobody restarts it.
        res = _engine(multadd27, b27, faults=CRASH_PLAN)
        assert res.stalled and not res.diverged
        assert res.telemetry.injected_crashes == 1
        assert res.telemetry.restarts == 0

    def test_corruption_unguarded_diverges(self, multadd27, b27):
        res = _engine(
            multadd27, b27, faults=FaultPlan(corruption_probability=0.05, seed=0)
        )
        assert res.diverged and not res.stalled

    def test_corruption_guarded_converges(self, multadd27, b27):
        res = _engine(
            multadd27,
            b27,
            faults=FaultPlan(corruption_probability=0.05, seed=0),
            guard=GuardPolicy(),
        )
        assert not res.diverged and res.rel_residual < TOL
        assert res.telemetry.injected_corruptions > 0
        assert res.telemetry.corrections_rejected == res.telemetry.injected_corruptions

    def test_scale_corruption_contained_by_guards(self, multadd27, b27):
        # Exponent-bit-flip corruption that slips under the magnitude
        # screen cannot be fully repaired, but guards must *contain*
        # it: the unguarded run diverges, the guarded one never does.
        plan = FaultPlan(corruption_probability=0.05, corruption_mode="scale", seed=0)
        off = _engine(multadd27, b27, faults=plan)
        assert off.diverged
        on = _engine(
            multadd27, b27, faults=plan, guard=GuardPolicy(on_magnitude="clamp")
        )
        assert not on.diverged
        assert on.telemetry.corrections_clamped > 0
        assert on.telemetry.rollbacks > 0

    def test_stall_is_transient(self, multadd27, b27):
        res = _engine(
            multadd27,
            b27,
            faults=FaultPlan(stalls=(StallFault(1, 3, 500.0),), seed=0),
        )
        # A straggler delays but never prevents convergence (the
        # paper's no-deadlock property) — even without guards.
        assert not res.diverged and not res.stalled
        assert res.rel_residual < TOL
        assert res.telemetry.injected_stalls == 1

    def test_deterministic_under_faults(self, multadd27, b27):
        kw = dict(faults=COCKTAIL, guard=GuardPolicy(watchdog_microsteps=2000))
        r1 = _engine(multadd27, b27, **kw)
        r2 = _engine(multadd27, b27, **kw)
        np.testing.assert_array_equal(r1.x, r2.x)
        assert r1.telemetry.as_dict() == r2.telemetry.as_dict()

    def test_guard_is_noop_without_faults(self, multadd27, b27):
        plain = _engine(multadd27, b27)
        guarded = _engine(multadd27, b27, guard=GuardPolicy())
        np.testing.assert_array_equal(plain.x, guarded.x)
        assert guarded.telemetry.corrections_rejected == 0
        assert guarded.telemetry.rollbacks == 0
        assert guarded.telemetry.checkpoints > 0

    def test_divergence_threshold_flags_diverged(self, multadd27, b27):
        # Satellite: an over-relaxed smoother blows up; the engine must
        # report diverged=True (never stalled) instead of running on.
        bad = Multadd(multadd27.hierarchy, smoother="jacobi", weight=1.99)
        res = _engine(bad, b27, tmax=100, divergence_threshold=1e3)
        assert res.diverged
        assert not res.stalled


class TestThreadedFaults:
    GUARD = GuardPolicy(watchdog_timeout=0.1, checkpoint_period_s=0.02)
    # Real threads stop at the instant the *slowest* grid meets its
    # quota, so the exit-time residual is scheduling-dependent; a
    # generous tmax keeps the worst case far below TOL.
    TMAX = 150

    def test_crash_guarded_recovers(self, multadd27, b27):
        res = run_threaded(
            multadd27,
            b27,
            tmax=self.TMAX,
            criterion="criterion2",
            faults=CRASH_PLAN,
            guard=self.GUARD,
            timeout=120.0,
        )
        assert not res.diverged and not res.stalled
        assert res.rel_residual < TOL
        assert res.telemetry.injected_crashes == 1
        assert res.telemetry.restarts == 1
        # The restarted worker finished its quota.
        assert int(res.counts[1]) >= self.TMAX

    def test_crash_unguarded_stalls(self, multadd27, b27):
        res = run_threaded(
            multadd27,
            b27,
            tmax=40,
            criterion="criterion2",
            faults=CRASH_PLAN,
            timeout=120.0,
        )
        # The supervisor notices the dead worker quickly and stops the
        # survivors instead of spinning until the timeout.
        assert res.stalled and not res.diverged
        assert res.telemetry.restarts == 0

    def test_corruption_unguarded_diverges(self, multadd27, b27):
        res = run_threaded(
            multadd27,
            b27,
            tmax=40,
            criterion="criterion2",
            faults=FaultPlan(corruption_probability=0.2, seed=0),
            timeout=120.0,
        )
        assert res.diverged

    def test_corruption_guarded_converges(self, multadd27, b27):
        res = run_threaded(
            multadd27,
            b27,
            tmax=self.TMAX,
            criterion="criterion2",
            faults=FaultPlan(corruption_probability=0.05, seed=0),
            guard=self.GUARD,
            timeout=120.0,
        )
        assert not res.diverged and not res.stalled
        assert res.rel_residual < TOL
        assert res.telemetry.corrections_rejected > 0


class TestDistributedFaults:
    GUARD = GuardPolicy(watchdog_timeout=1e-4, retransmit_timeout=1e-5)

    def _run(self, solver, b, **kw):
        kw.setdefault("tmax", 40)
        kw.setdefault("criterion", "criterion2")
        kw.setdefault("network", NetworkModel(seed=0))
        # Compute-bound regime: replicas stay fresh, so the residual at
        # exit reflects the faults, not network staleness.
        kw.setdefault("machine", MachineParams(flop_rate=2e8, jitter=0.1))
        kw.setdefault("nthreads_total", 4)
        kw.setdefault("seed", 0)
        kw.setdefault("max_events", 120_000)
        return simulate_distributed(solver, b, **kw)

    def test_crash_guarded_recovers(self, multadd27, b27):
        res = self._run(multadd27, b27, faults=CRASH_PLAN, guard=self.GUARD)
        assert not res.diverged and not res.stalled
        assert res.rel_residual < TOL
        assert res.telemetry.injected_crashes == 1
        assert res.telemetry.restarts == 1

    def test_crash_unguarded_stalls(self, multadd27, b27):
        res = self._run(multadd27, b27, faults=CRASH_PLAN)
        assert res.stalled and not res.diverged

    def test_drop_with_retransmission(self, multadd27, b27):
        res = self._run(
            multadd27,
            b27,
            faults=FaultPlan(drop_probability=0.1, seed=0),
            guard=self.GUARD,
        )
        assert not res.diverged and not res.stalled
        assert res.rel_residual < TOL
        assert res.telemetry.retransmissions > 0
        assert res.dropped > 0

    def test_duplicates_are_deduplicated(self, multadd27, b27):
        res = self._run(
            multadd27,
            b27,
            faults=FaultPlan(duplicate_probability=0.2, seed=0),
            guard=self.GUARD,
        )
        assert not res.diverged
        assert res.telemetry.messages_duplicated > 0
        assert res.telemetry.duplicates_discarded > 0
        assert res.rel_residual < TOL

    def test_delays_counted(self, multadd27, b27):
        res = self._run(
            multadd27,
            b27,
            faults=FaultPlan(delay_probability=0.2, delay_factor=20.0, seed=0),
        )
        assert res.telemetry.messages_delayed > 0
        assert not res.diverged

    def test_deterministic_under_faults(self, multadd27, b27):
        out = []
        for _ in range(2):
            res = self._run(
                multadd27,
                b27,
                network=NetworkModel(seed=0),  # fresh stateful RNGs per run
                faults=COCKTAIL_DROP,
                guard=self.GUARD,
            )
            out.append(res)
        np.testing.assert_array_equal(out[0].x, out[1].x)
        assert out[0].telemetry.as_dict() == out[1].telemetry.as_dict()
        assert out[0].messages == out[1].messages

    # -- satellites ----------------------------------------------------
    def test_max_events_budget_raises_without_faults(self, multadd27, b27):
        with pytest.raises(RuntimeError, match="event budget"):
            self._run(multadd27, b27, max_events=50)

    def test_network_drops_counted_without_plan(self, multadd27, b27):
        res = self._run(
            multadd27,
            b27,
            tmax=10,
            criterion="criterion1",
            network=NetworkModel(drop_probability=0.2, seed=0),
        )
        assert res.dropped > 0
        # Lossy transport without retransmission: sent + lost accounts
        # for every transmission attempt.
        total = int(res.counts.sum()) * (multadd27.ngrids - 1)
        assert res.messages + res.dropped == total


class TestAcceptance:
    """ISSUE acceptance: guarded runs of all three backends survive the
    simultaneous-fault cocktail; unguarded runs diverge or stall."""

    def test_engine(self, multadd27, b27):
        on = _engine(
            multadd27,
            b27,
            faults=COCKTAIL,
            guard=GuardPolicy(watchdog_microsteps=2000),
        )
        off = _engine(multadd27, b27, faults=COCKTAIL)
        assert on.rel_residual < TOL and not on.diverged and not on.stalled
        assert off.diverged or off.stalled

    def test_threaded(self, multadd27, b27):
        on = run_threaded(
            multadd27,
            b27,
            tmax=TestThreadedFaults.TMAX,
            criterion="criterion2",
            faults=COCKTAIL,
            guard=TestThreadedFaults.GUARD,
            timeout=120.0,
        )
        off = run_threaded(
            multadd27,
            b27,
            tmax=40,
            criterion="criterion2",
            faults=COCKTAIL,
            timeout=120.0,
        )
        assert on.rel_residual < TOL and not on.diverged and not on.stalled
        assert off.diverged or off.stalled

    def test_distributed(self, multadd27, b27):
        run = TestDistributedFaults()
        on = run._run(
            multadd27, b27, faults=COCKTAIL_DROP, guard=TestDistributedFaults.GUARD
        )
        off = run._run(multadd27, b27, faults=COCKTAIL_DROP)
        assert on.rel_residual < TOL and not on.diverged and not on.stalled
        assert off.diverged or off.stalled
