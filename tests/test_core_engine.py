"""Unit tests for the sequential Algorithm-5 engine."""

import numpy as np
import pytest

from repro.core import run_async_engine
from repro.solvers import AFACx, Multadd


@pytest.fixture(scope="module")
def multadd(hier_7pt_agg):
    return Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)


class TestEngineBasics:
    def test_local_lock_converges(self, multadd, b_7pt):
        res = run_async_engine(multadd, b_7pt, tmax=20, seed=0)
        assert res.rel_residual < 1e-3
        assert not res.diverged

    def test_criterion1_counts_exact(self, multadd, b_7pt):
        res = run_async_engine(
            multadd, b_7pt, tmax=9, criterion="criterion1", seed=0
        )
        assert np.all(res.counts == 9)

    def test_criterion2_counts_at_least(self, multadd, b_7pt):
        res = run_async_engine(
            multadd, b_7pt, tmax=9, criterion="criterion2", seed=0, alpha=0.3
        )
        assert np.all(res.counts >= 9)
        assert res.counts.max() > 9  # fast grids overshoot

    def test_reproducible(self, multadd, b_7pt):
        r1 = run_async_engine(multadd, b_7pt, tmax=10, seed=4)
        r2 = run_async_engine(multadd, b_7pt, tmax=10, seed=4)
        assert r1.rel_residual == r2.rel_residual

    def test_seeds_differ(self, multadd, b_7pt):
        r1 = run_async_engine(multadd, b_7pt, tmax=10, seed=1, alpha=0.2)
        r2 = run_async_engine(multadd, b_7pt, tmax=10, seed=2, alpha=0.2)
        assert r1.rel_residual != r2.rel_residual

    def test_invalid_args(self, multadd, b_7pt):
        with pytest.raises(ValueError):
            run_async_engine(multadd, b_7pt, rescomp="psychic")
        with pytest.raises(ValueError):
            run_async_engine(multadd, b_7pt, write="wish")
        with pytest.raises(ValueError):
            run_async_engine(multadd, b_7pt, nchunks=0)


class TestRescompModes:
    @pytest.mark.parametrize("rescomp", ["local", "global", "rupdate"])
    @pytest.mark.parametrize("write", ["lock", "atomic"])
    def test_all_modes_run(self, multadd, b_7pt, rescomp, write):
        res = run_async_engine(
            multadd, b_7pt, tmax=10, rescomp=rescomp, write=write, seed=0, alpha=0.5
        )
        assert res.rel_residual < 1.0

    def test_global_res_slower_than_local(self, multadd, b_7pt):
        # The paper's central Section-IV observation.
        rels_local, rels_global = [], []
        for s in range(3):
            rels_local.append(
                run_async_engine(
                    multadd, b_7pt, tmax=20, rescomp="local", seed=s, alpha=0.2
                ).rel_residual
            )
            rels_global.append(
                run_async_engine(
                    multadd, b_7pt, tmax=20, rescomp="global", seed=s, alpha=0.2
                ).rel_residual
            )
        assert np.mean(rels_local) < np.mean(rels_global)

    def test_alpha_one_lock_local_matches_sync(self, multadd, b_7pt):
        # Perfectly balanced speeds + lock + local-res: every grid does
        # exactly tmax corrections from residuals that interleave, but
        # with alpha=1 the scheduler is still random — so only check
        # it reaches the synchronous ballpark.
        res = run_async_engine(
            multadd, b_7pt, tmax=20, alpha=1.0, seed=0
        )
        sync = multadd.solve(b_7pt, tmax=20)
        assert res.rel_residual < 100 * sync.final_relres


class TestCheckpoints:
    def test_checkpoints_recorded(self, multadd, b_7pt):
        res = run_async_engine(
            multadd,
            b_7pt,
            tmax=20,
            criterion="criterion2",
            checkpoints=[5, 10, 20],
            seed=0,
        )
        cps = [c[0] for c in res.checkpoint_results]
        assert cps == [5, 10, 20]
        rels = [c[1] for c in res.checkpoint_results]
        assert rels[0] > rels[-1]  # converging

    def test_checkpoints_need_criterion2(self, multadd, b_7pt):
        with pytest.raises(ValueError):
            run_async_engine(
                multadd, b_7pt, tmax=10, criterion="criterion1", checkpoints=[5]
            )

    def test_checkpoint_corrects_monotone(self, multadd, b_7pt):
        res = run_async_engine(
            multadd,
            b_7pt,
            tmax=15,
            criterion="criterion2",
            checkpoints=[5, 10, 15],
            seed=1,
            alpha=0.5,
        )
        cors = [c[2] for c in res.checkpoint_results]
        assert cors == sorted(cors)


class TestAFACxEngine:
    def test_afacx_async_converges(self, hier_7pt_agg, b_7pt):
        af = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9)
        res = run_async_engine(af, b_7pt, tmax=30, seed=0, alpha=0.5)
        assert res.rel_residual < 1e-2


class TestActivityTrace:
    def test_spans_recorded_per_correction(self, multadd, b_7pt):
        res = run_async_engine(multadd, b_7pt, tmax=5, seed=0)
        assert len(res.activity_trace) == int(res.counts.sum())
        for g, a, z in res.activity_trace:
            assert 0 <= g < multadd.ngrids
            assert a <= z

    def test_renders_as_timeline(self, multadd, b_7pt):
        from repro.utils import ascii_timeline

        res = run_async_engine(multadd, b_7pt, tmax=4, seed=0, alpha=0.3)
        out = ascii_timeline(res.activity_trace, multadd.ngrids)
        assert out.count("grid") == multadd.ngrids
