"""Tests for the happens-before checker (repro.analysis.racecheck)."""

import threading

import numpy as np
import pytest

from repro.analysis import CheckedWrite, run_conformance
from repro.core import AtomicWrite, LockWrite, UnsafeWrite
from repro.solvers import Multadd


@pytest.fixture(scope="module")
def multadd_27(hier_27pt):
    return Multadd(hier_27pt, smoother="jacobi", weight=0.9)


class TestCheckedWriteSemantics:
    """Wrapping must not change what the policy computes."""

    @pytest.mark.parametrize("inner_cls", [LockWrite, AtomicWrite, UnsafeWrite])
    def test_add_matches_plain(self, inner_cls):
        n = 100
        chk = CheckedWrite(inner_cls(n))
        target = np.zeros(n)
        chk.add(target, np.arange(float(n)))
        assert np.array_equal(target, np.arange(float(n)))

    def test_assign_slice_and_read(self):
        n = 50
        chk = CheckedWrite(AtomicWrite(n, stripe=16))
        target = np.zeros(n)
        chk.assign_slice(target, 10, 40, np.full(30, 3.0))
        out = chk.read(target)
        assert np.array_equal(out[10:40], np.full(30, 3.0))
        assert chk.total_assigns == 1
        assert chk.total_reads == 1

    def test_striping_mirrors_inner(self):
        chk = CheckedWrite(AtomicWrite(1000, stripe=256))
        assert chk.nstripes == 4
        chk = CheckedWrite(LockWrite(1000))
        assert chk.nstripes == 1


class TestDetectors:
    """The instruments fire on manufactured violations (deterministic —
    no reliance on racy scheduling)."""

    def test_seqlock_detects_in_flight_write(self):
        chk = CheckedWrite(UnsafeWrite(10))
        src = np.zeros(10)
        chk._wseq[0] = 1  # simulate a write caught mid-flight
        chk.read(src)
        assert chk.torn_reads == 1
        assert chk.torn_read_events

    def test_seqlock_clean_read_not_flagged(self):
        chk = CheckedWrite(UnsafeWrite(10))
        src = np.zeros(10)
        chk.add(src, np.ones(10))
        chk.read(src)
        assert chk.torn_reads == 0

    def test_vector_clock_detects_regression(self):
        chk = CheckedWrite(UnsafeWrite(10))
        src = np.zeros(10)
        chk.add(src, np.ones(10))
        chk.read(src)  # snapshot: this thread has 1 commit
        tid = threading.get_ident()
        chk._clock[0][tid] = 0  # simulate observing an older version
        chk.read(src)
        assert chk.monotone_violations == 1

    def test_lock_order_check(self):
        chk = CheckedWrite(AtomicWrite(100, stripe=10))
        chk._check_order([0, 1, 2])
        assert chk.lock_order_violations == 0
        chk._check_order([2, 1])
        assert chk.lock_order_violations == 1

    def test_staleness_measured(self):
        chk = CheckedWrite(LockWrite(10))
        src = np.zeros(10)
        chk.read(src)  # read at epoch 0
        chk.add(src, np.ones(10))  # commit 1: 0 foreign commits since read
        chk.add(src, np.ones(10))  # commit 2: 1 commit since that read
        assert chk.staleness == [0, 1]

    def test_report_fail_on_torn_reads(self):
        chk = CheckedWrite(UnsafeWrite(10))
        chk._wseq[0] = 1
        chk.read(np.zeros(10))
        report = chk.report(staleness_bound=10, counts=np.array([1, 1]))
        assert not report.passed
        assert "FAIL" in report.summary()


class TestConformance:
    """Instrumented threaded solves on the 27-point problem satisfy the
    paper's model assumptions (Section III) under both safe policies."""

    @pytest.mark.parametrize("write", ["lock", "atomic"])
    def test_model_conformance(self, multadd_27, b_27pt, write):
        tmax = 5
        report = run_conformance(
            multadd_27, b_27pt, write=write, tmax=tmax, criterion="criterion1"
        )
        assert report.torn_reads == 0
        assert report.lock_order_violations == 0
        assert report.monotone_violations == 0
        assert report.max_staleness <= report.staleness_bound
        # criterion 1: every grid commits exactly tmax corrections.
        assert report.counts == [tmax] * multadd_27.ngrids
        assert report.min_update_share > 0.0
        assert report.passed, report.summary()

    def test_explicit_delta_respected(self, multadd_27, b_27pt):
        report = run_conformance(multadd_27, b_27pt, write="lock", tmax=4, delta=999)
        assert report.staleness_bound == 999
        assert report.staleness_ok

    def test_criterion2_uses_total_commits_bound(self, multadd_27, b_27pt):
        report = run_conformance(
            multadd_27, b_27pt, write="lock", tmax=3, criterion="criterion2"
        )
        # The fallback bound is trivially sound: total commits.
        assert report.staleness_bound == report.total_commits
        assert report.staleness_ok
        assert report.torn_reads == 0

    def test_summary_reports_pass(self, multadd_27, b_27pt):
        report = run_conformance(multadd_27, b_27pt, write="lock", tmax=3)
        s = report.summary()
        assert "[PASS]" in s
        assert "torn=0" in s
