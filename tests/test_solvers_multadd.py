"""Unit tests for Multadd, including the paper's equivalence theorem."""

import copy

import numpy as np
import pytest

from repro.amg.hierarchy import Hierarchy
from repro.solvers import Multadd, MultiplicativeMultigrid


def truncate_hierarchy(h, nlevels):
    """First ``nlevels`` levels of ``h`` as a standalone hierarchy."""
    lvs = [copy.copy(lv) for lv in h.levels[:nlevels]]
    lvs[-1] = copy.copy(lvs[-1])
    lvs[-1].P = None
    lvs[-1].R = None
    return Hierarchy(levels=lvs, options=h.options)


class TestEquivalenceTheorem:
    """Multadd with the symmetrized smoother == symmetric V(1,1)-cycle.

    This is the central algebraic identity of Section II.B.1 and the
    strongest possible correctness anchor for the smoothed-interpolant
    chain, the symmetrized Lambda, and the additive assembly.
    """

    @pytest.mark.parametrize("nlevels", [2, 3, 4])
    def test_jacobi_equivalence(self, hier_7pt, b_7pt, nlevels):
        if hier_7pt.nlevels < nlevels:
            pytest.skip("hierarchy too shallow")
        ht = truncate_hierarchy(hier_7pt, nlevels)
        mult = MultiplicativeMultigrid(
            ht, smoother="jacobi", weight=0.9, symmetric=True
        )
        madd = Multadd(ht, smoother="jacobi", weight=0.9, lambda_mode="symmetrized")
        x0 = np.zeros(ht.levels[0].n)
        x_mult = mult.cycle(x0, b_7pt)
        x_madd = madd.cycle(x0, b_7pt)
        scale = np.abs(x_mult).max()
        assert np.abs(x_mult - x_madd).max() < 1e-12 * max(scale, 1.0)

    def test_equivalence_many_cycles(self, hier_7pt, b_7pt):
        ht = truncate_hierarchy(hier_7pt, 3)
        mult = MultiplicativeMultigrid(
            ht, smoother="jacobi", weight=0.9, symmetric=True
        )
        madd = Multadd(ht, smoother="jacobi", weight=0.9, lambda_mode="symmetrized")
        r1 = mult.solve(b_7pt, tmax=10).residual_history
        r2 = madd.solve(b_7pt, tmax=10).residual_history
        assert np.allclose(r1, r2, rtol=1e-8)

    def test_l1_jacobi_equivalence_two_level(self, hier_7pt, b_7pt):
        ht = truncate_hierarchy(hier_7pt, 2)
        mult = MultiplicativeMultigrid(ht, smoother="l1_jacobi", symmetric=True)
        madd = Multadd(ht, smoother="l1_jacobi", lambda_mode="symmetrized")
        x0 = np.zeros(ht.levels[0].n)
        x_mult = mult.cycle(x0, b_7pt)
        x_madd = madd.cycle(x0, b_7pt)
        assert np.allclose(x_mult, x_madd, rtol=1e-11, atol=1e-13)


class TestMultaddBehaviour:
    def test_converges(self, hier_7pt_agg, b_7pt):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        res = s.solve(b_7pt, tmax=25)
        assert res.final_relres < 1e-5

    def test_correction_is_linear_in_r(self, hier_7pt_agg):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        rng = np.random.default_rng(0)
        u, v = rng.standard_normal((2, s.n))
        for k in (0, s.ngrids - 1):
            lhs = s.correction(k, 2.0 * u - v)
            rhs = 2.0 * s.correction(k, u) - s.correction(k, v)
            assert np.allclose(lhs, rhs, atol=1e-12)

    def test_corrections_sum_to_cycle(self, hier_7pt_agg, b_7pt):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        x0 = np.zeros(s.n)
        r = b_7pt.copy()
        total = sum(s.correction(k, r) for k in range(s.ngrids))
        assert np.allclose(s.cycle(x0, b_7pt), x0 + total)

    def test_coarse_grid_correction_exact_solve(self, hier_7pt_agg):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        ell = s.hierarchy.coarsest
        rng = np.random.default_rng(1)
        r = rng.standard_normal(s.n)
        # grid ell correction == Pbar_l A_l^{-1} Pbar_l^T r
        c = r.copy()
        for j in range(ell):
            c = s.P_bar[j].T @ c
        d = s.coarse(c)
        for j in range(ell - 1, -1, -1):
            d = s.P_bar[j] @ d
        assert np.allclose(s.correction(ell, r), d)

    def test_hybrid_defaults_to_minv(self, hier_7pt):
        s = Multadd(hier_7pt, smoother="hybrid_jgs", nblocks=4)
        assert s.lambda_mode == "minv"

    def test_jacobi_defaults_to_symmetrized(self, hier_7pt):
        s = Multadd(hier_7pt, smoother="jacobi", weight=0.9)
        assert s.lambda_mode == "symmetrized"

    def test_l1_uses_l1_interpolants(self, hier_7pt):
        s = Multadd(hier_7pt, smoother="l1_jacobi")
        assert s.interp_smoother_kind == "l1_jacobi"

    def test_invalid_lambda_mode(self, hier_7pt):
        with pytest.raises(ValueError):
            Multadd(hier_7pt, lambda_mode="exact")

    def test_hybrid_smoother_converges(self, hier_7pt_agg, b_7pt):
        s = Multadd(hier_7pt_agg, smoother="hybrid_jgs", nblocks=4)
        res = s.solve(b_7pt, tmax=30)
        assert res.final_relres < 1e-3

    def test_async_gs_smoother_converges(self, hier_7pt_agg, b_7pt):
        s = Multadd(
            hier_7pt_agg, smoother="async_gs", nblocks=4, lambda_mode="sweep"
        )
        res = s.solve(b_7pt, tmax=30)
        assert res.final_relres < 1e-3

    def test_correction_flops_increase_with_depth_then_chain(self, hier_7pt_agg):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        f = [s.correction_flops(k) for k in range(s.ngrids)]
        assert all(v > 0 for v in f)

    def test_work_per_grid_vector(self, hier_7pt_agg):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        w = s.work_per_grid()
        assert w.shape == (s.ngrids,)
        assert np.all(w > 0)
