"""Unit tests for the distributed-memory simulator."""

import numpy as np
import pytest

from repro.core.perfmodel import MachineParams
from repro.distributed import NetworkModel, simulate_distributed
from repro.solvers import Multadd


@pytest.fixture(scope="module")
def multadd(hier_7pt_agg):
    return Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)


class TestNetworkModel:
    def test_transfer_time_components(self):
        net = NetworkModel(latency=1e-6, bandwidth=1e9, jitter=0.0)
        t = net.transfer_time(0, 1, 1e6)
        assert t == pytest.approx(1e-6 + 1e-3)

    def test_latency_matrix(self):
        m = np.array([[0.0, 5e-6], [5e-6, 0.0]])
        net = NetworkModel(latency_matrix=m, jitter=0.0)
        assert net.link_latency(0, 1) == 5e-6

    def test_matrix_bounds_checked(self):
        net = NetworkModel(latency_matrix=np.zeros((2, 2)), jitter=0.0)
        with pytest.raises(ValueError):
            net.link_latency(0, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkModel(latency_matrix=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            NetworkModel(latency=-1)

    def test_jitter_only_increases(self):
        net = NetworkModel(latency=1e-6, bandwidth=1e12, jitter=0.5, seed=1)
        for _ in range(20):
            assert net.transfer_time(0, 1, 0.0) >= 1e-6

    def test_negative_bytes_raise(self):
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.transfer_time(0, 1, -5)


#: compute-bound configuration: per-correction compute time well above
#: the network latency, so replicas stay fresh (the shared-memory-like
#: regime).  The default (fast) machine is network-bound — realistic,
#: and exactly the regime the latency study exercises.
_COMPUTE_BOUND = dict(machine=MachineParams(flop_rate=2e8, jitter=0.1), nthreads_total=4)


class TestDistributedSimulation:
    def test_converges_global(self, multadd, b_7pt):
        res = simulate_distributed(
            multadd, b_7pt, tmax=20, strategy="global", seed=0, **_COMPUTE_BOUND
        )
        assert res.rel_residual < 1e-2
        assert np.all(res.counts == 20)

    def test_converges_local(self, multadd, b_7pt):
        res = simulate_distributed(
            multadd, b_7pt, tmax=20, strategy="local", seed=0, **_COMPUTE_BOUND
        )
        assert res.rel_residual < 1e-2

    def test_network_bound_regime_is_stale(self, multadd, b_7pt):
        # With compute far cheaper than latency, processes iterate on
        # stale replicas and convergence per correction degrades — the
        # distributed pathology the latency study quantifies.
        fresh = simulate_distributed(
            multadd, b_7pt, tmax=20, seed=0, **_COMPUTE_BOUND
        )
        stale = simulate_distributed(
            multadd,
            b_7pt,
            tmax=20,
            seed=0,
            machine=MachineParams(jitter=0.1),
            nthreads_total=64,
        )
        assert fresh.rel_residual < stale.rel_residual

    def test_wall_time_and_messages(self, multadd, b_7pt):
        res = simulate_distributed(multadd, b_7pt, tmax=5, seed=0)
        assert res.wall_time > 0
        # every correction broadcasts to ngrids-1 peers
        assert res.messages == 5 * multadd.ngrids * (multadd.ngrids - 1)

    def test_criterion2_overshoot(self, multadd, b_7pt):
        res = simulate_distributed(
            multadd,
            b_7pt,
            tmax=8,
            criterion="criterion2",
            machine=MachineParams(jitter=0.5, seed=3),
            seed=3,
        )
        assert np.all(res.counts >= 8)

    def test_invalid_args(self, multadd, b_7pt):
        with pytest.raises(ValueError):
            simulate_distributed(multadd, b_7pt, strategy="psychic")
        with pytest.raises(ValueError):
            simulate_distributed(multadd, b_7pt, criterion="criterion9")

    def test_reproducible(self, multadd, b_7pt):
        r1 = simulate_distributed(multadd, b_7pt, tmax=10, seed=5)
        r2 = simulate_distributed(multadd, b_7pt, tmax=10, seed=5)
        assert r1.rel_residual == r2.rel_residual
        assert r1.wall_time == r2.wall_time

    def test_slow_network_slows_convergence(self, multadd, b_7pt):
        # Same correction budget; staler replicas => worse residual.
        fast = simulate_distributed(
            multadd,
            b_7pt,
            tmax=20,
            network=NetworkModel(latency=1e-7, jitter=0.0),
            machine=MachineParams(flop_rate=2e8, jitter=0.0),
            nthreads_total=4,
            seed=0,
        )
        slow = simulate_distributed(
            multadd,
            b_7pt,
            tmax=20,
            network=NetworkModel(latency=5e-4, jitter=0.0),
            machine=MachineParams(flop_rate=2e8, jitter=0.0),
            nthreads_total=4,
            seed=0,
        )
        assert fast.rel_residual <= slow.rel_residual * 1.5

    def test_global_needs_fewer_flops(self, multadd, b_7pt):
        # The paper's distributed-memory argument: global-res avoids
        # per-correction full-residual recomputation... with one
        # incremental SpMV instead — flops comparable or lower, and
        # never *more* than local-res.
        g = simulate_distributed(multadd, b_7pt, tmax=10, strategy="global", seed=0)
        l = simulate_distributed(multadd, b_7pt, tmax=10, strategy="local", seed=0)
        assert g.flops_total <= l.flops_total * 1.01

    def test_trace_recorded(self, multadd, b_7pt):
        res = simulate_distributed(
            multadd, b_7pt, tmax=5, seed=0, track_trace=True
        )
        assert len(res.residual_trace) == 5 * multadd.ngrids
        times = [t for t, _ in res.residual_trace]
        assert times == sorted(times)


class TestMessageLoss:
    def test_drop_probability_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(drop_probability=1.0)
        with pytest.raises(ValueError):
            NetworkModel(drop_probability=-0.1)

    def test_no_drops_by_default(self, multadd, b_7pt):
        res = simulate_distributed(multadd, b_7pt, tmax=5, seed=0)
        assert res.dropped == 0

    def test_drop_counter(self, multadd, b_7pt):
        res = simulate_distributed(
            multadd,
            b_7pt,
            tmax=10,
            network=NetworkModel(drop_probability=0.5, seed=0),
            **_COMPUTE_BOUND,
        )
        assert res.dropped > 0
        # sent + dropped = corrections * (ngrids - 1)
        total = int(res.counts.sum()) * (multadd.ngrids - 1)
        assert res.messages + res.dropped == total

    def test_loss_degrades_convergence(self, multadd, b_7pt):
        # Asynchronous methods tolerate loss (no deadlock, still
        # converging) but pay in accuracy per correction budget —
        # monotonically in the loss rate.
        rels = []
        for drop in (0.0, 0.3):
            vals = []
            for s in range(3):
                r = simulate_distributed(
                    multadd,
                    b_7pt,
                    tmax=20,
                    network=NetworkModel(drop_probability=drop, seed=s),
                    machine=MachineParams(flop_rate=2e8, jitter=0.1),
                    nthreads_total=4,
                    seed=s,
                )
                vals.append(r.rel_residual)
            rels.append(float(np.mean(vals)))
        assert rels[0] < rels[1]
        assert np.isfinite(rels[1])  # no blow-up: loss never deadlocks
