"""Unit tests for repro.linalg.triangular."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import (
    backward_solve,
    build_level_schedule,
    forward_solve,
    level_scheduled_forward_solve,
    lower_triangle,
)


@pytest.fixture()
def L_random():
    rng = np.random.default_rng(3)
    n = 40
    dense = np.tril(rng.standard_normal((n, n)))
    dense[np.abs(dense) < 0.8] = 0.0  # sparsify
    np.fill_diagonal(dense, rng.uniform(1.0, 2.0, n))
    return sp.csr_matrix(dense)


class TestForwardSolve:
    def test_matches_dense(self, L_random):
        rng = np.random.default_rng(4)
        b = rng.standard_normal(L_random.shape[0])
        x = forward_solve(L_random, b)
        ref = np.linalg.solve(L_random.toarray(), b)
        assert np.allclose(x, ref)

    def test_ignores_upper_entries(self, A_1d):
        b = np.ones(A_1d.shape[0])
        x_full = forward_solve(A_1d, b)  # pass full matrix
        x_tril = forward_solve(lower_triangle(A_1d), b)
        assert np.allclose(x_full, x_tril)

    def test_missing_diagonal_raises(self):
        L = sp.csr_matrix(np.array([[1.0, 0.0], [1.0, 0.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            forward_solve(L, np.ones(2))

    def test_nonsquare_raises(self):
        with pytest.raises(ValueError, match="square"):
            forward_solve(sp.csr_matrix(np.ones((2, 3))), np.ones(2))


class TestBackwardSolve:
    def test_matches_dense(self, L_random):
        U = sp.csr_matrix(L_random.T)
        rng = np.random.default_rng(5)
        b = rng.standard_normal(U.shape[0])
        x = backward_solve(U, b)
        assert np.allclose(x, np.linalg.solve(U.toarray(), b))

    def test_transpose_consistency(self, L_random):
        b = np.ones(L_random.shape[0])
        x1 = backward_solve(sp.csr_matrix(L_random.T), b)
        ref = np.linalg.solve(L_random.toarray().T, b)
        assert np.allclose(x1, ref)


class TestLevelSchedule:
    def test_partitions_all_rows(self, L_random):
        schedule = build_level_schedule(L_random)
        all_rows = np.sort(np.concatenate(schedule))
        assert np.array_equal(all_rows, np.arange(L_random.shape[0]))

    def test_diagonal_matrix_single_level(self):
        D = sp.diags(np.arange(1.0, 6.0)).tocsr()
        schedule = build_level_schedule(D)
        assert len(schedule) == 1

    def test_bidiagonal_is_fully_sequential(self):
        n = 10
        L = sp.diags([np.ones(n - 1), np.ones(n)], offsets=[-1, 0]).tocsr()
        schedule = build_level_schedule(L)
        assert len(schedule) == n

    def test_levels_respect_dependencies(self, L_random):
        schedule = build_level_schedule(L_random)
        level_of = np.empty(L_random.shape[0], dtype=int)
        for lvl, rows in enumerate(schedule):
            level_of[rows] = lvl
        coo = L_random.tocoo()
        for i, j in zip(coo.row, coo.col):
            if j < i:
                assert level_of[j] < level_of[i]


class TestLevelScheduledSolve:
    def test_matches_row_solve(self, L_random):
        rng = np.random.default_rng(6)
        b = rng.standard_normal(L_random.shape[0])
        x1 = forward_solve(L_random, b)
        x2 = level_scheduled_forward_solve(L_random, b)
        assert np.allclose(x1, x2)

    def test_with_precomputed_schedule(self, L_random):
        schedule = build_level_schedule(L_random)
        b = np.ones(L_random.shape[0])
        x = level_scheduled_forward_solve(L_random, b, schedule=schedule)
        assert np.allclose(x, forward_solve(L_random, b))

    def test_zero_diag_raises(self):
        L = sp.csr_matrix(np.array([[1.0, 0.0], [1.0, 0.0]]))
        L[1, 1] = 0  # explicit structural diagonal missing
        with pytest.raises(ValueError):
            level_scheduled_forward_solve(L.tocsr(), np.ones(2))
