"""Property-based tests for AMG setup invariants."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.amg import (
    CPOINT,
    FPOINT,
    UNDECIDED,
    classical_interpolation,
    classical_strength,
    direct_interpolation,
    galerkin_product,
    hmis_coarsening,
    pmis_coarsening,
    rs_coarsening,
)


@st.composite
def random_spd_mmatrix(draw, max_cells=8):
    """Random anisotropic grid Laplacian (always an SPD M-matrix)."""
    nx = draw(st.integers(3, max_cells))
    ny = draw(st.integers(3, max_cells))
    ax = draw(st.floats(0.1, 10.0))
    ay = draw(st.floats(0.1, 10.0))
    Kx = sp.diags([-ax * np.ones(nx - 1), 2 * ax * np.ones(nx), -ax * np.ones(nx - 1)], [-1, 0, 1])
    Ky = sp.diags([-ay * np.ones(ny - 1), 2 * ay * np.ones(ny), -ay * np.ones(ny - 1)], [-1, 0, 1])
    A = sp.kron(Kx, sp.identity(ny)) + sp.kron(sp.identity(nx), Ky)
    return A.tocsr()


class TestCoarseningProperties:
    @given(random_spd_mmatrix(), st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_pmis_everything_decided(self, A, seed):
        S = classical_strength(A, 0.25)
        split = pmis_coarsening(S, seed=seed)
        assert not np.any(split == UNDECIDED)

    @given(random_spd_mmatrix(), st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_pmis_independent_set(self, A, seed):
        S = classical_strength(A, 0.25)
        split = pmis_coarsening(S, seed=seed)
        sym = ((S + S.T) > 0).tocsr()
        cpts = np.flatnonzero(split == CPOINT)
        if cpts.size:
            assert sym[cpts][:, cpts].nnz == 0

    @given(random_spd_mmatrix(), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_hmis_f_points_covered(self, A, seed):
        S = classical_strength(A, 0.25)
        split = hmis_coarsening(S, seed=seed)
        for i in range(S.shape[0]):
            row = S.indices[S.indptr[i] : S.indptr[i + 1]]
            if split[i] == FPOINT and row.size:
                assert np.any(split[row] == CPOINT)

    @given(random_spd_mmatrix())
    @settings(max_examples=20, deadline=None)
    def test_rs_deterministic(self, A):
        S = classical_strength(A, 0.25)
        assert np.array_equal(rs_coarsening(S), rs_coarsening(S))


class TestInterpolationProperties:
    @given(random_spd_mmatrix(), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_c_rows_identity(self, A, seed):
        S = classical_strength(A, 0.25)
        split = pmis_coarsening(S, seed=seed)
        for interp in (direct_interpolation, classical_interpolation):
            P = interp(A, S, split)
            cpts = np.flatnonzero(split == CPOINT)
            eye = P[cpts].toarray()
            assert np.allclose(eye, np.eye(cpts.size))

    @given(random_spd_mmatrix(), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_galerkin_spd(self, A, seed):
        S = classical_strength(A, 0.25)
        split = pmis_coarsening(S, seed=seed)
        if (split == CPOINT).sum() == 0:
            return
        P = classical_interpolation(A, S, split)
        Ac = galerkin_product(A, P)
        assert abs(Ac - Ac.T).max() < 1e-12
        w = np.linalg.eigvalsh(Ac.toarray())
        assert w.min() > -1e-10

    @given(random_spd_mmatrix(), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_weights_bounded(self, A, seed):
        # Interpolation weights of an M-matrix stay in [0, 1] for
        # direct interpolation (convex-combination structure).
        S = classical_strength(A, 0.25)
        split = pmis_coarsening(S, seed=seed)
        P = direct_interpolation(A, S, split)
        assert P.data.min() >= -1e-12
        assert P.data.max() <= 1.0 + 1e-12
