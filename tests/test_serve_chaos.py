"""Chaos acceptance test for the solve server (PR 10 acceptance gate).

One seeded storm throws everything at a small server at once:

- a flooding tenant saturating the bounded queue (overload + shed),
- a crash-fault tenant whose jobs kill workers mid-solve,
- a deadline-busting tenant (against its *own* operator, so its
  breaker accounting cannot black out the healthy tenants),
- a steady tenant that must keep converging through all of it.

Afterwards, a deterministic sequential phase drives one operator's
circuit breaker through its full lifecycle (trip → fast-fail →
half-open probe → re-close).

The acceptance claims checked here:

1. every submitted job terminates in exactly one of
   {ok, degraded, rejected, failed-with-cause} — no ticket hangs;
2. the breaker is observed opening AND re-closing;
3. no hung threads or leaked workers after ``stop()``;
4. rejections and failures carry only *designed* causes — zero jobs
   rejected or failed by a bug (``internal:*``).

(The quantitative claim — healthy-tenant p99 within 2x of the
fault-free baseline — is measured by ``benchmarks/bench_serve.py``
and recorded in ``benchmarks/results/BENCH_serve.json``.)
"""

import threading
import time

import numpy as np

from repro.problems import build_problem
from repro.resilience import parse_fault_spec
from repro.serve import (
    CLOSED,
    OPEN,
    ServeConfig,
    SolveServer,
    TERMINAL_STATUSES,
)

DESIGNED_REJECT_CAUSES = {"overloaded", "shed", "circuit_open", "shutdown"}
DESIGNED_FAIL_CAUSES = {"divergence", "guard_trip", "worker_crash"}


def rhs(n, seed):
    return np.random.default_rng(seed).standard_normal(n)


class TestChaosAcceptance:
    def test_seeded_storm_terminates_every_job(self):
        config = ServeConfig(
            workers=2,
            max_depth=8,
            high_water=6,
            batch_max=4,
            tick_s=0.005,
            failure_threshold=2,
            reset_timeout_s=0.2,
            seed=42,
            fault_plans={"crashy": parse_fault_spec("crash:0@1", seed=7)},
        )
        server = SolveServer(config).start()
        p = build_problem("5pt", 12)
        slow = build_problem("5pt", 14)
        server.register_operator(
            "good", p.A, solver_kwargs={"weight": p.jacobi_weight}
        )
        # The deadline-buster gets its own operator: its zero-cycle
        # degradations feed that operator's breaker, not "good"'s.
        server.register_operator(
            "slow", slow.A, solver_kwargs={"weight": slow.jacobi_weight}
        )

        buckets = {}
        lock = threading.Lock()

        def run_tenant(name, submit_fn, count, pause_s):
            tickets = []
            for i in range(count):
                tickets.append(submit_fn(i))
                if pause_s:
                    time.sleep(pause_s)
            results = [t.result(timeout=60.0) for t in tickets]
            with lock:
                buckets[name] = results

        tenants = [
            # Steady load: paced, must ride through the storm.
            (
                "steady",
                lambda i: server.submit_named(
                    "steady", "good", rhs(p.n, 100 + i), deadline_s=30.0
                ),
                12,
                0.01,
            ),
            # Flood: a burst far past max_depth — saturates the queue.
            (
                "flood",
                lambda i: server.submit_named(
                    "flood", "good", rhs(p.n, 200 + i), deadline_s=30.0
                ),
                30,
                0.0,
            ),
            # Crash faults: every job's first attempt kills a worker.
            (
                "crashy",
                lambda i: server.submit_named(
                    "crashy", "good", rhs(p.n, 300 + i),
                    deadline_s=30.0, retries=1,
                ),
                4,
                0.02,
            ),
            # Deadline busters: can never afford a cycle.
            (
                "hasty",
                lambda i: server.submit_named(
                    "hasty", "slow", rhs(slow.n, 400 + i), deadline_s=1e-4
                ),
                5,
                0.01,
            ),
        ]
        threads = [
            threading.Thread(target=run_tenant, args=spec, daemon=True)
            for spec in tenants
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        assert all(not t.is_alive() for t in threads), "a tenant hung"

        # -- claim 1: every job terminated, exactly one status --------
        all_results = [r for results in buckets.values() for r in results]
        assert len(all_results) == 12 + 30 + 4 + 5
        assert all(r is not None for r in all_results), "a ticket never resolved"
        for r in all_results:
            assert r.status in TERMINAL_STATUSES
            if r.status == "failed":
                assert r.cause, "failures must carry a cause"

        # -- claim 4: only designed causes, zero rejected-by-bug ------
        for r in all_results:
            if r.status == "rejected":
                assert r.cause in DESIGNED_REJECT_CAUSES, r.oneline()
            if r.status == "failed":
                assert r.cause in DESIGNED_FAIL_CAUSES, r.oneline()
            assert not r.cause.startswith("internal:"), r.oneline()

        # Steady tenant rode through the storm.
        steady = buckets["steady"]
        steady_ok = [r for r in steady if r.status == "ok"]
        assert len(steady_ok) >= 10, [r.oneline() for r in steady]
        for r in steady_ok:
            assert r.rel_residual <= 1e-8

        # The flood actually saturated the bounded queue.
        flood = buckets["flood"]
        flood_rejected = [r for r in flood if r.status == "rejected"]
        assert flood_rejected, "30-job burst against depth 8 must shed"
        assert {r.cause for r in flood_rejected} <= {"overloaded", "shed"}

        # Crash-fault tenant: first attempts crashed, retries landed.
        crashy = buckets["crashy"]
        assert all(r.status in ("ok", "failed") for r in crashy)
        assert any(r.attempts == 2 for r in crashy if r.status == "ok")
        flat = server.metrics.flatten()
        assert flat["serve.worker_crashes"] >= 1
        assert flat["serve.workers_respawned"] >= 1

        # Deadline busters degrade honestly — though one offered at the
        # flood's peak may be bounced at admission instead (that is
        # backpressure working, not a missed deadline).
        hasty = buckets["hasty"]
        assert all(r.status in ("degraded", "rejected") for r in hasty), [
            r.oneline() for r in hasty
        ]
        hasty_degraded = [r for r in hasty if r.status == "degraded"]
        assert hasty_degraded, "no hasty job ever reached a worker"
        assert all(r.cause == "deadline" and r.stalled for r in hasty_degraded)

        # -- claim 2: breaker full lifecycle (deterministic phase) ----
        flaky = server.register_operator(
            "flaky", p.A, solver_kwargs={"weight": p.jacobi_weight * 0.999}
        )
        # A divergence threshold below the starting residual makes a
        # job fail attributably without a poisoned solver: two in a
        # row trip the breaker.
        for i in range(2):
            res = server.submit_named(
                "toxic", "flaky", rhs(p.n, 500 + i),
                divergence_threshold=0.5, retries=0, deadline_s=30.0,
            ).result(timeout=60.0)
            assert res.status == "failed" and res.cause == "divergence"
        assert server.breaker.state(flaky.fingerprint) == OPEN
        fast = server.submit_named(
            "toxic", "flaky", rhs(p.n, 510), deadline_s=30.0
        ).result(timeout=60.0)
        assert fast.status == "rejected" and fast.cause == "circuit_open"
        time.sleep(config.reset_timeout_s + 0.05)
        probe = server.submit_named(
            "steady", "flaky", rhs(p.n, 511), deadline_s=30.0
        ).result(timeout=60.0)
        assert probe.status == "ok"
        assert server.breaker.state(flaky.fingerprint) == CLOSED
        pairs = [
            (frm, to)
            for _, key, frm, to in server.breaker.transitions
            if key == flaky.fingerprint
        ]
        assert ("closed", "open") in pairs, "breaker never opened"
        assert ("open", "half_open") in pairs
        assert ("half_open", "closed") in pairs, "breaker never re-closed"

        # -- claim 3: clean teardown, no leaked threads ---------------
        server.stop()
        assert server.alive_threads() == []
        lingering = [
            t for t in threading.enumerate() if t.name.startswith("serve-")
        ]
        assert lingering == [], lingering
        # Late submissions resolve (rejected), they don't hang.
        late = server.submit_named("steady", "good", rhs(p.n, 999))
        res = late.result(timeout=5.0)
        assert res is not None and res.cause == "shutdown"
