"""Unit tests for repro.amg.coarsen."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.amg import (
    CPOINT,
    FPOINT,
    UNDECIDED,
    classical_strength,
    hmis_coarsening,
    pmis_coarsening,
    rs_coarsening,
    rs_first_pass,
    validate_cf_splitting,
)


@pytest.fixture(scope="module")
def S_7pt(A_7pt):
    return classical_strength(A_7pt, theta=0.25)


class TestRSFirstPass:
    def test_everything_decided_full_domain(self, S_7pt):
        split = rs_first_pass(S_7pt)
        split[split == UNDECIDED] = FPOINT
        assert np.all(np.isin(split, (CPOINT, FPOINT)))

    def test_1d_red_black(self, A_1d):
        S = classical_strength(A_1d, theta=0.25)
        split = rs_first_pass(S)
        ncoarse = (split == CPOINT).sum()
        # 1-D RS picks roughly every other point.
        assert 0.3 * A_1d.shape[0] <= ncoarse <= 0.7 * A_1d.shape[0]

    def test_no_adjacent_cc_in_1d(self, A_1d):
        # In a path graph, RS never selects two adjacent C points
        # (the neighbour of a new C immediately becomes F).
        S = classical_strength(A_1d, theta=0.25)
        split = rs_first_pass(S)
        c = split == CPOINT
        assert not np.any(c[:-1] & c[1:])

    def test_block_mode_leaves_boundary_undecided(self, S_7pt):
        n = S_7pt.shape[0]
        allowed = np.zeros(n, dtype=bool)
        allowed[: n // 2] = True
        split = rs_first_pass(S_7pt, allowed=allowed)
        assert np.all(split[~allowed] == UNDECIDED)

    def test_isolated_point_becomes_f(self):
        S = sp.csr_matrix((3, 3))
        split = rs_first_pass(S)
        assert np.all(split == FPOINT)


class TestRSCoarsening:
    def test_valid_with_common_c(self, S_7pt):
        split = rs_coarsening(S_7pt)
        validate_cf_splitting(S_7pt, split, require_common_c=True)

    def test_nontrivial_coarse_fraction(self, S_7pt):
        split = rs_coarsening(S_7pt)
        frac = (split == CPOINT).mean()
        assert 0.1 < frac < 0.8


class TestPMIS:
    def test_valid_splitting(self, S_7pt):
        split = pmis_coarsening(S_7pt, seed=0)
        assert not np.any(split == UNDECIDED)

    def test_independent_set(self, S_7pt):
        # C points form an independent set in the symmetrized strong graph.
        split = pmis_coarsening(S_7pt, seed=0)
        sym = ((S_7pt + S_7pt.T) > 0).tocsr()
        cpts = np.flatnonzero(split == CPOINT)
        sub = sym[cpts][:, cpts]
        assert sub.nnz == 0

    def test_coarser_than_rs(self, S_7pt):
        # PMIS typically selects far fewer C points than RS.
        c_pmis = (pmis_coarsening(S_7pt, seed=0) == CPOINT).sum()
        c_rs = (rs_coarsening(S_7pt) == CPOINT).sum()
        assert c_pmis <= c_rs

    def test_seed_changes_split(self, S_7pt):
        s1 = pmis_coarsening(S_7pt, seed=0)
        s2 = pmis_coarsening(S_7pt, seed=1)
        assert not np.array_equal(s1, s2)

    def test_seed_reproducible(self, S_7pt):
        assert np.array_equal(
            pmis_coarsening(S_7pt, seed=3), pmis_coarsening(S_7pt, seed=3)
        )

    def test_seeded_cpoints_respected(self, S_7pt):
        pre = np.full(S_7pt.shape[0], UNDECIDED, dtype=np.int8)
        pre[0] = CPOINT
        split = pmis_coarsening(S_7pt, seed=0, splitting=pre)
        assert split[0] == CPOINT
        # Strong dependents of point 0 were forced F.
        deps = S_7pt.T.tocsr()[0].indices
        assert np.all(split[deps] == FPOINT)

    def test_empty_strength(self):
        S = sp.csr_matrix((6, 6))
        split = pmis_coarsening(S)
        assert np.all(split == FPOINT)


class TestHMIS:
    def test_valid_splitting(self, S_7pt):
        split = hmis_coarsening(S_7pt, nparts=4, seed=0)
        validate_cf_splitting(S_7pt, split)

    def test_f_points_have_c_neighbour(self, S_7pt):
        split = hmis_coarsening(S_7pt, nparts=4, seed=0)
        for i in range(S_7pt.shape[0]):
            row = S_7pt.indices[S_7pt.indptr[i] : S_7pt.indptr[i + 1]]
            if split[i] == FPOINT and row.size:
                assert np.any(split[row] == CPOINT)

    def test_single_part_degenerates(self, S_7pt):
        split = hmis_coarsening(S_7pt, nparts=1, seed=0)
        assert not np.any(split == UNDECIDED)

    def test_reasonable_coarsening_factor(self, S_7pt):
        split = hmis_coarsening(S_7pt, nparts=4, seed=0)
        frac = (split == CPOINT).mean()
        assert 0.05 < frac < 0.65


class TestValidate:
    def test_rejects_undecided(self, S_7pt):
        split = np.full(S_7pt.shape[0], UNDECIDED, dtype=np.int8)
        with pytest.raises(ValueError, match="undecided"):
            validate_cf_splitting(S_7pt, split)

    def test_rejects_orphan_f(self, A_1d):
        S = classical_strength(A_1d)
        split = np.full(A_1d.shape[0], FPOINT, dtype=np.int8)
        with pytest.raises(ValueError, match="no C-neighbour"):
            validate_cf_splitting(S, split)

    def test_rejects_wrong_length(self, S_7pt):
        with pytest.raises(ValueError, match="length"):
            validate_cf_splitting(S_7pt, np.array([CPOINT]))
