"""Unit tests for the repro.observe layer (tracer, metrics, exporters,
analyzer) — no solver runs; backend integration lives in
tests/test_observe_integration.py."""

import json
import math
import threading

import numpy as np
import pytest

from repro.core.writes import AtomicWrite, LockWrite, UnsafeWrite
from repro.observe import (
    Counter,
    Event,
    Gauge,
    Histogram,
    Metrics,
    TraceAnalyzer,
    TraceBuffer,
    TracedPolicy,
    Tracer,
    read_events_jsonl,
    read_residual_series,
    residual_series,
    series_from_result,
    to_chrome_trace,
    write_events_jsonl,
    write_residual_series,
)
from repro.resilience import FaultTelemetry


class TestTraceBuffer:
    def test_append_and_order(self):
        buf = TraceBuffer("w", capacity=8)
        for i in range(5):
            buf.record(float(i), "read", 0, a=float(i))
        assert len(buf) == 5
        assert buf.dropped == 0
        assert [r[0] for r in buf.in_order()] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_ring_wraps_and_counts_drops(self):
        buf = TraceBuffer("w", capacity=4)
        for i in range(10):
            buf.record(float(i), "read", 0)
        assert len(buf) == 4
        assert buf.dropped == 6
        # Oldest records fell off; the suffix window survives in order.
        assert [r[0] for r in buf.in_order()] == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceBuffer("w", capacity=0)


class TestEvent:
    def test_roundtrip_dict(self):
        ev = Event(t=1.5, kind="write", grid=2, a=0.25, b=3.0, tag="x", worker=2, seq=7)
        assert Event.from_dict(ev.to_dict()) == ev

    def test_sort_key_orders_by_time_then_worker_then_seq(self):
        evs = [
            Event(t=2.0, kind="read", grid=0, worker=0, seq=0),
            Event(t=1.0, kind="read", grid=1, worker=1, seq=3),
            Event(t=1.0, kind="read", grid=1, worker=1, seq=1),
        ]
        ordered = sorted(evs, key=lambda e: e.sort_key)
        assert [(e.t, e.seq) for e in ordered] == [(1.0, 1), (1.0, 3), (2.0, 0)]


class TestMetrics:
    def test_counter_and_gauge(self):
        m = Metrics()
        m.counter("c").inc()
        m.counter("c").inc(2)
        m.gauge("g").set(0.5)
        snap = m.collect()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 0.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_histogram_buckets_and_overflow(self):
        h = Histogram("h", (1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # bounds are inclusive upper edges; last bucket is overflow
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert math.isclose(h.mean, (0.5 + 1.0 + 1.5 + 3.0 + 100.0) / 5)

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_merge_is_single_path(self):
        a, b = Metrics(), Metrics()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.gauge("g").set(9.0)
        b.histogram("h", (1.0, 2.0)).observe(1.5)
        a.merge(b)
        snap = a.collect()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 9.0
        assert snap["histograms"]["h"]["counts"] == [0, 1, 0]

    def test_provider_collected_lazily(self):
        m = Metrics()
        tel = FaultTelemetry()
        tel.register_into(m)
        tel.bump("rollbacks", 2)  # after registration: provider is live
        snap = m.collect()
        assert snap["providers"]["resilience"]["rollbacks"] == 2

    def test_format_mentions_names(self):
        m = Metrics()
        m.counter("corrections.grid0").inc(4)
        assert "corrections.grid0" in m.format()


class TestTelemetryShards:
    def test_bump_has_no_lock_overhead_field(self):
        tel = FaultTelemetry()
        tel.bump("injected_crashes")
        d = tel.as_dict()
        assert d["injected_crashes"] == 1
        assert "_lock" not in d

    def test_shard_merge(self):
        main = FaultTelemetry()
        shards = [FaultTelemetry() for _ in range(3)]
        for i, sh in enumerate(shards):
            sh.bump("corrections_rejected", i + 1)
        for sh in shards:
            main.merge(sh)
        assert main.corrections_rejected == 6


class TestTracer:
    def test_record_merges_sorted(self):
        tr = Tracer(clock="steps")
        tr.record("read", 1, 5.0, a=2.0, tag="x")
        tr.record("read", 0, 3.0, a=1.0, tag="x")
        evs = tr.events()
        assert [e.t for e in evs] == [3.0, 5.0]
        assert evs[0].worker == 0 and evs[1].worker == 1

    def test_record_here_uses_thread_registry(self):
        tr = Tracer()
        out = []

        def work(grid):
            tr.register_worker(grid)
            tr.record_here("correct_begin", a=1.0)
            out.append(grid)

        ths = [threading.Thread(target=work, args=(g,)) for g in range(3)]
        for th in ths:
            th.start()
        for th in ths:
            th.join()
        evs = tr.events()
        assert sorted(e.grid for e in evs) == [0, 1, 2]
        assert sorted(e.worker for e in evs) == [0, 1, 2]

    def test_unregistered_thread_gets_thread_buffer(self):
        tr = Tracer()
        tr.record_here("guard", tag="checkpoint")
        (ev,) = tr.events()
        assert ev.grid == -1
        assert str(ev.worker).startswith("thread-")

    def test_dropped_events_total(self):
        tr = Tracer(capacity=2)
        for i in range(5):
            tr.record("read", 0, float(i))
        assert tr.dropped_events == 3
        assert tr.summary().dropped == 3

    def test_summary_digest(self):
        tr = Tracer(clock="steps")
        tr.record("correct_begin", 0, 0.0, a=1.0)
        tr.record("correct_end", 0, 4.0, a=1.0, b=2.0)
        tr.record("residual", 0, 4.0, a=0.5, tag="global")
        tr.record("residual", 0, 9.0, a=0.125, tag="global")
        s = tr.summary()
        assert s.corrections == 1
        assert s.max_staleness == 2.0
        assert s.residual_first == 0.5 and s.residual_last == 0.125
        assert s.per_grid_counts == {0: 1}
        assert "1 corrections" in s.oneline()

    def test_aggregate_fills_metrics(self):
        tr = Tracer()
        tr.record("correct_end", 0, 1.0, a=1.0, b=3.0)
        tr.record("write", 0, 1.0, a=1e-4, tag="x")
        tr.record("read", 0, 0.5, a=0.0, tag="x")
        snap = tr.aggregate().collect()
        assert snap["counters"]["corrections.grid0"] == 1
        assert snap["counters"]["writes.x"] == 1
        assert snap["counters"]["reads.x"] == 1
        assert snap["histograms"]["staleness_epochs"]["count"] == 1


class TestTracedPolicy:
    def _run(self, inner):
        tr = Tracer()
        tr.register_worker(0)
        pol = TracedPolicy(inner, tr, "x")
        x = np.zeros(6)
        pol.add(x, np.ones(6))
        got = pol.read(x)
        pol.add(x, np.ones(6))
        pol.assign_slice(x, 2, 4, np.full(2, 7.0))
        return tr, pol, x, got

    @pytest.mark.parametrize(
        "make", [lambda: LockWrite(6), lambda: AtomicWrite(6, stripe=2), lambda: UnsafeWrite(6)]
    )
    def test_data_movement_matches_inner(self, make):
        tr, pol, x, got = self._run(make())
        np.testing.assert_array_equal(got, np.ones(6))
        expect = np.full(6, 2.0)
        expect[2:4] = 7.0
        np.testing.assert_array_equal(x, expect)

    def test_epochs_and_staleness(self):
        tr, pol, x, got = self._run(LockWrite(6))
        evs = tr.events()
        writes = [e for e in evs if e.kind == "write" and not e.tag.endswith(":assign")]
        reads = [e for e in evs if e.kind == "read"]
        assert [w.b for w in writes] == [-1.0, 0.0]  # pre-read, then fresh
        assert reads[0].a == 1.0  # read observed epoch 1
        assert pol.last_staleness() == 0.0
        assigns = [e for e in evs if e.tag == "x:assign"]
        assert len(assigns) == 1

    def test_delegates_unrecognized_policy(self):
        calls = []

        class Wrapped(UnsafeWrite):
            def add(self, target, update):
                calls.append("add")
                super().add(target, update)

            def assign_slice(self, target, lo, hi, values):
                calls.append("assign")
                super().assign_slice(target, lo, hi, values)

        tr = Tracer()
        tr.register_worker(0)
        pol = TracedPolicy(Wrapped(4), tr, "x")
        x = np.zeros(4)
        pol.add(x, np.ones(4))
        pol.assign_slice(x, 0, 2, np.zeros(2))
        assert calls == ["add", "assign"]


class TestExporters:
    def _events(self):
        return [
            Event(t=0.0, kind="correct_begin", grid=0, a=1.0, worker=0, seq=0),
            Event(t=1.0, kind="correct_end", grid=0, a=1.0, b=1.0, worker=0, seq=1),
            Event(t=1.0, kind="residual", grid=0, a=0.5, tag="global", worker=0, seq=2),
            Event(t=2.0, kind="guard", grid=0, tag="rollback", worker=0, seq=3),
            Event(t=2.5, kind="fault", grid=1, tag="crash", worker=1, seq=0),
            Event(t=3.0, kind="residual", grid=0, a=0.25, tag="global", worker=0, seq=4),
        ]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_events_jsonl(self._events(), path, meta={"clock": "s", "n": 64})
        meta, evs = read_events_jsonl(path)
        assert meta["clock"] == "s" and meta["n"] == 64 and meta["schema"] == 1
        assert evs == self._events()

    def test_jsonl_header_is_first_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_events_jsonl(self._events(), path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "meta"

    def test_chrome_trace_structure(self):
        doc = to_chrome_trace(self._events(), clock="s")
        evs = doc["traceEvents"]
        phases = {e["ph"] for e in evs}
        assert {"M", "X", "C", "i"} <= phases
        (slice_ev,) = [e for e in evs if e["ph"] == "X"]
        assert slice_ev["ts"] == 0.0 and slice_ev["dur"] == 1.0 * 1e6
        assert slice_ev["args"]["staleness"] == 1.0
        counters = [e for e in evs if e["ph"] == "C"]
        assert [c["args"]["relres"] for c in counters] == [0.5, 0.25]
        instants = {e["name"] for e in evs if e["ph"] == "i"}
        assert instants == {"guard:rollback", "fault:crash"}

    def test_chrome_steps_clock_not_scaled(self):
        doc = to_chrome_trace(self._events(), clock="steps")
        (slice_ev,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slice_ev["dur"] == 1.0

    def test_residual_series_and_csv(self, tmp_path):
        series = residual_series(self._events(), tag="global")
        assert series == [(1.0, 0.5), (3.0, 0.25)]
        path = tmp_path / "r.csv"
        write_residual_series(series, path)
        assert read_residual_series(path) == series

    def test_series_from_result_shapes(self):
        class Threaded:
            residual_samples = [(0.1, 1.0), (0.2, 0.5)]

        class Distributed:
            residual_samples = []
            residual_trace = [(0.0, 1.0), (1.0, 0.25)]

        class Engine:
            residual_trace = [1.0, 0.5, 0.25]

        assert series_from_result(Threaded()) == [(0.1, 1.0), (0.2, 0.5)]
        assert series_from_result(Distributed()) == [(0.0, 1.0), (1.0, 0.25)]
        assert series_from_result(Engine()) == [(0.0, 1.0), (1.0, 0.5), (2.0, 0.25)]


class TestTraceAnalyzer:
    def _analyzer(self):
        evs = []
        seq = 0
        # grid 0: three corrections with staleness 0,1,2; grid 1: one.
        for i, stal in enumerate((0.0, 1.0, 2.0)):
            evs.append(Event(t=2.0 * i, kind="correct_begin", grid=0, a=i + 1.0, worker=0, seq=seq)); seq += 1
            evs.append(Event(t=2.0 * i + 1, kind="correct_end", grid=0, a=i + 1.0, b=stal, worker=0, seq=seq)); seq += 1
            evs.append(Event(t=2.0 * i + 1, kind="residual", grid=0, a=2.0 ** -i, tag="global", worker=0, seq=seq)); seq += 1
        evs.append(Event(t=0.5, kind="correct_begin", grid=1, a=1.0, worker=1, seq=0))
        evs.append(Event(t=4.5, kind="correct_end", grid=1, a=1.0, b=3.0, worker=1, seq=1))
        evs.append(Event(t=0.2, kind="read", grid=0, a=5.0, tag="x", worker=0, seq=90))
        evs.append(Event(t=0.3, kind="read", grid=0, a=4.0, tag="x", worker=0, seq=91))
        return TraceAnalyzer(evs, {"clock": "steps", "n": 128})

    def test_per_grid_counts_and_fairness(self):
        an = self._analyzer()
        assert an.per_grid_counts() == {0: 3, 1: 1}
        fair = an.fairness()
        assert fair["min_share"] == pytest.approx(1 / 3)
        assert 0.0 < fair["jain"] <= 1.0

    def test_staleness_and_delay_violations(self):
        an = self._analyzer()
        assert an.max_staleness() == 3.0
        assert an.delay_violations(2.0) == 1
        assert an.delay_violations(3.0) == 0

    def test_monotone_violation_detected(self):
        an = self._analyzer()
        assert an.monotone_violations() == 1  # epoch 5 then 4 on (0, "x")

    def test_psi_sizes_count_overlap(self):
        an = self._analyzer()
        # grid 1's correction spans all of grid 0's → |Ψ| at grid-0
        # commits is 2; the last commit (grid 1) sees only itself left.
        assert an.psi_sizes() == [2, 2, 2, 1]

    def test_conformance_report_bridges(self):
        an = self._analyzer()
        rep = an.conformance(staleness_bound=4, n=128)
        assert rep.monotone_violations == 1
        assert rep.max_staleness == 3
        assert rep.staleness_samples == 4
        assert rep.n == 128
        assert rep.policy == "trace[steps]"
        assert rep.torn_reads == 0

    def test_report_sections(self):
        text = self._analyzer().report(delta=3.0)
        assert "corrections: 4 total" in text
        assert "monotone reads: VIOLATED" in text
        assert "OK (0 violations)" in text
        assert "residual vs time" in text

    def test_metrics_rollup(self):
        snap = self._analyzer().metrics().collect()
        assert snap["counters"]["corrections.grid0"] == 3
        assert snap["histograms"]["staleness_epochs"]["count"] == 4
        assert snap["gauges"]["monotone_violations"] == 1
