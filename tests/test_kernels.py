"""Tests for the backend-selectable kernel layer (repro.kernels).

Covers the three contracts the layer is built on:

- **backend parity** — the optimized ``numpy`` backend is bit-identical
  to the ``naive`` seed reference on all five kernels; the optional
  ``numba`` backend agrees to 1e-14 relative (it reorders row sums).
- **plan cache** — per-``(matrix, row-range)`` plans are reused, see
  in-place value edits for free, and are invalidated when the matrix's
  structure (its CSR arrays) is replaced.
- **run-level determinism** — seeded async engine traces are
  bit-identical whether kernels run through the ``naive`` reference
  or the ``numpy`` backend, and the setup cache returns the same
  hierarchy object for equal matrices.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import kernels
from repro.amg import SetupOptions
from repro.kernels.setupcache import (
    cached_setup_hierarchy,
    cached_smoothed_interpolants,
    clear_setup_cache,
    problem_fingerprint,
    setup_cache_info,
)
from repro.problems import build_problem

HAS_NUMBA = "numba" in kernels.available_backends()


@pytest.fixture(autouse=True)
def _restore_backend():
    prev = kernels.current_backend()
    yield
    kernels.use(prev)
    kernels.clear_plans()


@pytest.fixture()
def problem():
    return build_problem("5pt", 12, rhs_seed=3)


def _operands(problem, seed=0):
    rng = np.random.default_rng(seed)
    A = problem.A
    n = A.shape[0]
    return A, rng.standard_normal(n), problem.b, 1.0 / A.diagonal()


def _run_all_kernels(problem):
    """All five kernels on fresh outputs; returns a name->array/float map."""
    A, x, b, dinv = _operands(problem)
    n = A.shape[0]
    lo, hi = n // 4, n // 2
    out = {}
    out["range_matvec"] = kernels.range_matvec(
        A, x, lo, hi, out=np.empty(hi - lo)
    ).copy()
    out["range_residual"] = kernels.range_residual(
        A, x, b, lo, hi, out=np.empty(hi - lo)
    ).copy()
    out["jacobi_sweep"] = kernels.jacobi_sweeps(A, dinv, b, x0=x, nsweeps=3)
    y = np.linspace(0.0, 1.0, n)
    out["prolong_add"] = kernels.prolong_add(y.copy(), A, x, omega=0.7)
    out["residual_norm"] = kernels.residual_norm(A, x, b)
    return out


class TestBackendSelection:
    def test_available_always_has_numpy_and_naive(self):
        avail = kernels.available_backends()
        assert "numpy" in avail and "naive" in avail

    def test_use_returns_resolved_name(self):
        assert kernels.use("numpy") == "numpy"
        assert kernels.current_backend() == "numpy"
        assert kernels.use("off") == "naive"

    def test_auto_resolves(self):
        resolved = kernels.use("auto")
        assert resolved == ("numba" if HAS_NUMBA else "numpy")

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            kernels.use("fortran")

    @pytest.mark.skipif(HAS_NUMBA, reason="numba importable here")
    def test_numba_unavailable_raises_importerror(self):
        with pytest.raises(ImportError):
            kernels.use("numba")


class TestBackendParity:
    def test_numpy_bit_identical_to_naive(self, problem):
        """The headline guarantee: plan-driven numpy == seed, bitwise."""
        kernels.use("naive")
        ref = _run_all_kernels(problem)
        kernels.use("numpy")
        got = _run_all_kernels(problem)
        for name in ref:
            assert np.array_equal(ref[name], got[name]), name

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
    def test_numba_matches_numpy_to_1e14(self, problem):
        kernels.use("numpy")
        ref = _run_all_kernels(problem)
        kernels.use("numba")
        got = _run_all_kernels(problem)
        for name in ref:
            np.testing.assert_allclose(
                got[name], ref[name], rtol=1e-14, atol=1e-14, err_msg=name
            )

    def test_empty_row_range(self, problem):
        A, x, b, _ = _operands(problem)
        out = kernels.range_matvec(A, x, 5, 5, out=np.empty(0))
        assert out.shape == (0,)

    def test_full_range_residual_matches_operator(self, problem):
        A, x, b, _ = _operands(problem)
        n = A.shape[0]
        got = kernels.range_residual(A, x, b, 0, n, out=np.empty(n))
        assert np.array_equal(got, b - A @ x)

    def test_jacobi_sweeps_validation_and_zero(self, problem):
        A, x, b, dinv = _operands(problem)
        with pytest.raises(ValueError):
            kernels.jacobi_sweeps(A, dinv, b, nsweeps=-1)
        y = kernels.jacobi_sweeps(A, dinv, b, x0=x, nsweeps=0)
        assert np.array_equal(y, x)
        assert y is not x  # caller owns a fresh vector

    def test_seed_wrapper_row_range_matvec(self, problem):
        A, x, _, _ = _operands(problem)
        n = A.shape[0]
        lo, hi = 3, n - 7
        full = kernels.row_range_matvec(A, x, lo, hi)
        expect = np.zeros(n)
        expect[lo:hi] = (A @ x)[lo:hi]
        assert np.array_equal(full, expect)


class TestBlockedKernels:
    """Multi-RHS kernels: column j of the (n, k) block result must be
    bit-identical to the single-RHS kernel on column j — the contract
    the procs executor's multi-RHS path is built on."""

    def _block(self, problem, k=3, seed=5):
        rng = np.random.default_rng(seed)
        n = problem.A.shape[0]
        X = rng.standard_normal((n, k))
        B = rng.standard_normal((n, k))
        return problem.A, X, B

    @pytest.mark.parametrize(
        "backend", ["naive", "numpy"] + (["numba"] if HAS_NUMBA else [])
    )
    def test_block_columns_bitwise_match_single_rhs(self, problem, backend):
        kernels.use(backend)
        A, X, B = self._block(problem)
        n = A.shape[0]
        lo, hi = n // 4, n // 2
        mv = kernels.range_matvec_block(A, X, lo, hi)
        rs = kernels.range_residual_block(A, X, B, lo, hi)
        assert mv.shape == rs.shape == (hi - lo, X.shape[1])
        for j in range(X.shape[1]):
            # explicit outs: the scalar kernels hand back plan scratch
            # otherwise, and the second call would alias the first
            ref_mv = kernels.range_matvec(
                A, X[:, j].copy(), lo, hi, out=np.empty(hi - lo)
            )
            ref_rs = kernels.range_residual(
                A, X[:, j].copy(), B[:, j].copy(), lo, hi,
                out=np.empty(hi - lo),
            )
            assert np.array_equal(mv[:, j], ref_mv), f"col {j}"
            assert np.array_equal(rs[:, j], ref_rs), f"col {j}"

    def test_block_backends_agree_bitwise(self, problem):
        A, X, B = self._block(problem)
        n = A.shape[0]
        kernels.use("naive")
        ref = kernels.range_residual_block(A, X, B, 0, n)
        kernels.use("numpy")
        got = kernels.range_residual_block(A, X, B, 0, n)
        assert np.array_equal(ref, got)

    def test_noncontiguous_block_accepted(self, problem):
        A, X, B = self._block(problem, k=4)
        n = A.shape[0]
        Xf = np.asfortranarray(X)  # forces the contiguity copy path
        got = kernels.range_matvec_block(A, Xf, 0, n)
        ref = kernels.range_matvec_block(A, X, 0, n)
        assert np.array_equal(got, ref)

    def test_block_requires_2d(self, problem):
        A, X, B = self._block(problem)
        with pytest.raises(ValueError):
            kernels.range_matvec_block(A, X[:, 0], 0, 4)

    def test_empty_block_range(self, problem):
        A, X, B = self._block(problem)
        out = kernels.range_residual_block(A, X, B, 7, 7)
        assert out.shape == (0, X.shape[1])


class TestPlanCache:
    def test_plan_reused_across_calls(self, problem):
        A, x, _, _ = _operands(problem)
        kernels.clear_plans()
        p1 = kernels.plan_for(A, 0, 8)
        p2 = kernels.plan_for(A, 0, 8)
        assert p1 is p2
        info = kernels.plan_cache_info()
        assert info["hits"] >= 1

    def test_distinct_ranges_get_distinct_plans(self, problem):
        A = problem.A
        assert kernels.plan_for(A, 0, 8) is not kernels.plan_for(A, 8, 16)

    def test_inplace_value_edit_visible_without_invalidation(self, problem):
        """Editing A.data in place keeps the plan (it aliases the same
        arrays) and the kernels see the new values immediately."""
        A, x, _, _ = _operands(problem)
        n = A.shape[0]
        p_before = kernels.plan_for(A, 0, n)
        before = kernels.range_matvec(A, x, 0, n, out=np.empty(n)).copy()
        A.data[0] *= 2.0
        try:
            assert kernels.plan_for(A, 0, n) is p_before
            after = kernels.range_matvec(A, x, 0, n, out=np.empty(n))
            assert not np.array_equal(before, after)
            assert np.array_equal(after, A @ x)
        finally:
            A.data[0] /= 2.0

    def test_structural_mutation_invalidates_plan(self, problem):
        """Writing a brand-new nonzero replaces the CSR arrays; the
        stale plan must be dropped, not silently reused."""
        A = problem.A.copy()
        n = A.shape[0]
        x = np.ones(n)
        p_before = kernels.plan_for(A, 0, n)
        # (0, n-1) is guaranteed structurally absent in the 5pt stencil.
        assert A[0, n - 1] == 0.0
        with pytest.warns(sp.SparseEfficiencyWarning):
            A[0, n - 1] = 1.0
        p_after = kernels.plan_for(A, 0, n)
        assert p_after is not p_before
        got = kernels.range_matvec(A, x, 0, n, out=np.empty(n))
        assert np.array_equal(got, A @ x)

    def test_scratch_is_per_slot_and_reused(self):
        a = kernels.scratch(64, slot=0)
        b = kernels.scratch(64, slot=1)
        assert a is not b
        assert kernels.scratch(64, slot=0) is a
        assert kernels.scratch(128, slot=0).shape == (128,)


class TestKernelStats:
    def test_stats_accumulate_and_delta(self, problem):
        A, x, b, _ = _operands(problem)
        prev = kernels.enable_stats(True)
        try:
            before = kernels.stats()
            kernels.residual_norm(A, x, b)
            kernels.residual_norm(A, x, b)
            delta = kernels.stats_delta(before)
            calls, secs = delta["residual_norm"]
            assert calls == 2
            assert secs >= 0.0
        finally:
            kernels.enable_stats(prev)

    def test_disabled_stats_do_not_count(self, problem):
        A, x, b, _ = _operands(problem)
        kernels.enable_stats(False)
        before = kernels.stats()
        kernels.residual_norm(A, x, b)
        assert "residual_norm" not in kernels.stats_delta(before)


class TestEngineBitIdentity:
    """The acceptance gate: seeded engine runs are bit-identical with
    the kernel layer routed through ``naive`` (the seed paths) and
    ``numpy`` (the optimized plans)."""

    @pytest.mark.parametrize("rescomp", ["local", "global", "rupdate"])
    def test_residual_trace_identical_naive_vs_numpy(self, rescomp):
        from repro.core import run_async_engine
        from repro.solvers import Multadd

        p = build_problem("7pt", 8, rhs_seed=1)
        hier = cached_setup_hierarchy(p.A, SetupOptions())
        solver = Multadd(hier, smoother="jacobi", weight=p.jacobi_weight)

        def run():
            return run_async_engine(
                solver, p.b, tmax=8, rescomp=rescomp, seed=4, track_trace=True
            )

        kernels.use("naive")
        ref = run()
        kernels.use("numpy")
        got = run()
        assert ref.kernel_backend == "naive"
        assert got.kernel_backend == "numpy"
        assert np.array_equal(ref.x, got.x)
        assert ref.rel_residual == got.rel_residual
        assert [s for s in ref.residual_trace] == [s for s in got.residual_trace]


class TestSetupCache:
    def test_equal_matrices_share_hierarchy(self):
        clear_setup_cache()
        p1 = build_problem("5pt", 10)
        p2 = build_problem("5pt", 10)
        assert p1.A is not p2.A
        h1 = cached_setup_hierarchy(p1.A, SetupOptions())
        h2 = cached_setup_hierarchy(p2.A, SetupOptions())
        assert h1 is h2
        info = setup_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_different_options_miss(self):
        clear_setup_cache()
        p = build_problem("5pt", 10)
        h1 = cached_setup_hierarchy(p.A, SetupOptions(theta=0.25))
        h2 = cached_setup_hierarchy(p.A, SetupOptions(theta=0.5))
        assert h1 is not h2

    def test_fingerprint_tracks_content(self):
        p = build_problem("5pt", 8)
        f1 = problem_fingerprint(p.A)
        B = p.A.copy()
        B.data[0] += 1.0
        assert problem_fingerprint(B) != f1
        assert problem_fingerprint(p.A.copy()) == f1

    def test_smoothed_interpolants_cached_on_hierarchy(self):
        clear_setup_cache()
        p = build_problem("5pt", 10)
        h = cached_setup_hierarchy(p.A, SetupOptions())
        a = cached_smoothed_interpolants(h, kind="jacobi", weight=0.9)
        b = cached_smoothed_interpolants(h, kind="jacobi", weight=0.9)
        assert a is b
        c = cached_smoothed_interpolants(h, kind="jacobi", weight=0.5)
        assert c is not a


class TestSetupCacheConcurrency:
    """The serve pool hammers the cache from worker threads; these are
    the concurrent-access regression tests for the locked rewrite."""

    def test_concurrent_same_key_converges_on_one_hierarchy(self):
        import threading

        clear_setup_cache()
        nthreads = 8
        problems = [build_problem("5pt", 10) for _ in range(nthreads)]
        barrier = threading.Barrier(nthreads)
        got = [None] * nthreads
        errors = []

        def worker(i):
            try:
                barrier.wait(timeout=10.0)
                got[i] = cached_setup_hierarchy(problems[i].A, SetupOptions())
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(nthreads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        assert all(not t.is_alive() for t in threads)
        # Every thread got a usable hierarchy, and the cache holds
        # exactly one entry for the key — first insertion won, losers
        # converged on later lookups.
        assert all(h is not None for h in got)
        info = setup_cache_info()
        assert info["entries"] == 1
        assert info["hits"] + info["misses"] == nthreads
        assert info["race_losses"] <= max(0, info["misses"] - 1)
        # Whoever raced, a follow-up call is a pure hit on one object.
        again = cached_setup_hierarchy(problems[0].A, SetupOptions())
        assert any(again is h for h in got)
        clear_setup_cache()

    def test_concurrent_mixed_keys_no_cross_talk(self):
        import threading

        clear_setup_cache()
        pa = build_problem("5pt", 8)
        pb = build_problem("5pt", 12)
        barrier = threading.Barrier(8)
        got = {}

        def worker(i):
            p = pa if i % 2 == 0 else pb
            barrier.wait(timeout=10.0)
            got[i] = cached_setup_hierarchy(p.A, SetupOptions())

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        evens = {id(got[i]) for i in range(0, 8, 2)}
        odds = {id(got[i]) for i in range(1, 8, 2)}
        assert len(evens) == 1 and len(odds) == 1
        assert evens != odds
        assert got[0].levels[0].A.shape == (pa.n, pa.n)
        assert got[1].levels[0].A.shape == (pb.n, pb.n)
        assert setup_cache_info()["entries"] == 2
        clear_setup_cache()

    def test_metrics_provider_exports_counters(self):
        from repro.kernels.setupcache import register_setupcache_metrics
        from repro.observe import Metrics

        clear_setup_cache()
        p = build_problem("5pt", 8)
        cached_setup_hierarchy(p.A, SetupOptions())
        cached_setup_hierarchy(p.A, SetupOptions())
        m = Metrics()
        register_setupcache_metrics(m)
        flat = m.flatten()
        assert flat["setupcache.entries"] == 1.0
        assert flat["setupcache.hits"] == 1.0
        assert flat["setupcache.misses"] == 1.0
        clear_setup_cache()
