"""Unit tests for repro.problems.registry and the FEM problem wrappers."""

import numpy as np
import pytest

from repro.problems import TEST_SETS, build_problem
from repro.problems.fem import laplace_on_ball, laplace_on_cube, elasticity_cantilever
from repro.problems.registry import table1_sizes


class TestRegistry:
    def test_all_sets_build(self):
        for name in TEST_SETS:
            p = build_problem(name, 6)
            assert p.n > 0
            assert p.b.shape == (p.n,)

    def test_paper_names(self):
        # The paper's four Table-I sets plus the 2-D kernel-benchmark set.
        assert set(TEST_SETS) == {
            "5pt",
            "7pt",
            "27pt",
            "mfem_laplace",
            "mfem_elasticity",
        }

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_problem("9pt", 10)

    def test_5pt_dimensions(self):
        p = build_problem("5pt", 16)
        assert p.n == 256
        # interior rows carry 5 nonzeros: nnz = 5n^2 - 4n for grid length n
        assert p.nnz == 5 * 256 - 4 * 16
        assert p.jacobi_weight == 0.9

    def test_weights_match_paper(self):
        assert build_problem("7pt", 4).jacobi_weight == 0.9
        assert build_problem("mfem_laplace", 6).jacobi_weight == 0.5

    def test_rhs_seed_replay(self):
        p1 = build_problem("7pt", 5, rhs_seed=9)
        p2 = build_problem("7pt", 5, rhs_seed=9)
        assert np.array_equal(p1.b, p2.b)

    def test_table1_sizes_paper_scale(self):
        sizes = table1_sizes(1.0)
        p = build_problem("7pt", sizes["7pt"])
        assert p.n == 27000  # Table I row count

    def test_table1_sizes_scaled(self):
        sizes = table1_sizes(0.3)
        assert sizes["7pt"] == 9


class TestFemProblems:
    def test_ball_matrix_spd_props(self):
        A = laplace_on_ball(8)
        assert abs(A - A.T).max() < 1e-13
        assert np.all(A.diagonal() > 0)

    def test_ball_return_mesh(self):
        A, mesh, free = laplace_on_ball(8, return_mesh=True)
        assert A.shape[0] == free.size
        assert free.size == mesh.interior_nodes().size

    def test_cube_fem_vs_stencil_class(self):
        # FEM cube Laplacian and 7pt stencil act on the same PDE: both
        # SPD, both annihilate linears in the interior; compare extreme
        # generalized behaviour loosely via diagonal positivity.
        A = laplace_on_cube(4)
        assert np.all(A.diagonal() > 0)

    def test_elasticity_sizes_scale(self):
        A1 = elasticity_cantilever(6, 2, 2)
        A2 = elasticity_cantilever(10, 3, 3)
        assert A2.shape[0] > A1.shape[0]

    def test_elasticity_materials_required_positive(self):
        with pytest.raises(ValueError):
            elasticity_cantilever(4, 2, 2, youngs_by_material=(1.0, -1.0))

    def test_elasticity_paper_size_close(self):
        # Paper: 37,281 rows.  Check our suggested sizing is in range.
        A = elasticity_cantilever(48, 15, 15)
        assert abs(A.shape[0] - 37281) / 37281 < 0.15
