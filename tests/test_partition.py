"""Unit tests for thread partitioning."""

import numpy as np
import pytest

from repro.partition import largest_remainder, partition_ranks, partition_threads


class TestLargestRemainder:
    def test_exact_total(self):
        out = largest_remainder(np.array([1.0, 2.0, 3.0]), 10)
        assert out.sum() == 10

    def test_proportionality(self):
        out = largest_remainder(np.array([1.0, 1.0, 2.0]), 8)
        assert out[2] == 4

    def test_zero_total(self):
        out = largest_remainder(np.array([1.0, 2.0]), 0)
        assert np.all(out == 0)

    def test_deterministic_ties(self):
        a = largest_remainder(np.array([1.0, 1.0, 1.0]), 2)
        b = largest_remainder(np.array([1.0, 1.0, 1.0]), 2)
        assert np.array_equal(a, b)

    def test_negative_weights_raise(self):
        with pytest.raises(ValueError):
            largest_remainder(np.array([-1.0, 2.0]), 3)

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            largest_remainder(np.zeros(3), 3)


class TestPartitionThreads:
    def test_every_grid_gets_one(self):
        out = partition_threads(np.array([100.0, 1.0, 1.0]), 16)
        assert np.all(out >= 1)
        assert out.sum() == 16

    def test_work_proportional(self):
        out = partition_threads(np.array([90.0, 10.0]), 100)
        assert out[0] > 8 * out[1] * 0.9

    def test_fewer_threads_than_grids(self):
        out = partition_threads(np.ones(8), 3)
        assert np.all(out == 1)  # oversubscribed

    def test_one_thread(self):
        out = partition_threads(np.array([5.0, 3.0]), 1)
        assert np.all(out == 1)

    def test_invalid_nthreads(self):
        with pytest.raises(ValueError):
            partition_threads(np.ones(2), 0)


class TestPartitionRanks:
    def test_matches_partition_threads_at_full_strength(self):
        # The bit-identity contract of churn-free elastic runs rests on
        # this equality.
        work = np.array([13824.0, 35968.0, 30832.0, 30372.0])
        for n in (4, 5, 64, 1024):
            assert np.array_equal(partition_ranks(work, n), partition_threads(work, n))

    def test_parks_smallest_work_grids(self):
        work = np.array([10.0, 50.0, 30.0, 20.0])
        out = partition_ranks(work, 2)
        assert np.array_equal(out, [0, 1, 1, 0])
        assert out.sum() == 2

    def test_zero_ranks_parks_everything(self):
        out = partition_ranks(np.ones(3), 0)
        assert np.all(out == 0)

    def test_deterministic_ties_by_index(self):
        out = partition_ranks(np.ones(4), 2)
        assert np.array_equal(out, [1, 1, 0, 0])

    def test_negative_ranks_raise(self):
        with pytest.raises(ValueError):
            partition_ranks(np.ones(2), -1)
