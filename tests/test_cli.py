"""Unit tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.test_set == "7pt"
        assert args.method == "multadd"


class TestCommands:
    def test_setup(self, capsys):
        assert main(["setup", "--set", "7pt", "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "operator complexity" in out

    def test_solve_sync(self, capsys):
        assert main(["solve", "--set", "7pt", "--size", "8", "--tmax", "5"]) == 0
        assert "sync multadd" in capsys.readouterr().out

    def test_solve_async(self, capsys):
        rc = main(
            [
                "solve",
                "--set",
                "7pt",
                "--size",
                "8",
                "--run-async",
                "--tmax",
                "5",
                "--criterion",
                "criterion1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "async multadd" in out
        assert "corrects" in out

    def test_async_mult_rejected(self, capsys):
        rc = main(
            ["solve", "--set", "7pt", "--size", "8", "--method", "mult", "--run-async"]
        )
        assert rc == 2

    def test_models(self, capsys):
        rc = main(
            [
                "models",
                "--set",
                "7pt",
                "--size",
                "8",
                "--model",
                "full_res",
                "--delta",
                "2",
                "--tmax",
                "5",
            ]
        )
        assert rc == 0
        assert "full_res model" in capsys.readouterr().out

    def test_table1(self, capsys):
        rc = main(
            [
                "table1",
                "--set",
                "7pt",
                "--size",
                "7",
                "--tol",
                "1e-4",
                "--runs",
                "1",
                "--max-cycles",
                "100",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sync Mult" in out
        assert "r-Multadd" in out
