"""Unit tests for solver-base machinery (SolveResult, coarse solver, etc.)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers import CoarseSolver, Multadd
from repro.solvers.base import SolveResult, build_level_smoothers


class TestCoarseSolver:
    def test_exact(self, A_1d):
        cs = CoarseSolver(A_1d)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(A_1d.shape[0])
        b = A_1d @ x
        assert np.allclose(cs(b), x)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            CoarseSolver(sp.csr_matrix(np.ones((2, 3))))

    def test_flops_positive(self, A_1d):
        assert CoarseSolver(A_1d).flops() > 0


class TestSolveResult:
    def test_final_relres_empty(self):
        r = SolveResult(x=np.zeros(3))
        assert r.final_relres == np.inf

    def test_final_relres_last(self):
        r = SolveResult(x=np.zeros(3), residual_history=[0.5, 0.1])
        assert r.final_relres == 0.1


class TestBuildLevelSmoothers:
    def test_one_per_fine_level(self, hier_7pt):
        sms = build_level_smoothers(hier_7pt, "jacobi", weight=0.9)
        assert len(sms) == hier_7pt.nlevels - 1

    def test_bound_to_level_matrices(self, hier_7pt):
        sms = build_level_smoothers(hier_7pt, "jacobi", weight=0.9)
        for sm, lv in zip(sms, hier_7pt.levels):
            assert sm.A.shape == lv.A.shape


class TestAdditiveBase:
    def test_solve_divergence_flag(self, hier_7pt, b_7pt):
        # Force divergence with an absurd over-correction scale.
        from repro.solvers import BPX

        s = BPX(hier_7pt, smoother="jacobi", weight=0.9, scale=50.0)
        res = s.solve(b_7pt, tmax=30)
        assert res.diverged
        # The loop must have stopped early rather than looping on inf.
        assert res.cycles < 30

    def test_callback_invoked(self, hier_7pt_agg, b_7pt):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        seen = []
        s.solve(b_7pt, tmax=5, callback=lambda t, rel: seen.append((t, rel)))
        assert [t for t, _ in seen] == [1, 2, 3, 4, 5]

    def test_correction_from_x_equals_correction_of_residual(
        self, hier_7pt_agg, b_7pt
    ):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(s.n)
        r = b_7pt - s.A @ x
        for k in (0, s.ngrids - 1):
            assert np.allclose(
                s.correction_from_x(k, x, b_7pt), s.correction(k, r)
            )

    def test_residual_flops(self, hier_7pt_agg):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        assert s.residual_flops() == 2.0 * s.A.nnz + s.n

    def test_x0_used(self, hier_7pt_agg, b_7pt):
        import scipy.sparse.linalg as spla

        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        x_star = spla.spsolve(s.A.tocsc(), b_7pt)
        res = s.solve(b_7pt, tmax=1, x0=x_star)
        assert res.final_relres < 1e-10


class TestHierarchyMisc:
    def test_grid_complexity(self, hier_7pt):
        gc = hier_7pt.grid_complexity()
        assert 1.0 < gc < 3.0

    def test_coarsest_index(self, hier_7pt):
        assert hier_7pt.coarsest == hier_7pt.nlevels - 1
