"""Unit tests for BPX (over-correction) and PCG (extension)."""

import numpy as np
import pytest

from repro.solvers import BPX, Multadd, PCG


class TestBPX:
    def test_diverges_as_solver(self, hier_7pt, b_7pt):
        # The paper's point: summed corrections over-correct.
        s = BPX(hier_7pt, smoother="jacobi", weight=0.9)
        res = s.solve(b_7pt, tmax=20)
        assert res.diverged or res.final_relres > 1.0

    def test_damped_bpx_can_converge(self, hier_7pt, b_7pt):
        s = BPX(
            hier_7pt, smoother="jacobi", weight=0.9, scale=1.0 / hier_7pt.nlevels
        )
        res = s.solve(b_7pt, tmax=40)
        assert res.final_relres < 1.0

    def test_correction_symmetric_operator(self, hier_7pt):
        # BPX's one-cycle operator is symmetric — required for PCG.
        s = BPX(hier_7pt, smoother="jacobi", weight=0.9)
        rng = np.random.default_rng(0)
        u, v = rng.standard_normal((2, s.n))
        Bu = sum(s.correction(k, u) for k in range(s.ngrids))
        Bv = sum(s.correction(k, v) for k in range(s.ngrids))
        assert float(Bu @ v) == pytest.approx(float(u @ Bv), rel=1e-10)

    def test_invalid_scale(self, hier_7pt):
        with pytest.raises(ValueError):
            BPX(hier_7pt, scale=0.0)


class TestPCG:
    def test_unpreconditioned_converges(self, A_7pt, b_7pt):
        res = PCG(A_7pt).solve(b_7pt, tol=1e-8, maxiter=1000)
        assert res.final_relres < 1e-8

    def test_bpx_preconditioner_beats_plain_cg(self, hier_7pt, A_7pt, b_7pt):
        plain = PCG(A_7pt).solve(b_7pt, tol=1e-8, maxiter=1000)
        bpx = PCG.with_additive_preconditioner(
            BPX(hier_7pt, smoother="jacobi", weight=0.9)
        ).solve(b_7pt, tol=1e-8, maxiter=1000)
        assert bpx.cycles < plain.cycles

    def test_multadd_preconditioner(self, hier_7pt, b_7pt):
        solver = Multadd(hier_7pt, smoother="jacobi", weight=0.9)
        res = PCG.with_additive_preconditioner(solver).solve(b_7pt, tol=1e-9)
        assert res.final_relres < 1e-9
        assert res.cycles < 40

    def test_solution_accuracy(self, A_7pt, b_7pt):
        import scipy.sparse.linalg as spla

        res = PCG(A_7pt).solve(b_7pt, tol=1e-10, maxiter=2000)
        x_star = spla.spsolve(A_7pt.tocsc(), b_7pt)
        assert np.allclose(res.x, x_star, atol=1e-7)

    def test_maxiter_respected(self, A_7pt, b_7pt):
        res = PCG(A_7pt).solve(b_7pt, tol=1e-16, maxiter=5)
        assert res.cycles == 5

    def test_history_recorded(self, A_7pt, b_7pt):
        res = PCG(A_7pt).solve(b_7pt, tol=1e-6, maxiter=500)
        assert len(res.residual_history) == res.cycles
