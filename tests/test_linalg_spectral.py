"""Unit tests for repro.linalg.spectral."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import (
    abs_iteration_matrix_rho,
    estimate_rho,
    is_async_convergent,
    jacobi_iteration_matrix,
)


class TestEstimateRho:
    def test_diagonal_matrix(self):
        D = sp.diags([1.0, -3.0, 2.0]).tocsr()
        assert estimate_rho(D, iters=200) == pytest.approx(3.0, rel=1e-4)

    def test_callable_operator(self):
        mat = np.diag([2.0, 0.5])
        rho = estimate_rho(lambda v: mat @ v, n=2, iters=200)
        assert rho == pytest.approx(2.0, rel=1e-4)

    def test_callable_requires_n(self):
        with pytest.raises(ValueError, match="n is required"):
            estimate_rho(lambda v: v)

    def test_zero_matrix(self):
        Z = sp.csr_matrix((4, 4))
        assert estimate_rho(Z) == 0.0

    def test_known_laplacian_rho(self, A_1d):
        # 1-D Laplacian eigenvalues: 2 - 2cos(k pi h); Jacobi G = I - D^{-1}A
        # has rho = cos(pi h).
        n = A_1d.shape[0]
        G = jacobi_iteration_matrix(A_1d, weight=1.0)
        expected = np.cos(np.pi / (n + 1))
        assert estimate_rho(G, iters=3000, tol=1e-12) == pytest.approx(expected, rel=1e-3)


class TestJacobiIterationMatrix:
    def test_row_structure(self, A_1d):
        G = jacobi_iteration_matrix(A_1d, weight=1.0)
        # G = I - D^{-1} A has zero diagonal for weight 1.
        assert np.allclose(G.diagonal(), 0.0)

    def test_weight_scales(self, A_1d):
        G9 = jacobi_iteration_matrix(A_1d, weight=0.9)
        dense = np.eye(A_1d.shape[0]) - 0.9 * np.diag(1.0 / A_1d.diagonal()) @ A_1d.toarray()
        assert np.allclose(G9.toarray(), dense)

    def test_zero_diag_raises(self):
        M = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            jacobi_iteration_matrix(M)


class TestAsyncConvergence:
    def test_weighted_jacobi_on_laplacian_is_async_convergent(self, A_1d):
        # For the M-matrix Laplacian, |G| has the same spectral radius
        # as weighted Jacobi's G (all entries already non-negative for
        # omega <= 1), which is < 1.
        assert is_async_convergent(A_1d, weight=0.9)

    def test_rho_abs_at_least_rho(self, A_7pt):
        rho_abs = abs_iteration_matrix_rho(A_7pt, weight=0.9)
        G = jacobi_iteration_matrix(A_7pt, weight=0.9)
        rho = estimate_rho(G, iters=200)
        assert rho_abs >= rho - 1e-6

    def test_overrelaxed_fails(self, A_1d):
        # weight 2.0 gives |G| with rho > 1 (diagonal entry |1 - 2| = 1
        # plus positive off-diagonals).
        assert not is_async_convergent(A_1d, weight=2.0)
