"""Unit tests for AFACx, including the modified-RHS identity."""

import numpy as np
import pytest

from repro.solvers import AFACx, Multadd


class TestModifiedRhsIdentity:
    """Algorithm 2's lines 8-9 trick == the literal 3-step AFAC update."""

    @pytest.mark.parametrize("s1,s2", [(1, 1), (2, 1), (1, 3), (2, 2)])
    def test_equivalence(self, hier_7pt, b_7pt, s1, s2):
        solver = AFACx(hier_7pt, smoother="jacobi", weight=0.9, s1=s1, s2=s2)
        hier = solver.hierarchy
        r = b_7pt.copy()
        k = 0  # two-level portion of the hierarchy
        lv = hier.levels[k]
        r_k = hier.restrict_from_fine(k, r)
        r_k1 = lv.R @ r_k
        e_k1 = solver._smooth_zero_guess(k + 1, r_k1, s2)
        # Literal AFAC: smooth from initial guess P e_{k+1}, subtract.
        sm = solver.smoothers[k]
        e_lit = sm.sweep(lv.P @ e_k1, r_k, nsweeps=s1)
        literal = hier.interpolate_to_fine(k, e_lit) - hier.interpolate_to_fine(
            k + 1, e_k1
        )
        assert np.allclose(solver.correction(k, r), literal, atol=1e-11)


class TestAFACxBehaviour:
    def test_converges(self, hier_7pt_agg, b_7pt):
        s = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9)
        res = s.solve(b_7pt, tmax=40)
        assert res.final_relres < 1e-4

    def test_slower_than_multadd(self, hier_7pt_agg, b_7pt):
        # Table I: AFACx consistently needs more V-cycles than Multadd.
        af = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9)
        ma = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        r_af = af.solve(b_7pt, tmax=20).final_relres
        r_ma = ma.solve(b_7pt, tmax=20).final_relres
        assert r_ma < r_af

    def test_correction_linear(self, hier_7pt_agg):
        s = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9)
        rng = np.random.default_rng(0)
        u, v = rng.standard_normal((2, s.n))
        for k in (0, 1, s.ngrids - 1):
            lhs = s.correction(k, u + 0.5 * v)
            rhs = s.correction(k, u) + 0.5 * s.correction(k, v)
            assert np.allclose(lhs, rhs, atol=1e-12)

    def test_coarsest_uses_smoothing_by_default(self, hier_7pt_agg):
        s = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9)
        ell = s.hierarchy.coarsest
        rng = np.random.default_rng(2)
        r = rng.standard_normal(s.n)
        r_l = s.hierarchy.restrict_from_fine(ell, r)
        expected = s.hierarchy.interpolate_to_fine(
            ell, s._coarse_smoother.sweep(np.zeros_like(r_l), r_l, 1)
        )
        assert np.allclose(s.correction(ell, r), expected)

    def test_exact_coarse_option(self, hier_7pt_agg, b_7pt):
        s_ex = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9, exact_coarse=True)
        s_sm = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9)
        r_ex = s_ex.solve(b_7pt, tmax=25).final_relres
        r_sm = s_sm.solve(b_7pt, tmax=25).final_relres
        # Exact coarse solve should not be worse.
        assert r_ex <= r_sm * 1.5

    def test_more_sweeps_faster(self, hier_7pt_agg, b_7pt):
        s1 = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9, s1=1, s2=1)
        s2 = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9, s1=3, s2=3)
        assert (
            s2.solve(b_7pt, tmax=15).final_relres
            <= s1.solve(b_7pt, tmax=15).final_relres * 1.1
        )

    def test_invalid_sweeps(self, hier_7pt_agg):
        with pytest.raises(ValueError):
            AFACx(hier_7pt_agg, s1=0)

    def test_correction_flops_positive(self, hier_7pt_agg):
        s = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9)
        for k in range(s.ngrids):
            assert s.correction_flops(k) > 0

    def test_uses_plain_interpolants(self, hier_7pt_agg):
        # AFACx restricts through plain P (not smoothed): its grid-0
        # correction with zero inner correction reduces to smoothing.
        s = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9)
        assert not hasattr(s, "P_bar")
