"""Unit tests for convergence criteria (Section V)."""

import threading

import numpy as np
import pytest

from repro.core import Criterion1, Criterion2


class TestCriterion1:
    def test_grid_stops_individually(self):
        c = Criterion1(3, tmax=2)
        c.record(0)
        c.record(0)
        assert c.grid_done(0)
        assert not c.grid_done(1)
        assert not c.all_done()

    def test_all_done(self):
        c = Criterion1(2, tmax=1)
        c.record(0)
        c.record(1)
        assert c.all_done()

    def test_invalid_tmax(self):
        with pytest.raises(ValueError):
            Criterion1(2, tmax=0)


class TestCriterion2:
    def test_fast_grid_keeps_running(self):
        c = Criterion2(2, tmax=2)
        c.record(0)
        c.record(0)
        c.record(0)  # grid 0 far ahead
        assert not c.grid_done(0)  # flag not set: grid 1 behind
        c.record(1)
        c.record(1)
        assert c.grid_done(0) and c.grid_done(1)

    def test_counts_can_exceed_tmax(self):
        c = Criterion2(2, tmax=1)
        for _ in range(5):
            c.record(0)
        assert c.counts[0] == 5

    def test_thread_safety(self):
        c = Criterion2(4, tmax=1000)

        def hammer(k):
            for _ in range(1000):
                c.record(k)

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert np.all(c.counts == 1000)
        assert c.all_done()

    def test_flag_latches(self):
        c = Criterion2(1, tmax=1)
        c.record(0)
        assert c.all_done()
        c.record(0)
        assert c.all_done()
