"""Unit tests for the convergence-theory module."""

import numpy as np
import pytest

from repro.solvers import AFACx, BPX, Multadd, MultiplicativeMultigrid
from repro.theory import (
    async_smoother_margin,
    error_propagator_rho,
    method_operator,
    observed_rate,
    predicted_vs_observed,
    staleness_penalty,
)


class TestErrorPropagator:
    def test_operator_is_linear(self, hier_7pt_agg):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        E = method_operator(s)
        rng = np.random.default_rng(0)
        u, v = rng.standard_normal((2, s.n))
        assert np.allclose(E(u + 2 * v), E(u) + 2 * E(v), atol=1e-11)

    def test_convergent_methods_rho_below_one(self, hier_7pt_agg):
        for cls in (MultiplicativeMultigrid, Multadd, AFACx):
            s = cls(hier_7pt_agg, smoother="jacobi", weight=0.9)
            assert error_propagator_rho(s) < 1.0

    def test_bpx_rho_above_one(self, hier_7pt):
        s = BPX(hier_7pt, smoother="jacobi", weight=0.9)
        assert error_propagator_rho(s) > 1.0

    def test_mult_equals_multadd_rho(self, hier_7pt_agg):
        # Equivalence theorem, spectral form.
        mult = MultiplicativeMultigrid(
            hier_7pt_agg, smoother="jacobi", weight=0.9, symmetric=True
        )
        madd = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        r1 = error_propagator_rho(mult)
        r2 = error_propagator_rho(madd)
        assert r1 == pytest.approx(r2, rel=1e-6)

    def test_afacx_rho_above_multadd(self, hier_7pt_agg):
        af = AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9)
        ma = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        assert error_propagator_rho(af) > error_propagator_rho(ma)


class TestObservedRate:
    def test_matches_prediction_for_mult(self, hier_7pt_agg, b_7pt):
        s = MultiplicativeMultigrid(hier_7pt_agg, smoother="jacobi", weight=0.9)
        rho, rate = predicted_vs_observed(s, b_7pt, cycles=30)
        assert rate == pytest.approx(rho, abs=0.12)

    def test_validation(self, hier_7pt_agg, b_7pt):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        with pytest.raises(ValueError):
            observed_rate(s, b_7pt, cycles=5, skip=10)


class TestAsyncDiagnostics:
    def test_margins_positive_for_laplacian(self, hier_7pt_agg):
        m = async_smoother_margin(hier_7pt_agg, weight=0.9)
        assert m.shape == (hier_7pt_agg.nlevels,)
        assert np.all(m > 0)

    def test_penalty_one_when_synchronous(self, hier_7pt_agg, b_7pt):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        pen = staleness_penalty(s, b_7pt, alpha=1.0, delta=0, runs=1)
        assert pen == pytest.approx(1.0, rel=1e-8)

    def test_penalty_grows_with_staleness(self, hier_7pt_agg, b_7pt):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        mild = staleness_penalty(s, b_7pt, alpha=0.9, delta=0, runs=2)
        harsh = staleness_penalty(s, b_7pt, alpha=0.1, delta=4, runs=2, model="full")
        assert harsh > mild

    def test_model_validation(self, hier_7pt_agg, b_7pt):
        s = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        with pytest.raises(ValueError):
            staleness_penalty(s, b_7pt, model="psychic")
