"""Property-based tests for the FEM substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.problems.fem.assembly import (
    assemble_scalar_stiffness,
    assemble_vector_stiffness,
    p1_gradients,
)
from repro.problems.fem.mesh import beam_mesh, cube_mesh


@st.composite
def small_cube_mesh(draw):
    n = draw(st.integers(2, 4))
    extent = draw(st.floats(0.5, 3.0))
    return cube_mesh(n, extent=extent)


class TestAssemblyProperties:
    @given(small_cube_mesh())
    @settings(max_examples=15, deadline=None)
    def test_stiffness_symmetric_psd(self, mesh):
        A = assemble_scalar_stiffness(mesh)
        assert abs(A - A.T).max() < 1e-11
        rng = np.random.default_rng(0)
        for _ in range(3):
            v = rng.standard_normal(mesh.n_nodes)
            assert float(v @ (A @ v)) >= -1e-10 * float(v @ v)

    @given(small_cube_mesh(), st.floats(0.1, 10.0))
    @settings(max_examples=15, deadline=None)
    def test_kappa_linearity(self, mesh, kappa):
        A1 = assemble_scalar_stiffness(mesh, 1.0)
        Ak = assemble_scalar_stiffness(mesh, kappa)
        assert abs(Ak - kappa * A1).max() < 1e-9 * max(kappa, 1.0)

    @given(small_cube_mesh(), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_linear_fields_in_kernel_interior(self, mesh, seed):
        A = assemble_scalar_stiffness(mesh)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(3)
        u = mesh.nodes @ a + rng.standard_normal()
        res = A @ u
        interior = mesh.interior_nodes()
        if interior.size:
            scale = max(np.abs(A.data).max() * np.abs(u).max(), 1e-30)
            assert np.abs(res[interior]).max() < 1e-10 * scale

    @given(small_cube_mesh())
    @settings(max_examples=15, deadline=None)
    def test_gradients_partition_of_unity(self, mesh):
        grads, vols = p1_gradients(mesh)
        assert np.abs(grads.sum(axis=1)).max() < 1e-10
        assert np.all(vols > 0)

    @given(st.integers(2, 4), st.floats(0.05, 0.45))
    @settings(max_examples=10, deadline=None)
    def test_elasticity_rigid_modes_random_poisson(self, n, nu):
        mesh = beam_mesh(n, 2, 2)
        A = assemble_vector_stiffness(mesh, poisson=nu)
        from repro.amg import rigid_body_modes

        B = rigid_body_modes(mesh.nodes)
        scale = np.abs(A.data).max() * np.abs(B).max()
        assert np.abs(A @ B).max() < 1e-9 * max(scale, 1.0)
