"""Partial-failure tests for the blocked multi-RHS batch executor.

The coalescing claim that makes batching safe to enable by default:
a healthy column's iterate is **bitwise identical** whether it runs
solo or batched with siblings — including siblings that diverge,
crash mid-job, or blow their deadlines.  These tests pin that down
per failure mode, plus the per-column status bookkeeping.
"""

import numpy as np
import pytest

from repro.amg import SetupOptions
from repro.kernels.setupcache import cached_setup_hierarchy
from repro.problems import build_problem
from repro.resilience import FaultInjector, Guard, GuardPolicy, parse_fault_spec
from repro.serve import ColumnContext, solve_batch
from repro.solvers import Multadd


@pytest.fixture(scope="module")
def solver():
    p = build_problem("5pt", 10)
    hierarchy = cached_setup_hierarchy(p.A, SetupOptions())
    return Multadd(hierarchy, smoother="jacobi", weight=p.jacobi_weight)


def rhs(solver, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(solver.n)


def solo(solver, b, ctx):
    (outcome,) = solve_batch(solver, [b], [ctx])
    return outcome


class TestHealthyBatches:
    def test_batch_converges_per_column(self, solver):
        columns = [rhs(solver, s) for s in range(4)]
        contexts = [ColumnContext(tol=1e-8, tmax=60) for _ in columns]
        outcomes = solve_batch(solver, columns, contexts)
        assert [o.status for o in outcomes] == ["ok"] * 4
        for b, o in zip(columns, outcomes):
            true_rel = np.linalg.norm(b - solver.A @ o.x) / np.linalg.norm(b)
            # The reported residual is honest: recomputing it from the
            # returned iterate agrees.
            assert true_rel == pytest.approx(o.rel_residual, rel=1e-10)
            assert true_rel <= 1e-8

    def test_batched_columns_bitwise_equal_solo(self, solver):
        columns = [rhs(solver, s) for s in range(4)]
        contexts = [ColumnContext(tol=1e-8, tmax=60) for _ in columns]
        batched = solve_batch(solver, columns, contexts)
        for b, got in zip(columns, batched):
            ref = solo(solver, b, ColumnContext(tol=1e-8, tmax=60))
            assert np.array_equal(got.x, ref.x)
            assert got.rel_residual == ref.rel_residual
            assert got.cycles == ref.cycles

    def test_mixed_tolerances_early_exit(self, solver):
        b = rhs(solver, 7)
        contexts = [ColumnContext(tol=1e-2), ColumnContext(tol=1e-10)]
        loose, tight = solve_batch(solver, [b, b.copy()], contexts)
        assert loose.status == "ok" and tight.status == "ok"
        # The loose column left the active set first; the tight one
        # kept iterating after it was gone.
        assert loose.cycles < tight.cycles


class TestPartialFailure:
    def test_diverging_sibling_does_not_contaminate(self, solver):
        good = [rhs(solver, 1), rhs(solver, 2)]
        bad = rhs(solver, 3)
        contexts = [
            ColumnContext(tol=1e-8),
            ColumnContext(tol=1e-8),
            # Absurd threshold: the column "diverges" at its first
            # residual check and exits immediately.
            ColumnContext(tol=1e-8, divergence_threshold=0.5),
        ]
        g1, g2, failed = solve_batch(solver, good + [bad], contexts)
        assert failed.status == "failed" and failed.cause == "divergence"
        assert failed.cycles == 0
        for b, got in zip(good, (g1, g2)):
            ref = solo(solver, b, ColumnContext(tol=1e-8))
            assert got.status == "ok"
            assert np.array_equal(got.x, ref.x)

    def test_crashed_sibling_is_isolated(self, solver):
        plan = parse_fault_spec("crash:0@1", seed=5)
        injector = FaultInjector(plan, solver.ngrids)
        good = rhs(solver, 4)
        contexts = [
            ColumnContext(tol=1e-8),
            ColumnContext(tol=1e-8, injector=injector),
        ]
        ok, crashed = solve_batch(solver, [good, rhs(solver, 5)], contexts)
        assert crashed.status == "failed" and crashed.cause == "worker_crash"
        assert crashed.crashed
        assert crashed.telemetry.injected_crashes == 1
        assert ok.status == "ok"
        ref = solo(solver, good, ColumnContext(tol=1e-8))
        assert np.array_equal(ok.x, ref.x)

    def test_corrupting_sibling_is_screened_and_isolated(self, solver):
        plan = parse_fault_spec("corrupt:p=0.3,mode=nan", seed=0)
        injector = FaultInjector(plan, solver.ngrids)
        guard = Guard(GuardPolicy(), ref_norm=1.0)
        good = rhs(solver, 6)
        contexts = [
            ColumnContext(tol=1e-8),
            ColumnContext(tol=1e-8, tmax=5, injector=injector, guard=guard),
        ]
        ok, poisoned = solve_batch(solver, [good, rhs(solver, 8)], contexts)
        # NaN-corrupted corrections are screened out per column: the
        # poisoned iterate stays finite and the NaNs never reach the
        # sibling's column.
        assert poisoned.telemetry.injected_corruptions > 0
        assert poisoned.telemetry.corrections_rejected > 0
        assert np.all(np.isfinite(poisoned.x))
        assert poisoned.status in ("ok", "degraded")
        assert ok.status == "ok"
        ref = solo(solver, good, ColumnContext(tol=1e-8))
        assert np.array_equal(ok.x, ref.x)

    def test_fully_rejected_cycle_is_a_guard_trip(self, solver):
        # A guard so tight every correction is over the magnitude
        # bound: the full cycle is rejected — the operator is unusable
        # for this RHS, and the column fails deterministically.
        guard = Guard(GuardPolicy(magnitude_bound=1e-300), ref_norm=1.0)
        good = rhs(solver, 13)
        contexts = [
            ColumnContext(tol=1e-8),
            ColumnContext(tol=1e-8, guard=guard),
        ]
        ok, tripped = solve_batch(solver, [good, rhs(solver, 14)], contexts)
        assert tripped.status == "failed" and tripped.cause == "guard_trip"
        assert tripped.cycles == 0
        assert tripped.telemetry.corrections_rejected == solver.ngrids
        assert ok.status == "ok"
        ref = solo(solver, good, ColumnContext(tol=1e-8))
        assert np.array_equal(ok.x, ref.x)

    def test_expired_deadline_degrades_with_honest_residual(self, solver):
        good = rhs(solver, 10)
        fake_now = [100.0]
        contexts = [
            ColumnContext(tol=1e-8),
            ColumnContext(tol=1e-8, t_deadline=1.0),  # already past
        ]
        ok, late = solve_batch(
            solver,
            [good, rhs(solver, 11)],
            contexts,
            now_fn=lambda: fake_now[0],
        )
        assert late.status == "degraded" and late.cause == "deadline"
        assert late.stalled and late.cycles == 0
        assert late.rel_residual == pytest.approx(1.0)  # x = 0 iterate
        assert ok.status == "ok"
        ref = solo(solver, good, ColumnContext(tol=1e-8))
        assert np.array_equal(ok.x, ref.x)

    def test_cycle_budget_degrades_stalled(self, solver):
        out = solo(solver, rhs(solver, 12), ColumnContext(tol=1e-14, tmax=2))
        assert out.status == "degraded" and out.cause == "cycle_budget"
        assert out.stalled and out.cycles == 2
        assert 0 < out.rel_residual < 1.0  # made progress, honestly reported


class TestValidation:
    def test_shape_and_arity_checks(self, solver):
        with pytest.raises(ValueError):
            solve_batch(solver, [rhs(solver, 0)], [])
        with pytest.raises(ValueError):
            solve_batch(solver, [np.ones(3)], [ColumnContext()])

    def test_empty_batch(self, solver):
        assert solve_batch(solver, [], []) == []
