"""Unit tests for the asynchronous models (Section III)."""

import numpy as np
import pytest

from repro.core import (
    ScheduleParams,
    simulate_full_async_residual,
    simulate_full_async_solution,
    simulate_semi_async,
)
from repro.solvers import AFACx, Multadd


@pytest.fixture(scope="module")
def multadd(hier_7pt_agg):
    return Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)


@pytest.fixture(scope="module")
def afacx(hier_7pt_agg):
    return AFACx(hier_7pt_agg, smoother="jacobi", weight=0.9)


class TestSemiAsync:
    def test_alpha_one_delta_zero_equals_synchronous(self, multadd, b_7pt):
        # Psi(t) = all grids, reads current: the model must reproduce
        # the synchronous additive solve exactly.
        sim = simulate_semi_async(
            multadd, b_7pt, ScheduleParams(alpha=1.0, delta=0, updates_per_grid=10)
        )
        sync = multadd.solve(b_7pt, tmax=10)
        assert sim.rel_residual == pytest.approx(sync.final_relres, rel=1e-10)
        assert np.allclose(sim.x, sync.x)

    def test_converges_small_alpha(self, multadd, b_7pt):
        sim = simulate_semi_async(
            multadd, b_7pt, ScheduleParams(alpha=0.1, delta=0, seed=1)
        )
        assert sim.rel_residual < 1e-2

    def test_all_grids_complete_budget(self, multadd, b_7pt):
        params = ScheduleParams(alpha=0.3, updates_per_grid=7, seed=2)
        sim = simulate_semi_async(multadd, b_7pt, params)
        assert np.all(sim.corrections_per_grid == 7)

    def test_smaller_alpha_slower(self, multadd, b_7pt):
        rels = []
        for alpha in (1.0, 0.1):
            vals = [
                simulate_semi_async(
                    multadd, b_7pt, ScheduleParams(alpha=alpha, seed=s)
                ).rel_residual
                for s in range(3)
            ]
            rels.append(np.mean(vals))
        assert rels[0] < rels[1]

    def test_instants_grow_as_alpha_shrinks(self, multadd, b_7pt):
        s1 = simulate_semi_async(multadd, b_7pt, ScheduleParams(alpha=1.0, seed=0))
        s2 = simulate_semi_async(multadd, b_7pt, ScheduleParams(alpha=0.2, seed=0))
        assert s2.instants > s1.instants

    def test_trace_tracking(self, multadd, b_7pt):
        sim = simulate_semi_async(
            multadd,
            b_7pt,
            ScheduleParams(alpha=1.0, updates_per_grid=5),
            track_trace=True,
        )
        assert len(sim.residual_trace) == sim.instants


class TestFullAsync:
    def test_delta_zero_matches_semi(self, multadd, b_7pt):
        # With delta=0 every component read is current: full-async
        # degenerates to semi-async for the same schedule seed.
        p = ScheduleParams(alpha=0.4, delta=0, seed=5)
        semi = simulate_semi_async(multadd, b_7pt, p)
        full = simulate_full_async_solution(multadd, b_7pt, p)
        assert full.rel_residual == pytest.approx(semi.rel_residual, rel=1e-10)

    def test_solution_and_residual_differ_for_large_delta(self, multadd, b_7pt):
        p = ScheduleParams(alpha=0.1, delta=8, seed=3)
        sol = simulate_full_async_solution(multadd, b_7pt, p)
        res = simulate_full_async_residual(multadd, b_7pt, p)
        assert sol.rel_residual != pytest.approx(res.rel_residual, rel=1e-12)

    def test_larger_delta_slower(self, multadd, b_7pt):
        rels = []
        for delta in (0, 12):
            vals = [
                simulate_full_async_solution(
                    multadd, b_7pt, ScheduleParams(alpha=0.1, delta=delta, seed=s)
                ).rel_residual
                for s in range(3)
            ]
            rels.append(np.mean(vals))
        assert rels[0] < rels[1]

    def test_still_converges_with_delay(self, multadd, b_7pt):
        # Large delays slow convergence a lot (Fig. 2) but must not
        # diverge: 20 updates per grid should make clear progress.
        sim = simulate_full_async_solution(
            multadd, b_7pt, ScheduleParams(alpha=0.1, delta=6, seed=2)
        )
        assert sim.rel_residual < 0.9

    def test_residual_model_converges(self, multadd, b_7pt):
        sim = simulate_full_async_residual(
            multadd, b_7pt, ScheduleParams(alpha=0.1, delta=6, seed=2)
        )
        assert sim.rel_residual < 0.9

    def test_afacx_models_converge(self, afacx, b_7pt):
        sim = simulate_semi_async(
            afacx, b_7pt, ScheduleParams(alpha=0.3, seed=1, updates_per_grid=20)
        )
        assert sim.rel_residual < 0.3

    def test_residual_identity_maintained(self, multadd, b_7pt):
        # The maintained r must equal b - A x exactly at the end (the
        # models apply the same corrections to both).
        sim = simulate_full_async_residual(
            multadd, b_7pt, ScheduleParams(alpha=0.2, delta=4, seed=7)
        )
        # rel_residual in the result is computed from x, so just check
        # convergence consistency by recomputing.
        r = b_7pt - multadd.A @ sim.x
        assert np.linalg.norm(r) / np.linalg.norm(b_7pt) == pytest.approx(
            sim.rel_residual, rel=1e-12
        )

    def test_x0_respected(self, multadd, b_7pt):
        import scipy.sparse.linalg as spla

        x_star = spla.spsolve(multadd.A.tocsc(), b_7pt)
        sim = simulate_semi_async(
            multadd,
            b_7pt,
            ScheduleParams(alpha=1.0, updates_per_grid=2),
            x0=x_star,
        )
        assert sim.rel_residual < 1e-10
