"""Property-based tests (hypothesis) for the linalg substrate."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg import (
    as_csr,
    l1_row_norms,
    partition_rows_by_nnz,
    row_range_matvec,
    two_norm,
)
from repro.partition import largest_remainder, partition_threads


def sparse_matrices(max_n=24, density=0.3):
    """Strategy: random square sparse matrices with nonzero diagonals."""

    @st.composite
    def build(draw):
        n = draw(st.integers(2, max_n))
        rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
        dense = rng.standard_normal((n, n))
        mask = rng.uniform(size=(n, n)) < density
        dense = dense * mask
        np.fill_diagonal(dense, rng.uniform(1.0, 3.0, n))
        return sp.csr_matrix(dense)

    return build()


class TestCsrProperties:
    @given(sparse_matrices())
    @settings(max_examples=30, deadline=None)
    def test_as_csr_idempotent(self, A):
        B = as_csr(A)
        C = as_csr(B)
        assert (B != C).nnz == 0

    @given(sparse_matrices())
    @settings(max_examples=30, deadline=None)
    def test_l1_norms_match_dense(self, A):
        assert np.allclose(l1_row_norms(A), np.abs(A.toarray()).sum(axis=1))

    @given(sparse_matrices(), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_partition_covers(self, A, nparts):
        ranges = partition_rows_by_nnz(A, nparts)
        covered = []
        for a, b in ranges:
            covered.extend(range(a, b))
        assert covered == list(range(A.shape[0]))

    @given(sparse_matrices(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_row_range_matvec_consistent(self, A, data):
        n = A.shape[0]
        lo = data.draw(st.integers(0, n))
        hi = data.draw(st.integers(lo, n))
        rng = np.random.default_rng(0)
        x = rng.standard_normal(n)
        out = row_range_matvec(A, x, lo, hi)
        assert np.allclose(out[lo:hi], (A @ x)[lo:hi])

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 50),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_two_norm_nonnegative_and_homogeneous(self, v):
        assert two_norm(v) >= 0
        assert two_norm(2.0 * v) == np.float64(2.0) * np.float64(two_norm(v)) or np.isclose(
            two_norm(2.0 * v), 2.0 * two_norm(v), rtol=1e-12
        )


class TestPartitionProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 12),
            elements=st.floats(0.01, 100.0, allow_nan=False),
        ),
        st.integers(0, 300),
    )
    @settings(max_examples=80, deadline=None)
    def test_largest_remainder_exact(self, w, total):
        out = largest_remainder(w, total)
        assert out.sum() == total
        assert np.all(out >= 0)

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 12),
            elements=st.floats(0.01, 100.0, allow_nan=False),
        ),
        st.integers(1, 300),
    )
    @settings(max_examples=80, deadline=None)
    def test_partition_threads_invariants(self, w, nthreads):
        out = partition_threads(w, nthreads)
        assert np.all(out >= 1)
        if nthreads >= w.size:
            assert out.sum() == nthreads

    @given(
        hnp.arrays(
            np.float64,
            st.integers(2, 10),
            elements=st.floats(0.5, 50.0, allow_nan=False),
        ),
        st.integers(20, 200),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_monotone_in_work(self, w, nthreads):
        # A grid with more work never gets fewer threads (within the
        # +/-1 slack of integer apportionment).
        out = partition_threads(w, nthreads)
        order = np.argsort(w)
        sorted_alloc = out[order]
        assert np.all(np.diff(sorted_alloc) >= -1)
