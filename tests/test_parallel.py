"""Tests for the true-parallel process executor (repro.core.parallel).

Covers the backend's four contracts:

- **transport fidelity** — a 1-worker deterministic run is bit-identical
  to the sequential engine (same schedule, shared-memory round trip),
  and :class:`SetupBundle` survives pickling without changing results.
- **seqlock safety** — ``ProcAtomicWrite`` readers never observe a torn
  stripe, retry while a writer is mid-publication, and fall back to the
  stripe lock after ``max_retries``.
- **fault tolerance** — a real process death (``os._exit``) is detected
  by the supervisor, restarted through the guard budget with replica
  re-sync, and lands in the merged telemetry; without a guard the run
  degrades to ``stalled`` instead of hanging.
- **clean shutdown** — the parent unlinks the one shared segment exactly
  once; runs leak neither ``ResourceWarning`` nor ``/dev/shm`` entries.
"""

import glob
import pickle
import threading
import warnings

import numpy as np
import pytest

from repro.core import run_async_engine, run_procs, SetupBundle, SharedVectors
from repro.core.parallel import ProcAtomicWrite, _Layout, _assign_grids
from repro.resilience import GuardPolicy, parse_fault_spec
from repro.solvers import Multadd


@pytest.fixture(scope="module")
def multadd(hier_7pt_agg):
    return Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


class TestDeterministicTransport:
    def test_bit_identical_to_engine(self, multadd, b_7pt):
        """The headline fidelity check: one worker, engine schedule,
        through SharedMemory — bitwise the engine's x and counts."""
        resp = run_procs(
            multadd, b_7pt, tmax=8, workers=1, deterministic=True, seed=3
        )
        rese = run_async_engine(multadd, b_7pt, tmax=8, seed=3)
        assert not resp.errors
        assert resp.deterministic and resp.workers == 1
        assert np.array_equal(resp.x, rese.x)
        assert np.array_equal(resp.counts, rese.counts)

    def test_deterministic_needs_one_worker(self, multadd, b_7pt):
        with pytest.raises(ValueError):
            run_procs(multadd, b_7pt, tmax=4, workers=2, deterministic=True)

    def test_deterministic_rejects_faults(self, multadd, b_7pt):
        plan = parse_fault_spec("crash:0@2", seed=1)
        with pytest.raises(ValueError):
            run_procs(
                multadd, b_7pt, tmax=4, workers=1, deterministic=True,
                faults=plan,
            )


class TestProcs:
    def test_converges_lock(self, multadd, b_7pt):
        res = run_procs(multadd, b_7pt, tmax=10, workers=2, criterion="criterion1")
        assert not res.errors
        assert res.rel_residual < 1e-2
        assert np.all(res.counts == 10)  # criterion 1 stops grids exactly
        assert res.workers == 2
        assert res.wall_time > 0

    @pytest.mark.parametrize("write", ["atomic", "unsafe"])
    def test_write_policies(self, multadd, b_7pt, write):
        res = run_procs(
            multadd, b_7pt, tmax=8, workers=2, write=write,
            criterion="criterion1",
        )
        assert not res.errors
        assert np.isfinite(res.rel_residual)
        assert res.rel_residual < 1.0

    @pytest.mark.parametrize("rescomp", ["rupdate", "global"])
    def test_rescomp_modes(self, multadd, b_7pt, rescomp):
        res = run_procs(
            multadd, b_7pt, tmax=8, workers=2, rescomp=rescomp,
            criterion="criterion1",
        )
        # global-res under extreme staleness may legitimately exceed 1.0
        # (the Fig. 4/5 pathology) — require a sane, error-free run.
        assert not res.errors
        assert np.isfinite(res.rel_residual)
        if rescomp != "global":
            assert res.rel_residual < 1.0

    def test_multi_rhs_block(self, multadd, A_7pt, b_7pt):
        B = np.stack([b_7pt, -2.0 * b_7pt], axis=1)
        res = run_procs(multadd, B, tmax=8, workers=2, criterion="criterion1")
        assert not res.errors
        assert res.x.shape == B.shape
        assert res.rel_residual < 1.0

    def test_invalid_rescomp(self, multadd, b_7pt):
        with pytest.raises(ValueError):
            run_procs(multadd, b_7pt, rescomp="telepathic")

    def test_tracer_attributes_events_to_pids(self, multadd, b_7pt):
        from repro.observe import Tracer

        tracer = Tracer(clock="s")
        res = run_procs(
            multadd, b_7pt, tmax=6, workers=2, criterion="criterion1",
            tracer=tracer,
        )
        assert not res.errors
        events = tracer.events()
        workers = {e.worker for e in events if e.kind == "correct_end"}
        assert workers >= {"p0", "p1"}
        pids = {e.worker_pid for e in events if str(e.worker).startswith("p")}
        assert pids and all(pid > 0 for pid in pids)


class TestCrashRestart:
    def test_crash_restarts_and_recovers(self, multadd, b_7pt):
        """A real process death mid-solve: the supervisor restarts the
        worker, the resync forgives the already-fired crash, and the run
        still completes its criterion-1 budget."""
        plan = parse_fault_spec("crash:0@2", seed=1)
        res = run_procs(
            multadd, b_7pt, tmax=8, workers=2, criterion="criterion1",
            faults=plan, guard=GuardPolicy(),
        )
        assert not res.errors
        assert res.telemetry.injected_crashes == 1
        assert res.telemetry.restarts == 1
        assert not res.stalled
        assert np.all(res.counts >= 8)
        assert res.rel_residual < 1.0

    def test_crash_without_guard_degrades(self, multadd, b_7pt):
        plan = parse_fault_spec("crash:0@2", seed=1)
        res = run_procs(
            multadd, b_7pt, tmax=8, workers=2, criterion="criterion1",
            faults=plan,
        )
        assert not res.errors
        assert res.stalled  # dead worker, no restart budget: degrade, don't hang
        assert res.telemetry.restarts == 0


class TestSeqlock:
    def _policy(self, n=256, stripe=64, max_retries=64):
        nstripes = -(-n // stripe)
        locks = [threading.Lock() for _ in range(nstripes)]
        seq = np.zeros(nstripes, dtype=np.int64)
        return ProcAtomicWrite(n, stripe, locks, seq, max_retries=max_retries)

    def test_ops_leave_seq_even(self):
        pol = self._policy()
        v = np.zeros(256)
        pol.add(v, np.ones(256))
        pol.assign_slice(v, 10, 130, np.full(120, 7.0))
        assert np.all(pol._seq % 2 == 0)
        assert v[0] == 1.0 and v[10] == 7.0 and v[129] == 7.0 and v[130] == 1.0

    def test_reader_retries_then_falls_back_on_stuck_odd_seq(self):
        """A seq word stuck odd (writer died mid-publication) must not
        spin forever: the reader burns max_retries then takes the lock."""
        pol = self._policy(n=8, stripe=8, max_retries=3)
        v = np.arange(8.0)
        pol._seq[0] = 1
        out = pol.read(v)
        assert np.array_equal(out, v)
        assert pol.read_retries == 3
        assert pol.lock_fallbacks == 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_torn_stripes_under_concurrent_writes(self, seed):
        """Property: whatever the interleaving, every stripe a reader
        returns is uniform — a single writer's whole publication."""
        n, stripe = 256, 64
        pol = self._policy(n=n, stripe=stripe)
        v = np.zeros(n)
        stop = threading.Event()
        rng = np.random.default_rng(seed)
        vals = rng.integers(1, 10, size=64).astype(float)

        def writer():
            i = 0
            while not stop.is_set():
                pol.assign_slice(v, 0, n, np.full(n, vals[i % len(vals)]))
                i += 1

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        try:
            for _ in range(400):
                out = pol.read(v)
                for lo in range(0, n, stripe):
                    chunk = out[lo : lo + stripe]
                    assert np.all(chunk == chunk[0]), "torn stripe observed"
        finally:
            stop.set()
            t.join(timeout=5.0)
        assert pol.read_retries >= 0 and pol.lock_fallbacks >= 0


class TestSharedVectors:
    def _layout(self):
        return _Layout(
            n=32, k=1, ngrids=2, nworkers=1, nstripes=2, ring_capacity=8
        )

    def test_roundtrip_and_single_unlink(self):
        layout = self._layout()
        before = _shm_segments()
        sv = SharedVectors.create(layout)
        try:
            sv.x[:, 0] = np.arange(32.0)
            peer = SharedVectors.attach(sv.name, layout)
            assert np.array_equal(peer.x[:, 0], np.arange(32.0))
            peer.close()
        finally:
            sv.close()
            sv.unlink()
            sv.unlink()  # second unlink is a no-op, not an error
        assert _shm_segments() == before

    def test_shutdown_is_warning_free(self, multadd, b_7pt):
        """Satellite check: a full procs run neither leaks a /dev/shm
        segment nor trips a ResourceWarning at shutdown."""
        import gc

        before = _shm_segments()
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            res = run_procs(
                multadd, b_7pt, tmax=6, workers=2, criterion="criterion1"
            )
            gc.collect()
        assert not res.errors
        assert _shm_segments() == before


class TestSetupBundle:
    def test_pickle_roundtrip_preserves_results(self, multadd, b_7pt):
        """What workers actually do: rebuild the solver from a pickled
        bundle and get bit-identical engine results."""
        bundle = SetupBundle.from_solver(multadd)
        clone = pickle.loads(pickle.dumps(bundle)).build_solver()
        assert clone.ngrids == multadd.ngrids
        ref = run_async_engine(multadd, b_7pt, tmax=5, seed=11)
        got = run_async_engine(clone, b_7pt, tmax=5, seed=11)
        assert np.array_equal(ref.x, got.x)
        assert np.array_equal(ref.counts, got.counts)


class TestGridAssignment:
    def test_lpt_is_deterministic_and_complete(self):
        work = np.array([8.0, 4.0, 2.0, 1.0, 1.0])
        owned = _assign_grids(work, 2)
        assert owned == _assign_grids(work, 2)
        assert sorted(g for grids in owned for g in grids) == list(range(5))
        loads = [sum(work[g] for g in grids) for grids in owned]
        assert max(loads) == 8.0  # heaviest grid alone; rest packed opposite

    def test_one_worker_owns_everything(self):
        owned = _assign_grids(np.ones(4), 1)
        assert owned == [[0, 1, 2, 3]]
