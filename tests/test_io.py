"""Unit tests for serialization (repro.io)."""

import numpy as np
import pytest

from repro.io import (
    load_hierarchy,
    load_problem,
    read_matrix_market,
    save_hierarchy,
    save_problem,
    write_matrix_market,
)
from repro.problems import build_problem
from repro.solvers import Multadd


class TestProblemRoundtrip:
    def test_roundtrip(self, tmp_path):
        p = build_problem("7pt", 6, rhs_seed=3)
        f = tmp_path / "p.npz"
        save_problem(f, p)
        q = load_problem(f)
        assert q.name == p.name
        assert q.size_param == p.size_param
        assert q.jacobi_weight == p.jacobi_weight
        assert np.array_equal(q.b, p.b)
        assert (q.A != p.A).nnz == 0

    def test_wrong_kind_rejected(self, tmp_path, hier_7pt):
        f = tmp_path / "h.npz"
        save_hierarchy(f, hier_7pt)
        with pytest.raises(ValueError, match="problem"):
            load_problem(f)


class TestHierarchyRoundtrip:
    def test_roundtrip_structure(self, tmp_path, hier_7pt):
        f = tmp_path / "h.npz"
        save_hierarchy(f, hier_7pt)
        h2 = load_hierarchy(f)
        assert h2.nlevels == hier_7pt.nlevels
        for a, b in zip(h2.levels, hier_7pt.levels):
            assert (a.A != b.A).nnz == 0
            if b.P is not None:
                assert (a.P != b.P).nnz == 0
                assert np.array_equal(a.splitting, b.splitting)

    def test_options_preserved(self, tmp_path, hier_7pt_agg):
        f = tmp_path / "h.npz"
        save_hierarchy(f, hier_7pt_agg)
        h2 = load_hierarchy(f)
        assert h2.options.aggressive_levels == hier_7pt_agg.options.aggressive_levels
        assert h2.options.coarsen_type == hier_7pt_agg.options.coarsen_type

    def test_loaded_hierarchy_solves(self, tmp_path, hier_7pt_agg, b_7pt):
        f = tmp_path / "h.npz"
        save_hierarchy(f, hier_7pt_agg)
        h2 = load_hierarchy(f)
        ma1 = Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)
        ma2 = Multadd(h2, smoother="jacobi", weight=0.9)
        r1 = ma1.solve(b_7pt, tmax=10).final_relres
        r2 = ma2.solve(b_7pt, tmax=10).final_relres
        assert r1 == pytest.approx(r2, rel=1e-12)

    def test_functions_preserved(self, tmp_path):
        from repro.experiments import paper_hierarchy

        p = build_problem("mfem_elasticity", 5, rhs_seed=0)
        h = paper_hierarchy("mfem_elasticity", p.A)
        f = tmp_path / "h.npz"
        save_hierarchy(f, h)
        h2 = load_hierarchy(f)
        assert h2.levels[0].functions is not None
        assert np.array_equal(h2.levels[0].functions, h.levels[0].functions)

    def test_wrong_kind_rejected(self, tmp_path):
        p = build_problem("7pt", 5)
        f = tmp_path / "p.npz"
        save_problem(f, p)
        with pytest.raises(ValueError, match="hierarchy"):
            load_hierarchy(f)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path, A_7pt):
        f = tmp_path / "a.mtx"
        write_matrix_market(f, A_7pt, comment="7pt test matrix")
        B = read_matrix_market(f)
        assert abs(A_7pt - B).max() < 1e-15

    def test_comment_written(self, tmp_path, A_1d):
        f = tmp_path / "a.mtx"
        write_matrix_market(f, A_1d, comment="hello\nworld")
        text = f.read_text()
        assert "% hello" in text and "% world" in text

    def test_symmetric_read(self, tmp_path):
        # Hand-written symmetric file: lower triangle only.
        f = tmp_path / "s.mtx"
        f.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 3\n"
            "1 1 2.0\n"
            "2 1 -1.0\n"
            "2 2 2.0\n"
        )
        M = read_matrix_market(f).toarray()
        assert np.allclose(M, [[2.0, -1.0], [-1.0, 2.0]])

    def test_bad_header_rejected(self, tmp_path):
        f = tmp_path / "bad.mtx"
        f.write_text("%%MatrixMarket matrix array real general\n1 1\n1.0\n")
        with pytest.raises(ValueError, match="unsupported"):
            read_matrix_market(f)
