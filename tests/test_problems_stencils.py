"""Unit tests for repro.problems.stencils."""

import numpy as np
import pytest

from repro.problems.stencils import (
    laplacian_1d,
    laplacian_7pt,
    laplacian_27pt,
    laplacian_27pt_fem,
    mass_1d,
)


class TestLaplacian1D:
    def test_stencil(self):
        K = laplacian_1d(4).toarray()
        assert np.allclose(np.diag(K), 2.0)
        assert np.allclose(np.diag(K, 1), -1.0)

    def test_h_scaling(self):
        K = laplacian_1d(4, h_scaled=True)
        assert K[0, 0] == pytest.approx(2.0 * 5.0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            laplacian_1d(0)


class TestMass1D:
    def test_row_sums_are_one_interior(self):
        M = mass_1d(5).toarray()
        assert np.allclose(M.sum(axis=1)[1:-1], 1.0)

    def test_spd(self):
        M = mass_1d(6)
        w = np.linalg.eigvalsh(M.toarray())
        assert w.min() > 0


class TestLaplacian7pt:
    def test_paper_dimensions(self):
        A = laplacian_7pt(30)
        assert A.shape == (27000, 27000)
        assert A.nnz == 183600  # Table I

    def test_symmetric(self):
        A = laplacian_7pt(5)
        assert abs(A - A.T).max() == 0.0

    def test_interior_row(self):
        A = laplacian_7pt(5)
        # Centre point of the 5^3 grid: index 2*25 + 2*5 + 2.
        i = 2 * 25 + 2 * 5 + 2
        row = A.getrow(i)
        assert row[0, i] == 6.0
        assert row.nnz == 7
        assert row.sum() == pytest.approx(0.0)

    def test_spd_smallest_eigenvalue(self):
        A = laplacian_7pt(4)
        w = np.linalg.eigvalsh(A.toarray())
        # Known: lambda_min = 3 * (2 - 2 cos(pi/5))
        expected = 3 * (2 - 2 * np.cos(np.pi / 5))
        assert w.min() == pytest.approx(expected, rel=1e-10)

    def test_constant_vector_boundary_effect(self):
        A = laplacian_7pt(4)
        v = np.ones(64)
        # Interior rows annihilate constants; boundary rows do not.
        assert (A @ v).max() > 0


class TestLaplacian27pt:
    def test_paper_dimensions(self):
        A = laplacian_27pt(30)
        assert A.shape == (27000, 27000)
        assert A.nnz == 681472  # Table I: (3n-2)^3

    def test_interior_row_weights(self):
        A = laplacian_27pt(5)
        i = 2 * 25 + 2 * 5 + 2
        row = A.getrow(i).toarray().ravel()
        assert row[i] == 26.0
        offs = np.delete(row, i)
        assert set(np.unique(offs[offs != 0])) == {-1.0}
        assert row.sum() == pytest.approx(0.0)

    def test_symmetric_and_diag_dominant(self):
        A = laplacian_27pt(4)
        assert abs(A - A.T).max() == 0.0
        d = A.diagonal()
        offsum = np.abs(A.toarray()).sum(axis=1) - d
        assert np.all(d >= offsum)  # weak diagonal dominance

    def test_spd(self):
        A = laplacian_27pt(3)
        w = np.linalg.eigvalsh(A.toarray())
        assert w.min() > 0


class TestLaplacian27ptFem:
    def test_face_couplings_cancel(self):
        A = laplacian_27pt_fem(5)
        i = 2 * 25 + 2 * 5 + 2
        # Face neighbour (i +/- 1 in z): the trilinear FEM quirk.
        assert A[i, i + 1] == pytest.approx(0.0, abs=1e-14)

    def test_spd(self):
        A = laplacian_27pt_fem(3)
        w = np.linalg.eigvalsh(A.toarray())
        assert w.min() > 0
