"""Unit tests for repro.linalg.csr."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import (
    as_csr,
    csr_diagonal,
    l1_row_norms,
    lower_triangle,
    partition_rows_by_nnz,
    residual,
    residual_rows,
    row_range_matvec,
    split_diag,
)


class TestAsCsr:
    def test_dense_input(self):
        A = as_csr(np.array([[1.0, 0.0], [2.0, 3.0]]))
        assert sp.issparse(A)
        assert A.nnz == 3

    def test_removes_explicit_zeros(self):
        M = sp.csr_matrix((np.array([0.0, 1.0]), (np.array([0, 1]), np.array([0, 1]))), shape=(2, 2))
        A = as_csr(M)
        assert A.nnz == 1

    def test_sums_duplicates(self):
        M = sp.coo_matrix((np.array([1.0, 2.0]), (np.array([0, 0]), np.array([0, 0]))), shape=(1, 1))
        A = as_csr(M)
        assert A[0, 0] == 3.0

    def test_dtype_promoted(self):
        A = as_csr(sp.identity(3, dtype=np.float32, format="csr"))
        assert A.dtype == np.float64

    def test_copy_flag(self):
        M = sp.identity(3, format="csr")
        A = as_csr(M, copy=True)
        A.data[0] = 5.0
        assert M[0, 0] == 1.0


class TestDiagonal:
    def test_values(self, A_7pt):
        d = csr_diagonal(A_7pt)
        assert np.allclose(d, 6.0)

    def test_zero_diagonal_raises(self):
        M = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError, match="zero diagonal"):
            csr_diagonal(M)

    def test_nonsquare_raises(self):
        M = sp.csr_matrix(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            csr_diagonal(M)


class TestL1RowNorms:
    def test_matches_dense(self, A_7pt):
        expected = np.abs(A_7pt.toarray()).sum(axis=1)
        assert np.allclose(l1_row_norms(A_7pt), expected)

    def test_empty_rows(self):
        M = sp.csr_matrix((3, 3))
        M[0, 0] = 2.0
        assert np.allclose(l1_row_norms(M.tocsr()), [2.0, 0.0, 0.0])

    def test_signs_ignored(self):
        M = sp.csr_matrix(np.array([[1.0, -2.0], [0.0, 3.0]]))
        assert np.allclose(l1_row_norms(M), [3.0, 3.0])


class TestSplitDiag:
    def test_reassembles(self, A_7pt):
        d, R = split_diag(A_7pt)
        assert np.allclose((sp.diags(d) + R - A_7pt).data, 0.0)

    def test_remainder_has_no_diagonal(self, A_7pt):
        _, R = split_diag(A_7pt)
        assert np.allclose(R.diagonal(), 0.0)


class TestLowerTriangle:
    def test_inclusive(self, A_7pt):
        L = lower_triangle(A_7pt)
        dense = np.tril(A_7pt.toarray())
        assert np.allclose(L.toarray(), dense)

    def test_strict(self, A_7pt):
        L = lower_triangle(A_7pt, strict=True)
        dense = np.tril(A_7pt.toarray(), k=-1)
        assert np.allclose(L.toarray(), dense)


class TestPartitionRows:
    def test_covers_all_rows(self, A_7pt):
        ranges = partition_rows_by_nnz(A_7pt, 5)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == A_7pt.shape[0]
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_balances_nnz(self, A_27pt):
        ranges = partition_rows_by_nnz(A_27pt, 4)
        loads = [A_27pt.indptr[b] - A_27pt.indptr[a] for a, b in ranges]
        assert max(loads) < 1.5 * A_27pt.nnz / 4

    def test_more_parts_than_rows(self):
        A = sp.identity(3, format="csr")
        ranges = partition_rows_by_nnz(A, 5)
        assert len(ranges) == 5
        assert ranges[3] == (3, 3)  # empty trailing ranges

    def test_single_part(self, A_7pt):
        assert partition_rows_by_nnz(A_7pt, 1) == [(0, A_7pt.shape[0])]

    def test_invalid_nparts(self, A_7pt):
        with pytest.raises(ValueError):
            partition_rows_by_nnz(A_7pt, 0)


class TestRowRangeMatvec:
    def test_matches_full(self, A_7pt):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(A_7pt.shape[0])
        full = A_7pt @ x
        out = row_range_matvec(A_7pt, x, 10, 100)
        assert np.allclose(out[10:100], full[10:100])
        assert np.allclose(out[:10], 0.0)
        assert np.allclose(out[100:], 0.0)

    def test_empty_range(self, A_7pt):
        x = np.ones(A_7pt.shape[0])
        out = row_range_matvec(A_7pt, x, 5, 5)
        assert np.allclose(out, 0.0)

    def test_into_existing_out(self, A_7pt):
        x = np.ones(A_7pt.shape[0])
        out = np.full(A_7pt.shape[0], -1.0)
        row_range_matvec(A_7pt, x, 0, 3, out=out)
        assert np.allclose(out[3:], -1.0)

    def test_bad_range_raises(self, A_7pt):
        with pytest.raises(ValueError):
            row_range_matvec(A_7pt, np.ones(A_7pt.shape[0]), 10, 5)

    def test_rows_with_empty_row(self):
        A = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 0.0]]))
        out = row_range_matvec(A, np.array([2.0, 3.0]), 0, 2)
        assert np.allclose(out, [2.0, 0.0])


class TestResidual:
    def test_zero_at_solution(self, A_7pt):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(A_7pt.shape[0])
        b = A_7pt @ x
        assert np.allclose(residual(A_7pt, x, b), 0.0)

    def test_residual_rows_slice(self, A_7pt, b_7pt):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(A_7pt.shape[0])
        full = b_7pt - A_7pt @ x
        out = np.zeros(A_7pt.shape[0])
        residual_rows(A_7pt, x, b_7pt, 20, 60, out)
        assert np.allclose(out[20:60], full[20:60])
