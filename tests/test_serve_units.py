"""Unit tests for the serve building blocks (repro.serve):

jobs vocabulary, bounded admission with tenant-fair shedding, and the
per-operator circuit breaker.  Everything here runs with caller-
supplied clocks — no sleeps, no timing sensitivity.
"""

import numpy as np
import pytest

from repro.problems import build_problem
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionQueue,
    CircuitBreaker,
    Job,
    JobResult,
    JobSpec,
    OperatorRef,
    Ticket,
)


@pytest.fixture(scope="module")
def ref():
    return OperatorRef(build_problem("5pt", 6).A)


def make_job(ref, tenant="acme", now=0.0, **kw):
    b = np.ones(ref.n)
    return Job.create(JobSpec(tenant=tenant, operator=ref, b=b, **kw), now=now)


class TestJobSpec:
    def test_validation(self, ref):
        b = np.ones(ref.n)
        with pytest.raises(ValueError):
            JobSpec(tenant="", operator=ref, b=b)
        with pytest.raises(ValueError):
            JobSpec(tenant="a", operator=ref, b=np.ones(ref.n + 1))
        with pytest.raises(ValueError):
            JobSpec(tenant="a", operator=ref, b=np.ones((ref.n, 1)))
        with pytest.raises(ValueError):
            JobSpec(tenant="a", operator=ref, b=b, tol=0.0)
        with pytest.raises(ValueError):
            JobSpec(tenant="a", operator=ref, b=b, tmax=0)
        with pytest.raises(ValueError):
            JobSpec(tenant="a", operator=ref, b=b, deadline_s=0.0)
        with pytest.raises(ValueError):
            JobSpec(tenant="a", operator=ref, b=b, retries=-1)

    def test_deadline_fixed_at_first_admission(self, ref):
        job = make_job(ref, now=10.0, deadline_s=2.5)
        assert job.t_deadline == pytest.approx(12.5)
        assert job.remaining_s(11.0) == pytest.approx(1.5)


class TestOperatorRef:
    def test_fingerprint_covers_matrix_content(self):
        p1 = build_problem("5pt", 6)
        p2 = build_problem("5pt", 6)
        assert OperatorRef(p1.A).fingerprint == OperatorRef(p2.A).fingerprint
        B = p1.A.copy()
        B.data[0] += 1.0
        assert OperatorRef(B).fingerprint != OperatorRef(p1.A).fingerprint

    def test_fingerprint_covers_solver_config(self):
        A = build_problem("5pt", 6).A
        plain = OperatorRef(A)
        weighted = OperatorRef(A, solver_kwargs={"weight": 1.95})
        # Same matrix under two solver configs is two operators: a
        # breaker trip on the poisoned config must not black out the
        # healthy one.
        assert plain.fingerprint != weighted.fingerprint


class TestJobResult:
    def test_status_vocabulary_enforced(self):
        with pytest.raises(ValueError):
            JobResult(job_id=1, tenant="a", status="exploded")

    def test_to_dict_nonfinite_residual_is_none(self):
        res = JobResult(job_id=1, tenant="a", status="failed")
        assert res.to_dict()["rel_residual"] is None
        assert "x" not in res.to_dict()

    def test_make_result_deadline_met(self, ref):
        job = make_job(ref, now=0.0, deadline_s=1.0)
        assert job.make_result("ok", now=0.5).deadline_met
        assert not job.make_result("ok", now=1.5).deadline_met
        # A rejected job never "meets" its SLO.
        assert not job.make_result("rejected", now=0.1).deadline_met


class TestTicket:
    def test_first_completion_wins(self):
        t = Ticket(1)
        first = JobResult(job_id=1, tenant="a", status="ok")
        t.complete(first)
        t.complete(JobResult(job_id=1, tenant="a", status="failed"))
        assert t.result(timeout=1.0) is first

    def test_timeout_returns_none_not_hang(self):
        t = Ticket(2)
        assert not t.done
        assert t.result(timeout=0.01) is None


class TestAdmissionQueue:
    def test_fifo_order(self, ref):
        q = AdmissionQueue(max_depth=8)
        jobs = [make_job(ref) for _ in range(3)]
        for j in jobs:
            assert q.offer(j) == (True, [])
        assert [q.take(timeout=0.01) for _ in range(3)] == jobs

    def test_reject_at_max_depth(self, ref):
        q = AdmissionQueue(max_depth=2)
        assert q.offer(make_job(ref))[0]
        assert q.offer(make_job(ref))[0]
        admitted, shed = q.offer(make_job(ref))
        assert not admitted and shed == []
        assert q.depth() == 2

    def test_sheds_newest_job_of_heaviest_tenant(self, ref):
        q = AdmissionQueue(max_depth=10, high_water=3)
        hogs = [make_job(ref, tenant="hog") for _ in range(3)]
        for j in hogs:
            q.offer(j)
        light = make_job(ref, tenant="light")
        admitted, shed = q.offer(light)
        # The light tenant survives; the hog's newest job is evicted.
        assert admitted
        assert shed == [hogs[-1]]
        assert q.tenant_depths() == {"hog": 2, "light": 1}

    def test_dominating_tenant_sheds_its_own_offer(self, ref):
        q = AdmissionQueue(max_depth=10, high_water=2)
        for _ in range(2):
            q.offer(make_job(ref, tenant="hog"))
        extra = make_job(ref, tenant="hog")
        admitted, shed = q.offer(extra)
        assert not admitted
        assert shed == [extra]
        assert q.depth() == 2

    def test_take_matching_coalesces_one_operator_fifo(self, ref):
        other = OperatorRef(build_problem("5pt", 8).A)
        q = AdmissionQueue(max_depth=16)
        a1 = make_job(ref)
        o1 = Job.create(
            JobSpec(tenant="t", operator=other, b=np.ones(other.n)), now=0.0
        )
        a2 = make_job(ref)
        a3 = make_job(ref)
        for j in (a1, o1, a2, a3):
            q.offer(j)
        got = q.take_matching(ref.fingerprint, limit=2)
        assert got == [a1, a2]  # FIFO among matches, limit respected
        assert q.take(timeout=0.01) is o1  # non-matching job kept in order
        assert q.take(timeout=0.01) is a3

    def test_take_times_out_empty(self, ref):
        q = AdmissionQueue(max_depth=2)
        assert q.take(timeout=0.01) is None

    def test_close_drains_and_rejects_offers(self, ref):
        q = AdmissionQueue(max_depth=4)
        jobs = [make_job(ref) for _ in range(2)]
        for j in jobs:
            q.offer(j)
        assert q.close() == jobs
        assert q.depth() == 0
        assert q.offer(make_job(ref)) == (False, [])

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=4, high_water=5)
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=4, high_water=0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        br = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0)
        br.record_failure("op", now=0.0)
        br.record_failure("op", now=0.1)
        br.record_success("op", now=0.2)  # resets the streak
        br.record_failure("op", now=0.3)
        br.record_failure("op", now=0.4)
        assert br.state("op") == CLOSED
        br.record_failure("op", now=0.5)
        assert br.state("op") == OPEN

    def test_open_fast_fails_until_reset_timeout(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        br.record_failure("op", now=0.0)
        d = br.allow("op", now=0.5)
        assert not d.allowed and d.state == OPEN
        assert br.snapshot()["op"]["fast_fails"] == 1

    def test_half_open_admits_exactly_one_probe(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        br.record_failure("op", now=0.0)
        first = br.allow("op", now=1.5)
        assert first.allowed and first.probe and first.state == HALF_OPEN
        second = br.allow("op", now=1.6)
        assert not second.allowed and second.state == HALF_OPEN

    def test_probe_success_recloses(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        br.record_failure("op", now=0.0)
        assert br.allow("op", now=1.5).probe
        br.record_success("op", now=1.6)
        assert br.state("op") == CLOSED
        assert br.allow("op", now=1.7).allowed
        pairs = [(frm, to) for _, key, frm, to in br.transitions if key == "op"]
        assert pairs == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    def test_probe_failure_reopens_and_restarts_timer(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        br.record_failure("op", now=0.0)
        assert br.allow("op", now=1.5).probe
        br.record_failure("op", now=1.6)
        assert br.state("op") == OPEN
        assert not br.allow("op", now=2.0).allowed  # timer restarted at 1.6
        assert br.allow("op", now=2.7).probe

    def test_abandoned_probe_releases_slot(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        br.record_failure("op", now=0.0)
        assert br.allow("op", now=1.5).probe
        # The probe job ended without an operator-attributable outcome
        # (shed / crash): the slot must not leak.
        br.abandon_probe("op")
        assert br.allow("op", now=1.6).probe

    def test_keys_are_independent(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        br.record_failure("bad", now=0.0)
        assert not br.allow("bad", now=0.1).allowed
        assert br.allow("good", now=0.1).allowed
        assert br.state("good") == CLOSED
