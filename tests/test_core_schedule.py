"""Unit tests for repro.core.schedule."""

import numpy as np
import pytest

from repro.core import ScheduleParams, StalenessSchedule


class TestScheduleParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduleParams(alpha=0.0)
        with pytest.raises(ValueError):
            ScheduleParams(alpha=1.5)
        with pytest.raises(ValueError):
            ScheduleParams(delta=-1)
        with pytest.raises(ValueError):
            ScheduleParams(updates_per_grid=0)

    def test_defaults_match_paper(self):
        p = ScheduleParams()
        assert p.updates_per_grid == 20


class TestStalenessSchedule:
    def test_p_in_range(self):
        s = StalenessSchedule(8, ScheduleParams(alpha=0.3, seed=0))
        assert np.all(s.p >= 0.3) and np.all(s.p <= 1.0)

    def test_alpha_one_always_active(self):
        s = StalenessSchedule(5, ScheduleParams(alpha=1.0, seed=0))
        for t in range(10):
            assert len(s.active_set(t)) == 5
            for k in range(5):
                s.record_update(k) if t < 3 else None
        # (records above keep grids running)

    def test_done_grids_never_reactivate(self):
        s = StalenessSchedule(3, ScheduleParams(alpha=1.0, updates_per_grid=2))
        for _ in range(2):
            for k in range(3):
                s.record_update(k)
        assert s.all_done
        assert len(s.active_set(99)) == 0

    def test_delta_zero_reads_current(self):
        s = StalenessSchedule(4, ScheduleParams(alpha=0.5, delta=0, seed=1))
        for t in range(1, 20):
            assert s.read_instant(0, t) == t

    def test_delta_bounds_read(self):
        s = StalenessSchedule(4, ScheduleParams(alpha=0.5, delta=3, seed=2))
        for t in range(1, 50):
            z = s.read_instant(1, t)
            assert t - 3 <= z <= t

    def test_monotone_reads(self):
        s = StalenessSchedule(2, ScheduleParams(alpha=0.5, delta=10, seed=3))
        last = 0
        for t in range(1, 100):
            z = s.read_instant(0, t)
            assert z >= last
            last = z

    def test_componentwise_reads_in_window(self):
        s = StalenessSchedule(2, ScheduleParams(alpha=0.5, delta=5, seed=4))
        z = s.read_instants(0, 10, 1000)
        assert z.min() >= 5 and z.max() <= 10
        # With 1000 samples over a 6-wide window, staleness must vary.
        assert len(np.unique(z)) > 1

    def test_reproducible(self):
        a = StalenessSchedule(6, ScheduleParams(seed=7))
        b = StalenessSchedule(6, ScheduleParams(seed=7))
        assert np.array_equal(a.p, b.p)

    def test_invalid_ngrids(self):
        with pytest.raises(ValueError):
            StalenessSchedule(0, ScheduleParams())
