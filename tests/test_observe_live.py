"""Tests for the live telemetry layer (repro.observe.live /
alerts / profiler): ring-buffer tail reads, the snapshot collector,
anomaly detectors, OpenMetrics round-trips, the JSONL snapshot stream
and `repro top`, the sampling profiler, and backend integration
(engine bit-identity, threaded mid-run scraping, distributed queue
depth)."""

import json
import math
import os
import socket
import threading
import time
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.core.engine import run_async_engine
from repro.core.threaded import run_threaded
from repro.distributed import simulate_distributed
from repro.observe import Metrics, Tracer, to_chrome_trace
from repro.observe.alerts import (
    Alert,
    DivergenceDetector,
    HeartbeatGapDetector,
    OscillationDetector,
    StagnationDetector,
    StalenessDetector,
    alerts_by_kind,
    default_detectors,
)
from repro.observe.events import (
    ALERT,
    CORRECT_END,
    FAULT,
    GUARD,
    RESIDUAL,
    WRITE,
)
from repro.observe.live import (
    LIVE_WORKER,
    LiveConfig,
    LiveSnapshot,
    MetricsServer,
    SnapshotCollector,
    SnapshotWriter,
    parse_openmetrics,
    read_snapshots_jsonl,
    render_top,
    start_live,
    to_openmetrics,
)
from repro.observe.metrics import diff_snapshots
from repro.observe.profiler import KERNELS_PATH_FRAGMENT, SamplingProfiler
from repro.observe.tracer import TraceBuffer
from repro.resilience import FaultPlan, StallFault
from repro.solvers import Multadd


@pytest.fixture(scope="module")
def solver(hier_7pt_agg):
    return Multadd(hier_7pt_agg, smoother="jacobi", weight=0.9)


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _scrape(port: int, timeout: float = 2.0) -> str:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=timeout
    ) as resp:
        assert resp.status == 200
        assert resp.headers["Content-Type"].startswith("application/openmetrics-text")
        return resp.read().decode("utf-8")


class TestTailAPI:
    def test_position_and_tail_in_order(self):
        buf = TraceBuffer("w", capacity=8)
        for i in range(3):
            buf.record(float(i), CORRECT_END, 0, a=float(i))
        pos, recs = buf.tail(0)
        assert pos == 3
        assert [r[0] for r in recs] == [0.0, 1.0, 2.0]
        pos2, recs2 = buf.tail(pos)
        assert pos2 == pos and recs2 == []

    def test_tail_wraparound_returns_newest(self):
        buf = TraceBuffer("w", capacity=4)
        for i in range(10):
            buf.record(float(i), CORRECT_END, 0)
        assert buf.position() == 10
        pos, recs = buf.tail(0)
        # Only the 4 newest survive the ring; they come back in order.
        assert pos == 10
        assert [r[0] for r in recs] == [6.0, 7.0, 8.0, 9.0]

    def test_tail_incremental_across_wrap(self):
        buf = TraceBuffer("w", capacity=4)
        for i in range(3):
            buf.record(float(i), CORRECT_END, 0)
        cursor, recs = buf.tail(0)
        assert [r[0] for r in recs] == [0.0, 1.0, 2.0]
        for i in range(3, 6):
            buf.record(float(i), CORRECT_END, 0)
        cursor, recs = buf.tail(cursor)
        assert [r[0] for r in recs] == [3.0, 4.0, 5.0]
        assert cursor == 6


def make_collector(**kw):
    tracer = Tracer(clock="steps")
    kw.setdefault("detectors", [])
    kw.setdefault("interval_s", 0.05)
    coll = SnapshotCollector(tracer, backend="engine", **kw)
    return tracer, coll


class TestSnapshotCollector:
    def test_ingests_core_event_kinds(self):
        tracer, coll = make_collector()
        tracer.record(CORRECT_END, 0, 1.0, a=5.0, b=1.0, worker=0)
        tracer.record(CORRECT_END, 1, 2.0, a=3.0, b=2.0, worker=1)
        tracer.record(RESIDUAL, -1, 2.0, a=0.125, tag="global", worker=0)
        tracer.record(WRITE, 0, 2.0, a=0.25, worker=0)
        tracer.record(GUARD, 0, 2.0, tag="restart", worker=0)
        tracer.record(FAULT, 1, 2.0, tag="crash", worker=1)
        snap = coll.collect_once()
        assert snap.residual == 0.125 and snap.residual_tag == "global"
        assert snap.corrections == {0: 5.0, 1: 3.0}
        assert snap.corrections_total == 8.0
        assert snap.staleness_max == 2.0
        assert snap.lock_wait_total == 0.25
        assert snap.guard_counts == {"restart": 1}
        assert snap.fault_counts == {"crash": 1}
        assert snap.workers == 2
        assert snap.events_seen == 6
        assert snap.t_event == 2.0

    def test_local_residual_never_displaces_global(self):
        tracer, coll = make_collector()
        tracer.record(RESIDUAL, -1, 1.0, a=0.5, tag="global", worker=0)
        tracer.record(RESIDUAL, 0, 2.0, a=9.9, tag="local", worker=1)
        snap = coll.collect_once()
        assert snap.residual == 0.5 and snap.residual_tag == "global"

    def test_live_worker_buffer_excluded(self):
        tracer, coll = make_collector()
        tracer.record(RESIDUAL, -1, 1.0, a=0.5, tag="global", worker=LIVE_WORKER)
        snap = coll.collect_once()
        assert snap.events_seen == 0
        assert math.isnan(snap.residual)

    def test_corrections_fold_forward_across_collects(self):
        tracer, coll = make_collector()
        tracer.record(CORRECT_END, 0, 1.0, a=1.0, worker=0)
        s1 = coll.collect_once()
        tracer.record(CORRECT_END, 0, 2.0, a=2.0, worker=0)
        s2 = coll.collect_once()
        assert s1.corrections == {0: 1.0}
        assert s2.corrections == {0: 2.0}
        assert s2.seq == s1.seq + 1
        assert s2.events_seen == 2

    def test_alert_recorded_as_trace_event_and_counter(self):
        class AlwaysFire(StagnationDetector):
            def update(self, snap):
                return [
                    Alert(
                        kind="stagnation",
                        t_wall=snap.t_wall,
                        t_event=snap.t_event,
                        value=1.0,
                        threshold=0.5,
                        message="synthetic",
                    )
                ]

        seen = []
        tracer, coll = make_collector(
            detectors=[AlwaysFire()], on_alert=seen.append
        )
        tracer.record(RESIDUAL, -1, 1.0, a=1.0, tag="global", worker=0)
        snap = coll.collect_once()
        assert snap.alert_counts == {"stagnation": 1}
        assert "stagnation" in snap.last_alert
        assert len(seen) == 1 and seen[0].kind == "stagnation"
        events = [e for e in tracer.events() if e.kind == ALERT]
        assert len(events) == 1
        assert events[0].worker == LIVE_WORKER and events[0].tag == "stagnation"
        flat = tracer.metrics.flatten()
        assert flat.get("alerts.stagnation") == 1.0

    def test_queue_depth_and_membership_hooks(self):
        tracer, coll = make_collector()
        coll.queue_depth_fn = lambda: 7.0
        coll.membership_fn = lambda: {"up": 3, "down": 1}
        snap = coll.collect_once()
        assert snap.queue_depth == 7.0
        assert snap.membership == {"up": 3, "down": 1}

    def test_background_thread_collects_on_cadence(self):
        tracer, coll = make_collector(interval_s=0.01)
        tracer.record(RESIDUAL, -1, 1.0, a=0.5, tag="global", worker=0)
        coll.start()
        deadline = time.perf_counter() + 3.0
        while not coll.history and time.perf_counter() < deadline:
            time.sleep(0.01)
        coll.stop()
        assert coll.history
        assert coll.history[-1].residual == 0.5


def _snap(res, t=0.0, **kw):
    return LiveSnapshot(residual=res, t_event=t, residual_tag="global", **kw)


class TestDetectors:
    def test_stagnation_fires_on_flat_series_only(self):
        det = StagnationDetector(window=4, min_improvement=0.01)
        fired = []
        for i in range(6):
            fired += det.update(_snap(1.0, t=float(i)))
        assert fired and fired[0].kind == "stagnation"

        det = StagnationDetector(window=4, min_improvement=0.01)
        fired = []
        for i in range(6):
            fired += det.update(_snap(1.0 * 0.5**i, t=float(i)))
        assert not fired

    def test_divergence_fires_on_growth(self):
        det = DivergenceDetector(window=4, growth_factor=10.0)
        fired = []
        for i, r in enumerate([1.0, 2.0, 5.0, 20.0]):
            fired += det.update(_snap(r, t=float(i)))
        assert fired and fired[0].kind == "divergence"
        assert fired[0].severity == "critical"

    def test_oscillation_fires_on_alternation(self):
        det = OscillationDetector(window=6, min_flips=3, min_amplitude=0.05)
        series = [1.0, 2.0, 1.0, 2.0, 1.0, 2.0]
        fired = []
        for i, r in enumerate(series):
            fired += det.update(_snap(r, t=float(i)))
        assert fired and fired[0].kind == "oscillation"

    def test_stale_snapshot_is_not_a_fresh_sample(self):
        # The same (t_event, residual) reading repeated (solver quiet,
        # collector still ticking) must not fill the window.
        det = StagnationDetector(window=4, min_improvement=0.01)
        fired = []
        for _ in range(10):
            fired += det.update(_snap(1.0, t=1.0))
        assert not fired

    def test_cooldown_suppresses_refiring(self):
        det = StagnationDetector(window=3, min_improvement=0.01, cooldown=100)
        fired = []
        for i in range(20):
            fired += det.update(_snap(1.0, t=float(i)))
        assert len(fired) == 1

    def test_staleness_detector_fires_past_bound_and_rearms_on_growth(self):
        det = StalenessDetector(delta=4.0, factor=1.0, cooldown=0)
        assert not det.update(LiveSnapshot(staleness_max=3.0))
        first = det.update(LiveSnapshot(staleness_max=6.0))
        assert first and first[0].kind == "staleness_spike"
        # Same maximum again: already reported, stays quiet.
        assert not det.update(LiveSnapshot(staleness_max=6.0))
        again = det.update(LiveSnapshot(staleness_max=9.0))
        assert again

    def test_heartbeat_gap_flags_quiet_worker_once(self):
        det = HeartbeatGapDetector(factor=3.0, min_gap_s=0.1, cooldown=0)
        snap = LiveSnapshot(
            heartbeat_age={0: 5.0, 1: 0.01, 2: 0.02},
            worker_grids={0: 0, 1: 1, 2: 2},
            workers=3,
        )
        fired = det.update(snap)
        assert len(fired) == 1 and fired[0].kind == "heartbeat_gap"
        assert not det.update(snap)  # same quiet spell: no re-fire
        # Worker resumes, then goes quiet again: the alarm re-arms.
        det.update(
            LiveSnapshot(
                heartbeat_age={0: 0.01, 1: 0.01, 2: 0.02},
                worker_grids={0: 0, 1: 1, 2: 2},
                workers=3,
            )
        )
        assert det.update(snap)

    def test_default_panel_and_census(self):
        dets = default_detectors()
        kinds = {d.kind for d in dets}
        assert kinds == {"stagnation", "divergence", "oscillation", "heartbeat_gap"}
        dets = default_detectors(delta=8.0)
        assert any(d.kind == "staleness_spike" for d in dets)
        alerts = [
            Alert(kind="stagnation", t_wall=0, t_event=0, value=0, threshold=0,
                  message=""),
            Alert(kind="stagnation", t_wall=1, t_event=0, value=0, threshold=0,
                  message=""),
            Alert(kind="divergence", t_wall=2, t_event=0, value=0, threshold=0,
                  message=""),
        ]
        assert alerts_by_kind(alerts) == {"stagnation": 2, "divergence": 1}


class TestOpenMetrics:
    def _snapshot(self):
        tracer, coll = make_collector()
        tracer.record(RESIDUAL, -1, 3.0, a=0.25, tag="global", worker=0)
        tracer.record(CORRECT_END, 0, 1.0, a=4.0, worker=0)
        tracer.record(CORRECT_END, 1, 2.0, a=2.0, b=1.5, worker=1)
        tracer.record(GUARD, 0, 2.5, tag="restart", worker=0)
        return coll.collect_once()

    def test_round_trip(self):
        text = to_openmetrics(self._snapshot())
        assert text.rstrip().endswith("# EOF")
        parsed = parse_openmetrics(text)
        assert parsed[("repro_residual", (("view", "global"),))] == 0.25
        assert parsed[("repro_corrections_total", (("grid", "0"),))] == 4.0
        assert parsed[("repro_corrections_total", (("grid", "1"),))] == 2.0
        assert parsed[("repro_events_total", ())] == 4.0
        assert parsed[("repro_workers", ())] == 2.0
        assert parsed[("repro_staleness_max", ())] == 1.5
        assert parsed[("repro_guard_actions_total", (("action", "restart"),))] == 1.0

    def test_rejects_missing_eof(self):
        text = to_openmetrics(self._snapshot())
        body = text[: text.rindex("# EOF")]
        with pytest.raises(ValueError):
            parse_openmetrics(body)

    def test_rejects_samples_after_eof(self):
        text = to_openmetrics(self._snapshot())
        with pytest.raises(ValueError):
            parse_openmetrics(text + "\nrepro_workers 3\n")

    def test_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            parse_openmetrics("not a metric line at all!\n# EOF\n")

    def test_queue_depth_omitted_when_nan(self):
        snap = self._snapshot()
        text = to_openmetrics(snap)
        assert "repro_queue_depth" not in text
        snap.queue_depth = 12.0
        text = to_openmetrics(snap)
        assert parse_openmetrics(text)[("repro_queue_depth", ())] == 12.0

    def test_server_serves_fresh_collect_per_scrape(self):
        tracer, coll = make_collector()
        tracer.record(RESIDUAL, -1, 1.0, a=0.5, tag="global", worker=0)
        server = MetricsServer(coll, port=0)
        server.start()
        try:
            first = parse_openmetrics(_scrape(server.port))
            assert first[("repro_residual", (("view", "global"),))] == 0.5
            # Progress lands between scrapes; the next GET must see it.
            tracer.record(RESIDUAL, -1, 2.0, a=0.05, tag="global", worker=0)
            second = parse_openmetrics(_scrape(server.port))
            assert second[("repro_residual", (("view", "global"),))] == 0.05
            assert second[("repro_snapshot_seq", ())] > first[
                ("repro_snapshot_seq", ())
            ]
        finally:
            server.stop()

    def test_stalled_collect_returns_503_promptly(self):
        tracer, coll = make_collector()
        release = threading.Event()
        real_collect = coll.collect_once

        def wedged_collect():
            release.wait(timeout=30.0)
            return real_collect()

        coll.collect_once = wedged_collect
        server = MetricsServer(coll, port=0, collect_timeout_s=0.2)
        server.start()
        try:
            t0 = time.perf_counter()
            with pytest.raises(urllib.error.HTTPError) as err:
                _scrape(server.port, timeout=10.0)
            elapsed = time.perf_counter() - t0
            # A wedged provider must 503 promptly — never a scrape
            # that hangs until the monitoring system gives up.
            assert err.value.code == 503
            assert b"stalled" in err.value.read()
            assert err.value.headers["Retry-After"] == "1"
            assert elapsed < 5.0
            # Unwedge: the very next scrape serves a real exposition.
            release.set()
            coll.collect_once = real_collect
            body = _scrape(server.port)
            assert ("repro_snapshot_seq", ()) in parse_openmetrics(body)
        finally:
            server.stop()

    def test_collect_timeout_validated(self):
        _, coll = make_collector()
        with pytest.raises(ValueError):
            MetricsServer(coll, port=0, collect_timeout_s=0.0)


class TestSnapshotStream:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        writer = SnapshotWriter(path, backend="engine", clock="steps")
        writer.write(LiveSnapshot(seq=0, residual=0.5, corrections={0: 2.0}))
        writer.write(LiveSnapshot(seq=1, residual=float("nan"), queue_depth=3.0))
        writer.close()
        meta, snaps = read_snapshots_jsonl(path)
        assert meta["backend"] == "engine" and meta["clock"] == "steps"
        assert len(snaps) == 2
        assert snaps[0].residual == 0.5 and snaps[0].corrections == {0: 2.0}
        assert math.isnan(snaps[1].residual) and snaps[1].queue_depth == 3.0

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        writer = SnapshotWriter(path, backend="engine", clock="steps")
        writer.write(LiveSnapshot(seq=0, residual=0.5))
        writer.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 1, "residual"')  # interrupted write
        meta, snaps = read_snapshots_jsonl(path)
        assert len(snaps) == 1 and snaps[0].seq == 0

    def test_render_top_panel(self):
        meta = {"backend": "threaded", "clock": "s"}
        snaps = [
            LiveSnapshot(seq=0, residual=1.0, residual_tag="global"),
            LiveSnapshot(
                seq=1,
                t_wall=0.2,
                residual=0.01,
                residual_tag="global",
                corrections={0: 10.0, 1: 4.0},
                workers=2,
                alert_counts={"stagnation": 1},
                last_alert="stagnation: flat",
                membership={"up": 3},
            ),
        ]
        panel = render_top(meta, snaps)
        assert "repro top" in panel and "backend=threaded" in panel
        assert "1.000e-02" in panel
        assert "grid 0" in panel and "grid 1" in panel
        assert "stagnation" in panel
        assert "up" in panel


class TestMetricsSatellite:
    def test_collect_tolerates_raising_provider(self):
        m = Metrics()
        m.counter("good").inc(2)
        m.register_provider("boom", lambda: (_ for _ in ()).throw(RuntimeError()))
        m.register_provider("fine", lambda: {"v": 1.0})
        flat = m.flatten()  # one collect() under the hood
        assert flat["good"] == 2.0
        assert flat["fine.v"] == 1.0
        assert flat["collect_errors"] == 1.0
        snap = m.collect()
        assert "boom" not in snap["providers"]
        assert "fine" in snap["providers"]

    def test_diff_snapshots_rates_and_clamp(self):
        old = {"a": 10.0, "b": 5.0}
        new = {"a": 30.0, "b": 3.0, "c": 4.0}
        d = diff_snapshots(old, new, dt=2.0)
        assert d["a"] == 10.0  # (30-10)/2
        assert d["b"] == 0.0  # counter reset clamps to zero
        assert d["c"] == 2.0


class TestProfiler:
    def _kernel_frame_fn(self, event):
        # Compile a spin loop whose co_filename lives under
        # repro/kernels/ so attribution is deterministic.
        fake = os.sep + KERNELS_PATH_FRAGMENT + "fake_kernel.py"
        src = (
            "def _fake_relax(event):\n"
            "    while not event.is_set():\n"
            "        pass\n"
        )
        ns = {}
        exec(compile(src, fake, "exec"), ns)
        return ns["_fake_relax"]

    def test_attributes_registered_thread_to_kernel(self):
        tracer = Tracer(clock="s")
        done = threading.Event()
        fn = self._kernel_frame_fn(done)

        def worker():
            tracer.register_worker(grid=2, worker=7)
            fn(done)

        t = threading.Thread(target=worker, daemon=True)
        t.start()
        prof = SamplingProfiler(tracer, interval_s=0.005)
        try:
            deadline = time.perf_counter() + 3.0
            hit = False
            while time.perf_counter() < deadline and not hit:
                prof.sample_once()
                hit = ("fake_relax", 2, 7) in prof.report.counts
                time.sleep(0.002)
        finally:
            done.set()
            t.join(timeout=2.0)
        assert hit
        report = prof.stop()
        rows = report.rows()
        assert rows[0]["kernel"] == "fake_relax"
        assert rows[0]["grid"] == 2 and rows[0]["worker"] == 7
        assert 0.0 < float(rows[0]["share"]) <= 1.0
        assert "fake_relax" in report.table()
        counters = report.chrome_counter_events()
        assert counters and counters[0]["ph"] == "C"
        assert report.to_dict()["samples"] == report.samples

    def test_unregistered_threads_fall_back_to_main(self):
        # With an empty worker registry (the engine case) the sampler
        # attributes the main thread as worker "main".
        tracer = Tracer(clock="s")
        prof = SamplingProfiler(tracer, interval_s=0.002)
        prof.start()
        deadline = time.perf_counter() + 3.0
        while not prof.report.counts and time.perf_counter() < deadline:
            time.sleep(0.005)
        report = prof.stop()
        assert report.counts
        assert all(k[2] == "main" for k in report.counts)

    def test_empty_report_renders(self):
        tracer = Tracer(clock="s")
        prof = SamplingProfiler(tracer, interval_s=0.005)
        assert prof.stop().table() == "(no profile samples)"


class TestChromeTraceAlerts:
    def test_alert_becomes_instant_event(self):
        tracer = Tracer(clock="s")
        tracer.record(RESIDUAL, -1, 0.1, a=1.0, tag="global", worker=0)
        tracer.record(
            ALERT, -1, 0.2, a=1.0, b=0.5, tag="stagnation", worker=LIVE_WORKER
        )
        doc = to_chrome_trace(tracer.events(), clock="s")
        blob = json.dumps(doc)
        reimported = json.loads(blob)
        instants = [
            e for e in reimported["traceEvents"]
            if e.get("ph") == "i" and "alert" in e.get("name", "")
        ]
        assert instants
        assert tracer.summary().alerts == 1


class TestEngineLive:
    def test_live_summary_attached_and_bit_identical(self, solver, b_7pt):
        base = run_async_engine(solver, b_7pt, tmax=6, seed=3)
        cfg = LiveConfig(interval_s=0.01)
        live = run_async_engine(solver, b_7pt, tmax=6, seed=3, live=cfg)
        assert base.live_summary is None
        assert live.live_summary is not None
        assert len(live.live_summary.snapshots) >= 1
        assert (live.x == base.x).all()
        assert live.rel_residual == base.rel_residual

    def test_snapshot_stream_written(self, solver, b_7pt, tmp_path):
        path = str(tmp_path / "engine.jsonl")
        cfg = LiveConfig(interval_s=0.01, snapshot_path=path)
        run_async_engine(solver, b_7pt, tmax=6, seed=3, live=cfg)
        meta, snaps = read_snapshots_jsonl(path)
        assert meta["backend"] == "engine" and meta["clock"] == "steps"
        assert snaps and snaps[-1].corrections_total > 0


class TestThreadedLive:
    def test_mid_run_scrapes_show_decreasing_residual(self, solver, b_7pt):
        # Stall the finest grid so the run lasts long enough to scrape
        # while the other grids keep correcting.
        port = _free_port()
        faults = FaultPlan(stalls=(StallFault(grid=0, after=1, duration=1.0),))
        cfg = LiveConfig(interval_s=0.05, metrics_port=port)
        box = {}

        def run():
            box["res"] = run_threaded(solver, b_7pt, tmax=8, faults=faults, live=cfg)

        t = threading.Thread(target=run)
        t.start()
        readings = []
        deadline = time.perf_counter() + 30.0
        try:
            while t.is_alive() and time.perf_counter() < deadline:
                try:
                    parsed = parse_openmetrics(_scrape(port, timeout=0.5))
                except (OSError, ValueError):
                    time.sleep(0.02)
                    continue
                val = parsed.get(("repro_residual", (("view", "global"),)))
                if val is not None:
                    readings.append(val)
                time.sleep(0.05)
        finally:
            t.join(timeout=60.0)
        assert not t.is_alive()
        res = box["res"]
        assert res.live_summary is not None
        assert res.live_summary.metrics_port == port
        assert len(res.live_summary.snapshots) >= 2
        # At least two successful scrapes, and the residual went down.
        assert len(readings) >= 2
        assert min(readings[1:]) < readings[0]

    def test_alert_stop_aborts_as_stalled(self, hier_7pt_agg, b_7pt):
        # A near-zero Jacobi weight makes no progress: the residual
        # sits flat forever, so the stagnation detector must catch it
        # live and abort the run through the stop callback — long
        # before the 100k-corrections budget is spent.
        bad = Multadd(hier_7pt_agg, smoother="jacobi", weight=1e-9)
        cfg = LiveConfig(
            interval_s=0.02,
            detectors=[
                StagnationDetector(window=3, min_improvement=0.01),
                DivergenceDetector(window=3, growth_factor=10.0),
            ],
            alert_stop=frozenset({"stagnation", "divergence"}),
        )
        res = run_threaded(
            bad, b_7pt, tmax=100_000, live=cfg, timeout=60.0,
            divergence_threshold=1e300,
        )
        assert res.live_summary is not None
        assert res.live_summary.aborted_by == "stagnation"
        assert any(a.kind == "stagnation" for a in res.live_summary.alerts)
        assert res.stalled and not res.diverged
        assert res.telemetry.alert_stops >= 1


class TestDistributedLive:
    def test_queue_depth_and_summary(self, solver, b_7pt):
        cfg = LiveConfig(interval_s=0.01)
        res = simulate_distributed(
            solver, b_7pt, tmax=6, seed=3, nthreads_total=8, live=cfg
        )
        assert res.live_summary is not None
        snaps = res.live_summary.snapshots
        assert len(snaps) >= 1
        # The queue-depth hook reports a real (non-NaN) number, and the
        # snapshots carry the simulator's virtual clock.
        assert not math.isnan(snaps[-1].queue_depth)
        assert snaps[-1].clock == "sim"


class TestCliLive:
    def test_solve_live_writes_snapshots_and_top_replays(self, tmp_path, capsys):
        path = str(tmp_path / "cli.jsonl")
        rc = cli_main(
            [
                "solve", "--set", "7pt", "--size", "16", "--run-async",
                "--backend", "threaded", "--tmax", "10",
                "--live", "--snapshots", path, "--snapshot-interval", "0.02",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "live:" in out and "snapshot" in out
        meta, snaps = read_snapshots_jsonl(path)
        assert snaps

        rc = cli_main(["top", path, "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro top" in out and "backend=threaded" in out

    def test_live_requires_run_async(self, capsys):
        rc = cli_main(["solve", "--set", "7pt", "--size", "8", "--live"])
        assert rc == 2
        assert "--run-async" in capsys.readouterr().err

    def test_top_missing_file_errors(self, tmp_path, capsys):
        rc = cli_main(["top", str(tmp_path / "nope.jsonl"), "--once"])
        assert rc == 2


def test_start_live_claims_live_buffer_and_summarizes():
    tracer = Tracer(clock="s")
    cfg = LiveConfig(interval_s=0.05)
    session = start_live(cfg, tracer, backend="threaded")
    assert LIVE_WORKER in tracer.buffers()
    summary = session.finish()
    assert len(summary.snapshots) >= 1  # stop() takes a final collect
    assert summary.oneline().startswith("live:")
