"""Toward distributed memory: per-grid read latencies.

The paper closes by arguing that the global-res approach is the natural
distributed-memory formulation.  In distributed memory, staleness is no
longer a uniform shared-memory bound: each grid (process) sees data
delayed by its own network distance.  This example uses the model
machinery's per-grid maximum read delays (``delta_by_grid``) to study
that regime: the fine grid is local (fresh reads) while coarser grids
live "further away" (increasingly stale reads), and vice versa.

Run:  python examples/distributed_latency.py [grid_length]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Multadd, SetupOptions, build_problem, setup_hierarchy
from repro.core import ScheduleParams, simulate_full_async_residual
from repro.utils import format_table, spawn_seeds


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    runs = 3
    p = build_problem("27pt", n, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1))
    solver = Multadd(h, smoother="jacobi", weight=0.9)
    ng = solver.ngrids
    print(f"27pt grid length {n}: {p.n} rows, {ng} grids\n")

    scenarios = {
        "uniform fresh (delta=0)": np.zeros(ng, dtype=int),
        "uniform lag (delta=2)": np.full(ng, 2),
        "coarse grids remote": np.arange(ng),  # grid k lags by k
        "fine grid remote": np.arange(ng)[::-1].copy(),
    }
    rows = []
    for label, deltas in scenarios.items():
        vals = []
        for s in spawn_seeds(hash(label) % 2**31, runs):
            res = simulate_full_async_residual(
                solver,
                p.b,
                ScheduleParams(alpha=0.5, updates_per_grid=20, seed=s),
                delta_by_grid=deltas,
            )
            vals.append(res.rel_residual)
        rows.append([label, " ".join(map(str, deltas)), float(np.mean(vals))])

    print(
        format_table(
            ["scenario", "delta per grid", "mean relres(20)"],
            rows,
            title="distributed-latency study (residual-based full-async)",
        )
    )
    print(
        "\nReading: staleness on the *fine* grid (which owns the strongest\n"
        "corrections) hurts more than the same staleness on coarse grids —\n"
        "guidance for placing grids across a distributed machine."
    )


if __name__ == "__main__":
    main()
