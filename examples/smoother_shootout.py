"""Smoother shootout — the paper's four smoothers plus one extension.

Compares omega-Jacobi, l1-Jacobi, hybrid Jacobi-Gauss-Seidel,
asynchronous Gauss-Seidel, and (our extension) a Chebyshev polynomial
smoother, each inside Multadd run both synchronously and asynchronously.
The paper's finding to look for: async GS needs the fewest V-cycles,
even at one sweep; l1-Jacobi is the most damped/slowest.

Run:  python examples/smoother_shootout.py [grid_length]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Multadd, SetupOptions, build_problem, setup_hierarchy
from repro.core import run_async_engine
from repro.utils import format_table, spawn_seeds

SMOOTHERS = (
    ("omega-Jacobi (.9)", "jacobi", {"weight": 0.9}),
    ("l1-Jacobi", "l1_jacobi", {}),
    ("hybrid JGS", "hybrid_jgs", {"nblocks": 8}),
    ("async GS", "async_gs", {"nblocks": 8, "lambda_mode": "sweep"}),
    ("Chebyshev(3) [ext]", "chebyshev", {"degree": 3, "lambda_mode": "minv"}),
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    runs = 3
    tmax = 20
    p = build_problem("27pt", n, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1))
    print(f"27pt grid length {n}: {p.n} rows, {h.nlevels} levels\n")

    rows = []
    for label, name, kw in SMOOTHERS:
        solver = Multadd(h, smoother=name, **kw)
        sync = solver.solve(p.b, tmax=tmax)
        async_vals = []
        diverged = False
        for s in spawn_seeds(hash(label) % 2**31, runs):
            res = run_async_engine(
                solver,
                p.b,
                tmax=tmax,
                rescomp="local",
                write="lock",
                criterion="criterion2",
                alpha=0.5,
                seed=s,
            )
            if res.diverged:
                diverged = True
                break
            async_vals.append(res.rel_residual)
        rows.append(
            [
                label,
                None if sync.diverged else sync.final_relres,
                None if diverged else float(np.mean(async_vals)),
            ]
        )

    print(
        format_table(
            ["smoother", f"sync relres({tmax})", f"async relres({tmax})"],
            rows,
            title="Multadd smoother shootout (one sweep each)",
        )
    )
    print(
        "\nPaper's Table-I finding: async GS gives the fastest convergence\n"
        "per cycle of the four paper smoothers; l1-Jacobi is the slowest\n"
        "(and the + dagger marks a divergent combination)."
    )


if __name__ == "__main__":
    main()
