"""Reproduce the Section-III model study interactively (Figs. 1 & 2).

Sweeps the minimum update probability (semi-async) and the maximum read
delay (full-async, both solution- and residual-based) on one problem
and prints the resulting convergence ladders — the quickest way to see
what "asynchronous multigrid" means operationally: staleness costs
accuracy per cycle, never grid-size-independence.

Run:  python examples/async_model_study.py [grid_length]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Multadd, SetupOptions, build_problem, setup_hierarchy
from repro.core import (
    ScheduleParams,
    simulate_full_async_residual,
    simulate_full_async_solution,
    simulate_semi_async,
)
from repro.utils import format_table, spawn_seeds


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    runs = 3
    p = build_problem("27pt", n, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1))
    solver = Multadd(h, smoother="jacobi", weight=0.9)
    sync = solver.solve(p.b, tmax=20).final_relres
    print(f"27pt grid length {n}: {p.n} rows, {h.nlevels} levels")
    print(f"synchronous Multadd after 20 cycles: {sync:.3e}\n")

    # --- Fig 1: alpha ladder (semi-async, delta = 0) -----------------
    rows = []
    for alpha in (0.1, 0.3, 0.5, 0.7, 0.9):
        vals = [
            simulate_semi_async(
                solver, p.b, ScheduleParams(alpha=alpha, delta=0, seed=s)
            ).rel_residual
            for s in spawn_seeds(int(alpha * 100), runs)
        ]
        rows.append([alpha, float(np.mean(vals)), float(np.mean(vals)) / sync])
    print(
        format_table(
            ["alpha", "mean relres", "vs sync"],
            rows,
            title="semi-async (Eq. 6): update-probability ladder",
        )
    )

    # --- Fig 2: delta ladder (full-async, alpha = 0.1) ---------------
    rows = []
    for delta in (0, 2, 4, 8, 16):
        sol = [
            simulate_full_async_solution(
                solver, p.b, ScheduleParams(alpha=0.1, delta=delta, seed=s)
            ).rel_residual
            for s in spawn_seeds(1000 + delta, runs)
        ]
        res = [
            simulate_full_async_residual(
                solver, p.b, ScheduleParams(alpha=0.1, delta=delta, seed=s)
            ).rel_residual
            for s in spawn_seeds(2000 + delta, runs)
        ]
        rows.append([delta, float(np.mean(sol)), float(np.mean(res))])
    print()
    print(
        format_table(
            ["delta", "solution-based", "residual-based"],
            rows,
            title="full-async (Eqs. 7/10): read-delay ladder (alpha=0.1)",
        )
    )
    print(
        "\nThe paper's observation to look for: the residual-based column\n"
        "degrades more gracefully than the solution-based one as delta grows."
    )


if __name__ == "__main__":
    main()
