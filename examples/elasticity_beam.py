"""Asynchronous multigrid on the hard case: multi-material elasticity.

Builds the paper's ``MFEM Elasticity`` substitute — a clamped cantilever
beam with two materials (10x stiffness contrast) discretized with P1
tetrahedra — and shows what the paper's Table I shows: elasticity is
where classical-AMG-based multigrid struggles (six rigid-body modes,
classical interpolation only captures constants), asynchronous Multadd
still converges with local-res, and global-res falls over entirely
(the dagger rows of Table I's elasticity block).

Run:  python examples/elasticity_beam.py [nx]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Multadd, MultiplicativeMultigrid, SetupOptions, setup_hierarchy
from repro.core import run_async_engine
from repro.problems import random_rhs
from repro.problems.fem import elasticity_cantilever
from repro.utils import format_table


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    section = max(2, nx // 3)
    A, mesh, free = elasticity_cantilever(
        nx, section, section, youngs_by_material=(1.0, 10.0), return_mesh=True
    )
    b = random_rhs(A.shape[0], seed=0)
    print(
        f"cantilever {nx}x{section}x{section}: {A.shape[0]} dofs, "
        f"{A.nnz} nonzeros, {len(np.unique(mesh.material))} materials"
    )

    # Elasticity needs the absolute-value strength norm (off-diagonals
    # change sign) and benefits from gentler coarsening.
    h = setup_hierarchy(
        A,
        SetupOptions(coarsen_type="hmis", aggressive_levels=0, strength_norm="abs"),
    )
    print(h.summary())

    tmax = 40
    rows = []

    mult = MultiplicativeMultigrid(h, smoother="jacobi", weight=0.5)
    r = mult.solve(b, tmax=tmax)
    rows.append(["sync Mult (omega-Jacobi .5)", r.final_relres, r.diverged])

    madd = Multadd(h, smoother="jacobi", weight=0.5)
    r = madd.solve(b, tmax=tmax)
    rows.append(["sync Multadd", r.final_relres, r.diverged])

    for rescomp in ("local", "global"):
        res = run_async_engine(
            madd,
            b,
            tmax=tmax,
            rescomp=rescomp,
            write="lock",
            criterion="criterion2",
            alpha=0.5,
            seed=0,
        )
        rows.append([f"async Multadd ({rescomp}-res)", res.rel_residual, res.diverged])

    hj = Multadd(h, smoother="hybrid_jgs", nblocks=8)
    r = hj.solve(b, tmax=tmax)
    rows.append(["sync Multadd (hybrid JGS)", r.final_relres, r.diverged])

    print()
    print(
        format_table(
            ["method", f"relres after {tmax} cycles", "diverged"],
            rows,
            title="Elasticity: the paper's hard test set",
        )
    )
    print(
        "\nExpected shape (Table I, elasticity block): local-res converges,\n"
        "global-res diverges or stalls; convergence is much slower than on\n"
        "the Laplace sets at the same cycle count."
    )


if __name__ == "__main__":
    main()
