"""Residual-vs-wall-clock curves from real threaded runs.

The paper measures "wall-clock time to tolerance" by running each
method for increasing cycle counts and timestamping the residual.  Our
threaded executor can do better: a monitor thread samples the true
relative residual while the asynchronous workers run, producing a
continuous residual-vs-time curve in one run — rendered here as an
ASCII semilog plot, with the per-process activity timeline of the
distributed simulator alongside (no aligned columns = no barriers:
you can *see* the asynchrony).

Run:  python examples/residual_vs_time.py [grid_length]
"""

from __future__ import annotations

import sys


from repro import Multadd, SetupOptions, build_problem, setup_hierarchy
from repro.core import run_threaded
from repro.core.perfmodel import MachineParams
from repro.distributed import simulate_distributed
from repro.utils import ascii_semilogy, ascii_timeline


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    p = build_problem("7pt", n, rhs_seed=0)
    h = setup_hierarchy(p.A, SetupOptions(coarsen_type="hmis", aggressive_levels=1))
    ma = Multadd(h, smoother="jacobi", weight=0.9)
    print(f"7pt grid length {n}: {p.n} rows, {h.nlevels} grids\n")

    # --- threaded run with the residual monitor ----------------------
    curves = {}
    for rescomp in ("local", "global"):
        res = run_threaded(
            ma,
            p.b,
            tmax=60,
            rescomp=rescomp,
            write="lock",
            criterion="criterion2",
            monitor_interval=0.001,
        )
        rels = [r for _, r in res.residual_samples]
        if rels:
            curves[f"{rescomp}-res"] = rels
        print(
            f"threaded {rescomp}-res: final relres {res.rel_residual:.3e} "
            f"in {res.wall_time * 1e3:.1f} ms (corrects {res.corrects:.1f})"
        )
    if all(len(v) >= 2 for v in curves.values()) and curves:
        print()
        print(
            ascii_semilogy(
                curves,
                title="true relative residual vs wall-clock (sampled during the run)",
            )
        )

    # --- distributed activity timeline --------------------------------
    res = simulate_distributed(
        ma,
        p.b,
        tmax=6,
        strategy="global",
        machine=MachineParams(flop_rate=2e8, jitter=0.4, seed=1),
        nthreads_total=h.nlevels,
        seed=1,
    )
    print()
    print(
        ascii_timeline(
            res.activity_trace,
            ma.ngrids,
            title="distributed simulation: per-grid compute intervals "
            "(no aligned column of gaps = no barrier)",
        )
    )


if __name__ == "__main__":
    main()
