"""Quickstart: solve a 3-D Poisson problem with asynchronous Multadd.

Builds the paper's 7pt test matrix, sets up an AMG hierarchy with HMIS
coarsening and one aggressive level (the paper's convergence-figure
configuration), and compares three ways of running multigrid:

1. classical multiplicative V(1,1)-cycles (``Mult``),
2. synchronous additive Multadd (mathematically equivalent to a
   symmetric V(1,1)-cycle), and
3. *asynchronous* Multadd via the sequential Algorithm-5 engine
   (local-res, lock-write — the paper's best-converging variant).

Run:  python examples/quickstart.py [grid_length]
"""

from __future__ import annotations

import sys

from repro import Multadd, MultiplicativeMultigrid, SetupOptions, build_problem, setup_hierarchy
from repro.core import run_async_engine


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    print(f"== building 7pt Laplacian, grid length {n} ({n**3} rows) ==")
    problem = build_problem("7pt", n, rhs_seed=0)

    print("== AMG setup: HMIS coarsening, 1 aggressive level ==")
    hierarchy = setup_hierarchy(
        problem.A,
        SetupOptions(coarsen_type="hmis", aggressive_levels=1),
    )
    print(hierarchy.summary())

    tmax = 20

    mult = MultiplicativeMultigrid(hierarchy, smoother="jacobi", weight=0.9)
    res_mult = mult.solve(problem.b, tmax=tmax)
    print(f"\nsync Mult      : relres after {tmax} cycles = {res_mult.final_relres:.3e}")

    madd = Multadd(hierarchy, smoother="jacobi", weight=0.9)
    res_madd = madd.solve(problem.b, tmax=tmax)
    print(f"sync Multadd   : relres after {tmax} cycles = {res_madd.final_relres:.3e}")

    res_async = run_async_engine(
        madd,
        problem.b,
        tmax=tmax,
        rescomp="local",
        write="lock",
        criterion="criterion2",
        alpha=0.5,  # grids run at speeds U[0.5, 1] relative to each other
        seed=0,
    )
    print(
        f"async Multadd  : relres after {tmax} V-cycle-equivalents = "
        f"{res_async.rel_residual:.3e} "
        f"(mean corrections per grid: {res_async.corrects:.1f})"
    )
    print(
        "\nNote how asynchronous execution pays a small convergence premium\n"
        "(extra corrections) in exchange for removing every global barrier —\n"
        "the paper's Table I shows that trade winning above ~16 threads."
    )


if __name__ == "__main__":
    main()
