"""Thread-scaling study (Fig. 6) on any of the paper's test sets.

Measures the V-cycles each method needs (sequential convergence
engines), then asks the machine model how long those cycles take at
1..272 threads — printing the Mult vs sync-Multadd vs async-Multadd
crossover that is the paper's headline scaling result.

Run:  python examples/scaling_study.py [test_set] [size]
      test_set in {7pt, 27pt, mfem_laplace, mfem_elasticity}
"""

from __future__ import annotations

import sys

from repro import Multadd, MultiplicativeMultigrid, build_problem
from repro.core import MachineParams, PerfModel
from repro.experiments import MethodSpec, cycles_to_tolerance, default_hierarchy
from repro.utils import format_table

THREADS = (1, 2, 4, 8, 17, 34, 68, 136, 272)


def main() -> None:
    test_set = sys.argv[1] if len(sys.argv) > 1 else "27pt"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    tol = 1e-6
    p = build_problem(test_set, size, rhs_seed=0)
    strength = "abs" if test_set == "mfem_elasticity" else "min"
    h = default_hierarchy(p.A, aggressive_levels=2, strength_norm=strength)
    kw = {"weight": p.jacobi_weight}
    print(f"{test_set} size {size}: {p.n} rows; hierarchy {h.nlevels} levels")

    v_mult, _ = cycles_to_tolerance(
        MethodSpec("m", "mult"), h, p.b, "jacobi", tol=tol, max_cycles=400, **kw
    )
    v_sma, _ = cycles_to_tolerance(
        MethodSpec("s", "multadd"), h, p.b, "jacobi", tol=tol, max_cycles=400, **kw
    )
    v_ama, _ = cycles_to_tolerance(
        MethodSpec("a", "multadd", asynchronous=True),
        h,
        p.b,
        "jacobi",
        tol=tol,
        max_cycles=400,
        runs=2,
        alpha=0.7,
        **kw,
    )
    print(f"V-cycles to {tol:g}: Mult={v_mult}  syncMultadd={v_sma}  asyncMultadd={v_ama}\n")
    if None in (v_mult, v_sma, v_ama):
        print("a method failed to converge at this size; try a larger size")
        return

    mult = MultiplicativeMultigrid(h, smoother="jacobi", **kw)
    ma = Multadd(h, smoother="jacobi", **kw)
    pm = PerfModel(MachineParams())
    rows = []
    for T in THREADS:
        rows.append(
            [
                T,
                pm.time_mult(mult, T, v_mult),
                pm.time_sync_additive(ma, T, v_sma),
                pm.time_async(ma, T, v_ama)[0],
            ]
        )
    print(
        format_table(
            ["threads", "sync Mult (s)", "sync Multadd (s)", "async Multadd (s)"],
            rows,
            title=f"modeled wall-clock to {tol:g} (KNL-class machine model)",
        )
    )
    cross = next((r[0] for r in rows if r[3] < r[1]), None)
    print(f"\nasync Multadd overtakes Mult at ~{cross} threads (paper: between 4 and 68).")


if __name__ == "__main__":
    main()
