"""Sparse linear-algebra substrate.

Small, self-contained kernels that the rest of the library is built on:

- :mod:`repro.linalg.csr` — CSR helpers (validation, diagonals, l1 row
  norms, row-range SpMV, residual kernels, nnz-balanced row partitioning).
- :mod:`repro.linalg.triangular` — sparse triangular solves, including a
  level-scheduled forward solve used by the hybrid Jacobi-Gauss-Seidel
  smoother.
- :mod:`repro.linalg.norms` — norms used throughout (2-norm, A-norm,
  relative residual norm).
- :mod:`repro.linalg.spectral` — power-method spectral-radius estimation
  and the asynchronous convergence test ``rho(|G|) < 1`` from the
  Chazan-Miranker theory referenced in the paper (Section II.C).
"""

from .csr import (
    as_csr,
    csr_diagonal,
    l1_row_norms,
    lower_triangle,
    partition_rows_by_nnz,
    row_range_matvec,
    residual,
    residual_rows,
    split_diag,
)
from .norms import a_norm, rel_residual_norm, two_norm
from .spectral import (
    abs_iteration_matrix_rho,
    estimate_rho,
    jacobi_iteration_matrix,
    is_async_convergent,
)
from .triangular import (
    forward_solve,
    backward_solve,
    build_level_schedule,
    level_scheduled_forward_solve,
)

__all__ = [
    "as_csr",
    "csr_diagonal",
    "l1_row_norms",
    "lower_triangle",
    "partition_rows_by_nnz",
    "row_range_matvec",
    "residual",
    "residual_rows",
    "split_diag",
    "a_norm",
    "rel_residual_norm",
    "two_norm",
    "abs_iteration_matrix_rho",
    "estimate_rho",
    "jacobi_iteration_matrix",
    "is_async_convergent",
    "forward_solve",
    "backward_solve",
    "build_level_schedule",
    "level_scheduled_forward_solve",
]
