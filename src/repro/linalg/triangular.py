"""Sparse triangular solves.

The hybrid Jacobi-Gauss-Seidel smoother (Section V) applies the inverse
of the block-lower-triangular matrix ``diag(L_1, ..., L_p)`` where each
``L_i`` is the lower triangle of a diagonal block of ``A``.  Supporting
that we implement:

- :func:`forward_solve` / :func:`backward_solve` — row-sweep sparse
  triangular solves (optionally restricted to a row range, which *is*
  the per-block solve of hybrid JGS when combined with column masking).
- :func:`build_level_schedule` / :func:`level_scheduled_forward_solve`
  — the classic dependency-level scheduling that exposes parallelism in
  a triangular solve; we use it both as a faster kernel and as the
  reference for how many "parallel steps" a synchronous GS sweep needs
  (this feeds the performance model's cost of GS-type smoothers).
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from .csr import as_csr

__all__ = [
    "forward_solve",
    "backward_solve",
    "build_level_schedule",
    "level_scheduled_forward_solve",
]


def _check_square(L: sp.csr_matrix) -> sp.csr_matrix:
    L = as_csr(L)
    if L.shape[0] != L.shape[1]:
        raise ValueError(f"expected square matrix, got {L.shape}")
    return L


def forward_solve(L: sp.csr_matrix, b: np.ndarray) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L`` (diagonal included).

    Entries of ``L`` strictly above the diagonal are ignored, so the
    caller may pass a full matrix and get the Gauss-Seidel ``M = L``
    solve for free.
    """
    L = _check_square(L)
    n = L.shape[0]
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros(n, dtype=np.float64)
    indptr, indices, data = L.indptr, L.indices, L.data
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        below = cols < i
        diag_mask = cols == i
        if not diag_mask.any():
            raise ValueError(f"missing diagonal entry in row {i}")
        s = float(vals[below] @ x[cols[below]]) if below.any() else 0.0
        x[i] = (b[i] - s) / float(vals[diag_mask][0])
    return x


def backward_solve(U: sp.csr_matrix, b: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U`` (diagonal included).

    Entries strictly below the diagonal are ignored (symmetric
    Gauss-Seidel's backward sweep uses ``M^T = U``).
    """
    U = _check_square(U)
    n = U.shape[0]
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros(n, dtype=np.float64)
    indptr, indices, data = U.indptr, U.indices, U.data
    for i in range(n - 1, -1, -1):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        vals = data[lo:hi]
        above = cols > i
        diag_mask = cols == i
        if not diag_mask.any():
            raise ValueError(f"missing diagonal entry in row {i}")
        s = float(vals[above] @ x[cols[above]]) if above.any() else 0.0
        x[i] = (b[i] - s) / float(vals[diag_mask][0])
    return x


def build_level_schedule(L: sp.csr_matrix) -> List[np.ndarray]:
    """Group rows of a lower-triangular solve into dependency levels.

    Row ``i`` is at level ``1 + max(level(j))`` over strictly-lower
    neighbours ``j`` (level 0 if none).  Rows within a level can be
    solved concurrently — the standard level-scheduled (wavefront)
    triangular solve.

    Returns
    -------
    list of int arrays, one per level, in solve order.
    """
    L = _check_square(L)
    n = L.shape[0]
    level = np.zeros(n, dtype=np.int64)
    indptr, indices = L.indptr, L.indices
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        below = cols[cols < i]
        if below.size:
            level[i] = int(level[below].max()) + 1
    nlev = int(level.max()) + 1 if n else 0
    return [np.flatnonzero(level == l) for l in range(nlev)]


def level_scheduled_forward_solve(
    L: sp.csr_matrix,
    b: np.ndarray,
    schedule: List[np.ndarray] | None = None,
) -> np.ndarray:
    """Forward solve that processes whole dependency levels vectorized.

    Mathematically identical to :func:`forward_solve`; much faster in
    NumPy because each level is a batched gather/scatter instead of a
    Python-level row loop.
    """
    L = _check_square(L)
    if schedule is None:
        schedule = build_level_schedule(L)
    n = L.shape[0]
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros(n, dtype=np.float64)
    indptr, indices, data = L.indptr, L.indices, L.data
    diag = L.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("zero diagonal entry")
    for rows in schedule:
        if rows.size == 0:
            continue
        # Gather each row's strictly-lower contributions in one batch.
        starts = indptr[rows]
        stops = indptr[rows + 1]
        counts = stops - starts
        flat = np.concatenate(
            [np.arange(s, e) for s, e in zip(starts, stops)]
        ) if rows.size else np.empty(0, dtype=np.int64)
        if flat.size:
            cols = indices[flat]
            vals = data[flat]
            owner = np.repeat(np.arange(rows.size), counts)
            mask = cols < rows[owner]
            contrib = np.zeros(rows.size, dtype=np.float64)
            if mask.any():
                np.add.at(contrib, owner[mask], vals[mask] * x[cols[mask]])
        else:
            contrib = np.zeros(rows.size, dtype=np.float64)
        x[rows] = (b[rows] - contrib) / diag[rows]
    return x
