"""Spectral-radius estimation and the asynchronous convergence test.

Section II.C of the paper recalls the classical Chazan-Miranker result:
the asynchronous iteration (Eq. 5) built from a fixed-point iteration
``x <- G x + f`` converges for *every* admissible schedule iff
``rho(|G|) < 1``, where ``|G|`` is the element-wise absolute value of
the synchronous iteration matrix.  We provide:

- :func:`estimate_rho` — power-method estimate of ``rho(B)`` for a
  sparse matrix or a :class:`LinearOperatorLike` callable (so we can
  estimate ``rho(G)`` with ``G = I - M^{-1} A`` without forming ``G``).
- :func:`abs_iteration_matrix_rho` — forms ``|I - M^{-1} A|`` for a
  diagonal smoothing matrix ``M`` and estimates its spectral radius.
- :func:`is_async_convergent` — the ``rho(|G|) < 1`` test.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np
import scipy.sparse as sp

from .csr import as_csr

__all__ = [
    "estimate_rho",
    "jacobi_iteration_matrix",
    "abs_iteration_matrix_rho",
    "is_async_convergent",
]

ApplyLike = Union[sp.spmatrix, Callable[[np.ndarray], np.ndarray]]


def estimate_rho(
    B: ApplyLike,
    n: int | None = None,
    iters: int = 100,
    tol: float = 1e-8,
    seed: int = 0,
) -> float:
    """Estimate ``rho(B)`` with the power method.

    Parameters
    ----------
    B:
        Sparse matrix or a callable ``v -> B v``.
    n:
        Vector length; required when ``B`` is a callable.
    iters:
        Maximum power iterations.
    tol:
        Relative change in the Rayleigh-quotient-style estimate at
        which to stop early.
    seed:
        Seed for the random start vector (fixed for reproducibility).

    Notes
    -----
    The power method converges to ``|lambda_max|`` when a dominant
    eigenvalue exists; for iteration matrices of symmetric smoothers on
    SPD problems this is the quantity of interest.  The estimate is a
    lower bound in exact arithmetic, which is the safe direction for a
    divergence *warning* (we never use it to certify convergence of a
    borderline method).
    """
    if sp.issparse(B):
        mat = as_csr(B)
        n = mat.shape[0]
        apply_B = lambda v: mat @ v  # noqa: E731
    else:
        if n is None:
            raise ValueError("n is required when B is a callable")
        apply_B = B
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    rho_prev = 0.0
    rho = 0.0
    for _ in range(iters):
        w = apply_B(v)
        norm_w = float(np.linalg.norm(w))
        if norm_w == 0.0:
            return 0.0
        rho = norm_w
        v = w / norm_w
        if abs(rho - rho_prev) <= tol * max(rho, 1.0):
            break
        rho_prev = rho
    return float(rho)


def jacobi_iteration_matrix(A: sp.spmatrix, weight: float = 1.0) -> sp.csr_matrix:
    """Form ``G = I - omega D^{-1} A`` explicitly (small problems only).

    Used by tests and by :func:`abs_iteration_matrix_rho`; production
    smoothers apply ``G`` matrix-free.
    """
    A = as_csr(A)
    d = A.diagonal()
    if np.any(d == 0.0):
        raise ValueError("zero diagonal entry")
    Dinv = sp.diags(weight / d)
    G = sp.eye(A.shape[0], format="csr") - Dinv @ A
    return as_csr(G)


def abs_iteration_matrix_rho(
    A: sp.spmatrix, weight: float = 1.0, iters: int = 200, seed: int = 0
) -> float:
    """``rho(|I - omega D^{-1} A|)`` — the asynchronous contraction factor."""
    G = jacobi_iteration_matrix(A, weight=weight)
    absG = as_csr(abs(G))
    return estimate_rho(absG, iters=iters, seed=seed)


def is_async_convergent(
    A: sp.spmatrix, weight: float = 1.0, margin: float = 0.0
) -> bool:
    """Chazan-Miranker test: does asynchronous weighted Jacobi converge?

    Returns ``True`` when ``rho(|G|) < 1 - margin``.
    """
    return abs_iteration_matrix_rho(A, weight=weight) < 1.0 - margin
