"""Vector norms used throughout the reproduction.

The paper reports convergence exclusively as the relative residual
2-norm ``||r||_2 / ||b||_2`` measured *after* a fixed number of
corrections (Section V), and proves monotone A-norm error decay for the
l1-Jacobi smoother — both norms live here.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["two_norm", "a_norm", "rel_residual_norm"]


def two_norm(v: np.ndarray) -> float:
    """Euclidean norm of ``v``."""
    return float(np.linalg.norm(np.asarray(v, dtype=np.float64)))


def a_norm(A: sp.spmatrix, v: np.ndarray) -> float:
    """Energy norm ``sqrt(v^T A v)`` for SPD ``A``.

    Raises
    ------
    ValueError
        If ``v^T A v`` is (more than round-off) negative, which means
        ``A`` is not positive definite on ``v``.
    """
    v = np.asarray(v, dtype=np.float64)
    q = float(v @ (A @ v))
    if q < -1e-12 * max(1.0, float(v @ v)):
        raise ValueError(f"v^T A v = {q} < 0: matrix is not SPD on this vector")
    return float(np.sqrt(max(q, 0.0)))


def rel_residual_norm(A: sp.spmatrix, x: np.ndarray, b: np.ndarray) -> float:
    """``||b - A x||_2 / ||b||_2`` (paper's convergence metric).

    A zero right-hand side falls back to the absolute residual norm so
    that homogeneous test problems remain measurable.
    """
    r = b - A @ x
    nb = two_norm(b)
    nr = two_norm(r)
    return nr / nb if nb > 0.0 else nr
