"""CSR matrix helpers.

Everything in this module operates on :class:`scipy.sparse.csr_matrix`
(storage) but implements the *algorithmic* kernels the paper's solvers
need ourselves: row-range SpMV (the unit of work a thread group owns in
the shared-memory algorithms of Section IV), residual kernels, l1 row
norms (for the l1-Jacobi smoother), and nnz-proportional row
partitioning (the "work"-balanced assignment of threads to grids).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "as_csr",
    "csr_diagonal",
    "l1_row_norms",
    "lower_triangle",
    "partition_rows_by_nnz",
    "row_range_matvec",
    "residual",
    "residual_rows",
    "split_diag",
]


def as_csr(A: sp.spmatrix, copy: bool = False) -> sp.csr_matrix:
    """Return ``A`` as a canonical CSR matrix.

    Ensures sorted indices and no duplicate / explicit-zero entries so
    that downstream index arithmetic (strength graphs, interpolation
    stencils) is well defined.

    Parameters
    ----------
    A:
        Any scipy sparse matrix (or dense ndarray).
    copy:
        Force a copy even when ``A`` is already canonical CSR.
    """
    if not sp.issparse(A):
        A = sp.csr_matrix(np.asarray(A, dtype=np.float64))
    A = A.tocsr(copy=copy)
    if A.dtype != np.float64:
        A = A.astype(np.float64)
    A.sum_duplicates()
    A.eliminate_zeros()
    A.sort_indices()
    return A


def csr_diagonal(A: sp.csr_matrix) -> np.ndarray:
    """Diagonal of a square CSR matrix as a dense vector.

    Raises
    ------
    ValueError
        If any diagonal entry is exactly zero — every smoother in the
        paper divides by the diagonal, so a zero diagonal is a setup
        bug we want to surface immediately rather than propagate NaNs.
    """
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"expected square matrix, got shape {A.shape}")
    d = A.diagonal()
    if np.any(d == 0.0):
        bad = int(np.flatnonzero(d == 0.0)[0])
        raise ValueError(f"zero diagonal entry at row {bad}")
    return np.asarray(d, dtype=np.float64)


def l1_row_norms(A: sp.csr_matrix) -> np.ndarray:
    """l1 norms of the rows of ``A``: ``M_ii = sum_j |a_ij|``.

    This is the diagonal smoothing matrix of the l1-Jacobi smoother
    (Baker et al., "Multigrid smoothers for ultraparallel computing").
    """
    A = as_csr(A)
    n = A.shape[0]
    rows = np.repeat(np.arange(n), np.diff(A.indptr))
    return np.bincount(rows, weights=np.abs(A.data), minlength=n).astype(np.float64)


def split_diag(A: sp.csr_matrix) -> Tuple[np.ndarray, sp.csr_matrix]:
    """Split ``A = D + R`` into its diagonal (dense vector) and remainder."""
    A = as_csr(A)
    d = csr_diagonal(A)
    R = A - sp.diags(d)
    return d, as_csr(R)


def lower_triangle(A: sp.csr_matrix, strict: bool = False) -> sp.csr_matrix:
    """Lower-triangular part of ``A`` (including the diagonal by default).

    Used to build the Gauss-Seidel smoothing matrix ``M = L`` and the
    per-block triangular factors of the hybrid JGS smoother.
    """
    A = as_csr(A)
    k = -1 if strict else 0
    return as_csr(sp.tril(A, k=k, format="csr"))


def partition_rows_by_nnz(A: sp.csr_matrix, nparts: int) -> List[Tuple[int, int]]:
    """Partition rows into ``nparts`` contiguous ranges of ~equal nnz.

    This mirrors how an OpenMP static schedule with per-thread row
    blocks balances SpMV work, and is how the threaded executor divides
    a grid's rows among the threads assigned to that grid.

    Returns a list of half-open ``(start, stop)`` row ranges.  Ranges
    may be empty when ``nparts`` exceeds the number of rows.
    """
    if nparts <= 0:
        raise ValueError("nparts must be positive")
    A = as_csr(A)
    n = A.shape[0]
    if nparts >= n:
        ranges = [(i, i + 1) for i in range(n)]
        ranges += [(n, n)] * (nparts - n)
        return ranges
    cum = A.indptr[1:].astype(np.int64)  # cumulative nnz after each row
    total = int(A.nnz)
    targets = (np.arange(1, nparts) * (total / nparts)).astype(np.int64)
    cuts = np.searchsorted(cum, targets, side="left") + 1
    cuts = np.clip(cuts, 1, n)
    bounds = [0] + list(np.maximum.accumulate(cuts)) + [n]
    # Enforce monotone non-overlapping ranges.
    ranges = []
    for i in range(nparts):
        a, b = int(bounds[i]), int(max(bounds[i], bounds[i + 1]))
        ranges.append((a, b))
    ranges[-1] = (ranges[-1][0], n)
    return ranges


def row_range_matvec(
    A: sp.csr_matrix,
    x: np.ndarray,
    start: int,
    stop: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``out[start:stop] = (A @ x)[start:stop]`` without forming the rest.

    The partial SpMV a thread performs for its owned row range in the
    global-res algorithm (Algorithm 5, the no-wait GlobalParfor loop).

    Dispatches through :mod:`repro.kernels`: the row-index machinery is
    precomputed once per ``(matrix, range)`` plan, and when ``out`` is
    omitted the plan's cached full-length buffer is *borrowed* (zero
    outside the range, valid until the next borrowing call for the same
    plan) instead of allocating a fresh ``np.zeros(n)`` per call.
    Callers that keep the result across calls must pass their own
    ``out``.
    """
    from .. import kernels

    return kernels.row_range_matvec(A, x, start, stop, out=out)


def residual(A: sp.csr_matrix, x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Fine-grid residual ``r = b - A x``."""
    return b - A @ x


def residual_rows(
    A: sp.csr_matrix,
    x: np.ndarray,
    b: np.ndarray,
    start: int,
    stop: int,
    out: np.ndarray,
) -> np.ndarray:
    """Update ``out[start:stop] = (b - A x)[start:stop]`` in place.

    The per-thread slice of the global residual update in global-res
    (fused product-and-subtract through :mod:`repro.kernels`).
    """
    from .. import kernels

    return kernels.residual_rows(A, x, b, start, stop, out)
