"""Persistence: problems, hierarchies and results on disk.

Reproducibility plumbing: AMG setup is the expensive, randomized part
of an experiment, so being able to snapshot a hierarchy (and the test
problem it belongs to) makes every downstream run replayable without
re-running setup.  Formats are plain ``.npz`` (self-contained, no
pickle) plus Matrix Market export for interchange with other solver
packages.
"""

from .serialize import (
    load_hierarchy,
    load_problem,
    save_hierarchy,
    save_problem,
    write_matrix_market,
    read_matrix_market,
)

__all__ = [
    "save_problem",
    "load_problem",
    "save_hierarchy",
    "load_hierarchy",
    "write_matrix_market",
    "read_matrix_market",
]
