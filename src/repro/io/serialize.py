"""npz serialization for problems and hierarchies; Matrix Market I/O.

Layouts are versioned so future format changes can stay readable.  No
pickle anywhere: every array is stored as plain numeric data, so files
are portable and safe to load.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np
import scipy.sparse as sp

from ..amg.hierarchy import AMGLevel, Hierarchy, SetupOptions
from ..linalg import as_csr
from ..problems.registry import TestProblem

__all__ = [
    "save_problem",
    "load_problem",
    "save_hierarchy",
    "load_hierarchy",
    "write_matrix_market",
    "read_matrix_market",
]

_FORMAT_VERSION = 1


def _pack_csr(prefix: str, M: sp.csr_matrix, out: dict) -> None:
    out[f"{prefix}_data"] = M.data
    out[f"{prefix}_indices"] = M.indices
    out[f"{prefix}_indptr"] = M.indptr
    out[f"{prefix}_shape"] = np.array(M.shape, dtype=np.int64)


def _unpack_csr(prefix: str, blob) -> sp.csr_matrix:
    return as_csr(
        sp.csr_matrix(
            (blob[f"{prefix}_data"], blob[f"{prefix}_indices"], blob[f"{prefix}_indptr"]),
            shape=tuple(blob[f"{prefix}_shape"]),
        )
    )


def save_problem(path: Union[str, Path], problem: TestProblem) -> None:
    """Write a :class:`~repro.problems.registry.TestProblem` to ``.npz``."""
    out: dict = {
        "format_version": np.array(_FORMAT_VERSION),
        "kind": np.array("problem"),
        "name": np.array(problem.name),
        "size_param": np.array(problem.size_param),
        "jacobi_weight": np.array(problem.jacobi_weight),
        "b": problem.b,
    }
    _pack_csr("A", as_csr(problem.A), out)
    np.savez_compressed(str(path), **out)


def load_problem(path: Union[str, Path]) -> TestProblem:
    """Read a problem written by :func:`save_problem`."""
    blob = np.load(str(path), allow_pickle=False)
    if str(blob["kind"]) != "problem":
        raise ValueError(f"{path} does not contain a problem")
    return TestProblem(
        name=str(blob["name"]),
        A=_unpack_csr("A", blob),
        b=np.asarray(blob["b"], dtype=np.float64),
        size_param=int(blob["size_param"]),
        jacobi_weight=float(blob["jacobi_weight"]),
    )


def save_hierarchy(path: Union[str, Path], hierarchy: Hierarchy) -> None:
    """Write a hierarchy (operators, interpolants, splittings) to ``.npz``."""
    out: dict = {
        "format_version": np.array(_FORMAT_VERSION),
        "kind": np.array("hierarchy"),
        "nlevels": np.array(hierarchy.nlevels),
    }
    opts = hierarchy.options
    out["opt_theta"] = np.array(opts.theta)
    out["opt_strength_norm"] = np.array(opts.strength_norm)
    out["opt_coarsen_type"] = np.array(opts.coarsen_type)
    out["opt_aggressive_levels"] = np.array(opts.aggressive_levels)
    out["opt_interp_type"] = np.array(opts.interp_type)
    out["opt_num_functions"] = np.array(opts.num_functions)
    out["opt_seed"] = np.array(opts.seed)
    for k, lv in enumerate(hierarchy.levels):
        _pack_csr(f"L{k}_A", lv.A, out)
        if lv.P is not None:
            _pack_csr(f"L{k}_P", lv.P, out)
        if lv.splitting is not None:
            out[f"L{k}_splitting"] = lv.splitting
        if lv.functions is not None:
            out[f"L{k}_functions"] = lv.functions
    np.savez_compressed(str(path), **out)


def load_hierarchy(path: Union[str, Path]) -> Hierarchy:
    """Read a hierarchy written by :func:`save_hierarchy`."""
    blob = np.load(str(path), allow_pickle=False)
    if str(blob["kind"]) != "hierarchy":
        raise ValueError(f"{path} does not contain a hierarchy")
    opts = SetupOptions(
        theta=float(blob["opt_theta"]),
        strength_norm=str(blob["opt_strength_norm"]),
        coarsen_type=str(blob["opt_coarsen_type"]),
        aggressive_levels=int(blob["opt_aggressive_levels"]),
        interp_type=str(blob["opt_interp_type"]),
        num_functions=int(blob["opt_num_functions"]),
        seed=int(blob["opt_seed"]),
    )
    nlevels = int(blob["nlevels"])
    levels = []
    for k in range(nlevels):
        A = _unpack_csr(f"L{k}_A", blob)
        P = _unpack_csr(f"L{k}_P", blob) if f"L{k}_P_data" in blob else None
        splitting = (
            np.asarray(blob[f"L{k}_splitting"]) if f"L{k}_splitting" in blob else None
        )
        functions = (
            np.asarray(blob[f"L{k}_functions"]) if f"L{k}_functions" in blob else None
        )
        levels.append(
            AMGLevel(
                A=A,
                P=P,
                R=as_csr(P.T) if P is not None else None,
                splitting=splitting,
                functions=functions,
            )
        )
    return Hierarchy(levels=levels, options=opts)


def write_matrix_market(path: Union[str, Path], M: sp.spmatrix, comment: str = "") -> None:
    """Minimal Matrix Market (coordinate, real, general) writer."""
    M = as_csr(M).tocoo()
    with open(path, "w") as f:
        f.write("%%MatrixMarket matrix coordinate real general\n")
        for line in comment.splitlines():
            f.write(f"% {line}\n")
        f.write(f"{M.shape[0]} {M.shape[1]} {M.nnz}\n")
        for i, j, v in zip(M.row, M.col, M.data):
            f.write(f"{i + 1} {j + 1} {v:.17g}\n")


def read_matrix_market(path: Union[str, Path]) -> sp.csr_matrix:
    """Minimal Matrix Market (coordinate, real, general/symmetric) reader."""
    with open(path) as f:
        header = f.readline()
        if not header.startswith("%%MatrixMarket matrix coordinate real"):
            raise ValueError(f"unsupported Matrix Market header: {header.strip()}")
        symmetric = "symmetric" in header
        line = f.readline()
        while line.startswith("%"):
            line = f.readline()
        nrows, ncols, nnz = (int(tok) for tok in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            toks = f.readline().split()
            rows[k], cols[k], vals[k] = int(toks[0]) - 1, int(toks[1]) - 1, float(toks[2])
    if symmetric:
        off = rows != cols
        r0, c0 = rows, cols
        rows = np.concatenate([r0, c0[off]])
        cols = np.concatenate([c0, r0[off]])
        vals = np.concatenate([vals, vals[off]])
    M = sp.csr_matrix((vals, (rows, cols)), shape=(nrows, ncols))
    return as_csr(M)
