"""Unified tracing & metrics for the asynchronous backends.

The paper's whole experimental section is built on *observing*
asynchronous runs — residual histories against wall-clock, per-grid
update counts under the random update sets Ψ(t), read staleness
``z_k(t)`` — and this package is that measurement layer, shared by
the sequential engine, the threaded executor and the distributed
simulator:

- :mod:`repro.observe.tracer`    — :class:`Tracer` (per-worker
  append-only ring buffers, merged at run end), :class:`TracedPolicy`
  (write-policy instrumentation for the threaded executor) and the
  compact :class:`TraceSummary` attached to result objects.
- :mod:`repro.observe.events`    — the typed event vocabulary.
- :mod:`repro.observe.metrics`   — :class:`Metrics`: counters, gauges
  and fixed-bucket histograms with a single merge path for
  per-worker shards.
- :mod:`repro.observe.exporters` — JSONL, Chrome trace-event
  (Perfetto-viewable) and residual-vs-time series writers.
- :mod:`repro.observe.analyze`   — :class:`TraceAnalyzer`: recovers
  the Section-III model quantities (empirical |Ψ(t)|, max observed
  delay vs δ, monotone reads, update fairness) from a recorded run
  and can feed the existing ``ModelConformanceReport``.
- :mod:`repro.observe.live`      — the *in-flight* view:
  :class:`SnapshotCollector` tails the ring buffers on a cadence into
  typed :class:`LiveSnapshot` objects, served over OpenMetrics
  (``--metrics-port``), streamed as JSONL, and watched by the online
  anomaly detectors in :mod:`repro.observe.alerts`.
- :mod:`repro.observe.profiler`  — low-rate sampling profiler
  attributing wall time to kernel × grid × worker.

CLI: ``repro trace run | report | export``, ``repro solve
--trace out.jsonl`` and ``repro solve --live`` / ``repro top``.
"""

from .alerts import Alert, Detector, default_detectors
from .analyze import TraceAnalyzer
from .events import Event
from .exporters import (
    read_events_jsonl,
    read_residual_series,
    residual_series,
    series_from_result,
    to_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
    write_residual_series,
)
from .live import (
    LiveConfig,
    LiveSession,
    LiveSnapshot,
    LiveSummary,
    MetricsServer,
    SnapshotCollector,
    SnapshotWriter,
    parse_openmetrics,
    read_snapshots_jsonl,
    render_top,
    start_live,
    to_openmetrics,
)
from .metrics import Counter, Gauge, Histogram, Metrics, diff_snapshots
from .profiler import ProfileReport, SamplingProfiler
from .tracer import TraceBuffer, TracedPolicy, Tracer, TraceSummary

__all__ = [
    "Event",
    "TraceBuffer",
    "Tracer",
    "TracedPolicy",
    "TraceSummary",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "TraceAnalyzer",
    "Alert",
    "Detector",
    "default_detectors",
    "LiveConfig",
    "LiveSession",
    "LiveSnapshot",
    "LiveSummary",
    "MetricsServer",
    "SnapshotCollector",
    "SnapshotWriter",
    "ProfileReport",
    "SamplingProfiler",
    "diff_snapshots",
    "parse_openmetrics",
    "read_snapshots_jsonl",
    "render_top",
    "start_live",
    "to_openmetrics",
    "read_events_jsonl",
    "read_residual_series",
    "residual_series",
    "series_from_result",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_residual_series",
]
