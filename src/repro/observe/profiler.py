"""Sampling profiler: wall time attributed to kernel × grid × worker.

The run-end ``kernel`` trace events already say how much accumulated
wall time each kernel *recorded about itself*; this module answers
the complementary live question — where are the solve threads
*actually standing right now* — by sampling ``sys._current_frames()``
from a low-rate daemon thread.  No ``sys.setprofile``, no per-call
bookkeeping on the hot path: the solve threads are never touched,
only observed, so the overhead is the sampler's own work (a dict walk
every ``interval_s``, 5 ms by default).

Attribution: each sampled thread is mapped to its ``(worker, grid)``
via the tracer's thread registry (:meth:`Tracer.worker_threads`); its
stack is walked innermost-first and the first frame whose file lives
under ``repro/kernels/`` names the kernel (frames outside the kernel
layer bucket as ``"other"``).  The result is a flame-ordered table
(:meth:`ProfileReport.table`) and Chrome-trace ``C`` (counter) tracks
(:meth:`ProfileReport.chrome_counter_events`) that drop into the same
``chrome://tracing`` file as the event spans.
"""

from __future__ import annotations

import os
import sys
import threading
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .tracer import Tracer

__all__ = ["SamplingProfiler", "ProfileReport", "KERNELS_PATH_FRAGMENT"]

WorkerKey = Union[int, str]

#: a frame whose filename contains this names a kernel-layer frame
KERNELS_PATH_FRAGMENT = os.sep.join(("repro", "kernels")) + os.sep


@dataclass
class ProfileReport:
    """Aggregated samples: ``counts[(kernel, grid, worker)]`` plus a
    coarse timeline for counter tracks.

    ``seconds`` figures are shares of the measured span — with N
    solve threads running concurrently the per-bucket seconds sum to
    roughly N × span, the usual convention for thread-time profiles.
    """

    interval_s: float = 0.005
    span_s: float = 0.0
    samples: int = 0
    counts: Dict[Tuple[str, int, WorkerKey], int] = field(default_factory=dict)
    #: (t_offset_s, {kernel: concurrent-thread count}) per sample tick
    timeline: List[Tuple[float, Dict[str, int]]] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        """Flame-ordered (descending seconds) attribution rows."""
        total = sum(self.counts.values())
        out: List[Dict[str, object]] = []
        for (kernel, grid, worker), n in sorted(
            self.counts.items(), key=lambda kv: (-kv[1], str(kv[0]))
        ):
            share = n / total if total else 0.0
            out.append(
                {
                    "kernel": kernel,
                    "grid": grid,
                    "worker": worker,
                    "samples": n,
                    "share": share,
                    "seconds": share * self.span_s * self._concurrency(),
                }
            )
        return out

    def _concurrency(self) -> float:
        """Mean threads observed per tick (scales share → thread-seconds)."""
        ticks = len(self.timeline)
        return (self.samples / ticks) if ticks else 1.0

    def table(self) -> str:
        """The flame-ordered table, rendered for terminals/logs."""
        rows = self.rows()
        if not rows:
            return "(no profile samples)"
        lines = [
            f"{'kernel':<24} {'grid':>4} {'worker':>8} {'samples':>8} "
            f"{'share':>7} {'seconds':>9}"
        ]
        for r in rows:
            lines.append(
                f"{str(r['kernel']):<24} {r['grid']:>4} {str(r['worker']):>8} "
                f"{r['samples']:>8} {float(r['share']):>6.1%} "
                f"{float(r['seconds']):>9.4f}"
            )
        return "\n".join(lines)

    def chrome_counter_events(self, bucket_s: float = 0.05) -> List[Dict[str, object]]:
        """Chrome-trace ``C`` (counter) events: per-kernel concurrent
        thread counts, bucketed to ``bucket_s`` so huge profiles stay
        loadable.  Timestamps are microseconds from profile start, on
        the counter track pid 0 / "profiler"."""
        out: List[Dict[str, object]] = []
        if not self.timeline:
            return out
        acc: Dict[str, float] = {}
        ticks = 0
        bucket_start = self.timeline[0][0]
        kernels = sorted({k for _, by_k in self.timeline for k in by_k})

        def flush(at: float) -> None:
            nonlocal acc, ticks
            if not ticks:
                return
            args = {k: acc.get(k, 0.0) / ticks for k in kernels}
            out.append(
                {
                    "name": "threads_in_kernel",
                    "ph": "C",
                    "ts": at * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": args,
                }
            )
            acc = {}
            ticks = 0

        for t, by_kernel in self.timeline:
            if t - bucket_start >= bucket_s:
                flush(bucket_start)
                bucket_start = t
            for k, n in by_kernel.items():
                acc[k] = acc.get(k, 0.0) + n
            ticks += 1
        flush(bucket_start)
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "interval_s": self.interval_s,
            "span_s": self.span_s,
            "samples": self.samples,
            "rows": self.rows(),
        }


class SamplingProfiler:
    """Low-rate stack sampler over the registered solve threads.

    ``start()`` launches a daemon thread; ``stop()`` joins it and
    freezes the report.  Only threads present in the tracer's worker
    registry are attributed; when *nothing* is registered (the
    sequential engine runs all workers on the caller's thread) every
    sampled thread is attributed to worker ``"main"`` instead, so the
    engine still gets kernel-level attribution.
    """

    def __init__(self, tracer: "Tracer", interval_s: float = 0.005) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.tracer = tracer
        self.interval_s = float(interval_s)
        self.report = ProfileReport(interval_s=float(interval_s))
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = 0.0

    # -- sampling ------------------------------------------------------
    @staticmethod
    def _kernel_of(frame: object) -> str:
        f = frame
        while f is not None:
            code = f.f_code  # type: ignore[attr-defined]
            if KERNELS_PATH_FRAGMENT in code.co_filename:
                name = str(code.co_name)
                return name[1:] if name.startswith("_") else name
            f = f.f_back  # type: ignore[attr-defined]
        return "other"

    def sample_once(self) -> int:
        """Take one sample; returns the number of threads attributed."""
        registry = self.tracer.worker_threads()
        me = threading.get_ident()
        now = _time.perf_counter() - self._t0
        by_kernel: Dict[str, int] = {}
        attributed = 0
        for ident, frame in sys._current_frames().items():
            if ident == me:
                continue
            if registry:
                ent = registry.get(ident)
                if ent is None:
                    continue
                worker, grid = ent
            elif ident == threading.main_thread().ident:
                worker, grid = "main", -1
            else:
                continue
            kernel = self._kernel_of(frame)
            key = (kernel, grid, worker)
            self.report.counts[key] = self.report.counts.get(key, 0) + 1
            by_kernel[kernel] = by_kernel.get(kernel, 0) + 1
            attributed += 1
        self.report.samples += attributed
        self.report.timeline.append((now, by_kernel))
        return attributed

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._t0 = _time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> ProfileReport:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=2.0)
            self._thread = None
        self.report.span_s = _time.perf_counter() - self._t0 if self._t0 else 0.0
        return self.report
