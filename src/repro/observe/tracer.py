"""Low-overhead structured tracer shared by all three async backends.

The hot-path contract: a worker (grid thread, engine coroutine slot,
or simulated process) appends 6-tuples to its **own**
:class:`TraceBuffer` — an append-only ring with no cross-thread
locking anywhere on the record path.  Buffers are merged into one
time-ordered event stream only at run end (:meth:`Tracer.events`),
the same merge-late discipline the executors already use for fault
telemetry.

Clocks: the tracer does not impose one.  The threaded executor
records wall seconds from run start (``clock="s"``), the sequential
engine records scheduler micro-steps (``clock="steps"`` — integral,
so a seeded run's event stream is bit-identical across repeats), and
the distributed simulator records simulated seconds (``clock="sim"``).

:class:`TracedPolicy` is the threaded executor's instrumentation
hook: it wraps a :class:`~repro.core.writes.WritePolicy` (the same
decoration point :class:`repro.analysis.racecheck.CheckedWrite` uses)
and emits ``read``/``write`` events carrying commit epochs, effective
read staleness, and per-stripe lock-wait durations.
"""

from __future__ import annotations

import itertools
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core.writes import AtomicWrite, LockWrite, WritePolicy
from .events import ALERT, CORRECT_END, READ, RESIDUAL, WRITE, Event
from .metrics import LOCK_WAIT_BUCKETS_S, STALENESS_BUCKETS, Metrics

__all__ = ["TraceBuffer", "Tracer", "TraceSummary", "TracedPolicy"]

WorkerKey = Union[int, str]


class TraceBuffer:
    """Append-only ring buffer owned by exactly one worker.

    Records are raw ``(t, kind, grid, a, b, tag)`` tuples.  When the
    ring is full the oldest record is overwritten and ``dropped`` is
    bumped — a traced run degrades to a suffix window, never to a
    stall or an allocation storm.
    """

    __slots__ = ("worker", "capacity", "records", "dropped", "_head")

    def __init__(self, worker: WorkerKey, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.worker = worker
        self.capacity = int(capacity)
        self.records: List[tuple] = []
        self.dropped = 0
        self._head = 0

    def record(
        self,
        t: float,
        kind: str,
        grid: int,
        a: float = 0.0,
        b: float = 0.0,
        tag: str = "",
    ) -> None:
        rec = (t, kind, grid, a, b, tag)
        if len(self.records) < self.capacity:
            self.records.append(rec)
        else:
            self.records[self._head] = rec
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def __len__(self) -> int:
        return len(self.records)

    def in_order(self) -> Iterator[tuple]:
        """Records oldest-first (unwinds the ring head)."""
        yield from self.records[self._head :]
        yield from self.records[: self._head]

    def position(self) -> int:
        """Total records ever appended (``len + dropped``) — the
        cursor value a tail reader compares against."""
        return len(self.records) + self.dropped

    def tail(self, cursor: int) -> Tuple[int, List[tuple]]:
        """Records appended since ``cursor``, oldest-first, without
        copying the full ring.

        Returns ``(new_cursor, records)`` where ``new_cursor`` is the
        buffer position the read observed — pass it back on the next
        call.  If more than ``capacity`` records landed since the
        cursor, only the latest ``capacity`` are returned (the rest
        were overwritten).  Safe to call from a *sampling* thread while
        the owner appends: list append/index assignment are atomic
        under the GIL, so the worst case is a torn read near the head
        returning a record twice or one snapshot late — acceptable for
        telemetry, never for correctness-bearing analysis (use
        :meth:`Tracer.events` after the run for that).
        """
        pos = self.position()
        missed = pos - cursor
        if missed <= 0:
            return pos, []
        n = len(self.records)
        take = missed if missed < n else n
        head = self._head
        if head == 0 or take <= 0:
            out = self.records[n - take :]
        else:
            # Ring order is records[head:] + records[:head]; the last
            # `take` of that sequence, via at most two slices.
            if take <= head:
                out = self.records[head - take : head]
            else:
                out = self.records[head - take + n :] + self.records[:head]
        return pos, out


@dataclass
class TraceSummary:
    """Compact digest of a traced run, attached to result objects.

    ``staleness`` statistics are in commit epochs (the paper's read
    delay δ units); ``lock_wait_*`` in seconds (zero for backends
    without real locks).
    """

    clock: str = "s"
    events: int = 0
    dropped: int = 0
    workers: int = 0
    corrections: int = 0
    reads: int = 0
    writes: int = 0
    span: float = 0.0
    max_staleness: float = 0.0
    mean_staleness: float = 0.0
    lock_wait_total: float = 0.0
    lock_wait_max: float = 0.0
    residual_first: float = float("nan")
    residual_last: float = float("nan")
    alerts: int = 0
    per_grid_counts: Dict[int, int] = field(default_factory=dict)

    def oneline(self) -> str:
        return (
            f"trace: {self.events} events ({self.dropped} dropped) from "
            f"{self.workers} worker(s), {self.corrections} corrections over "
            f"{self.span:g} {self.clock}; staleness max/mean = "
            f"{self.max_staleness:g}/{self.mean_staleness:.2f}; "
            f"lock-wait total/max = {self.lock_wait_total:.3g}/"
            f"{self.lock_wait_max:.3g} s"
        )


class Tracer:
    """Per-worker ring buffers plus the run-end merge and aggregation.

    Thread-safety: buffer creation and the thread registry use plain
    dict operations (atomic under the GIL); every *record* goes to a
    buffer only its owner writes.  The merge/aggregate methods are
    run-end, single-caller operations.
    """

    def __init__(self, capacity: int = 1 << 16, clock: str = "s") -> None:
        self.capacity = int(capacity)
        self.clock = clock
        self.metrics = Metrics()
        self._buffers: Dict[WorkerKey, TraceBuffer] = {}
        self._thread_worker: Dict[int, Tuple[WorkerKey, int]] = {}
        self._worker_pids: Dict[WorkerKey, int] = {}
        self._t0 = _time.perf_counter()

    # -- clock ---------------------------------------------------------
    def now(self) -> float:
        """Wall seconds since tracer construction (``clock="s"``)."""
        return _time.perf_counter() - self._t0

    def restart_clock(self) -> None:
        """Re-zero the wall clock (executors call this at run start so
        event times align with the run's own t0)."""
        self._t0 = _time.perf_counter()

    # -- worker registry -----------------------------------------------
    def buffer(self, worker: WorkerKey) -> TraceBuffer:
        buf = self._buffers.get(worker)
        if buf is None:
            buf = self._buffers.setdefault(worker, TraceBuffer(worker, self.capacity))
        return buf

    def register_worker(self, grid: int, worker: Optional[WorkerKey] = None) -> None:
        """Bind the calling thread to ``grid`` so :meth:`record_here`
        (and :class:`TracedPolicy`, which has no grid context) can file
        events under the right worker buffer."""
        key: WorkerKey = grid if worker is None else worker
        self._thread_worker[threading.get_ident()] = (key, grid)
        self.buffer(key)

    def register_worker_pid(self, worker: WorkerKey, pid: int) -> None:
        """Bind a worker key to an OS process id (the procs backend's
        parent calls this at spawn) so merged events carry
        ``worker_pid``.  A restarted worker re-registers under the same
        key; the latest pid wins — the one the surviving ring records
        were last written by."""
        self._worker_pids[worker] = int(pid)
        self.buffer(worker)

    def worker_pids(self) -> Dict[WorkerKey, int]:
        """Snapshot of the worker-key → OS pid registry."""
        return dict(self._worker_pids)

    def buffers(self) -> Dict[WorkerKey, TraceBuffer]:
        """Live view of the per-worker buffers, for *sampling* readers
        (the snapshot collector).  Treat as read-only; iterate over
        ``list(...)`` since workers may still be registering."""
        return self._buffers

    def worker_threads(self) -> Dict[int, Tuple[WorkerKey, int]]:
        """Snapshot of the thread-ident → (worker, grid) registry (the
        sampling profiler's attribution table)."""
        return dict(self._thread_worker)

    def _current(self) -> Tuple[WorkerKey, int]:
        ent = self._thread_worker.get(threading.get_ident())
        if ent is None:
            # Unregistered thread (supervisor/monitor): file under a
            # thread-keyed buffer with no grid attribution.
            key = f"thread-{threading.get_ident()}"
            return key, -1
        return ent

    # -- recording -----------------------------------------------------
    def record(
        self,
        kind: str,
        grid: int,
        t: float,
        a: float = 0.0,
        b: float = 0.0,
        tag: str = "",
        worker: Optional[WorkerKey] = None,
    ) -> None:
        """Record with an explicit timestamp and worker key (the
        engine and the distributed simulator's form)."""
        self.buffer(grid if worker is None else worker).record(t, kind, grid, a, b, tag)

    def record_here(
        self,
        kind: str,
        a: float = 0.0,
        b: float = 0.0,
        tag: str = "",
        t: Optional[float] = None,
        grid: Optional[int] = None,
    ) -> None:
        """Record from the calling thread's registered worker context
        at the current wall clock (the threaded executor's form)."""
        key, bound_grid = self._current()
        self.buffer(key).record(
            self.now() if t is None else t,
            kind,
            bound_grid if grid is None else grid,
            a,
            b,
            tag,
        )

    # -- run-end merge / aggregation ------------------------------------
    @property
    def dropped_events(self) -> int:
        return sum(buf.dropped for buf in self._buffers.values())

    def events(self) -> List[Event]:
        """Merge every worker buffer into one time-ordered stream."""
        merged: List[Event] = []
        for key in sorted(self._buffers, key=str):
            buf = self._buffers[key]
            pid = self._worker_pids.get(key, -1)
            for seq, (t, kind, grid, a, b, tag) in enumerate(buf.in_order()):
                merged.append(
                    Event(
                        t=t, kind=kind, grid=grid, a=a, b=b, tag=tag,
                        worker=key, seq=seq, worker_pid=pid,
                    )
                )
        merged.sort(key=lambda e: e.sort_key)
        return merged

    def aggregate(self) -> Metrics:
        """Fold the recorded events into the tracer's metrics registry
        (staleness distribution, per-grid update fairness, lock
        contention).  Run-end only — never on the hot path."""
        m = self.metrics
        stal = m.histogram("staleness_epochs", STALENESS_BUCKETS)
        wait = m.histogram("lock_wait_s", LOCK_WAIT_BUCKETS_S)
        for ev in self.events():
            if ev.kind == CORRECT_END:
                m.counter(f"corrections.grid{ev.grid}").inc()
                if ev.b >= 0:
                    stal.observe(ev.b)
            elif ev.kind == WRITE:
                m.counter(f"writes.{ev.tag or 'x'}").inc()
                wait.observe(ev.a)
            elif ev.kind == READ:
                m.counter(f"reads.{ev.tag or 'x'}").inc()
            elif ev.kind == RESIDUAL:
                m.gauge("rel_residual").set(ev.a)
        m.counter("events.dropped").value = float(self.dropped_events)
        return m

    def summary(self) -> TraceSummary:
        """Compact digest for attaching to a result object."""
        events = self.events()
        per_grid: Dict[int, int] = {}
        stal: List[float] = []
        waits: List[float] = []
        reads = writes = alerts = 0
        res_first = res_last = float("nan")
        for ev in events:
            if ev.kind == CORRECT_END:
                per_grid[ev.grid] = per_grid.get(ev.grid, 0) + 1
                if ev.b >= 0:
                    stal.append(ev.b)
            elif ev.kind == WRITE:
                writes += 1
                waits.append(ev.a)
            elif ev.kind == READ:
                reads += 1
            elif ev.kind == RESIDUAL:
                if np.isnan(res_first):
                    res_first = ev.a
                res_last = ev.a
            elif ev.kind == ALERT:
                alerts += 1
        span = events[-1].t - events[0].t if len(events) > 1 else 0.0
        return TraceSummary(
            clock=self.clock,
            events=len(events),
            dropped=self.dropped_events,
            workers=len(self._buffers),
            corrections=sum(per_grid.values()),
            reads=reads,
            writes=writes,
            span=float(span),
            max_staleness=max(stal) if stal else 0.0,
            mean_staleness=float(np.mean(stal)) if stal else 0.0,
            lock_wait_total=float(sum(waits)),
            lock_wait_max=max(waits) if waits else 0.0,
            residual_first=res_first,
            residual_last=res_last,
            alerts=alerts,
            per_grid_counts=per_grid,
        )


class TracedPolicy(WritePolicy):
    """Wrap a :class:`WritePolicy` with trace emission.

    Measures the pure lock-*wait* portion of each commit (time spent
    blocked on acquire, summed over stripes — the paper's lock-write
    contention cost), maintains a global commit epoch, and emits
    ``read``/``write`` events through the tracer's per-thread buffers.
    The data movement itself is byte-for-byte the wrapped policy's:
    one stripe sweep for :class:`AtomicWrite`, whole-vector critical
    sections for :class:`LockWrite`, nothing for unlocked policies.
    """

    def __init__(self, inner: WritePolicy, tracer: Tracer, tag: str) -> None:
        super().__init__(inner.n)
        self.inner = inner
        self.tracer = tracer
        self.tag = tag
        self.name = f"traced[{inner.name}]"
        # Recognized raw policies are re-implemented byte-for-byte with
        # acquire timing added; anything else (UnsafeWrite, CheckedWrite,
        # other wrappers) keeps its own commit path via delegation.
        self._delegate = False
        if isinstance(inner, AtomicWrite):
            self._locks: List[Optional[threading.Lock]] = list(inner._locks)
            self._stripes = list(inner._ranges())
        elif isinstance(inner, LockWrite):
            self._locks = [inner._lock]
            self._stripes = [(0, 0, inner.n)]
        else:
            self._locks = [None]
            self._stripes = [(0, 0, inner.n)]
            self._delegate = True
        # Commit epoch: itertools.count gives a GIL-atomic increment;
        # `epoch` holds the latest issued value for racy-but-monotone
        # sampling by readers.
        self._epoch_counter = itertools.count(1)
        self.epoch = 0
        self._last_read_epoch: Dict[int, int] = {}
        self._last_commit_staleness: Dict[int, float] = {}

    def _swept(
        self, target: np.ndarray, other: np.ndarray, assign: bool, lo: int = 0
    ) -> float:
        """One stripe sweep with lock-wait timing; returns seconds
        spent blocked on acquires."""
        wait = 0.0
        for s, a, b in self._stripes:
            if b <= lo or (assign and a >= lo + other.shape[0]):
                continue
            lock = self._locks[s]
            if lock is not None:
                t0 = _time.perf_counter()
                lock.acquire()
                wait += _time.perf_counter() - t0
            try:
                if assign:
                    aa, bb = max(a, lo), min(b, lo + other.shape[0])
                    if bb > aa:
                        target[aa:bb] = other[aa - lo : bb - lo]
                else:
                    target[a:b] += other[a:b]
            finally:
                if lock is not None:
                    lock.release()
        return wait

    def add(self, target: np.ndarray, update: np.ndarray) -> None:
        if self._delegate:
            wait = 0.0
            self.inner.add(target, update)
        else:
            wait = self._swept(target, update, assign=False)
        ep = next(self._epoch_counter)
        self.epoch = ep
        ident = threading.get_ident()
        z = self._last_read_epoch.get(ident)
        staleness = float(ep - 1 - z) if z is not None else -1.0
        self._last_commit_staleness[ident] = staleness
        self.tracer.record_here(WRITE, a=wait, b=staleness, tag=self.tag)

    def assign_slice(
        self, target: np.ndarray, lo: int, hi: int, values: np.ndarray
    ) -> None:
        if self._delegate:
            wait = 0.0
            self.inner.assign_slice(target, lo, hi, values)
        else:
            wait = self._swept(target, values, assign=True, lo=lo)
        self.tracer.record_here(WRITE, a=wait, b=-1.0, tag=f"{self.tag}:assign")

    def read(self, source: np.ndarray) -> np.ndarray:
        out = self.inner.read(source)
        ep = self.epoch
        self._last_read_epoch[threading.get_ident()] = ep
        self.tracer.record_here(READ, a=float(ep), tag=self.tag)
        return out

    def last_staleness(self) -> float:
        """Staleness of the calling thread's most recent commit, as
        captured *at* that commit (−1 before its first read) — workers
        stamp this onto their ``correct_end`` events."""
        return self._last_commit_staleness.get(threading.get_ident(), -1.0)
