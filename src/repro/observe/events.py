"""Typed trace events — the vocabulary of the observability layer.

On the hot path an event is a plain 6-tuple ``(t, kind, grid, a, b,
tag)`` appended to a per-worker :class:`~repro.observe.tracer.TraceBuffer`
(no object construction, no locking).  :class:`Event` is the *merged*
view — the same record plus its worker key and within-worker sequence
number — produced once at run end by
:meth:`~repro.observe.tracer.Tracer.events` and consumed by the
exporters and the :class:`~repro.observe.analyze.TraceAnalyzer`.

Event kinds and their payload fields (``a``/``b`` are floats, ``tag``
is a short string):

=================  ====================================================
kind               meaning of ``a`` / ``b`` / ``tag``
=================  ====================================================
``correct_begin``  a correction started; ``a`` = correction index
``correct_end``    a correction committed; ``a`` = completed count,
                   ``b`` = effective read staleness in commit epochs
                   (−1 when unknown — e.g. the first correction)
``read``           a shared-vector read; ``a`` = commit epoch observed,
                   ``tag`` = vector (``"x"``/``"r"``)
``write``          a shared-vector commit; ``a`` = lock-wait seconds,
                   ``b`` = read staleness at commit (−1 when n/a),
                   ``tag`` = vector
``residual``       a residual-norm snapshot; ``a`` = relative residual,
                   ``tag`` = ``"global"`` (true residual) or
                   ``"local"`` (a worker's replica view)
``guard``          a guard action; ``tag`` names it (``checkpoint``,
                   ``rollback``, ``restart``, ``watchdog``, ``reject``)
``fault``          an injected fault landed; ``tag`` names it
                   (``crash``, ``stall``, ``corrupt``, ``drop``, ...)
``msg``            distributed message traffic; ``tag`` =
                   ``send``/``recv``/``drop``, ``a`` = peer rank
``member``         an elastic-membership transition (distributed
                   simulator); ``tag`` names it (``join``, ``suspect``,
                   ``evict``, ``recover``, ``leave``, ``crash``,
                   ``stall``, ``repartition``, ``handoff``); for rank
                   transitions ``grid`` is the *rank* id and ``a`` the
                   grid it was assigned to (−1 when unassigned), for
                   ``repartition`` ``a`` = assignable ranks and ``b`` =
                   staffed grids, for ``handoff`` ``a`` = checkpoint
                   transfer seconds
``retry``          a dropped transmission was rescheduled with backoff;
                   ``a`` = message id, ``b`` = backoff delay, ``tag`` =
                   attempt number (``"a1"``, ``"a2"``, ...)
``kernel``         per-kernel timing digest recorded once at run end
                   (grid −1); ``a`` = accumulated wall seconds, ``b`` =
                   call count, ``tag`` = kernel name (see
                   :data:`repro.kernels.KERNEL_NAMES`)
``alert``          an online anomaly detector fired (see
                   :mod:`repro.observe.alerts`); ``a`` = observed
                   value, ``b`` = the threshold it crossed, ``tag`` =
                   alert kind (``stagnation``, ``divergence``,
                   ``oscillation``, ``staleness_spike``,
                   ``heartbeat_gap``); ``grid`` is the implicated grid
                   (−1 when run-wide).  Recorded from the live
                   snapshot collector's own buffer (worker ``"live"``),
                   never from a solve thread.
=================  ====================================================

The ``t`` field follows the recording backend's clock (see the
tracer's ``clock`` attribute): ``"s"`` — wall seconds from run start
(threaded executor), ``"steps"`` — scheduler micro-steps (sequential
engine; integral, fully deterministic), ``"sim"`` — simulated seconds
(distributed simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple, Union

__all__ = [
    "CORRECT_BEGIN",
    "CORRECT_END",
    "READ",
    "WRITE",
    "RESIDUAL",
    "GUARD",
    "FAULT",
    "MSG",
    "MEMBER",
    "RETRY",
    "KERNEL",
    "ALERT",
    "EVENT_KINDS",
    "Event",
]

CORRECT_BEGIN = "correct_begin"
CORRECT_END = "correct_end"
READ = "read"
WRITE = "write"
RESIDUAL = "residual"
GUARD = "guard"
FAULT = "fault"
MSG = "msg"
MEMBER = "member"
RETRY = "retry"
KERNEL = "kernel"
ALERT = "alert"

EVENT_KINDS: Tuple[str, ...] = (
    CORRECT_BEGIN,
    CORRECT_END,
    READ,
    WRITE,
    RESIDUAL,
    GUARD,
    FAULT,
    MSG,
    MEMBER,
    RETRY,
    KERNEL,
    ALERT,
)


@dataclass(frozen=True)
class Event:
    """One merged trace event (see the module docstring for the
    per-kind meaning of ``a``/``b``/``tag``)."""

    t: float
    kind: str
    grid: int
    a: float = 0.0
    b: float = 0.0
    tag: str = ""
    worker: Union[int, str] = -1
    seq: int = 0
    worker_pid: int = -1
    """OS process id of the recording worker (procs backend), −1 for
    in-process workers — lets a cross-process trace merge attribute
    events to real processes."""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable record (the JSONL line schema)."""
        d = {
            "t": self.t,
            "kind": self.kind,
            "grid": self.grid,
            "a": self.a,
            "b": self.b,
            "tag": self.tag,
            "worker": self.worker,
            "seq": self.seq,
        }
        if self.worker_pid != -1:
            d["worker_pid"] = self.worker_pid
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Event":
        return cls(
            t=float(d["t"]),
            kind=str(d["kind"]),
            grid=int(d["grid"]),
            a=float(d.get("a", 0.0)),
            b=float(d.get("b", 0.0)),
            tag=str(d.get("tag", "")),
            worker=d.get("worker", -1),
            seq=int(d.get("seq", 0)),
            worker_pid=int(d.get("worker_pid", -1)),
        )

    @property
    def sort_key(self) -> Tuple[float, str, int]:
        """Total order: time, then worker key, then per-worker sequence
        (stable and deterministic for logical clocks)."""
        return (self.t, str(self.worker), self.seq)
