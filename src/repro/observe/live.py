"""Live telemetry: streaming snapshots of a solve *while it runs*.

PR 3's observe layer is strictly post-hoc — per-worker ring buffers
merge only at run end.  This module adds the in-flight view the
solver-as-a-service north star needs, without changing the hot-path
contract at all: solve threads still append to their own buffers with
no locks; the new :class:`SnapshotCollector` runs on its *own* daemon
thread and **samples** those buffers through the cursor-based
:meth:`~repro.observe.tracer.TraceBuffer.tail` API (racy-but-monotone
reads, never a full-buffer copy, never an acquire on anything a solve
thread touches).

The pieces, bottom-up:

- :class:`LiveSnapshot` — one typed observation: residual, per-grid
  correction progress, read staleness, lock-wait, queue depth and
  membership census (distributed), guard/fault/alert head-counts,
  flattened metrics and per-second rates, per-worker heartbeat ages.
- :class:`SnapshotCollector` — tails every buffer on a monotonic
  cadence, folds the new records into running aggregates, feeds the
  anomaly detectors (:mod:`repro.observe.alerts`) and records their
  :class:`~repro.observe.alerts.Alert` findings as ``alert`` events
  under the collector's own worker key ``"live"``.
- :func:`to_openmetrics` / :func:`parse_openmetrics` — the
  OpenMetrics text exposition of a snapshot and a minimal line-format
  checker used by tests and CI smoke.
- :class:`MetricsServer` — a stdlib ``http.server`` scrape endpoint
  (``repro solve --metrics-port``).
- :class:`SnapshotWriter` / :func:`read_snapshots_jsonl` — the JSONL
  snapshot stream for headless runs, replayable into ``repro top``.
- :class:`LiveConfig` / :func:`start_live` / :class:`LiveSession` —
  what the three executors actually wire in, behind an off-by-default
  flag.
"""

from __future__ import annotations

import json
import re
import threading
import time as _time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    IO,
    List,
    Optional,
    Tuple,
    Union,
)

from .alerts import Alert, Detector, default_detectors
from .events import (
    ALERT,
    CORRECT_END,
    FAULT,
    GUARD,
    MEMBER,
    RESIDUAL,
    WRITE,
)
from .metrics import diff_snapshots
from .profiler import ProfileReport, SamplingProfiler
from .tracer import Tracer

__all__ = [
    "LIVE_WORKER",
    "LiveSnapshot",
    "SnapshotCollector",
    "LiveConfig",
    "LiveSession",
    "LiveSummary",
    "start_live",
    "to_openmetrics",
    "parse_openmetrics",
    "MetricsServer",
    "SnapshotWriter",
    "read_snapshots_jsonl",
    "render_top",
]

WorkerKey = Union[int, str]

#: the snapshot collector's own trace-buffer key (single writer: the
#: collector thread records alerts here, never a solve thread)
LIVE_WORKER = "live"

SNAPSHOT_SCHEMA = "repro.live.snapshot/v1"


@dataclass
class LiveSnapshot:
    """One typed observation of a running (or replayed) solve."""

    seq: int = 0
    t_wall: float = 0.0  # seconds since collector start (monotonic)
    t_event: float = 0.0  # newest event time seen, in backend clock units
    clock: str = "s"
    backend: str = ""
    residual: float = float("nan")
    residual_tag: str = ""  # "global" (true) or "local" (replica view)
    corrections: Dict[int, float] = field(default_factory=dict)  # grid -> count
    corrections_total: float = 0.0
    staleness_last: float = -1.0
    staleness_max: float = 0.0
    lock_wait_total: float = 0.0
    events_seen: int = 0
    events_dropped: int = 0
    workers: int = 0
    guard_counts: Dict[str, int] = field(default_factory=dict)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    alert_counts: Dict[str, int] = field(default_factory=dict)
    last_alert: str = ""
    queue_depth: float = float("nan")  # distributed event queue (NaN = n/a)
    membership: Dict[str, int] = field(default_factory=dict)  # census by state
    counters: Dict[str, float] = field(default_factory=dict)  # Metrics.flatten()
    rates: Dict[str, float] = field(default_factory=dict)  # per-second deltas
    heartbeat_age: Dict[WorkerKey, float] = field(default_factory=dict)
    worker_grids: Dict[WorkerKey, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "seq": self.seq,
            "t_wall": self.t_wall,
            "t_event": self.t_event,
            "clock": self.clock,
            "backend": self.backend,
            "residual": None if self.residual != self.residual else self.residual,
            "residual_tag": self.residual_tag,
            "corrections": {str(k): v for k, v in self.corrections.items()},
            "corrections_total": self.corrections_total,
            "staleness_last": self.staleness_last,
            "staleness_max": self.staleness_max,
            "lock_wait_total": self.lock_wait_total,
            "events_seen": self.events_seen,
            "events_dropped": self.events_dropped,
            "workers": self.workers,
            "guard_counts": dict(self.guard_counts),
            "fault_counts": dict(self.fault_counts),
            "alert_counts": dict(self.alert_counts),
            "last_alert": self.last_alert,
            "queue_depth": (
                None if self.queue_depth != self.queue_depth else self.queue_depth
            ),
            "membership": dict(self.membership),
            "counters": dict(self.counters),
            "rates": dict(self.rates),
            "heartbeat_age": {str(k): v for k, v in self.heartbeat_age.items()},
            "worker_grids": {str(k): v for k, v in self.worker_grids.items()},
        }
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "LiveSnapshot":
        res = d.get("residual")
        qd = d.get("queue_depth")
        return cls(
            seq=int(d.get("seq", 0)),
            t_wall=float(d.get("t_wall", 0.0)),
            t_event=float(d.get("t_event", 0.0)),
            clock=str(d.get("clock", "s")),
            backend=str(d.get("backend", "")),
            residual=float("nan") if res is None else float(res),
            residual_tag=str(d.get("residual_tag", "")),
            corrections={int(k): float(v) for k, v in d.get("corrections", {}).items()},
            corrections_total=float(d.get("corrections_total", 0.0)),
            staleness_last=float(d.get("staleness_last", -1.0)),
            staleness_max=float(d.get("staleness_max", 0.0)),
            lock_wait_total=float(d.get("lock_wait_total", 0.0)),
            events_seen=int(d.get("events_seen", 0)),
            events_dropped=int(d.get("events_dropped", 0)),
            workers=int(d.get("workers", 0)),
            guard_counts={str(k): int(v) for k, v in d.get("guard_counts", {}).items()},
            fault_counts={str(k): int(v) for k, v in d.get("fault_counts", {}).items()},
            alert_counts={str(k): int(v) for k, v in d.get("alert_counts", {}).items()},
            last_alert=str(d.get("last_alert", "")),
            queue_depth=float("nan") if qd is None else float(qd),
            membership={str(k): int(v) for k, v in d.get("membership", {}).items()},
            counters={str(k): float(v) for k, v in d.get("counters", {}).items()},
            rates={str(k): float(v) for k, v in d.get("rates", {}).items()},
            heartbeat_age={
                str(k): float(v) for k, v in d.get("heartbeat_age", {}).items()
            },
            worker_grids={
                str(k): int(v) for k, v in d.get("worker_grids", {}).items()
            },
        )


class SnapshotCollector:
    """Periodically tails every worker buffer into :class:`LiveSnapshot`s.

    One collector per run.  All mutation happens on the collector's
    own thread (or the scrape-server thread, serialized by an internal
    lock that **no solve thread ever touches** — the hot-path contract
    is enforced by linter rule RPR011 on the detector callbacks, and
    by construction here: the collector only *reads* solve-owned
    state, via GIL-atomic list/dict operations).
    """

    def __init__(
        self,
        tracer: Tracer,
        interval_s: float = 0.1,
        history: int = 512,
        detectors: Optional[List[Detector]] = None,
        backend: str = "",
        on_snapshot: Optional[Callable[[LiveSnapshot], None]] = None,
        on_alert: Optional[Callable[[Alert], None]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.tracer = tracer
        self.interval_s = float(interval_s)
        self.backend = backend
        self.detectors: List[Detector] = (
            detectors if detectors is not None else default_detectors()
        )
        self.on_snapshot = on_snapshot
        self.on_alert = on_alert
        self.history: List[LiveSnapshot] = []
        self.history_limit = int(history)
        self.alerts: List[Alert] = []
        # Running aggregates, folded forward across collections.
        self._cursors: Dict[WorkerKey, int] = {}
        self._corrections: Dict[int, float] = {}
        self._residual = float("nan")
        self._residual_tag = ""
        self._residual_t = -float("inf")
        self._stal_last = -1.0
        self._stal_max = 0.0
        self._lock_wait = 0.0
        self._events_seen = 0
        self._t_event = 0.0
        self._guards: Dict[str, int] = {}
        self._faults: Dict[str, int] = {}
        self._alert_counts: Dict[str, int] = {}
        self._last_alert = ""
        self._members: Dict[str, int] = {}
        self._heartbeat: Dict[WorkerKey, float] = {}
        self._prev_flat: Dict[str, float] = {}
        self._prev_wall = 0.0
        self._seq = 0
        self._t0 = _time.monotonic()
        # Serializes collect_once between the cadence thread and the
        # scrape server; solve threads never enter here.
        self._collect_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Queue-depth probe, registered by the distributed simulator.
        self.queue_depth_fn: Optional[Callable[[], float]] = None
        self.membership_fn: Optional[Callable[[], Dict[str, int]]] = None

    # -- ingestion -----------------------------------------------------
    def _ingest(self, worker: WorkerKey, rec: Tuple[Any, ...], wall: float) -> None:
        t, kind, grid, a, b, tag = (
            float(rec[0]),
            str(rec[1]),
            int(rec[2]),
            float(rec[3]),
            float(rec[4]),
            str(rec[5]),
        )
        if t > self._t_event:
            self._t_event = t
        self._heartbeat[worker] = wall
        if kind == CORRECT_END:
            # `a` is the worker's completed-correction count: take the
            # max so a racy duplicate read can never double-count.
            if a > self._corrections.get(grid, 0.0):
                self._corrections[grid] = a
            if b >= 0.0:
                self._stal_last = b
                if b > self._stal_max:
                    self._stal_max = b
        elif kind == RESIDUAL:
            # Prefer the true (global) residual over replica views: a
            # local reading never displaces a global one.
            if tag == "global" or self._residual_tag != "global":
                self._residual = a
                self._residual_tag = tag or "local"
                self._residual_t = t
        elif kind == WRITE:
            self._lock_wait += a
        elif kind == GUARD:
            key = tag or "guard"
            self._guards[key] = self._guards.get(key, 0) + 1
        elif kind == FAULT:
            key = tag or "fault"
            self._faults[key] = self._faults.get(key, 0) + 1
        elif kind == MEMBER:
            key = tag or "member"
            self._members[key] = self._members.get(key, 0) + 1

    def collect_once(self) -> LiveSnapshot:
        """Tail all buffers, fold aggregates, run detectors, emit one
        snapshot.  Called from the cadence thread, the scrape server,
        and once more at shutdown."""
        with self._collect_lock:
            return self._collect_locked()

    def _collect_locked(self) -> LiveSnapshot:
        wall = _time.monotonic() - self._t0
        tracer = self.tracer
        worker_grids: Dict[WorkerKey, int] = {}
        for _ident, (wkey, grid) in tracer.worker_threads().items():
            worker_grids[wkey] = grid
        dropped = 0
        nworkers = 0
        for wkey in list(tracer.buffers()):
            buf = tracer.buffers().get(wkey)
            if buf is None or wkey == LIVE_WORKER:
                continue
            nworkers += 1
            dropped += buf.dropped
            cursor, new = buf.tail(self._cursors.get(wkey, 0))
            self._cursors[wkey] = cursor
            self._events_seen += len(new)
            for rec in new:
                self._ingest(wkey, rec, wall)
        flat = tracer.metrics.flatten()
        dt = wall - self._prev_wall
        rates = diff_snapshots(self._prev_flat, flat, dt if dt > 0 else None)
        self._prev_flat = flat
        self._prev_wall = wall

        snap = LiveSnapshot(
            seq=self._seq,
            t_wall=wall,
            t_event=self._t_event,
            clock=tracer.clock,
            backend=self.backend,
            residual=self._residual,
            residual_tag=self._residual_tag,
            corrections=dict(self._corrections),
            corrections_total=float(sum(self._corrections.values())),
            staleness_last=self._stal_last,
            staleness_max=self._stal_max,
            lock_wait_total=self._lock_wait,
            events_seen=self._events_seen,
            events_dropped=dropped,
            workers=nworkers,
            guard_counts=dict(self._guards),
            fault_counts=dict(self._faults),
            alert_counts=dict(self._alert_counts),
            last_alert=self._last_alert,
            queue_depth=(
                float(self.queue_depth_fn()) if self.queue_depth_fn else float("nan")
            ),
            membership=(
                dict(self.membership_fn()) if self.membership_fn else dict(self._members)
            ),
            counters=flat,
            rates=rates,
            heartbeat_age={w: wall - t for w, t in self._heartbeat.items()},
            worker_grids=worker_grids,
        )
        self._seq += 1

        for det in self.detectors:
            for alert in det.update(snap):
                self._raise_alert(alert)
        # Re-stamp the counts the detectors just changed.
        snap.alert_counts = dict(self._alert_counts)
        snap.last_alert = self._last_alert

        self.history.append(snap)
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]
        if self.on_snapshot is not None:
            self.on_snapshot(snap)
        return snap

    def _raise_alert(self, alert: Alert) -> None:
        self.alerts.append(alert)
        self._alert_counts[alert.kind] = self._alert_counts.get(alert.kind, 0) + 1
        self._last_alert = alert.oneline()
        # Into the trace, under the collector's own single-writer key.
        self.tracer.record(
            ALERT,
            alert.grid,
            alert.t_event,
            a=alert.value,
            b=alert.threshold,
            tag=alert.kind,
            worker=LIVE_WORKER,
        )
        self.tracer.metrics.counter(f"alerts.{alert.kind}").inc()
        if self.on_alert is not None:
            self.on_alert(alert)

    # -- lifecycle -----------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.collect_once()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-live-collector", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the cadence thread and take one final collection, so
        even a run shorter than the interval yields >= 1 snapshot."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=2.0)
            self._thread = None
        self.collect_once()


# ---------------------------------------------------------------------------
# OpenMetrics text exposition
# ---------------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+(?P<ts>[^\s]+))?$"
)
_LABEL_RE = re.compile(r'^(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>[^"\\]*)"$')


def _esc(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def to_openmetrics(snap: LiveSnapshot) -> str:
    """Render one snapshot in OpenMetrics text format (ends ``# EOF``)."""
    lines: List[str] = []

    def fam(name: str, mtype: str, help_: str) -> None:
        lines.append(f"# TYPE {name} {mtype}")
        lines.append(f"# HELP {name} {help_}")

    def num(v: float) -> str:
        if v != v:
            return "NaN"
        return repr(float(v))

    fam("repro_snapshot_seq", "gauge", "Live snapshot sequence number.")
    lines.append(f"repro_snapshot_seq {snap.seq}")
    fam("repro_residual", "gauge", "Latest relative residual norm.")
    lines.append(
        f'repro_residual{{view="{_esc(snap.residual_tag or "none")}"}} '
        f"{num(snap.residual)}"
    )
    fam("repro_corrections", "counter", "Completed corrections per grid.")
    for grid in sorted(snap.corrections):
        lines.append(
            f'repro_corrections_total{{grid="{grid}"}} {num(snap.corrections[grid])}'
        )
    fam("repro_events", "counter", "Trace events observed by the collector.")
    lines.append(f"repro_events_total {snap.events_seen}")
    fam("repro_events_dropped", "counter", "Ring-buffer records overwritten.")
    lines.append(f"repro_events_dropped_total {snap.events_dropped}")
    fam("repro_workers", "gauge", "Worker buffers registered.")
    lines.append(f"repro_workers {snap.workers}")
    fam("repro_staleness_max", "gauge", "Max observed read staleness (epochs).")
    lines.append(f"repro_staleness_max {num(snap.staleness_max)}")
    fam("repro_staleness_last", "gauge", "Most recent read staleness (epochs).")
    lines.append(f"repro_staleness_last {num(snap.staleness_last)}")
    fam("repro_lock_wait_seconds", "counter", "Cumulative lock-wait seconds.")
    lines.append(f"repro_lock_wait_seconds_total {num(snap.lock_wait_total)}")
    if snap.queue_depth == snap.queue_depth:
        fam("repro_queue_depth", "gauge", "Distributed simulator event-queue depth.")
        lines.append(f"repro_queue_depth {num(snap.queue_depth)}")
    if snap.membership:
        fam("repro_membership", "gauge", "Membership census by state.")
        for state in sorted(snap.membership):
            lines.append(
                f'repro_membership{{state="{_esc(state)}"}} {snap.membership[state]}'
            )
    fam("repro_guard_actions", "counter", "Guard actions by kind.")
    for tag in sorted(snap.guard_counts):
        lines.append(
            f'repro_guard_actions_total{{action="{_esc(tag)}"}} '
            f"{snap.guard_counts[tag]}"
        )
    fam("repro_faults", "counter", "Injected faults landed, by kind.")
    for tag in sorted(snap.fault_counts):
        lines.append(f'repro_faults_total{{kind="{_esc(tag)}"}} {snap.fault_counts[tag]}')
    fam("repro_alerts", "counter", "Online anomaly alerts raised, by kind.")
    for kind in sorted(snap.alert_counts):
        lines.append(f'repro_alerts_total{{kind="{_esc(kind)}"}} {snap.alert_counts[kind]}')
    collect_errors = snap.counters.get("collect_errors")
    if collect_errors is not None:
        fam("repro_collect_errors", "counter", "Metrics providers that raised.")
        lines.append(f"repro_collect_errors_total {num(collect_errors)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Minimal OpenMetrics line-format checker / parser.

    Validates structure — ``# TYPE``/``# HELP``/``# EOF`` comment
    lines, ``name[{labels}] value [timestamp]`` samples, ``# EOF`` as
    the final line — and returns ``{(name, labels): value}``.  Raises
    :class:`ValueError` on any malformed line.  Not a full OpenMetrics
    parser; enough to keep the exporter honest in tests and CI.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise ValueError("empty exposition")
    if lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    for i, line in enumerate(lines):
        if line == "# EOF":
            if i != len(lines) - 1:
                raise ValueError(f"line {i + 1}: '# EOF' before end of exposition")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP", "UNIT"):
                raise ValueError(f"line {i + 1}: malformed comment {line!r}")
            if not _METRIC_NAME_RE.match(parts[2]):
                raise ValueError(f"line {i + 1}: bad metric name {parts[2]!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {i + 1}: malformed sample {line!r}")
        labels: List[Tuple[str, str]] = []
        raw = m.group("labels")
        if raw:
            for part in raw.split(","):
                lm = _LABEL_RE.match(part)
                if lm is None:
                    raise ValueError(f"line {i + 1}: malformed label {part!r}")
                labels.append((lm.group("k"), lm.group("v")))
        try:
            value = float(m.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {i + 1}: non-numeric value {m.group('value')!r}"
            ) from exc
        out[(m.group("name"), tuple(labels))] = value
    return out


# ---------------------------------------------------------------------------
# Scrape endpoint
# ---------------------------------------------------------------------------

OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


class MetricsServer:
    """Tiny stdlib scrape endpoint: ``GET /metrics`` returns the
    OpenMetrics exposition of a *fresh* collection (so consecutive
    scrapes observe progress, not the last cadence tick).

    A scrape is bounded two ways: the handler's socket ``timeout``
    caps how long a wedged *client* can pin a handler thread, and the
    collection itself runs on a helper thread joined with
    ``collect_timeout_s`` — a stalled ``collect()`` provider (one that
    blocks instead of raising; raising providers are already skipped
    by :meth:`Metrics.collect`) yields a prompt **503** instead of a
    scrape that hangs until the monitoring system gives up.  While the
    stalled collection holds the collector's internal lock, follow-up
    scrapes also 503 promptly (their helpers queue on the lock), and
    the helpers are daemons, so a permanently wedged provider can
    never prevent interpreter shutdown.
    """

    def __init__(
        self,
        collector: SnapshotCollector,
        port: int,
        host: str = "127.0.0.1",
        collect_timeout_s: float = 2.0,
    ) -> None:
        collector_ref = collector
        if collect_timeout_s <= 0:
            raise ValueError("collect_timeout_s must be positive")
        timeout_s = float(collect_timeout_s)

        class _Handler(BaseHTTPRequestHandler):
            timeout = timeout_s  # socket read timeout (slow/wedged client)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_response(404)
                    self.end_headers()
                    return
                box: List[bytes] = []

                def _collect() -> None:
                    box.append(
                        to_openmetrics(collector_ref.collect_once()).encode("utf-8")
                    )

                helper = threading.Thread(
                    target=_collect, name="repro-metrics-collect", daemon=True
                )
                helper.start()
                helper.join(timeout=timeout_s)
                if not box:
                    body = b"metrics collection stalled\n"
                    self.send_response(503)
                    self.send_header("Content-Type", "text/plain; charset=utf-8")
                    self.send_header("Retry-After", "1")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                body = box[0]
                self.send_response(200)
                self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: Any) -> None:
                pass  # scrape logs stay out of solver stdout

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (useful with port 0 → ephemeral)."""
        return int(self._server.server_address[1])

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=2.0)
        self._thread = None
        self._server.server_close()


# ---------------------------------------------------------------------------
# JSONL snapshot stream
# ---------------------------------------------------------------------------


class SnapshotWriter:
    """Append-only JSONL sink for headless runs: a meta header line
    then one snapshot object per line, flushed per line so a tailing
    ``repro top`` sees them promptly."""

    def __init__(self, path: str, backend: str = "", clock: str = "s") -> None:
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self._fh.write(
            json.dumps({"schema": SNAPSHOT_SCHEMA, "backend": backend, "clock": clock})
            + "\n"
        )
        self._fh.flush()
        self._lock = threading.Lock()

    def write(self, snap: LiveSnapshot) -> None:
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(json.dumps(snap.to_dict()) + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def read_snapshots_jsonl(path: str) -> Tuple[Dict[str, Any], List[LiveSnapshot]]:
    """Read a snapshot stream back; tolerates a torn final line (the
    writer may have been killed mid-write)."""
    meta: Dict[str, Any] = {}
    snaps: List[LiveSnapshot] = []
    with open(path, "r", encoding="utf-8") as fh:
        for i, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail
            if i == 0 and "schema" in obj:
                meta = obj
                continue
            snaps.append(LiveSnapshot.from_dict(obj))
    return meta, snaps


# ---------------------------------------------------------------------------
# Terminal rendering (repro top)
# ---------------------------------------------------------------------------


def _bar(frac: float, width: int = 24) -> str:
    frac = min(max(frac, 0.0), 1.0)
    n = int(round(frac * width))
    return "#" * n + "." * (width - n)


def render_top(meta: Dict[str, Any], snaps: List[LiveSnapshot]) -> str:
    """Render the latest snapshot (plus a residual trend from the
    window) as a fixed-width terminal panel."""
    if not snaps:
        return "repro top: no snapshots yet"
    s = snaps[-1]
    backend = s.backend or str(meta.get("backend", "?"))
    lines: List[str] = []
    lines.append(
        f"repro top · backend={backend} clock={s.clock} snapshot #{s.seq} "
        f"t={s.t_event:g} {s.clock} (wall {s.t_wall:.1f}s)"
    )
    res = "n/a" if s.residual != s.residual else f"{s.residual:.3e} ({s.residual_tag})"
    trend = ""
    window = [x.residual for x in snaps[-8:] if x.residual == x.residual]
    if len(window) >= 2:
        if window[-1] < window[0]:
            trend = " v converging"
        elif window[-1] > window[0]:
            trend = " ^ growing"
        else:
            trend = " = flat"
    lines.append(f"residual   {res}{trend}")
    lines.append(
        f"events     {s.events_seen} seen / {s.events_dropped} dropped "
        f"from {s.workers} worker(s)"
    )
    lines.append(
        f"staleness  last {s.staleness_last:g} / max {s.staleness_max:g} epochs"
        f"   lock-wait {s.lock_wait_total:.3g}s"
    )
    if s.queue_depth == s.queue_depth:
        lines.append(f"queue      {s.queue_depth:g} pending event(s)")
    if s.membership:
        census = "  ".join(f"{k}={v}" for k, v in sorted(s.membership.items()))
        lines.append(f"members    {census}")
    if s.corrections:
        top_count = max(s.corrections.values())
        for grid in sorted(s.corrections):
            c = s.corrections[grid]
            lines.append(
                f"grid {grid:<3} {_bar(c / top_count if top_count else 0.0)} "
                f"{c:g} corrections"
            )
    if s.guard_counts:
        lines.append(
            "guards     "
            + "  ".join(f"{k}={v}" for k, v in sorted(s.guard_counts.items()))
        )
    if s.fault_counts:
        lines.append(
            "faults     "
            + "  ".join(f"{k}={v}" for k, v in sorted(s.fault_counts.items()))
        )
    if s.alert_counts:
        lines.append(
            "alerts     "
            + "  ".join(f"{k}={v}" for k, v in sorted(s.alert_counts.items()))
        )
        if s.last_alert:
            lines.append(f"  last     {s.last_alert}")
    stale_workers = [
        f"{w}({age:.1f}s)" for w, age in sorted(
            s.heartbeat_age.items(), key=lambda kv: -kv[1]
        ) if age > 1.0
    ]
    if stale_workers:
        lines.append("quiet      " + "  ".join(stale_workers[:6]))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Executor-facing session plumbing
# ---------------------------------------------------------------------------


@dataclass
class LiveConfig:
    """Everything the ``--live`` flag family configures.  Off by
    default everywhere; constructing one and passing it to an executor
    is the opt-in."""

    interval_s: float = 0.1
    history: int = 512
    metrics_port: Optional[int] = None  # None = no endpoint; 0 = ephemeral
    snapshot_path: Optional[str] = None  # JSONL stream for headless runs
    detectors: Optional[List[Detector]] = None  # None → default_detectors(delta)
    delta: Optional[float] = None  # staleness bound for the spike detector
    alert_stop: FrozenSet[str] = frozenset()  # alert kinds that abort the run
    profile: bool = False
    profile_interval_s: float = 0.005


@dataclass
class LiveSummary:
    """What a live-enabled run attaches to its result object."""

    snapshots: List[LiveSnapshot] = field(default_factory=list)
    alerts: List[Alert] = field(default_factory=list)
    profile: Optional[ProfileReport] = None
    aborted_by: Optional[str] = None
    metrics_port: Optional[int] = None

    def oneline(self) -> str:
        parts = [f"live: {len(self.snapshots)} snapshot(s)"]
        if self.alerts:
            parts.append(f"{len(self.alerts)} alert(s)")
        if self.aborted_by:
            parts.append(f"aborted by {self.aborted_by}")
        if self.profile is not None:
            parts.append(f"{self.profile.samples} profile sample(s)")
        return ", ".join(parts)


class LiveSession:
    """Owns the collector + optional server/profiler/writer for one
    run.  Executors create it via :func:`start_live` right after their
    clock starts and call :meth:`finish` before building the result."""

    def __init__(
        self,
        config: LiveConfig,
        collector: SnapshotCollector,
        server: Optional[MetricsServer],
        profiler: Optional[SamplingProfiler],
        writer: Optional[SnapshotWriter],
    ) -> None:
        self.config = config
        self.collector = collector
        self.server = server
        self.profiler = profiler
        self.writer = writer
        self.stop_requested = False
        self.aborted_by: Optional[str] = None

    def finish(self) -> LiveSummary:
        """Tear down (final collection included) and summarize."""
        self.collector.stop()
        if self.server is not None:
            self.server.stop()
        profile: Optional[ProfileReport] = None
        if self.profiler is not None:
            profile = self.profiler.stop()
        if self.writer is not None:
            self.writer.close()
        return LiveSummary(
            snapshots=list(self.collector.history),
            alerts=list(self.collector.alerts),
            profile=profile,
            aborted_by=self.aborted_by,
            metrics_port=self.server.port if self.server is not None else None,
        )


def start_live(
    config: LiveConfig,
    tracer: Tracer,
    backend: str,
    stop_callback: Optional[Callable[[], None]] = None,
) -> LiveSession:
    """Build and start a :class:`LiveSession` for one run.

    ``stop_callback`` is the executor's abort hook: when an alert of a
    kind in ``config.alert_stop`` fires, the session flips
    ``stop_requested`` and invokes the callback (e.g. the threaded
    executor's ``stop_event.set``) so the existing guard/termination
    machinery winds the run down.
    """
    detectors = (
        config.detectors
        if config.detectors is not None
        else default_detectors(config.delta)
    )
    session_box: List[LiveSession] = []

    def on_alert(alert: Alert) -> None:
        if alert.kind in config.alert_stop and session_box:
            sess = session_box[0]
            if not sess.stop_requested:
                sess.stop_requested = True
                sess.aborted_by = alert.kind
                if stop_callback is not None:
                    stop_callback()

    writer = (
        SnapshotWriter(config.snapshot_path, backend=backend, clock=tracer.clock)
        if config.snapshot_path
        else None
    )
    collector = SnapshotCollector(
        tracer,
        interval_s=config.interval_s,
        history=config.history,
        detectors=detectors,
        backend=backend,
        on_snapshot=writer.write if writer is not None else None,
        on_alert=on_alert,
    )
    # Claim the collector's trace buffer up front: single writer.
    tracer.buffer(LIVE_WORKER)
    server = (
        MetricsServer(collector, config.metrics_port)
        if config.metrics_port is not None
        else None
    )
    profiler = (
        SamplingProfiler(tracer, interval_s=config.profile_interval_s)
        if config.profile
        else None
    )
    session = LiveSession(config, collector, server, profiler, writer)
    session_box.append(session)
    collector.start()
    if server is not None:
        server.start()
    if profiler is not None:
        profiler.start()
    return session
