"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints (the same ones a serving stack's metrics layer
lives under):

- **No locking on the hot path.**  A :class:`Counter` increment is a
  plain attribute add; cross-thread aggregation happens through a
  *single merge path* — each worker owns a shard (its own ``Metrics``
  or :class:`~repro.resilience.FaultTelemetry` instance) and the run
  folds the shards together once, at the end, via :meth:`Metrics.merge`.
- **Fixed buckets.**  :class:`Histogram` uses pre-declared bucket
  bounds (staleness in commit epochs, lock-wait in seconds), so
  ``observe`` is one bisect and merging two histograms is elementwise
  addition — no quantile sketches to reconcile.
- **Providers.**  External counter owners (e.g. ``FaultTelemetry``)
  register a zero-argument callable; :meth:`Metrics.collect` pulls
  their current values so one ``collect()`` snapshot covers the whole
  run without the owners changing their own APIs.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "diff_snapshots",
    "STALENESS_BUCKETS",
    "LOCK_WAIT_BUCKETS_S",
]

#: staleness histogram bounds, in commit epochs (paper's delay δ units)
STALENESS_BUCKETS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128)
#: lock-wait histogram bounds, in seconds
LOCK_WAIT_BUCKETS_S: Tuple[float, ...] = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
)


class Counter:
    """Monotonically increasing count.  Single-writer by convention:
    give each worker its own shard and merge at run end."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, by: float = 1.0) -> None:
        if by < 0:
            raise ValueError("counters only go up")
        self.value += by


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` tallies observations
    ``<= bounds[i]``, with one overflow bucket at the end."""

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        b = tuple(float(v) for v in bounds)
        if list(b) != sorted(b) or len(set(b)) != len(b):
            raise ValueError("histogram bounds must be strictly increasing")
        if not b:
            raise ValueError("histogram needs at least one bound")
        self.name = name
        self.bounds = b
        self.counts = [0] * (len(b) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value - 1e-12)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class Metrics:
    """A named registry of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create, so
    instrumentation sites never coordinate on declaration order.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._providers: Dict[str, Callable[[], Dict[str, float]]] = {}

    # -- registration --------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else STALENESS_BUCKETS
            )
        elif bounds is not None and tuple(float(v) for v in bounds) != h.bounds:
            raise ValueError(f"histogram {name!r} re-registered with different bounds")
        return h

    def register_provider(
        self, name: str, provider: Callable[[], Dict[str, float]]
    ) -> None:
        """Register an external counter owner; ``collect()`` pulls its
        ``{counter: value}`` dict under ``providers[name]``."""
        self._providers[name] = provider

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "Metrics") -> "Metrics":
        """Fold ``other``'s primitives into self (the single merge
        path for per-worker shards); returns self."""
        for name, c in other._counters.items():
            self.counter(name).value += c.value
        for name, g in other._gauges.items():
            if g.value is not None:
                self.gauge(name).value = g.value
        for name, h in other._histograms.items():
            mine = self.histogram(name, h.bounds)
            for i, v in enumerate(h.counts):
                mine.counts[i] += v
            mine.total += h.total
            mine.count += h.count
        return self

    def collect(self) -> Dict[str, object]:
        """One snapshot of everything registered, providers included.

        A provider raising mid-collect does not abort the snapshot:
        the failing provider is skipped for this collection and the
        ``collect_errors`` counter is bumped, so one broken external
        owner cannot black out every other metric (live scrapes run
        ``collect()`` while the providers' owners are still mutating).
        """
        providers: Dict[str, Dict[str, float]] = {}
        for name, p in sorted(self._providers.items()):
            try:
                providers[name] = dict(p())
            except Exception:
                # Skip-and-count: the counter is read below, so the
                # failure is visible in the very snapshot it degraded.
                self.counter("collect_errors").inc()
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: g.value
                for n, g in sorted(self._gauges.items())
                if g.value is not None
            },
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
            "providers": providers,
        }

    def flatten(self) -> Dict[str, float]:
        """Counters, gauges and provider values as one flat
        ``{name: value}`` dict (provider entries as ``provider.name``)
        — the shape :func:`diff_snapshots` and the live exporters eat."""
        snap = self.collect()
        flat: Dict[str, float] = {}
        counters: Dict[str, float] = snap["counters"]  # type: ignore[assignment]
        gauges: Dict[str, float] = snap["gauges"]  # type: ignore[assignment]
        providers: Dict[str, Dict[str, float]] = snap["providers"]  # type: ignore[assignment]
        flat.update(counters)
        flat.update(gauges)
        for pname, values in providers.items():
            for name, value in values.items():
                flat[f"{pname}.{name}"] = float(value)
        return flat

    def format(self) -> str:
        """Human-readable multi-line dump of the current snapshot."""
        snap = self.collect()
        lines: List[str] = []
        for name, value in snap["counters"].items():  # type: ignore[union-attr]
            lines.append(f"{name} = {value:g}")
        for name, value in snap["gauges"].items():  # type: ignore[union-attr]
            lines.append(f"{name} = {value:g}")
        for name, h in snap["histograms"].items():  # type: ignore[union-attr]
            lines.append(
                f"{name}: n={h['count']} mean={h['sum'] / h['count'] if h['count'] else 0.0:.3g} "
                f"buckets<= {h['bounds']} -> {h['counts']}"
            )
        for pname, counters in snap["providers"].items():  # type: ignore[union-attr]
            for name, value in sorted(counters.items()):
                lines.append(f"{pname}.{name} = {value:g}")
        return "\n".join(lines) if lines else "(no metrics)"


def diff_snapshots(
    old: Dict[str, float], new: Dict[str, float], dt: Optional[float] = None
) -> Dict[str, float]:
    """Per-name deltas between two :meth:`Metrics.flatten` snapshots.

    Counters that went *down* (a restarted shard, a re-registered
    provider) clamp to zero rather than reporting a negative rate.
    With ``dt`` the deltas are divided through to per-second rates —
    the live layer's ``corrections/s`` and ``messages/s`` numbers.
    """
    out: Dict[str, float] = {}
    for name, value in new.items():
        delta = value - old.get(name, 0.0)
        if delta < 0.0:
            delta = 0.0
        out[name] = delta / dt if dt else delta
    return out
