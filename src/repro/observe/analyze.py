"""Recover the paper's Section-III model quantities from a recorded run.

The models describe an asynchronous run by three random objects: the
update sets Ψ(t) (which grids commit at instant t), the read instants
``z_k(t)`` with their maximum delay δ, and the per-grid update
probabilities ``p_k``.  A trace records the dual, *empirical* view —
correction spans, read epochs, commit staleness — and
:class:`TraceAnalyzer` folds it back into the model's vocabulary:

- ``psi_sizes()`` — the empirical |Ψ(t)| distribution (corrections in
  flight at each commit instant);
- ``staleness()`` / ``delay_violations(delta)`` — observed read delays
  against a claimed bound δ;
- ``monotone_violations()`` — readers observing an older epoch than
  they already saw (the models assume monotone reads);
- ``per_grid_counts()`` / ``fairness()`` — the measured analogue of
  ``p_k ~ U[alpha, 1]``;
- ``conformance()`` — the same quantities packaged as the existing
  :class:`repro.analysis.racecheck.ModelConformanceReport`, so traced
  runs and CheckedWrite-instrumented runs are judged by one contract.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .events import (
    CORRECT_BEGIN,
    CORRECT_END,
    FAULT,
    GUARD,
    READ,
    WRITE,
    Event,
)
from .exporters import read_events_jsonl, residual_series
from .metrics import LOCK_WAIT_BUCKETS_S, STALENESS_BUCKETS, Metrics

__all__ = ["TraceAnalyzer"]


class TraceAnalyzer:
    """Query layer over one merged, time-ordered event stream."""

    def __init__(
        self, events: Sequence[Event], meta: Optional[Dict[str, Any]] = None
    ) -> None:
        self.events = sorted(events, key=lambda e: e.sort_key)
        self.meta = dict(meta) if meta else {}
        self.clock = str(self.meta.get("clock", "s"))

    @classmethod
    def from_file(cls, path: Any) -> "TraceAnalyzer":
        meta, events = read_events_jsonl(path)
        return cls(events, meta)

    # -- basic streams -------------------------------------------------
    def _of(self, kind: str) -> List[Event]:
        return [ev for ev in self.events if ev.kind == kind]

    def residual_series(self, tag: Optional[str] = None) -> List[Tuple[float, float]]:
        return residual_series(self.events, tag=tag)

    def span(self) -> float:
        if len(self.events) < 2:
            return 0.0
        return self.events[-1].t - self.events[0].t

    # -- update counts / fairness (the empirical p_k) ------------------
    def per_grid_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for ev in self._of(CORRECT_END):
            counts[ev.grid] = counts.get(ev.grid, 0) + 1
        return dict(sorted(counts.items()))

    def fairness(self) -> Dict[str, float]:
        """min/mean update share and the Jain fairness index of the
        per-grid correction counts (1.0 = perfectly even)."""
        counts = list(self.per_grid_counts().values())
        if not counts:
            return {"min_share": 0.0, "mean": 0.0, "jain": 0.0}
        arr = np.asarray(counts, dtype=np.float64)
        jain = float(arr.sum() ** 2 / (arr.size * (arr**2).sum())) if arr.any() else 0.0
        return {
            "min_share": float(arr.min() / arr.max()) if arr.max() else 0.0,
            "mean": float(arr.mean()),
            "jain": jain,
        }

    # -- staleness (the empirical read delay vs delta) ------------------
    def staleness(self) -> List[float]:
        return [ev.b for ev in self._of(CORRECT_END) if ev.b >= 0]

    def max_staleness(self) -> float:
        stal = self.staleness()
        return max(stal) if stal else 0.0

    def delay_violations(self, delta: float) -> int:
        """Commits whose observed read delay exceeded the claimed
        bound δ (Section III's bounded-delay assumption)."""
        return sum(1 for s in self.staleness() if s > delta)

    # -- monotone reads -------------------------------------------------
    def monotone_violations(self) -> int:
        """Readers that observed an older commit epoch than an earlier
        read of the same vector (``z_k`` must be non-decreasing)."""
        last: Dict[Tuple[Any, str], float] = {}
        bad = 0
        for ev in self._of(READ):
            key = (ev.worker, ev.tag)
            prev = last.get(key)
            if prev is not None and ev.a < prev:
                bad += 1
            last[key] = ev.a
        return bad

    # -- concurrency: the empirical |Ψ(t)| ------------------------------
    def psi_sizes(self) -> List[int]:
        """Corrections in flight at each commit instant — the
        empirical size of the paper's random update set Ψ(t)."""
        active = 0
        sizes: List[int] = []
        for ev in self.events:
            if ev.kind == CORRECT_BEGIN:
                active += 1
            elif ev.kind == CORRECT_END:
                sizes.append(max(active, 1))
                active = max(active - 1, 0)
        return sizes

    # -- lock contention -------------------------------------------------
    def lock_waits(self) -> List[float]:
        return [ev.a for ev in self._of(WRITE)]

    # -- guard / fault tallies -------------------------------------------
    def guard_actions(self) -> Dict[str, int]:
        return dict(sorted(_TallyCounter(ev.tag for ev in self._of(GUARD)).items()))

    def fault_events(self) -> Dict[str, int]:
        return dict(sorted(_TallyCounter(ev.tag for ev in self._of(FAULT)).items()))

    # -- aggregation ------------------------------------------------------
    def metrics(self) -> Metrics:
        """The trace folded into a :class:`Metrics` registry."""
        m = Metrics()
        stal = m.histogram("staleness_epochs", STALENESS_BUCKETS)
        for s in self.staleness():
            stal.observe(s)
        wait = m.histogram("lock_wait_s", LOCK_WAIT_BUCKETS_S)
        for w in self.lock_waits():
            wait.observe(w)
        for grid, c in self.per_grid_counts().items():
            m.counter(f"corrections.grid{grid}").inc(c)
        for tag, c in self.guard_actions().items():
            m.counter(f"guard.{tag}").inc(c)
        for tag, c in self.fault_events().items():
            m.counter(f"fault.{tag}").inc(c)
        m.gauge("monotone_violations").set(self.monotone_violations())
        series = self.residual_series()
        if series:
            m.gauge("rel_residual").set(series[-1][1])
        return m

    # -- conformance bridge ----------------------------------------------
    def conformance(
        self,
        staleness_bound: Optional[float] = None,
        n: int = 0,
        rel_residual: Optional[float] = None,
        diverged: bool = False,
        stalled: bool = False,
    ) -> Any:
        """Package the trace's model quantities as a
        :class:`~repro.analysis.racecheck.ModelConformanceReport`.

        Torn reads and lock-order violations are not observable from a
        trace (they need the seqlock instrumentation of
        ``CheckedWrite``) and report as zero; everything else is
        measured.  ``staleness_bound`` defaults to the observed
        maximum (trivially conformant) when not given.
        """
        from ..analysis.racecheck import ModelConformanceReport

        counts = list(self.per_grid_counts().values())
        cmax = max(counts) if counts else 0
        p_hat = [c / cmax for c in counts] if cmax else []
        stal = self.staleness()
        series = self.residual_series()
        if rel_residual is None:
            rel_residual = series[-1][1] if series else float("inf")
        bound = self.max_staleness() if staleness_bound is None else staleness_bound
        return ModelConformanceReport(
            policy=f"trace[{self.clock}]",
            n=int(n or self.meta.get("n", 0)),
            nstripes=0,
            total_commits=len(self._of(WRITE)) or len(self._of(CORRECT_END)),
            total_reads=len(self._of(READ)),
            total_assigns=sum(
                1 for ev in self._of(WRITE) if ev.tag.endswith(":assign")
            ),
            torn_reads=0,
            lock_order_violations=0,
            monotone_violations=self.monotone_violations(),
            staleness_bound=int(bound),
            max_staleness=int(self.max_staleness()),
            mean_staleness=float(np.mean(stal)) if stal else 0.0,
            staleness_samples=len(stal),
            counts=counts,
            p_hat=p_hat,
            min_update_share=min(p_hat) if p_hat else 0.0,
            rel_residual=float(rel_residual),
            diverged=diverged,
            stalled=stalled,
        )

    # -- human-readable report --------------------------------------------
    def _histogram_lines(
        self, values: Sequence[float], bounds: Sequence[float], unit: str
    ) -> List[str]:
        if not values:
            return ["  (no samples)"]
        hist = Metrics().histogram("h", bounds)
        for v in values:
            hist.observe(v)
        peak = max(hist.counts) or 1
        lines = []
        labels = [f"<= {b:g}" for b in bounds] + [f"> {bounds[-1]:g}"]
        for label, count in zip(labels, hist.counts):
            if count == 0:
                continue
            bar = "#" * max(1, round(40 * count / peak))
            lines.append(f"  {label:>10} {unit:<6} {count:>7}  {bar}")
        return lines

    def report(self, delta: Optional[float] = None) -> str:
        """Multi-section text report: the paper's Figs. 1–6 shapes
        recovered from one recorded run."""
        from ..utils import ascii_semilogy

        lines: List[str] = []
        counts = self.per_grid_counts()
        fair = self.fairness()
        stal = self.staleness()
        waits = self.lock_waits()
        psi = self.psi_sizes()
        lines.append(
            f"Trace report — {len(self.events)} events, clock={self.clock}, "
            f"span={self.span():g} {self.clock}"
        )
        if self.meta:
            ctx = {
                k: v
                for k, v in self.meta.items()
                if k not in ("type", "schema", "clock")
            }
            if ctx:
                lines.append("meta: " + ", ".join(f"{k}={v}" for k, v in ctx.items()))
        lines.append("")
        lines.append(
            f"corrections: {sum(counts.values())} total; per grid: "
            + (
                ", ".join(f"g{g}={c}" for g, c in counts.items())
                if counts
                else "(none)"
            )
        )
        lines.append(
            f"update fairness: min share {fair['min_share']:.2f}, "
            f"Jain index {fair['jain']:.3f}"
        )
        if psi:
            lines.append(
                f"|Ψ(t)| (corrections in flight at commit): mean "
                f"{float(np.mean(psi)):.2f}, max {max(psi)}"
            )
        lines.append("")
        lines.append(
            f"read staleness (commit epochs): {len(stal)} samples, "
            f"max {self.max_staleness():g}, mean "
            f"{float(np.mean(stal)) if stal else 0.0:.2f}"
        )
        if delta is not None:
            viol = self.delay_violations(delta)
            lines.append(
                f"bounded-delay check vs δ={delta:g}: "
                + ("OK (0 violations)" if viol == 0 else f"VIOLATED ({viol} commits)")
            )
        lines.extend(self._histogram_lines(stal, STALENESS_BUCKETS, "epochs"))
        lines.append("")
        mono = self.monotone_violations()
        lines.append(
            "monotone reads: " + ("ok" if mono == 0 else f"VIOLATED ({mono} reads)")
        )
        if waits:
            lines.append(
                f"lock wait: {len(waits)} commits, total "
                f"{sum(waits):.3g} s, max {max(waits):.3g} s"
            )
            lines.extend(self._histogram_lines(waits, LOCK_WAIT_BUCKETS_S, "s"))
        guards = self.guard_actions()
        faults = self.fault_events()
        if guards:
            lines.append(
                "guard actions: " + ", ".join(f"{k}={v}" for k, v in guards.items())
            )
        if faults:
            lines.append(
                "fault events: " + ", ".join(f"{k}={v}" for k, v in faults.items())
            )
        series = self.residual_series(tag="global") or self.residual_series()
        if len(series) >= 2:
            vals = [v for _, v in series]
            if any(np.isfinite(v) and v > 0 for v in vals):
                lines.append("")
                lines.append(
                    ascii_semilogy(
                        {"relres": vals},
                        title=f"residual vs time ({self.clock})",
                    )
                )
        return "\n".join(lines)
