"""Trace exporters: JSONL, Chrome trace-event format, residual series.

Three consumers, three formats:

- **JSONL** — one :class:`~repro.observe.events.Event` dict per line,
  preceded by a ``{"type": "meta", ...}`` header line.  The archival
  format: ``repro trace report`` / ``repro trace export`` re-read it,
  and a diff of two runs' JSONL is a diff of their behaviour.
- **Chrome trace-event JSON** — correction spans become complete
  (``"X"``) slices on one track per grid, residual snapshots become a
  counter track, guard/fault events become instants.  Open in
  Perfetto (ui.perfetto.dev) or ``chrome://tracing`` for the grids ×
  time picture behind the paper's Fig. 3.
- **Residual series** — ``(t, relres)`` rows as CSV, the common input
  of the residual-vs-time benchmarks (Figs. 1/2/4), replacing each
  benchmark's private bookkeeping.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Sequence, Tuple, Union

from .events import (
    ALERT,
    CORRECT_BEGIN,
    CORRECT_END,
    FAULT,
    GUARD,
    MEMBER,
    RESIDUAL,
    RETRY,
    Event,
)

__all__ = [
    "write_events_jsonl",
    "read_events_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "residual_series",
    "series_from_result",
    "write_residual_series",
    "read_residual_series",
]

PathLike = Union[str, Path]


def _open_for_write(path: PathLike) -> IO[str]:
    """Open ``path`` for writing, creating parent directories so CLI
    ``--out some/new/dir/run.jsonl`` just works."""
    p = Path(path)
    if p.parent != Path("."):
        p.parent.mkdir(parents=True, exist_ok=True)
    return open(p, "w", encoding="utf-8")


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_events_jsonl(
    events: Sequence[Event], path: PathLike, meta: Optional[Dict[str, Any]] = None
) -> None:
    """Write a meta header line plus one event per line."""
    head: Dict[str, Any] = {"type": "meta", "schema": 1}
    if meta:
        head.update(meta)
    with _open_for_write(path) as fh:
        fh.write(json.dumps(head) + "\n")
        for ev in events:
            fh.write(json.dumps(ev.to_dict()) + "\n")


def read_events_jsonl(path: PathLike) -> Tuple[Dict[str, Any], List[Event]]:
    """Read back ``(meta, events)`` from :func:`write_events_jsonl`
    output (a missing meta line degrades to an empty dict)."""
    meta: Dict[str, Any] = {}
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            if d.get("type") == "meta":
                meta = d
            else:
                events.append(Event.from_dict(d))
    return meta, events


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def _ts_scale(clock: str) -> float:
    """Event-time → microseconds.  Wall/simulated seconds scale by
    1e6; the engine's logical micro-steps map to 1 µs per step."""
    return 1e6 if clock in ("s", "sim") else 1.0


def to_chrome_trace(
    events: Sequence[Event], clock: str = "s", process_name: str = "repro"
) -> Dict[str, Any]:
    """Convert a merged event stream to a Chrome trace-event dict."""
    scale = _ts_scale(clock)
    out: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    grids = sorted({ev.grid for ev in events if ev.grid >= 0})
    for g in grids:
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": g,
                "args": {"name": f"grid {g}"},
            }
        )
    open_spans: Dict[int, List[float]] = {}
    for ev in sorted(events, key=lambda e: e.sort_key):
        ts = ev.t * scale
        if ev.kind == CORRECT_BEGIN:
            open_spans.setdefault(ev.grid, []).append(ts)
        elif ev.kind == CORRECT_END:
            stack = open_spans.get(ev.grid)
            t0 = stack.pop() if stack else ts
            out.append(
                {
                    "name": "correction",
                    "cat": "correct",
                    "ph": "X",
                    "ts": t0,
                    "dur": max(ev.t * scale - t0, 0.0),
                    "pid": 0,
                    "tid": ev.grid,
                    "args": {"count": ev.a, "staleness": ev.b},
                }
            )
        elif ev.kind == RESIDUAL:
            if ev.a > 0:
                out.append(
                    {
                        "name": "rel_residual",
                        "ph": "C",
                        "ts": ts,
                        "pid": 0,
                        "tid": 0,
                        "args": {"relres": ev.a},
                    }
                )
        elif ev.kind in (GUARD, FAULT, MEMBER, RETRY, ALERT):
            out.append(
                {
                    "name": f"{ev.kind}:{ev.tag}",
                    "cat": ev.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": 0,
                    "tid": max(ev.grid, 0),
                }
            )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Sequence[Event], path: PathLike, clock: str = "s"
) -> None:
    with _open_for_write(path) as fh:
        json.dump(to_chrome_trace(events, clock=clock), fh)


# ----------------------------------------------------------------------
# Residual-vs-time series
# ----------------------------------------------------------------------
def residual_series(
    events: Sequence[Event], tag: Optional[str] = None
) -> List[Tuple[float, float]]:
    """Extract the ``(t, relres)`` series from an event stream.

    ``tag`` restricts to one residual source (``"global"`` — the true
    residual — or ``"local"`` — worker replica views); None takes
    every residual snapshot.
    """
    return [
        (ev.t, ev.a)
        for ev in sorted(events, key=lambda e: e.sort_key)
        if ev.kind == RESIDUAL and (tag is None or ev.tag == tag)
    ]


def series_from_result(result: Any) -> List[Tuple[float, float]]:
    """Uniform residual-vs-time series from any backend's result.

    Handles the three executors plus the Section-III model simulators:
    ``residual_samples`` (threaded — already ``(seconds, relres)``),
    ``residual_trace`` of ``(t, relres)`` tuples (distributed), and
    ``residual_trace`` of bare floats (engine / models — indexed by
    correction number).
    """
    samples = getattr(result, "residual_samples", None)
    if samples:
        return [(float(t), float(v)) for t, v in samples]
    trace = getattr(result, "residual_trace", None) or []
    out: List[Tuple[float, float]] = []
    for i, item in enumerate(trace):
        if isinstance(item, (tuple, list)):
            out.append((float(item[0]), float(item[1])))
        else:
            out.append((float(i), float(item)))
    return out


def write_residual_series(
    series: Sequence[Tuple[float, float]], path: PathLike, header: str = "t,relres"
) -> None:
    """Persist a residual series as two-column CSV."""
    with _open_for_write(path) as fh:
        fh.write(header + "\n")
        for t, v in series:
            fh.write(f"{t:.9g},{v:.9g}\n")


def read_residual_series(path: PathLike) -> List[Tuple[float, float]]:
    out: List[Tuple[float, float]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line[0].isalpha():
                continue
            t_s, v_s = line.split(",")[:2]
            out.append((float(t_s), float(v_s)))
    return out
