"""Online anomaly detection over live snapshots.

The post-hoc :class:`~repro.observe.analyze.TraceAnalyzer` can tell
you *after* a run that it stagnated, oscillated, or blew through the
paper's delay bound δ; this module makes the same judgements *while
the solve runs*, from the :class:`~repro.observe.live.LiveSnapshot`
stream.  Each :class:`Detector` is a small piece of sliding-window
state updated once per snapshot (on the collector's thread, never on
a solve thread); when it trips it returns an :class:`Alert`, which
the collector records into the trace as a typed ``alert`` event and,
optionally, feeds to the executor's stop hook so the existing guard
machinery (rollback budgets, watchdog accounting) takes over.

The detector contract is the hot-path contract of the whole observe
layer, enforced statically by linter rule RPR011: ``update`` must not
sleep, touch sockets or files, or acquire locks — it looks at the
snapshot it was handed, updates its own windows, and returns.

Detectors
---------
- :class:`StagnationDetector` — the windowed residual stopped
  improving (Criterion-style progress, evaluated online).
- :class:`DivergenceDetector` — the residual grew by a factor over
  its windowed minimum (the live version of the executors'
  ``divergence_threshold``, tripping long before 1e6).
- :class:`OscillationDetector` — the residual alternates up/down with
  significant amplitude: the signature of an unstable async
  configuration that additive damping (Murray & Weinzierl,
  arXiv:1903.10367) is designed to rescue.
- :class:`StalenessDetector` — observed read staleness exceeded the
  configured delay bound δ (Section III's model assumption, checked
  in flight).
- :class:`HeartbeatGapDetector` — one worker's event stream went
  quiet while its peers kept progressing (a stall/crash seen from the
  outside, before the supervisor's watchdog window closes).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .live import LiveSnapshot

__all__ = [
    "Alert",
    "Detector",
    "StagnationDetector",
    "DivergenceDetector",
    "OscillationDetector",
    "StalenessDetector",
    "HeartbeatGapDetector",
    "default_detectors",
]

#: alert kinds, as they appear in ``alert`` event tags
ALERT_KINDS: Tuple[str, ...] = (
    "stagnation",
    "divergence",
    "oscillation",
    "staleness_spike",
    "heartbeat_gap",
)


@dataclass(frozen=True)
class Alert:
    """One structured anomaly finding, raised mid-run.

    ``value``/``threshold`` carry the measurement that tripped the
    detector (what grew, and past what); ``grid`` is −1 for run-wide
    conditions.  Alerts become ``alert`` events in the trace: ``a`` =
    value, ``b`` = threshold, ``tag`` = kind.
    """

    kind: str
    t_wall: float
    t_event: float
    value: float
    threshold: float
    message: str
    grid: int = -1
    worker: Union[int, str] = -1
    severity: str = "warn"

    def oneline(self) -> str:
        where = f" grid {self.grid}" if self.grid >= 0 else ""
        return (
            f"[{self.severity}] {self.kind}{where}: {self.message} "
            f"(value {self.value:.3g}, threshold {self.threshold:.3g})"
        )


class Detector:
    """Base class: sliding-window state + a per-snapshot ``update``.

    ``cooldown`` suppresses re-firing for that many subsequent
    snapshots after a hit, so a persistent condition produces a
    heartbeat of alerts rather than one per 100 ms tick.
    """

    kind: str = "abstract"

    def __init__(self, cooldown: int = 10) -> None:
        self.cooldown = int(cooldown)
        self._quiet = 0

    def update(self, snap: "LiveSnapshot") -> List[Alert]:
        """Consume one snapshot; return the alerts it triggers."""
        if self._quiet > 0:
            self._quiet -= 1
            self._observe(snap)
            return []
        alerts = self._check(snap)
        if alerts:
            self._quiet = self.cooldown
        return alerts

    # -- subclass hooks ------------------------------------------------
    def _observe(self, snap: "LiveSnapshot") -> None:
        """Window upkeep during cooldown (default: same as checking,
        with the verdict discarded)."""
        self._check(snap)

    def _check(self, snap: "LiveSnapshot") -> List[Alert]:
        raise NotImplementedError


class _ResidualWindow(Detector):
    """Shared plumbing: a deque of ``(t_event, residual)`` samples,
    appended only when a snapshot carries a *new* residual reading."""

    def __init__(self, window: int = 8, cooldown: int = 10) -> None:
        super().__init__(cooldown=cooldown)
        if window < 3:
            raise ValueError("window must be >= 3")
        self.window = int(window)
        self._series: Deque[Tuple[float, float]] = deque(maxlen=window)

    def _push(self, snap: "LiveSnapshot") -> bool:
        """Append the snapshot's residual if it is a fresh sample;
        True when the window is full and ready to judge."""
        res = snap.residual
        if res != res or res <= 0.0:  # NaN or unset
            return False
        if self._series and self._series[-1] == (snap.t_event, res):
            return False  # no new reading since the last snapshot
        self._series.append((snap.t_event, res))
        return len(self._series) == self.window


class StagnationDetector(_ResidualWindow):
    """Residual improvement over the window fell below a floor.

    Fires when the newest residual is no better than ``(1 -
    min_improvement)`` times the oldest — i.e. the solve is burning
    corrections without converging (the online analogue of a
    Criterion-2 run that will never meet its tolerance).
    """

    kind = "stagnation"

    def __init__(
        self,
        window: int = 8,
        min_improvement: float = 0.01,
        cooldown: int = 10,
    ) -> None:
        super().__init__(window=window, cooldown=cooldown)
        self.min_improvement = float(min_improvement)

    def _check(self, snap: "LiveSnapshot") -> List[Alert]:
        if not self._push(snap):
            return []
        first = self._series[0][1]
        last = self._series[-1][1]
        threshold = first * (1.0 - self.min_improvement)
        if last >= threshold:
            return [
                Alert(
                    kind=self.kind,
                    t_wall=snap.t_wall,
                    t_event=snap.t_event,
                    value=last,
                    threshold=threshold,
                    message=(
                        f"residual improved <{self.min_improvement:.1%} over the "
                        f"last {self.window} samples ({first:.3g} -> {last:.3g})"
                    ),
                )
            ]
        return []


class DivergenceDetector(_ResidualWindow):
    """Residual grew by ``growth_factor`` over its windowed minimum."""

    kind = "divergence"

    def __init__(
        self,
        window: int = 6,
        growth_factor: float = 10.0,
        cooldown: int = 5,
    ) -> None:
        super().__init__(window=window, cooldown=cooldown)
        self.growth_factor = float(growth_factor)

    def _check(self, snap: "LiveSnapshot") -> List[Alert]:
        if not self._push(snap):
            return []
        lo = min(v for _, v in self._series)
        last = self._series[-1][1]
        threshold = lo * self.growth_factor
        if lo > 0.0 and last > threshold:
            return [
                Alert(
                    kind=self.kind,
                    t_wall=snap.t_wall,
                    t_event=snap.t_event,
                    value=last,
                    threshold=threshold,
                    message=(
                        f"residual grew {last / lo:.1f}x over its windowed "
                        f"minimum {lo:.3g}"
                    ),
                    severity="critical",
                )
            ]
        return []


class OscillationDetector(_ResidualWindow):
    """Residual alternates direction with significant amplitude.

    ``min_flips`` direction changes within the window, each leg moving
    by at least ``min_amplitude`` relatively, reads as instability —
    the precursor of divergence under too-aggressive asynchrony.
    """

    kind = "oscillation"

    def __init__(
        self,
        window: int = 8,
        min_flips: int = 4,
        min_amplitude: float = 0.05,
        cooldown: int = 10,
    ) -> None:
        super().__init__(window=window, cooldown=cooldown)
        self.min_flips = int(min_flips)
        self.min_amplitude = float(min_amplitude)

    def _check(self, snap: "LiveSnapshot") -> List[Alert]:
        if not self._push(snap):
            return []
        values = [v for _, v in self._series]
        flips = 0
        prev_dir = 0
        for a, b in zip(values, values[1:]):
            if a <= 0.0:
                continue
            rel = (b - a) / a
            if abs(rel) < self.min_amplitude:
                continue
            direction = 1 if rel > 0 else -1
            if prev_dir and direction != prev_dir:
                flips += 1
            prev_dir = direction
        if flips >= self.min_flips:
            return [
                Alert(
                    kind=self.kind,
                    t_wall=snap.t_wall,
                    t_event=snap.t_event,
                    value=float(flips),
                    threshold=float(self.min_flips),
                    message=(
                        f"residual direction flipped {flips}x (>= "
                        f"{self.min_amplitude:.0%} legs) within {self.window} samples"
                    ),
                )
            ]
        return []


class StalenessDetector(Detector):
    """Observed read staleness crossed the configured delay bound δ.

    The paper's convergence results assume bounded delay; crossing
    ``delta * factor`` live means the run left the regime its
    configuration was chosen for.  Fires again only when the observed
    maximum grows past the last reported one.
    """

    kind = "staleness_spike"

    def __init__(self, delta: float, factor: float = 1.0, cooldown: int = 5) -> None:
        super().__init__(cooldown=cooldown)
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)
        self.factor = float(factor)
        self._reported = 0.0

    def _observe(self, snap: "LiveSnapshot") -> None:
        pass  # no window to maintain

    def _check(self, snap: "LiveSnapshot") -> List[Alert]:
        bound = self.delta * self.factor
        observed = snap.staleness_max
        if observed > bound and observed > self._reported:
            self._reported = observed
            return [
                Alert(
                    kind=self.kind,
                    t_wall=snap.t_wall,
                    t_event=snap.t_event,
                    value=observed,
                    threshold=bound,
                    message=(
                        f"max read staleness {observed:g} epochs exceeds the "
                        f"delta bound {bound:g}"
                    ),
                )
            ]
        return []


class HeartbeatGapDetector(Detector):
    """One worker's buffer went quiet while its peers kept moving.

    Judged on the collector's wall clock from ``heartbeat_age`` (time
    since each worker's last recorded event): an outlier is a worker
    whose age exceeds ``factor`` times the median peer age and the
    absolute floor ``min_gap_s``.  Fires once per quiet spell per
    worker; a worker that resumes recording re-arms its alarm.
    """

    kind = "heartbeat_gap"

    def __init__(
        self, factor: float = 5.0, min_gap_s: float = 0.5, cooldown: int = 0
    ) -> None:
        super().__init__(cooldown=cooldown)
        self.factor = float(factor)
        self.min_gap_s = float(min_gap_s)
        self._flagged: Dict[Union[int, str], bool] = {}

    def _observe(self, snap: "LiveSnapshot") -> None:
        pass

    def _check(self, snap: "LiveSnapshot") -> List[Alert]:
        ages = snap.heartbeat_age
        if len(ages) < 2:
            return []
        ordered = sorted(ages.values())
        median = ordered[len(ordered) // 2]
        threshold = max(self.min_gap_s, self.factor * median)
        alerts: List[Alert] = []
        for worker, age in ages.items():
            if age > threshold:
                if not self._flagged.get(worker, False):
                    self._flagged[worker] = True
                    alerts.append(
                        Alert(
                            kind=self.kind,
                            t_wall=snap.t_wall,
                            t_event=snap.t_event,
                            value=age,
                            threshold=threshold,
                            message=(
                                f"worker {worker!r} silent for {age:.2f}s "
                                f"(median peer age {median:.3f}s)"
                            ),
                            grid=snap.worker_grids.get(worker, -1),
                            worker=worker,
                        )
                    )
            else:
                self._flagged[worker] = False
        return alerts


def default_detectors(delta: Optional[float] = None) -> List[Detector]:
    """The stock panel: stagnation + divergence + oscillation +
    heartbeat gaps, plus the staleness check when a δ bound is given."""
    dets: List[Detector] = [
        StagnationDetector(),
        DivergenceDetector(),
        OscillationDetector(),
        HeartbeatGapDetector(),
    ]
    if delta is not None:
        dets.append(StalenessDetector(delta))
    return dets


def alerts_by_kind(alerts: Sequence[Alert]) -> Dict[str, int]:
    """Head-count per alert kind (the snapshot/summary census shape)."""
    out: Dict[str, int] = {}
    for a in alerts:
        out[a.kind] = out.get(a.kind, 0) + 1
    return out
