"""Multigrid hierarchy setup driver.

Mirrors the BoomerAMG configurations the paper uses:

- "HMIS coarsening with one aggressive level, classical modified
  interpolation" (convergence figures), and
- "HMIS coarsening with two aggressive levels" (Table I).

Aggressive levels use :func:`repro.amg.aggressive.aggressive_coarsening`
plus multipass interpolation (distance-1 interpolation cannot reach all
F-points there); the remaining levels use the configured coarsener and
classical modified interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr
from .aggressive import aggressive_coarsening
from .coarsen import CPOINT, hmis_coarsening, pmis_coarsening, rs_coarsening
from .galerkin import galerkin_product
from .interp import (
    classical_interpolation,
    direct_interpolation,
    multipass_interpolation,
    truncate_interpolation,
)
from .strength import classical_strength

__all__ = ["SetupOptions", "AMGLevel", "Hierarchy", "setup_hierarchy"]


@dataclass(frozen=True)
class SetupOptions:
    """AMG setup parameters (paper defaults).

    Attributes
    ----------
    theta:
        Strength threshold (0.25, BoomerAMG default).
    strength_norm:
        ``"min"`` (classical) or ``"abs"`` — use ``"abs"`` for
        elasticity, whose off-diagonals change sign.
    coarsen_type:
        ``"hmis"`` (paper), ``"pmis"`` or ``"rs"``.
    aggressive_levels:
        Number of finest levels coarsened aggressively (0, 1 or 2 in
        the paper).
    npaths:
        Path-count threshold for aggressive second-pass strength.
    interp_type:
        ``"classical"`` (modified classical, the paper's choice) or
        ``"direct"``.  Aggressive levels always use multipass.
    trunc_factor / max_per_row:
        Interpolation truncation (0 disables).
    max_levels / max_coarse:
        Hierarchy depth limits: stop when the coarse grid has at most
        ``max_coarse`` rows or ``max_levels`` is reached.
    nparts:
        Block count of HMIS's one-pass-RS stage (models per-processor
        domains).
    seed:
        Seed for PMIS/HMIS random tie-breaking.
    num_functions:
        Unknown-based systems AMG (BoomerAMG's ``num_functions``):
        with ``k > 1`` the dofs are assumed interleaved over ``k``
        physical unknowns (e.g. the 3 displacement components of
        elasticity) and the *setup* — strength, coarsening,
        interpolation — only sees same-unknown couplings, while the
        Galerkin product keeps the full cross couplings.  This is the
        standard classical-AMG treatment of elasticity; without it the
        scalar setup mixes components and the coarse correction stalls.
    """

    theta: float = 0.25
    strength_norm: str = "min"
    coarsen_type: str = "hmis"
    aggressive_levels: int = 1
    npaths: int = 1
    interp_type: str = "classical"
    trunc_factor: float = 0.0
    max_per_row: int = 0
    max_levels: int = 25
    max_coarse: int = 40
    nparts: int = 8
    seed: int = 0
    num_functions: int = 1


@dataclass
class AMGLevel:
    """One level of the hierarchy.

    ``A`` is the operator on this level; ``P`` interpolates from the
    *next coarser* level to this one (``None`` on the coarsest level);
    ``R = P.T`` is the matching restriction; ``splitting`` is the C/F
    split used to build ``P``.
    """

    A: sp.csr_matrix
    P: Optional[sp.csr_matrix] = None
    R: Optional[sp.csr_matrix] = None
    splitting: Optional[np.ndarray] = None
    functions: Optional[np.ndarray] = None
    """Unknown id per dof (systems AMG); ``None`` for scalar problems."""

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def nnz(self) -> int:
        return int(self.A.nnz)


@dataclass
class Hierarchy:
    """A multigrid hierarchy: ``levels[0]`` is the finest grid."""

    levels: List[AMGLevel] = field(default_factory=list)
    options: SetupOptions = field(default_factory=SetupOptions)

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    @property
    def coarsest(self) -> int:
        """Index of the coarsest grid (the paper's ``l``)."""
        return self.nlevels - 1

    def operator_complexity(self) -> float:
        """Sum of level nnz over fine nnz (standard AMG cost metric)."""
        fine = self.levels[0].nnz
        return sum(lv.nnz for lv in self.levels) / fine if fine else 0.0

    def grid_complexity(self) -> float:
        """Sum of level sizes over fine size."""
        fine = self.levels[0].n
        return sum(lv.n for lv in self.levels) / fine if fine else 0.0

    def interpolate_to_fine(self, k: int, v: np.ndarray) -> np.ndarray:
        """Apply the multilevel interpolant ``P_k^0`` (paper II.B).

        ``P_k^0 = P_1^0 P_2^1 ... P_k^{k-1}`` applied factor by factor
        (never formed explicitly, as in the paper).
        """
        for j in range(k - 1, -1, -1):
            v = self.levels[j].P @ v
        return v

    def restrict_from_fine(self, k: int, v: np.ndarray) -> np.ndarray:
        """Apply ``(P_k^0)^T``: restrict a fine-grid vector to grid k."""
        for j in range(0, k):
            v = self.levels[j].R @ v
        return v

    def summary(self) -> str:
        lines = ["level       rows        nnz   coarsening ratio"]
        prev = None
        for i, lv in enumerate(self.levels):
            ratio = f"{prev / lv.n:10.2f}" if prev else "         -"
            lines.append(f"{i:5d} {lv.n:10d} {lv.nnz:10d} {ratio}")
            prev = lv.n
        lines.append(
            f"operator complexity {self.operator_complexity():.2f}, "
            f"grid complexity {self.grid_complexity():.2f}"
        )
        return "\n".join(lines)


def _coarsen(S, opts: SetupOptions, aggressive: bool, level_seed: int):
    if aggressive:
        return aggressive_coarsening(
            S,
            coarsener=opts.coarsen_type if opts.coarsen_type != "rs" else "hmis",
            npaths=opts.npaths,
            seed=level_seed,
            nparts=opts.nparts,
        )
    if opts.coarsen_type == "hmis":
        return hmis_coarsening(S, nparts=opts.nparts, seed=level_seed)
    if opts.coarsen_type == "pmis":
        return pmis_coarsening(S, seed=level_seed)
    if opts.coarsen_type == "rs":
        return rs_coarsening(S)
    raise ValueError(f"unknown coarsen_type {opts.coarsen_type!r}")


def _interpolate(A, S, splitting, opts: SetupOptions, aggressive: bool):
    if aggressive:
        P = multipass_interpolation(A, S, splitting)
    elif opts.interp_type == "classical":
        P = classical_interpolation(A, S, splitting)
    elif opts.interp_type == "direct":
        P = direct_interpolation(A, S, splitting)
    else:
        raise ValueError(f"unknown interp_type {opts.interp_type!r}")
    return truncate_interpolation(P, opts.trunc_factor, opts.max_per_row)


def _filter_cross_function(A: sp.csr_matrix, functions: np.ndarray) -> sp.csr_matrix:
    """Drop entries coupling different unknowns (unknown-based setup)."""
    A = as_csr(A)
    n = A.shape[0]
    rows = np.repeat(np.arange(n), np.diff(A.indptr))
    keep = functions[rows] == functions[A.indices]
    out = sp.csr_matrix(
        (A.data[keep], (rows[keep], A.indices[keep])), shape=A.shape
    )
    return as_csr(out)


def setup_hierarchy(
    A: sp.spmatrix,
    options: SetupOptions | None = None,
    functions: np.ndarray | None = None,
) -> Hierarchy:
    """Build a multigrid hierarchy for ``A``.

    Coarsening stops when the coarsest operator has at most
    ``options.max_coarse`` rows, ``max_levels`` is hit, or coarsening
    stalls (fewer than 10% of points eliminated — the stall guard keeps
    pathological strength graphs from looping).

    Parameters
    ----------
    functions:
        Explicit unknown id per dof for systems AMG; defaults to
        ``arange(n) % num_functions`` (node-major interleaving) when
        ``options.num_functions > 1``.
    """
    opts = options or SetupOptions()
    A = as_csr(A)
    if functions is None and opts.num_functions > 1:
        functions = np.arange(A.shape[0]) % opts.num_functions
    if functions is not None:
        functions = np.asarray(functions, dtype=np.int64)
        if functions.shape != (A.shape[0],):
            raise ValueError("functions must give one unknown id per dof")
    hier = Hierarchy(levels=[AMGLevel(A=A, functions=functions)], options=opts)
    while (
        hier.levels[-1].n > opts.max_coarse and hier.nlevels < opts.max_levels
    ):
        level = hier.levels[-1]
        k = hier.nlevels - 1
        aggressive = k < opts.aggressive_levels
        A_setup = (
            _filter_cross_function(level.A, level.functions)
            if level.functions is not None
            else level.A
        )
        S = classical_strength(A_setup, theta=opts.theta, norm=opts.strength_norm)
        splitting = _coarsen(S, opts, aggressive, level_seed=opts.seed + k)
        nc = int((splitting == CPOINT).sum())
        if nc == 0 or nc >= 0.9 * level.n:
            break  # coarsening stalled
        P = _interpolate(A_setup, S, splitting, opts, aggressive)
        level.P = P
        level.R = as_csr(P.T)
        level.splitting = splitting
        Ac = galerkin_product(level.A, P)
        coarse_functions = (
            level.functions[splitting == CPOINT]
            if level.functions is not None
            else None
        )
        hier.levels.append(AMGLevel(A=Ac, functions=coarse_functions))
    return hier
