"""Algebraic multigrid setup (BoomerAMG substitute).

The paper generates its prolongation and coarse-grid matrices with
BoomerAMG using HMIS coarsening (with 0/1/2 aggressive levels) and
classical modified interpolation.  This package implements the same
setup pipeline from scratch:

- :mod:`repro.amg.strength`   — classical strength of connection.
- :mod:`repro.amg.coarsen`    — Ruge-Stueben, PMIS and HMIS C/F splits.
- :mod:`repro.amg.aggressive` — aggressive (distance-2) coarsening.
- :mod:`repro.amg.interp`     — direct, classical-modified and
  multipass interpolation, plus truncation.
- :mod:`repro.amg.galerkin`   — the RAP triple product.
- :mod:`repro.amg.hierarchy`  — the level/hierarchy driver.
- :mod:`repro.amg.smoothed_interp` — the Multadd smoothed interpolants
  ``P_bar = G P``.
"""

from .strength import classical_strength, strength_transpose_counts
from .coarsen import (
    CPOINT,
    FPOINT,
    UNDECIDED,
    hmis_coarsening,
    pmis_coarsening,
    rs_coarsening,
    rs_first_pass,
    validate_cf_splitting,
)
from .aggressive import aggressive_coarsening, second_pass_strength
from .interp import (
    classical_interpolation,
    direct_interpolation,
    multipass_interpolation,
    truncate_interpolation,
)
from .galerkin import galerkin_product
from .hierarchy import AMGLevel, Hierarchy, SetupOptions, setup_hierarchy
from .smoothed_interp import smoothed_interpolants
from .aggregation import (
    rigid_body_modes,
    sa_strength,
    setup_sa_hierarchy,
    standard_aggregation,
)

__all__ = [
    "classical_strength",
    "strength_transpose_counts",
    "CPOINT",
    "FPOINT",
    "UNDECIDED",
    "rs_first_pass",
    "rs_coarsening",
    "pmis_coarsening",
    "hmis_coarsening",
    "validate_cf_splitting",
    "aggressive_coarsening",
    "second_pass_strength",
    "direct_interpolation",
    "classical_interpolation",
    "multipass_interpolation",
    "truncate_interpolation",
    "galerkin_product",
    "AMGLevel",
    "Hierarchy",
    "SetupOptions",
    "setup_hierarchy",
    "smoothed_interpolants",
    "rigid_body_modes",
    "sa_strength",
    "setup_sa_hierarchy",
    "standard_aggregation",
]
