"""C/F splittings: Ruge-Stueben, PMIS and HMIS coarsening.

Conventions
-----------
- ``S`` is the strength matrix from :mod:`repro.amg.strength`: row ``i``
  lists the points ``i`` *depends* on; column ``j`` lists the points
  ``j`` *influences*.
- A splitting is an int8 vector with values :data:`CPOINT` (1),
  :data:`FPOINT` (-1); :data:`UNDECIDED` (0) only appears internally.

Algorithms
----------
- :func:`rs_first_pass`  — the classical greedy first pass driven by
  the "influence" measure, with the standard measure updates.
- :func:`rs_coarsening`  — first pass + the second pass that promotes
  F-points so that every strong F-F pair shares a common C-point
  (required for pure classical interpolation).
- :func:`pmis_coarsening` — parallel modified independent set
  (De Sterck, Yang & Heys), vectorized by rounds.
- :func:`hmis_coarsening` — hybrid: one-pass RS inside each of
  ``nparts`` contiguous row blocks (the "processor domains" of
  BoomerAMG), then a PMIS sweep that resolves the remaining points.
  With ``nparts = 1`` this reduces to one-pass RS plus a PMIS cleanup,
  exactly the serial degeneration of BoomerAMG's HMIS.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr
from .strength import strength_transpose_counts

__all__ = [
    "CPOINT",
    "FPOINT",
    "UNDECIDED",
    "rs_first_pass",
    "rs_coarsening",
    "pmis_coarsening",
    "hmis_coarsening",
    "validate_cf_splitting",
]

CPOINT: int = 1
FPOINT: int = -1
UNDECIDED: int = 0


def _csr_rows(M: sp.csr_matrix, i: int) -> np.ndarray:
    return M.indices[M.indptr[i] : M.indptr[i + 1]]


def rs_first_pass(
    S: sp.csr_matrix,
    allowed: np.ndarray | None = None,
    splitting: np.ndarray | None = None,
) -> np.ndarray:
    """Classical Ruge-Stueben first pass.

    Greedily picks the undecided point with the largest measure
    (number of undecided/F points it strongly influences) as a C-point,
    turns its undecided strong dependents into F-points, and increments
    the measures of points those new F-points depend on.

    Parameters
    ----------
    S:
        Strength matrix.
    allowed:
        Optional boolean mask restricting which points this pass may
        decide (used by HMIS to coarsen one block at a time).  Strong
        connections to points outside the mask are ignored.
    splitting:
        Optional pre-existing splitting to continue from (modified in
        place and returned).

    Returns
    -------
    int8 splitting; points not in ``allowed`` (or unreachable isolated
    points) may remain :data:`UNDECIDED`.
    """
    S = as_csr(S)
    ST = as_csr(S.T)
    n = S.shape[0]
    if splitting is None:
        splitting = np.full(n, UNDECIDED, dtype=np.int8)
    if allowed is None:
        allowed = np.ones(n, dtype=bool)
    else:
        allowed = np.asarray(allowed, dtype=bool)

    def in_scope(j: int) -> bool:
        return bool(allowed[j])

    measure = np.zeros(n, dtype=np.int64)
    base = strength_transpose_counts(S)
    for i in range(n):
        if allowed[i] and splitting[i] == UNDECIDED:
            # count only influences on points within scope
            infl = _csr_rows(ST, i)
            measure[i] = int(np.count_nonzero(allowed[infl])) if infl.size else 0
    # Isolated in-scope points (no influences at all) become F directly:
    # nothing interpolates from them and nothing needs them.
    for i in range(n):
        if allowed[i] and splitting[i] == UNDECIDED and base[i] == 0:
            row = _csr_rows(S, i)
            if row.size == 0:
                splitting[i] = FPOINT

    heap: List[Tuple[int, int]] = [
        (-int(measure[i]), i)
        for i in range(n)
        if allowed[i] and splitting[i] == UNDECIDED
    ]
    heapq.heapify(heap)

    while heap:
        neg_m, i = heapq.heappop(heap)
        if splitting[i] != UNDECIDED or -neg_m != measure[i]:
            continue  # stale heap entry
        if measure[i] <= 0:
            # No undecided in-scope point depends on i: useless as a
            # C-point.  In block (HMIS) mode leave it for the PMIS
            # cleanup — its strong connections may cross the block
            # boundary; in full-domain mode it is a plain F-point.
            continue
        splitting[i] = CPOINT
        # Strong dependents of the new C-point become F.
        for j in _csr_rows(ST, i):
            if in_scope(j) and splitting[j] == UNDECIDED:
                splitting[j] = FPOINT
                # Each point the new F-point depends on becomes more
                # attractive as a C-point.
                for k in _csr_rows(S, j):
                    if in_scope(k) and splitting[k] == UNDECIDED:
                        measure[k] += 1
                        heapq.heappush(heap, (-int(measure[k]), k))
        # The points i depends on lose one potential dependent.
        for k in _csr_rows(S, i):
            if in_scope(k) and splitting[k] == UNDECIDED:
                measure[k] -= 1
                heapq.heappush(heap, (-int(measure[k]), k))
    return splitting


def _second_pass(S: sp.csr_matrix, splitting: np.ndarray) -> np.ndarray:
    """RS second pass: every strong F-F pair must share a C-point.

    Scans F-points; when a strong F-F connection has no common strong
    C-neighbour, the tentative fix of promoting the *neighbour* to C is
    applied (the textbook heuristic, which slightly over-coarsens
    compared to Ruge & Stueben's full tentative logic but preserves the
    interpolation invariant).
    """
    S = as_csr(S)
    n = S.shape[0]
    for i in range(n):
        if splitting[i] != FPOINT:
            continue
        row_i = _csr_rows(S, i)
        if row_i.size == 0:
            continue
        ci = set(int(c) for c in row_i[splitting[row_i] == CPOINT])
        for j in row_i[splitting[row_i] == FPOINT]:
            row_j = _csr_rows(S, int(j))
            cj = row_j[splitting[row_j] == CPOINT]
            if not ci.intersection(int(c) for c in cj):
                splitting[j] = CPOINT
                ci.add(int(j))
    return splitting


def rs_coarsening(S: sp.csr_matrix) -> np.ndarray:
    """Full classical Ruge-Stueben coarsening (first + second pass)."""
    splitting = rs_first_pass(S)
    splitting[splitting == UNDECIDED] = FPOINT
    return _second_pass(S, splitting)


def pmis_coarsening(
    S: sp.csr_matrix,
    seed: int = 0,
    splitting: np.ndarray | None = None,
) -> np.ndarray:
    """PMIS coarsening, vectorized by independent-set rounds.

    ``w(i) = lambda(i) + sigma(i)`` with ``sigma`` uniform in (0, 1);
    each round the undecided points that dominate their whole strong
    neighbourhood become C, then undecided points strongly depending on
    a new C become F.

    A pre-seeded ``splitting`` (from HMIS's RS block pass) is honoured:
    existing C-points immediately F-ify their undecided dependents.
    """
    S = as_csr(S)
    n = S.shape[0]
    ST = as_csr(S.T)
    rng = np.random.default_rng(seed)
    lam = strength_transpose_counts(S).astype(np.float64)
    w = lam + rng.uniform(0.0, 1.0, size=n)

    if splitting is None:
        splitting = np.full(n, UNDECIDED, dtype=np.int8)
    else:
        splitting = np.asarray(splitting, dtype=np.int8).copy()

    sym = as_csr(((S + ST) > 0).astype(np.float64))  # undirected strong graph

    # Points that influence nothing and depend on nothing: F.
    isolated = (np.diff(S.indptr) == 0) & (np.diff(ST.indptr) == 0)
    splitting[(splitting == UNDECIDED) & isolated] = FPOINT
    # Points with zero influence measure cannot be selected as C by the
    # w-domination rule unless nothing around them can either; PMIS
    # makes lambda == 0 points F up front.
    zero_lam = lam == 0
    splitting[(splitting == UNDECIDED) & zero_lam & ~isolated] = FPOINT

    # Seeded C-points F-ify their undecided strong dependents.
    cpts = np.flatnonzero(splitting == CPOINT)
    if cpts.size:
        dep = np.unique(ST[cpts].indices)
        mask = splitting[dep] == UNDECIDED
        splitting[dep[mask]] = FPOINT

    max_rounds = n + 1
    for _ in range(max_rounds):
        und = splitting == UNDECIDED
        if not und.any():
            break
        # Max of w over strong neighbours (undirected), undecided only.
        w_eff = np.where(und, w, -np.inf)
        neigh_max = np.full(n, -np.inf)
        rows = np.repeat(np.arange(n), np.diff(sym.indptr))
        np.maximum.at(neigh_max, rows, w_eff[sym.indices])
        new_c = und & (w > neigh_max)
        if not new_c.any():
            # Only possible if two undecided points tie exactly —
            # probability zero with random sigma, but guard anyway.
            i = int(np.flatnonzero(und)[0])
            new_c = np.zeros(n, dtype=bool)
            new_c[i] = True
        splitting[new_c] = CPOINT
        # Undecided strong dependents of new C-points become F.
        influenced = ST[np.flatnonzero(new_c)].indices
        if influenced.size:
            inf_idx = np.unique(influenced)
            mask = splitting[inf_idx] == UNDECIDED
            splitting[inf_idx[mask]] = FPOINT
    return splitting


def hmis_coarsening(
    S: sp.csr_matrix, nparts: int = 8, seed: int = 0
) -> np.ndarray:
    """HMIS coarsening: blockwise one-pass RS + global PMIS resolution.

    The row set is split into ``nparts`` contiguous blocks ("processor
    domains").  RS first pass runs independently inside each block with
    cross-block strong connections masked out; the resulting C-points
    seed a global PMIS pass that decides everything still undecided
    (in particular points whose neighbourhood straddles blocks).
    """
    S = as_csr(S)
    n = S.shape[0]
    # Keep blocks large enough that the interior RS pass is meaningful;
    # tiny blocks would push everything to the PMIS stage anyway.
    nparts = max(1, min(nparts, n // 128 if n >= 256 else 1))
    splitting = np.full(n, UNDECIDED, dtype=np.int8)
    bounds = np.linspace(0, n, nparts + 1).astype(np.int64)
    for p in range(nparts):
        lo, hi = int(bounds[p]), int(bounds[p + 1])
        if hi <= lo:
            continue
        allowed = np.zeros(n, dtype=bool)
        allowed[lo:hi] = True
        rs_first_pass(S, allowed=allowed, splitting=splitting)
    # Interior F decisions from the block pass stand; PMIS resolves the
    # rest.  F-points adjacent to nothing strong stay F.
    return pmis_coarsening(S, seed=seed, splitting=splitting)


def validate_cf_splitting(
    S: sp.csr_matrix, splitting: np.ndarray, require_common_c: bool = False
) -> None:
    """Sanity checks for a C/F splitting; raises ``ValueError`` on failure.

    Checks: every point decided; every F-point with strong connections
    has at least one strong C-neighbour (unless it has no strong
    connections at all); optionally the RS second-pass invariant that
    strong F-F pairs share a common C-point.
    """
    S = as_csr(S)
    n = S.shape[0]
    splitting = np.asarray(splitting)
    if splitting.shape != (n,):
        raise ValueError("splitting has wrong length")
    if np.any(splitting == UNDECIDED):
        raise ValueError("undecided points remain")
    if not np.all(np.isin(splitting, (CPOINT, FPOINT))):
        raise ValueError("splitting contains values other than C/F")
    for i in range(n):
        if splitting[i] != FPOINT:
            continue
        row = _csr_rows(S, i)
        if row.size == 0:
            continue
        crow = row[splitting[row] == CPOINT]
        if crow.size == 0:
            raise ValueError(f"F-point {i} has strong connections but no C-neighbour")
        if require_common_c:
            ci = set(int(c) for c in crow)
            for j in row[splitting[row] == FPOINT]:
                rj = _csr_rows(S, int(j))
                cj = rj[splitting[rj] == CPOINT]
                if not ci.intersection(int(c) for c in cj):
                    raise ValueError(
                        f"strong F-F pair ({i}, {int(j)}) shares no C-point"
                    )
