"""Smoothed interpolants for Multadd.

Multadd (Section II.B.1) replaces the plain two-level interpolants with
``P_bar^k_{k+1} = G_k P^k_{k+1}`` where ``G_k = I - M_k^{-1} A_k`` is
the smoothing iteration matrix.  The paper keeps the interpolants
sparse by always using a *diagonal* smoothing matrix here (omega-Jacobi
or l1-Jacobi), even when the cycle's smoother Lambda_k is a hybrid or
asynchronous method — we reproduce that choice.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr, l1_row_norms
from .hierarchy import Hierarchy

__all__ = ["smoothed_two_level_interpolant", "smoothed_interpolants"]


def smoothed_two_level_interpolant(
    A: sp.csr_matrix,
    P: sp.csr_matrix,
    kind: str = "jacobi",
    weight: float = 0.9,
) -> sp.csr_matrix:
    """``P_bar = (I - omega D^{-1} A) P`` for a diagonal smoother.

    Parameters
    ----------
    kind:
        ``"jacobi"`` — ``D`` is the matrix diagonal scaled by
        ``1/weight``; ``"l1_jacobi"`` — ``D`` holds the l1 row norms
        (and ``weight`` is ignored, matching the paper's l1 smoother).
    """
    A = as_csr(A)
    P = as_csr(P)
    if kind == "jacobi":
        d = A.diagonal()
        if np.any(d == 0.0):
            raise ValueError("zero diagonal entry")
        dinv = weight / d
    elif kind == "l1_jacobi":
        d = l1_row_norms(A)
        if np.any(d == 0.0):
            raise ValueError("zero l1 row norm")
        dinv = 1.0 / d
    else:
        raise ValueError(f"unknown smoothed-interpolant kind {kind!r}")
    GP = P - sp.diags(dinv) @ (A @ P)
    return as_csr(GP)


def smoothed_interpolants(
    hierarchy: Hierarchy, kind: str = "jacobi", weight: float = 0.9
) -> List[sp.csr_matrix]:
    """Per-level smoothed interpolants ``P_bar^k_{k+1}`` for Multadd.

    Returns one matrix per non-coarsest level; the multilevel smoothed
    interpolant ``P_bar_k^0`` is applied factor by factor, exactly like
    the plain ``P_k^0`` (the paper never forms products explicitly).
    """
    out = []
    for lv in hierarchy.levels[:-1]:
        if lv.P is None:
            raise ValueError("hierarchy level missing interpolation")
        out.append(
            smoothed_two_level_interpolant(lv.A, lv.P, kind=kind, weight=weight)
        )
    return out
