"""Classical strength of connection.

Point ``i`` strongly depends on ``j`` when

    -a_ij >= theta * max_{k != i} (-a_ik)            (classical)

or, in the absolute-value variant used for matrices that are not
M-matrices (e.g. elasticity),

    |a_ij| >= theta * max_{k != i} |a_ik|.

The strength matrix ``S`` is returned as a boolean-pattern CSR matrix
(data all ones, no diagonal): ``S[i, j] != 0`` means *i strongly
depends on j*.  Column ``j`` of ``S`` (row ``j`` of ``S^T``) therefore
lists the points that strongly depend on ``j`` — the "strong
transpose" count used by PMIS/HMIS measures.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr

__all__ = ["classical_strength", "strength_transpose_counts"]


def classical_strength(
    A: sp.csr_matrix, theta: float = 0.25, norm: str = "min"
) -> sp.csr_matrix:
    """Classical strength-of-connection matrix.

    Parameters
    ----------
    A:
        Square sparse matrix.
    theta:
        Strength threshold in ``[0, 1]``; BoomerAMG's default 0.25 is
        ours too.
    norm:
        ``"min"`` — classical definition based on the most negative
        off-diagonal (``-a_ij`` against ``max(-a_ik)``); positive
        off-diagonals are never strong.
        ``"abs"`` — absolute-value variant.

    Returns
    -------
    Boolean-pattern CSR strength matrix (no diagonal).  Rows whose
    off-diagonal entries are all weak (e.g. already-isolated points)
    come out empty, which coarsening interprets as "keep as F with no
    interpolation dependencies" (the point smooths its own error).
    """
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    if norm not in ("min", "abs"):
        raise ValueError(f"norm must be 'min' or 'abs', got {norm!r}")
    A = as_csr(A)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("strength needs a square matrix")

    rows = np.repeat(np.arange(n), np.diff(A.indptr))
    offdiag = rows != A.indices
    vals = A.data.copy()
    if norm == "min":
        score = np.where(offdiag, -vals, -np.inf)
    else:
        score = np.where(offdiag, np.abs(vals), -np.inf)

    # Row-wise max of the score over off-diagonal entries.
    rowmax = np.full(n, -np.inf)
    np.maximum.at(rowmax, rows, score)
    # Rows with no admissible off-diagonal connection: threshold +inf
    # so nothing is strong there.
    thresh = np.where(np.isfinite(rowmax) & (rowmax > 0), theta * rowmax, np.inf)

    strong = offdiag & (score >= thresh[rows]) & (score > 0)
    S = sp.csr_matrix(
        (np.ones(int(strong.sum())), (rows[strong], A.indices[strong])),
        shape=(n, n),
    )
    return as_csr(S)


def strength_transpose_counts(S: sp.csr_matrix) -> np.ndarray:
    """Number of points strongly *influenced* by each point.

    ``counts[j] = |{i : S[i, j] != 0}|`` — the PMIS/HMIS base measure
    ("how useful would j be as a C-point").
    """
    S = as_csr(S)
    counts = np.zeros(S.shape[1], dtype=np.int64)
    np.add.at(counts, S.indices, 1)
    return counts
