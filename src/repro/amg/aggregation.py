"""Smoothed-aggregation AMG (extension beyond the paper).

The paper's BoomerAMG setup is *classical* AMG, whose interpolation only
represents constants — the root cause of its weakness on elasticity
(Table I's hardest block).  Smoothed aggregation (Vanek, Mandel &
Brezina) fixes that by building interpolation from an explicit
*near-nullspace* basis ``B`` (rigid-body modes for elasticity):

1. strength:   ``|a_ij| > theta * sqrt(a_ii a_jj)`` (symmetric SA test);
2. aggregation: greedy standard aggregation on the node graph (vector
   problems aggregate nodes, keeping each node's dofs together);
3. tentative prolongator ``T``: per aggregate, an orthonormal basis of
   the restricted near-nullspace (local QR); the R factors stack into
   the *coarse* near-nullspace;
4. prolongator smoothing: ``P = (I - omega D^{-1} A) T`` with
   ``omega = 4 / (3 lambda_max(D^{-1}A))``;
5. Galerkin product and recursion.

The produced :class:`~repro.amg.hierarchy.Hierarchy` is plug-compatible
with every solver and asynchronous engine, so the ablation benchmarks
can ask: does asynchronous Multadd keep its advantages when the setup
actually handles elasticity?
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr, csr_diagonal, estimate_rho
from .galerkin import galerkin_product
from .hierarchy import AMGLevel, Hierarchy, SetupOptions

__all__ = [
    "sa_strength",
    "standard_aggregation",
    "tentative_prolongator",
    "smoothed_prolongator",
    "setup_sa_hierarchy",
    "rigid_body_modes",
]


def sa_strength(A: sp.csr_matrix, theta: float = 0.08) -> sp.csr_matrix:
    """Symmetric SA strength: keep ``|a_ij| > theta sqrt(a_ii a_jj)``."""
    if not 0.0 <= theta < 1.0:
        raise ValueError("theta must be in [0, 1)")
    A = as_csr(A)
    n = A.shape[0]
    d = np.abs(csr_diagonal(A))
    rows = np.repeat(np.arange(n), np.diff(A.indptr))
    cols = A.indices
    keep = (rows != cols) & (
        np.abs(A.data) > theta * np.sqrt(d[rows] * d[cols])
    )
    S = sp.csr_matrix((np.ones(int(keep.sum())), (rows[keep], cols[keep])), shape=A.shape)
    return as_csr(S)


def _block_condense(A: sp.csr_matrix, block_size: int) -> sp.csr_matrix:
    """Node-graph condensation: max |entry| over each bs x bs block."""
    A = as_csr(A)
    n = A.shape[0]
    if n % block_size != 0:
        raise ValueError(f"matrix size {n} not divisible by block size {block_size}")
    nn = n // block_size
    coo = A.tocoo()
    C = sp.coo_matrix(
        (np.abs(coo.data), (coo.row // block_size, coo.col // block_size)),
        shape=(nn, nn),
    )
    # duplicate entries sum; for a strength graph max vs sum is an
    # immaterial scaling, so the summed magnitudes are fine.
    return as_csr(C.tocsr())


def standard_aggregation(S: sp.csr_matrix) -> np.ndarray:
    """Greedy standard aggregation (Vanek's three passes).

    Returns an aggregate id per node; every node is assigned (isolated
    nodes become singleton aggregates).
    """
    S = as_csr(S)
    n = S.shape[0]
    agg = -np.ones(n, dtype=np.int64)
    next_id = 0

    def neighbors(i: int) -> np.ndarray:
        return S.indices[S.indptr[i] : S.indptr[i + 1]]

    # Pass 1: seed aggregates from nodes with fully-free neighborhoods.
    for i in range(n):
        if agg[i] != -1:
            continue
        nb = neighbors(i)
        if nb.size and np.all(agg[nb] == -1):
            agg[i] = next_id
            agg[nb] = next_id
            next_id += 1
    # Pass 2: attach leftover nodes to an adjacent aggregate.
    attach = agg.copy()
    for i in range(n):
        if agg[i] != -1:
            continue
        nb = neighbors(i)
        hit = nb[agg[nb] != -1] if nb.size else np.empty(0, dtype=np.int64)
        if hit.size:
            attach[i] = agg[hit[0]]
    agg = attach
    # Pass 3: remaining nodes form aggregates among themselves.
    for i in range(n):
        if agg[i] != -1:
            continue
        agg[i] = next_id
        for j in neighbors(i):
            if agg[j] == -1:
                agg[j] = next_id
        next_id += 1
    return agg


def tentative_prolongator(
    agg: np.ndarray, B: np.ndarray, block_size: int = 1
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Per-aggregate QR of the near-nullspace.

    Parameters
    ----------
    agg:
        Aggregate id per *node*; dof ``i`` belongs to node
        ``i // block_size``.
    B:
        ``(n_dofs, k)`` near-nullspace basis.

    Returns
    -------
    T:
        Tentative prolongator; aggregate ``g`` contributes
        ``min(k, dofs_in_g)`` orthonormal columns.
    B_coarse:
        Stacked R factors — the coarse near-nullspace.
    """
    B = np.atleast_2d(np.asarray(B, dtype=np.float64))
    if B.ndim != 2:
        raise ValueError("B must be 2-D")
    n, k = B.shape
    nagg = int(agg.max()) + 1
    rows_out, cols_out, vals_out = [], [], []
    b_rows: List[np.ndarray] = []
    col_off = 0
    for g in range(nagg):
        nodes = np.flatnonzero(agg == g)
        dofs = (
            (block_size * nodes[:, None] + np.arange(block_size)).ravel()
            if block_size > 1
            else nodes
        )
        Bg = B[dofs]
        Q, R = np.linalg.qr(Bg)  # Q: (m, r), R: (r, k), r = min(m, k)
        r = Q.shape[1]
        # Guard zero columns (e.g. an aggregate where a rotation mode
        # vanishes): drop numerically-null directions.
        norms = np.abs(np.diag(R[:, :r])) if r else np.empty(0)
        keep = norms > 1e-12 * max(1.0, np.abs(R).max())
        Q = Q[:, keep]
        Rk = R[keep]
        r = Q.shape[1]
        if r == 0:
            # Degenerate aggregate: fall back to a constant column.
            Q = np.ones((dofs.size, 1)) / np.sqrt(dofs.size)
            Rk = np.zeros((1, k))
            r = 1
        for c in range(r):
            rows_out.extend(dofs.tolist())
            cols_out.extend([col_off + c] * dofs.size)
            vals_out.extend(Q[:, c].tolist())
        b_rows.append(Rk)
        col_off += r
    T = sp.csr_matrix(
        (np.array(vals_out), (np.array(rows_out), np.array(cols_out))),
        shape=(n, col_off),
    )
    return as_csr(T), np.vstack(b_rows)


def smoothed_prolongator(
    A: sp.csr_matrix, T: sp.csr_matrix, omega: Optional[float] = None
) -> sp.csr_matrix:
    """``P = (I - omega D^{-1} A) T``; default ``omega = 4/(3 lmax)``."""
    A = as_csr(A)
    d = csr_diagonal(A)
    dinv = 1.0 / d
    if omega is None:
        lmax = estimate_rho(lambda v: dinv * (A @ v), n=A.shape[0], iters=30)
        omega = 4.0 / (3.0 * max(lmax, 1e-300))
    P = T - sp.diags(omega * dinv) @ (A @ T)
    return as_csr(P.tocsr())


def rigid_body_modes(coords: np.ndarray) -> np.ndarray:
    """The six 3-D rigid-body modes on nodes at ``coords`` (m x 3).

    Returns a ``(3 m, 6)`` node-major basis: three translations and
    three infinitesimal rotations — the elasticity near-nullspace.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError("coords must be (m, 3)")
    m = coords.shape[0]
    B = np.zeros((3 * m, 6))
    x, y, z = coords[:, 0], coords[:, 1], coords[:, 2]
    for c in range(3):  # translations
        B[c::3, c] = 1.0
    B[0::3, 3], B[1::3, 3] = -y, x  # rotation about z: u = (-y, x, 0)
    B[1::3, 4], B[2::3, 4] = -z, y  # rotation about x: u = (0, -z, y)
    B[0::3, 5], B[2::3, 5] = z, -x  # rotation about y: u = (z, 0, -x)
    return B


def setup_sa_hierarchy(
    A: sp.spmatrix,
    B: Optional[np.ndarray] = None,
    theta: float = 0.08,
    block_size: int = 1,
    max_levels: int = 25,
    max_coarse: int = 60,
    smooth: bool = True,
) -> Hierarchy:
    """Build a smoothed-aggregation hierarchy.

    Parameters
    ----------
    B:
        Near-nullspace basis (default: the constant vector).  For
        elasticity pass :func:`rigid_body_modes` of the free nodes'
        coordinates with ``block_size=3``.
    smooth:
        ``False`` gives plain (unsmoothed) aggregation — much sparser
        interpolation, worse rates; exposed for the ablation bench.
    """
    A = as_csr(A)
    n = A.shape[0]
    if B is None:
        B = np.ones((n, 1))
    B = np.atleast_2d(np.asarray(B, dtype=np.float64))
    if B.shape[0] != n:
        raise ValueError("near-nullspace rows must match matrix size")
    opts = SetupOptions(coarsen_type="hmis", aggressive_levels=0, theta=theta)
    hier = Hierarchy(levels=[AMGLevel(A=A)], options=opts)
    bs = block_size
    while hier.levels[-1].n > max_coarse and hier.nlevels < max_levels:
        level = hier.levels[-1]
        Ac_graph = _block_condense(level.A, bs) if bs > 1 else level.A
        # Coarse Galerkin operators of smoothed P spread their weight
        # over many small entries, so a fixed theta leaves the strength
        # graph empty and aggregation stalls at singletons; the usual
        # practice (PyAMG defaults) is to apply the drop test on the
        # finest level only.
        level_theta = theta if hier.nlevels == 1 else 0.0
        S = sa_strength(Ac_graph, theta=level_theta)
        agg = standard_aggregation(S)
        nagg = int(agg.max()) + 1
        if nagg >= Ac_graph.shape[0]:
            break  # aggregation stalled (all singletons)
        T, B_coarse = tentative_prolongator(agg, B, block_size=bs)
        P = smoothed_prolongator(level.A, T) if smooth else T
        level.P = P
        level.R = as_csr(P.T)
        hier.levels.append(AMGLevel(A=galerkin_product(level.A, P)))
        B = B_coarse
        bs = 1  # coarse dofs are aggregate-modes, no node blocks anymore
    if hier.nlevels < 2:
        raise ValueError("aggregation produced no coarse level")
    return hier
