"""Galerkin coarse-grid operators.

The paper (Section II.A) defines ``A_{k+1} = (P^k_{k+1})^T A_k
P^k_{k+1}`` with the restriction chosen as the transpose of the
interpolation — the variational (Galerkin) construction, which
preserves symmetry and positive-definiteness down the hierarchy.
"""

from __future__ import annotations

import scipy.sparse as sp

from ..linalg import as_csr

__all__ = ["galerkin_product"]


def galerkin_product(
    A: sp.csr_matrix, P: sp.csr_matrix, symmetrize: bool = True
) -> sp.csr_matrix:
    """Compute ``P^T A P``.

    ``symmetrize`` averages with the transpose to scrub the tiny
    floating-point asymmetry the sparse triple product introduces —
    important because smoother theory (and our SPD assertions) rely on
    exact symmetry.
    """
    A = as_csr(A)
    P = as_csr(P)
    if A.shape[1] != P.shape[0]:
        raise ValueError(f"shape mismatch: A {A.shape} vs P {P.shape}")
    Ac = (P.T @ A @ P).tocsr()
    if symmetrize:
        Ac = (Ac + Ac.T) * 0.5
    return as_csr(Ac)
