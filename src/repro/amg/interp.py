"""Interpolation (prolongation) operators.

Three interpolation schemes cover what the paper's BoomerAMG
configurations use:

- :func:`direct_interpolation` — the simple one-point-distance formula;
  the building block of multipass.
- :func:`classical_interpolation` — classical Ruge-Stueben
  interpolation in its *modified* form (BoomerAMG ``interp_type 0``):
  strong F-F connections are distributed through common C-points, with
  sign-aware weights, and strong F-neighbours sharing *no* common
  C-point are lumped into the diagonal instead of being dropped.
- :func:`multipass_interpolation` — for aggressive-coarsening levels,
  where F-points can be arbitrarily far from any C-point: interpolation
  is propagated outward from the C-points in passes.

All functions take the matrix ``A``, the strength matrix ``S`` and an
int8 C/F splitting and return ``P`` of shape ``(n, nc)`` whose C-rows
are identity.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr
from .coarsen import CPOINT, FPOINT

__all__ = [
    "direct_interpolation",
    "classical_interpolation",
    "multipass_interpolation",
    "truncate_interpolation",
]


def _coarse_map(splitting: np.ndarray) -> np.ndarray:
    """Map fine index -> coarse index for C-points (-1 for F-points)."""
    cmap = -np.ones(splitting.shape[0], dtype=np.int64)
    cpts = np.flatnonzero(splitting == CPOINT)
    cmap[cpts] = np.arange(cpts.size)
    return cmap


def _row(M: sp.csr_matrix, i: int):
    lo, hi = M.indptr[i], M.indptr[i + 1]
    return M.indices[lo:hi], M.data[lo:hi]


def _strong_set(S: sp.csr_matrix, i: int) -> np.ndarray:
    return S.indices[S.indptr[i] : S.indptr[i + 1]]


def direct_interpolation(
    A: sp.csr_matrix, S: sp.csr_matrix, splitting: np.ndarray
) -> sp.csr_matrix:
    """Direct interpolation with separate positive/negative scaling.

    For an F-point ``i`` with strong C-set ``C_i``::

        w_ij = -alpha_i * a_ij / a~_ii   (a_ij < 0)
        w_ij = -beta_i  * a_ij / a~_ii   (a_ij > 0)

    where ``alpha_i`` (resp. ``beta_i``) is the ratio of the full
    negative (positive) off-diagonal row sum to the negative (positive)
    sum over ``C_i``; when the row has positive off-diagonals but none
    of them is a strong C connection, the positive sum is lumped into
    the diagonal ``a~_ii`` instead.

    F-points with an empty strong C-set get a zero row (their error is
    handled purely by smoothing); aggressive coarsening produces such
    rows by design, and multipass interpolation fills them in.
    """
    A = as_csr(A)
    S = as_csr(S)
    splitting = np.asarray(splitting, dtype=np.int8)
    n = A.shape[0]
    cmap = _coarse_map(splitting)
    nc = int((splitting == CPOINT).sum())

    rows_out, cols_out, vals_out = [], [], []
    for i in range(n):
        if splitting[i] == CPOINT:
            rows_out.append(i)
            cols_out.append(cmap[i])
            vals_out.append(1.0)
            continue
        cols, vals = _row(A, i)
        mask_off = cols != i
        diag = float(vals[~mask_off][0]) if (~mask_off).any() else 0.0
        if diag == 0.0:
            raise ValueError(f"zero diagonal at row {i}")
        strong = _strong_set(S, i)
        strong_c = strong[splitting[strong] == CPOINT]
        if strong_c.size == 0:
            continue  # zero row
        sc_set = set(int(c) for c in strong_c)
        off_cols = cols[mask_off]
        off_vals = vals[mask_off]
        in_c = np.fromiter((int(c) in sc_set for c in off_cols), bool, off_cols.size)

        neg = off_vals < 0
        pos = off_vals > 0
        sum_neg_all = off_vals[neg].sum()
        sum_pos_all = off_vals[pos].sum()
        sum_neg_c = off_vals[neg & in_c].sum()
        sum_pos_c = off_vals[pos & in_c].sum()

        dtilde = diag
        alpha = sum_neg_all / sum_neg_c if sum_neg_c != 0.0 else 0.0
        if sum_pos_c != 0.0:
            beta = sum_pos_all / sum_pos_c
        else:
            beta = 0.0
            dtilde += sum_pos_all  # lump unmatched positive couplings
        if sum_neg_c == 0.0:
            dtilde += sum_neg_all

        sel = in_c & (neg | pos)
        w = np.where(off_vals[sel] < 0, alpha, beta) * off_vals[sel] / (-dtilde)
        keep = w != 0.0
        tgt = off_cols[sel][keep]
        rows_out.extend([i] * int(keep.sum()))
        cols_out.extend(cmap[tgt].tolist())
        vals_out.extend(w[keep].tolist())

    P = sp.csr_matrix(
        (np.array(vals_out), (np.array(rows_out, dtype=np.int64), np.array(cols_out, dtype=np.int64))),
        shape=(n, nc),
    )
    return as_csr(P)


def classical_interpolation(
    A: sp.csr_matrix, S: sp.csr_matrix, splitting: np.ndarray
) -> sp.csr_matrix:
    """Classical *modified* Ruge-Stueben interpolation.

    For F-point ``i`` with strong C-set ``C_i``, strong F-set ``F_i``
    and weak neighbours ``W_i``::

        w_ij = - ( a_ij + sum_{m in F_i} a_im * a~_mj / d_m ) / d_i
        d_m  = sum_{k in C_i} a~_mk
        d_i  = a_ii + sum_{n in W_i} a_in + sum_{m in F_i, d_m = 0} a_im

    where ``a~_mk`` keeps only entries whose sign is opposite to the
    diagonal ``a_mm`` (the standard sign filter), and the last sum is
    the *modification*: strong F-neighbours with no common C-point are
    lumped into the diagonal rather than dropped, which keeps row sums
    correct for near-null-space constants.
    """
    A = as_csr(A)
    S = as_csr(S)
    splitting = np.asarray(splitting, dtype=np.int8)
    n = A.shape[0]
    cmap = _coarse_map(splitting)
    nc = int((splitting == CPOINT).sum())
    diag_all = A.diagonal()

    rows_out, cols_out, vals_out = [], [], []
    for i in range(n):
        if splitting[i] == CPOINT:
            rows_out.append(i)
            cols_out.append(cmap[i])
            vals_out.append(1.0)
            continue
        cols, vals = _row(A, i)
        strong = set(int(s) for s in _strong_set(S, i))
        c_i = [int(c) for c in _strong_set(S, i) if splitting[c] == CPOINT]
        if not c_i:
            continue  # zero row; multipass handles aggressive levels
        c_set = set(c_i)
        w_acc = {c: 0.0 for c in c_i}
        d_i = 0.0
        for col, a_ij in zip(cols, vals):
            col = int(col)
            if col == i:
                d_i += a_ij
            elif col in c_set:
                w_acc[col] += a_ij
            elif col in strong and splitting[col] == FPOINT:
                # Distribute a_im over the common C-points of m and i.
                mcols, mvals = _row(A, col)
                sign = -1.0 if diag_all[col] > 0 else 1.0
                d_m = 0.0
                shares = []
                for mc, a_mk in zip(mcols, mvals):
                    mc = int(mc)
                    if mc in c_set and a_mk * sign > 0:
                        d_m += a_mk
                        shares.append((mc, a_mk))
                if d_m != 0.0:
                    for mc, a_mk in shares:
                        w_acc[mc] += a_ij * a_mk / d_m
                else:
                    d_i += a_ij  # modification: lump into diagonal
            else:
                d_i += a_ij  # weak connection
        if abs(d_i) < 1e-10 * abs(diag_all[i]):
            # Pathological cancellation (mixed-sign rows, e.g.
            # elasticity): retreat to the unlumped diagonal, which
            # keeps the row bounded at the cost of exact constants —
            # the same guard BoomerAMG applies.
            d_i = float(diag_all[i])
        for c in c_i:
            w = -w_acc[c] / d_i
            if w != 0.0:
                rows_out.append(i)
                cols_out.append(cmap[c])
                vals_out.append(w)

    P = sp.csr_matrix(
        (np.array(vals_out), (np.array(rows_out, dtype=np.int64), np.array(cols_out, dtype=np.int64))),
        shape=(n, nc),
    )
    return as_csr(P)


def multipass_interpolation(
    A: sp.csr_matrix, S: sp.csr_matrix, splitting: np.ndarray
) -> sp.csr_matrix:
    """Multipass interpolation for aggressive coarsening.

    Pass 1 applies :func:`direct_interpolation` to F-points that have a
    strong C-neighbour.  Each later pass interpolates the remaining
    F-points through strong neighbours interpolated in earlier passes::

        row_i = -(alpha_i / a_ii) * sum_{m} a_im * row_m

    with ``alpha_i`` the ratio of the full off-diagonal row sum to the
    sum over the used neighbours ``m`` (so constants are preserved).
    Stops when every F-point is covered or no progress is possible
    (any leftovers keep zero rows).
    """
    A = as_csr(A)
    S = as_csr(S)
    splitting = np.asarray(splitting, dtype=np.int8)
    n = A.shape[0]
    cmap = _coarse_map(splitting)
    nc = int((splitting == CPOINT).sum())

    # Dense-ish dict-of-rows accumulator keyed by fine row.
    P_rows: dict[int, dict[int, float]] = {}
    done = np.zeros(n, dtype=bool)
    for i in np.flatnonzero(splitting == CPOINT):
        P_rows[int(i)] = {int(cmap[i]): 1.0}
        done[i] = True

    # Pass 1: direct interpolation where possible.
    for i in range(n):
        if done[i]:
            continue
        strong = _strong_set(S, i)
        strong_c = strong[splitting[strong] == CPOINT]
        if strong_c.size == 0:
            continue
        cols, vals = _row(A, i)
        diag = float(A[i, i])
        sc_set = set(int(c) for c in strong_c)
        num = {}
        sum_all = 0.0
        sum_c = 0.0
        for col, a in zip(cols, vals):
            col = int(col)
            if col == i:
                continue
            sum_all += a
            if col in sc_set:
                sum_c += a
                num[col] = num.get(col, 0.0) + a
        if sum_c == 0.0 or diag == 0.0:
            continue
        alpha = sum_all / sum_c
        P_rows[i] = {
            int(cmap[c]): -alpha * a / diag for c, a in num.items() if a != 0.0
        }
        done[i] = True

    # Later passes: propagate through interpolated strong neighbours.
    progress = True
    while progress and not done.all():
        progress = False
        newly = []
        for i in np.flatnonzero(~done):
            strong = _strong_set(S, i)
            used = [int(m) for m in strong if done[m]]
            if not used:
                continue
            cols, vals = _row(A, i)
            diag = 0.0
            sum_all = 0.0
            sum_used = 0.0
            coeff = {}
            used_set = set(used)
            for col, a in zip(cols, vals):
                col = int(col)
                if col == i:
                    diag = a
                    continue
                sum_all += a
                if col in used_set:
                    sum_used += a
                    coeff[col] = coeff.get(col, 0.0) + a
            if diag == 0.0 or sum_used == 0.0:
                continue
            alpha = sum_all / sum_used
            acc: dict[int, float] = {}
            for m, a_im in coeff.items():
                scale = -alpha * a_im / diag
                for c, w in P_rows[m].items():
                    acc[c] = acc.get(c, 0.0) + scale * w
            newly.append((i, acc))
        for i, acc in newly:
            P_rows[i] = acc
            done[i] = True
            progress = True

    rows_out, cols_out, vals_out = [], [], []
    for i, row in P_rows.items():
        for c, w in row.items():
            if w != 0.0:
                rows_out.append(i)
                cols_out.append(c)
                vals_out.append(w)
    P = sp.csr_matrix(
        (np.array(vals_out), (np.array(rows_out, dtype=np.int64), np.array(cols_out, dtype=np.int64))),
        shape=(n, nc),
    )
    return as_csr(P)


def truncate_interpolation(
    P: sp.csr_matrix, trunc_factor: float = 0.0, max_per_row: int = 0
) -> sp.csr_matrix:
    """Truncate small interpolation weights, preserving row sums.

    Entries with ``|w| < trunc_factor * max_row|w|`` are dropped (and
    optionally only the ``max_per_row`` largest kept); surviving
    entries are rescaled so each row keeps its original sum — the
    standard BoomerAMG truncation that preserves interpolation of
    constants.
    """
    if trunc_factor == 0.0 and max_per_row == 0:
        return as_csr(P)
    if not 0.0 <= trunc_factor < 1.0:
        raise ValueError("trunc_factor must be in [0, 1)")
    P = as_csr(P).tolil()
    for i in range(P.shape[0]):
        row = np.array(P.data[i], dtype=np.float64)
        cols = np.array(P.rows[i], dtype=np.int64)
        if row.size == 0:
            continue
        absr = np.abs(row)
        keep = absr >= trunc_factor * absr.max()
        if max_per_row and keep.sum() > max_per_row:
            order = np.argsort(-absr)
            sel = np.zeros(row.size, dtype=bool)
            sel[order[:max_per_row]] = True
            keep &= sel
            if not keep.any():
                keep[order[0]] = True
        old_sum = row.sum()
        new_sum = row[keep].sum()
        scale = old_sum / new_sum if new_sum != 0.0 else 1.0
        P.rows[i] = cols[keep].tolist()
        P.data[i] = (row[keep] * scale).tolist()
    return as_csr(P.tocsr())
