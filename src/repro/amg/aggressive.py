"""Aggressive (distance-2) coarsening.

BoomerAMG's "aggressive levels" coarsen a level *twice*: a first C/F
split is computed, then the C-points are coarsened again using a
*second-pass strength* graph in which two C-points are strongly
connected when they are linked by at least ``npaths`` paths of length
one or two in the original strength graph (the A1/A2 schemes of
De Sterck, Yang & Heys).  Only C-points surviving both passes remain C.

The paper uses HMIS with one aggressive level for the convergence
figures and two aggressive levels for Table I; multipass interpolation
(see :mod:`repro.amg.interp`) is required on aggressive levels because
F-points may then have no distance-1 C-neighbour.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr
from .coarsen import CPOINT, FPOINT, hmis_coarsening, pmis_coarsening

__all__ = ["second_pass_strength", "aggressive_coarsening"]


def second_pass_strength(
    S: sp.csr_matrix, splitting: np.ndarray, npaths: int = 1
) -> sp.csr_matrix:
    """Strength graph among C-points via <=2-step paths in ``S``.

    C-points ``i != j`` are strongly connected when the number of paths
    ``i -> j`` plus ``i -> k -> j`` (any intermediate ``k``) in the
    strength graph is at least ``npaths`` (``npaths = 1`` is scheme A1,
    ``npaths = 2`` is A2).

    Returns the path-count graph restricted to C-rows/C-columns, in the
    C-point (compressed) numbering.
    """
    if npaths < 1:
        raise ValueError("npaths must be >= 1")
    S = as_csr(S)
    cmask = np.asarray(splitting) == CPOINT
    cpts = np.flatnonzero(cmask)
    # Path counts: S + S@S counts 1- and 2-step directed paths.
    S2 = (S + S @ S).tocsr()
    Scc = S2[cpts][:, cpts].tocsr()
    Scc.setdiag(0.0)
    Scc.eliminate_zeros()
    Scc.data = (Scc.data >= npaths).astype(np.float64)
    Scc.eliminate_zeros()
    return as_csr(Scc)


def aggressive_coarsening(
    S: sp.csr_matrix,
    coarsener: str = "hmis",
    npaths: int = 1,
    seed: int = 0,
    nparts: int = 8,
) -> np.ndarray:
    """Two-stage aggressive coarsening.

    Parameters
    ----------
    S:
        Strength matrix of the level being coarsened.
    coarsener:
        ``"hmis"`` or ``"pmis"`` — used for both stages.
    npaths:
        Path-count threshold of the second-pass strength (1 = A1).

    Returns
    -------
    int8 splitting on the original point set where C means "C-point of
    the *second* (aggressive) pass".
    """
    if coarsener == "hmis":
        first = hmis_coarsening(S, nparts=nparts, seed=seed)
    elif coarsener == "pmis":
        first = pmis_coarsening(S, seed=seed)
    else:
        raise ValueError(f"unknown coarsener {coarsener!r}")
    cpts = np.flatnonzero(first == CPOINT)
    if cpts.size <= 1:
        return first
    Scc = second_pass_strength(S, first, npaths=npaths)
    if coarsener == "hmis":
        second = hmis_coarsening(Scc, nparts=nparts, seed=seed + 1)
    else:
        second = pmis_coarsening(Scc, seed=seed + 1)
    out = np.full(S.shape[0], FPOINT, dtype=np.int8)
    out[cpts[second == CPOINT]] = CPOINT
    return out
