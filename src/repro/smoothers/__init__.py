"""Smoothers (Section V of the paper).

Four smoothers are evaluated in the paper, all with one sweep:

- **omega-Jacobi** (:class:`WeightedJacobi`) — ``M = D / omega``.
- **l1-Jacobi** (:class:`L1Jacobi`) — ``M_ii = sum_j |a_ij|``;
  guarantees monotone A-norm error decay on SPD matrices.
- **hybrid Jacobi-Gauss-Seidel** (:class:`HybridJGS`) — inexact block
  Jacobi with one Gauss-Seidel sweep per block, one block per
  thread/process.
- **asynchronous Gauss-Seidel** (:class:`AsyncGS`) — the asynchronous
  version of hybrid JGS: rows are relaxed with whatever mix of new and
  old values is in memory (Eq. 5).  Our sequential backend models it
  with randomly interleaved block-chunk updates; the threaded backend
  runs it with real unsynchronized threads.

Every smoother exposes the operations the solvers need: ``minv`` /
``minv_t`` (one sweep from a zero initial guess), ``m_apply`` /
``mt_apply`` (apply the smoothing matrix itself), ``sweep`` (stationary
iteration), and ``symmetrized_apply`` (the Multadd
``M^{-T}(M + M^T - A)M^{-1}``).
"""

from .base import Smoother, make_smoother
from .jacobi import L1Jacobi, WeightedJacobi
from .gauss_seidel import GaussSeidel, HybridJGS
from .async_gs import AsyncGS
from .chebyshev import Chebyshev
from .sor import SOR, SSOR

__all__ = [
    "Smoother",
    "make_smoother",
    "WeightedJacobi",
    "L1Jacobi",
    "GaussSeidel",
    "HybridJGS",
    "AsyncGS",
    "Chebyshev",
    "SOR",
    "SSOR",
]
