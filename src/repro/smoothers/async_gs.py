"""Asynchronous Gauss-Seidel (sequential model).

The paper's async GS is hybrid JGS run without synchronization: each
thread relaxes its rows in order and writes each update immediately, so
a relaxation reads an unpredictable mix of new and old values — the
asynchronous iteration of Eq. 5.

The sequential model here reproduces those semantics with a *randomly
interleaved chunked sweep*: each block's row sequence is cut into
chunks, the chunks of all blocks are interleaved in a random order, and
chunks are relaxed one after another *using the latest values* —
within-chunk reads are pre-chunk (a thread computes a batch before its
writes land), across chunks reads are whatever has been written so far.
Chunk size 1 is exact chaotic Gauss-Seidel; the default keeps the sweep
vectorized while remaining a faithful Eq.-5 schedule.  The threaded
executor instead runs hybrid JGS with real unsynchronized threads.

Because an asynchronous sweep has no well-defined matrix ``M``, the
Multadd operations (``m_apply``/``symmetrized_apply``) delegate to the
synchronous hybrid-JGS counterpart — exactly the paper's choice of
keeping the smoothed interpolants and Lambda_k fixed while only the
sweeps are asynchronous.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg import csr_diagonal
from .base import register
from .gauss_seidel import HybridJGS

__all__ = ["AsyncGS"]


@register("async_gs")
class AsyncGS(HybridJGS):
    """Asynchronous Gauss-Seidel smoother (sequential-model flavour)."""

    #: cap on the dense per-chunk triangular storage (elements)
    _DENSE_BUDGET = 3e7

    def __init__(
        self,
        A: sp.spmatrix,
        nblocks: int = 8,
        chunk: int = 64,
        seed: int = 0,
    ):
        super().__init__(A, nblocks=nblocks)
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        # Clamp the chunk so the dense per-chunk triangular factors fit
        # in a fixed memory budget (n * chunk doubles).
        n = self.A.shape[0]
        self.chunk = int(max(1, min(chunk, self._DENSE_BUDGET // max(n, 1))))
        self._rng = np.random.default_rng(seed)
        self._diag = csr_diagonal(self.A)
        # Dense lower-triangular diagonal blocks, one per chunk: the
        # within-chunk relaxation is a true sequential GS mini-sweep
        # (a thread relaxes its rows in order with its own fresh
        # values), not a Jacobi step — using pre-chunk values inside
        # the chunk would lose the damping GS provides and diverge on
        # matrices with rho(D^{-1}A) > 2 (e.g. elasticity).
        self._chunk_ranges: list[tuple[int, int]] = []
        self._chunk_tril: list[np.ndarray] = []
        for lo, hi in self.blocks:
            for c in range(lo, hi, self.chunk):
                d = min(c + self.chunk, hi)
                self._chunk_ranges.append((c, d))
                self._chunk_tril.append(
                    np.tril(self.A[c:d, c:d].toarray())
                )

    # -- asynchronous sweep -------------------------------------------
    def _chunk_block_of(self) -> np.ndarray:
        """Block id of each chunk (for the interleaving order)."""
        block_of = []
        for bid, (lo, hi) in enumerate(self.blocks):
            block_of += [bid] * -(-(hi - lo) // self.chunk) if hi > lo else []
        return np.array(block_of, dtype=np.int64)

    def _interleaved_chunks(self) -> list[int]:
        """Random interleaving of per-block chunk indices for one sweep.

        Each thread (block) processes its own chunks in order; the
        interleaving *between* blocks is random — the Eq.-5 schedule.
        """
        block_of = self._chunk_block_of()
        nblocks = int(block_of.max()) + 1 if block_of.size else 0
        per_block = [np.flatnonzero(block_of == bid).tolist() for bid in range(nblocks)]
        order: list[int] = []
        weights = np.array([len(c) for c in per_block], dtype=np.float64)
        cursors = [0] * nblocks
        total = int(weights.sum())
        for _ in range(total):
            w = weights / weights.sum()
            bid = int(self._rng.choice(nblocks, p=w))
            order.append(per_block[bid][cursors[bid]])
            cursors[bid] += 1
            weights[bid] -= 1.0
        return order

    def sweep(self, x: np.ndarray, b: np.ndarray, nsweeps: int = 1) -> np.ndarray:
        """``nsweeps`` asynchronous sweeps (chunk-interleaved chaotic GS).

        Each chunk update is one forward Gauss-Seidel mini-sweep on the
        chunk's rows against the *current* global iterate: fresh values
        inside the chunk (a thread sees its own writes), possibly stale
        values outside it (other threads' writes land whenever they
        land).
        """
        if nsweeps < 0:
            raise ValueError("nsweeps must be non-negative")
        import scipy.linalg as sla

        y = np.array(x, dtype=np.float64, copy=True)
        A = self.A
        for _ in range(nsweeps):
            for ci in self._interleaved_chunks():
                lo, hi = self._chunk_ranges[ci]
                r = b[lo:hi] - _rows_matvec(A, y, lo, hi)
                y[lo:hi] += sla.solve_triangular(
                    self._chunk_tril[ci], r, lower=True, check_finite=False
                )
        return y

    def minv(self, r: np.ndarray) -> np.ndarray:
        """One asynchronous sweep applied to ``r`` from a zero guess.

        Unlike the parent class this is *not* a fixed linear operator:
        two calls use different chunk interleavings (that is the
        model).  Solvers that need a deterministic ``M^{-1}`` (Multadd
        Lambda) should use :class:`HybridJGS` semantics, available via
        :meth:`sync_minv`.
        """
        return self.sweep(np.zeros_like(r), r, nsweeps=1)

    def sync_minv(self, r: np.ndarray) -> np.ndarray:
        """The synchronous hybrid-JGS ``M^{-1} r`` (deterministic)."""
        return super().minv(r)


def _rows_matvec(A: sp.csr_matrix, x: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """``(A @ x)[lo:hi]`` for a contiguous row range (gather only)."""
    p0, p1 = A.indptr[lo], A.indptr[hi]
    seg = A.data[p0:p1] * x[A.indices[p0:p1]]
    local = np.repeat(np.arange(hi - lo), np.diff(A.indptr[lo : hi + 1]))
    return np.bincount(local, weights=seg, minlength=hi - lo)
