"""Smoother interface.

A smoother is the splitting ``A = M - N`` applied as the stationary
iteration ``x <- x + M^{-1}(b - A x)`` with iteration matrix
``G = I - M^{-1} A`` (paper Section II.A).  Solvers use smoothers
through this interface; each concrete class implements the application
of ``M^{-1}`` (and ``M``, ``M^T``) without ever forming inverses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr

__all__ = ["Smoother", "make_smoother"]


class Smoother(ABC):
    """Abstract smoother bound to a fixed matrix ``A``."""

    #: registry name, filled by :func:`make_smoother` registration
    name: str = "abstract"

    def __init__(self, A: sp.spmatrix):
        self.A = as_csr(A)
        self.n = self.A.shape[0]
        if self.A.shape[0] != self.A.shape[1]:
            raise ValueError("smoother needs a square matrix")

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    @abstractmethod
    def minv(self, r: np.ndarray) -> np.ndarray:
        """``M^{-1} r`` — one sweep applied to residual ``r`` (zero guess)."""

    @abstractmethod
    def minv_t(self, r: np.ndarray) -> np.ndarray:
        """``M^{-T} r`` (equals :meth:`minv` for symmetric ``M``)."""

    @abstractmethod
    def m_apply(self, v: np.ndarray) -> np.ndarray:
        """``M v`` — needed by the generic symmetrized application."""

    @abstractmethod
    def mt_apply(self, v: np.ndarray) -> np.ndarray:
        """``M^T v``."""

    # ------------------------------------------------------------------
    # Derived operations (shared implementations)
    # ------------------------------------------------------------------
    def sweep(
        self, x: np.ndarray, b: np.ndarray, nsweeps: int = 1
    ) -> np.ndarray:
        """Apply ``nsweeps`` stationary iterations; returns the new ``x``.

        ``x`` is not modified in place (solvers keep explicit snapshots
        for the asynchronous models).
        """
        if nsweeps < 0:
            raise ValueError("nsweeps must be non-negative")
        y = np.array(x, dtype=np.float64, copy=True)
        for _ in range(nsweeps):
            y += self.minv(b - self.A @ y)
        return y

    def symmetrized_apply(self, r: np.ndarray) -> np.ndarray:
        """``M^{-T} (M + M^T - A) M^{-1} r`` — the Multadd Lambda_k.

        This is the error propagator of a forward sweep followed by a
        backward (transposed) sweep, written as a single symmetric
        operator (Section II.B.1).
        """
        y = self.minv(r)
        z = self.m_apply(y) + self.mt_apply(y) - self.A @ y
        return self.minv_t(z)

    def iteration_matrix(self) -> sp.csr_matrix:
        """Form ``G = I - M^{-1} A`` explicitly (tests / small problems).

        Cost is one ``minv`` per column — only call on small matrices.
        """
        n = self.n
        cols = []
        eye = np.eye(n)
        for j in range(n):
            cols.append(eye[:, j] - self.minv(self.A @ eye[:, j]))
        return as_csr(sp.csr_matrix(np.column_stack(cols)))

    # ------------------------------------------------------------------
    # Cost accounting (feeds the performance model)
    # ------------------------------------------------------------------
    def flops_per_sweep(self) -> float:
        """Approximate flops of one sweep: SpMV + ``M^{-1}`` apply."""
        return 2.0 * self.A.nnz + self.minv_flops()

    def minv_flops(self) -> float:
        """Flops of one ``M^{-1}`` application (default: diagonal scale)."""
        return float(self.n)


_REGISTRY = {}


def register(name: str):
    """Class decorator registering a smoother under a string name."""

    def deco(cls):
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def make_smoother(name: str, A: sp.spmatrix, **kwargs) -> Smoother:
    """Build a smoother by registry name.

    Names mirror the paper: ``"jacobi"`` (omega-Jacobi),
    ``"l1_jacobi"``, ``"gs"``, ``"hybrid_jgs"``, ``"async_gs"``,
    ``"chebyshev"``.
    """
    # Import concrete modules lazily so the registry is populated.
    from . import async_gs, chebyshev, gauss_seidel, jacobi, sor  # noqa: F401

    if name not in _REGISTRY:
        raise KeyError(f"unknown smoother {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name](A, **kwargs)
