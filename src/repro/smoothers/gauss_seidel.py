"""Gauss-Seidel smoothers: full GS and the hybrid Jacobi-GS of the paper.

Hybrid JGS (Baker et al., cited as [23] in the paper) is an *inexact
block Jacobi* method: rows are split into ``p`` contiguous blocks (one
per thread), and each block is relaxed with one Gauss-Seidel sweep that
only uses values from inside the block plus the pre-sweep values from
outside.  Its smoothing matrix is ``M = blockdiag(L_1, ..., L_p)`` with
``L_i`` the lower triangle (diagonal included) of the i-th diagonal
block of ``A`` — globally a lower-triangular matrix, so applications of
``M^{-1}``/``M^{-T}`` are sparse triangular solves, which we perform
through a cached sparse LU of ``M`` (a triangular factorization is
exact and cheap).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..linalg import as_csr, lower_triangle, partition_rows_by_nnz
from .base import Smoother, register

__all__ = ["GaussSeidel", "HybridJGS"]


def _triangular_factor(M: sp.csr_matrix):
    """Cached solver for a (block-)triangular sparse matrix.

    ``splu`` with natural ordering performs no fill on a triangular
    matrix, so this is just a fast compiled substitution kernel.
    """
    return spla.splu(
        M.tocsc(), permc_spec="NATURAL", options={"SymmetricMode": False}
    )


class _TriangularSmoother(Smoother):
    """Common machinery for smoothers whose ``M`` is lower triangular."""

    def __init__(self, A: sp.spmatrix, M: sp.csr_matrix):
        super().__init__(A)
        self.M = as_csr(M)
        self._lu = _triangular_factor(self.M)
        self._lu_t = _triangular_factor(as_csr(self.M.T))

    def minv(self, r: np.ndarray) -> np.ndarray:
        return self._lu.solve(np.asarray(r, dtype=np.float64))

    def minv_t(self, r: np.ndarray) -> np.ndarray:
        return self._lu_t.solve(np.asarray(r, dtype=np.float64))

    def m_apply(self, v: np.ndarray) -> np.ndarray:
        return self.M @ v

    def mt_apply(self, v: np.ndarray) -> np.ndarray:
        return self.M.T @ v

    def minv_flops(self) -> float:
        return 2.0 * self.M.nnz


@register("gs")
class GaussSeidel(_TriangularSmoother):
    """Classical forward Gauss-Seidel: ``M = tril(A)``.

    Included as the sequential baseline the paper's parallel smoothers
    approximate; a forward+transposed pair of sweeps is symmetric GS.
    """

    def __init__(self, A: sp.spmatrix):
        A = as_csr(A)
        super().__init__(A, lower_triangle(A))


@register("hybrid_jgs")
class HybridJGS(_TriangularSmoother):
    """Hybrid Jacobi-Gauss-Seidel with ``nblocks`` contiguous blocks.

    ``nblocks`` plays the role of the thread/process count ``p``; the
    paper notes the method can diverge for many subdomains without
    l1/weighted safeguards — we reproduce that behaviour rather than
    patch it (Table I has divergent hybrid-JGS entries).

    Blocks are nnz-balanced contiguous row ranges (the same partition a
    static OpenMP schedule would own).
    """

    def __init__(self, A: sp.spmatrix, nblocks: int = 8):
        A = as_csr(A)
        if nblocks < 1:
            raise ValueError("nblocks must be >= 1")
        self.nblocks = int(min(nblocks, A.shape[0]))
        self.blocks: List[Tuple[int, int]] = partition_rows_by_nnz(A, self.nblocks)
        M = _block_lower_triangle(A, self.blocks)
        super().__init__(A, M)


def _block_lower_triangle(
    A: sp.csr_matrix, blocks: List[Tuple[int, int]]
) -> sp.csr_matrix:
    """``blockdiag(tril(A_11), ..., tril(A_pp))`` without copies per block.

    Keeps an entry ``(i, j)`` iff ``i`` and ``j`` are in the same block
    and ``j <= i``.
    """
    n = A.shape[0]
    block_of = np.empty(n, dtype=np.int64)
    for bid, (lo, hi) in enumerate(blocks):
        block_of[lo:hi] = bid
    rows = np.repeat(np.arange(n), np.diff(A.indptr))
    cols = A.indices
    keep = (block_of[rows] == block_of[cols]) & (cols <= rows)
    M = sp.csr_matrix((A.data[keep], (rows[keep], cols[keep])), shape=A.shape)
    return as_csr(M)
