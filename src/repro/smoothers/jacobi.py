"""Diagonal smoothers: omega-Jacobi and l1-Jacobi.

omega-Jacobi is the paper's workhorse (weight .9 for the stencil sets,
.5 for the FEM sets); l1-Jacobi replaces the diagonal with l1 row norms
and is provably convergent as a smoother on SPD matrices (error
monotone in the A-norm) but more damped — the paper's Table I shows it
needing the most V-cycles everywhere.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import kernels
from ..linalg import csr_diagonal, l1_row_norms
from .base import Smoother, register

__all__ = ["WeightedJacobi", "L1Jacobi"]


class _DiagonalSmoother(Smoother):
    """Common machinery for smoothers with diagonal ``M``."""

    def __init__(self, A: sp.spmatrix, diag: np.ndarray):
        super().__init__(A)
        diag = np.asarray(diag, dtype=np.float64)
        if diag.shape != (self.n,):
            raise ValueError("diagonal has wrong length")
        if np.any(diag == 0.0):
            raise ValueError("smoothing diagonal has zero entries")
        self._d = diag
        self._dinv = 1.0 / diag

    def sweep(
        self, x: np.ndarray, b: np.ndarray, nsweeps: int = 1
    ) -> np.ndarray:
        """Fused diagonal sweeps through :mod:`repro.kernels`.

        One row pass and three elementwise passes per sweep (the
        generic base implementation allocates two temporaries per
        sweep); bit-identical to it under the numpy backend.
        """
        return kernels.jacobi_sweeps(self.A, self._dinv, b, x0=x, nsweeps=nsweeps)

    def minv(self, r: np.ndarray) -> np.ndarray:
        return self._dinv * r

    def minv_t(self, r: np.ndarray) -> np.ndarray:
        return self._dinv * r

    def m_apply(self, v: np.ndarray) -> np.ndarray:
        return self._d * v

    def mt_apply(self, v: np.ndarray) -> np.ndarray:
        return self._d * v

    def symmetrized_apply(self, r: np.ndarray) -> np.ndarray:
        # Specialized: M^{-1}(2M - A)M^{-1} r, one SpMV + two scalings.
        y = self._dinv * r
        return self._dinv * (2.0 * self._d * y - self.A @ y)

    @property
    def smoothing_diagonal(self) -> np.ndarray:
        """The diagonal of ``M`` (read-only view)."""
        return self._d


@register("jacobi")
class WeightedJacobi(_DiagonalSmoother):
    """omega-Jacobi: ``M = D / omega``.

    ``weight`` is the paper's omega (.9 or .5 depending on the test
    set).  ``weight = 1`` is plain Jacobi, which is *not* a convergent
    smoother for the 7pt operator's high frequencies in 3-D — the
    under-relaxation matters.
    """

    def __init__(self, A: sp.spmatrix, weight: float = 0.9):
        if not 0.0 < weight <= 2.0:
            raise ValueError(f"weight must be in (0, 2], got {weight}")
        d = csr_diagonal(sp.csr_matrix(A) if not sp.issparse(A) else A.tocsr())
        super().__init__(A, d / weight)
        self.weight = float(weight)


@register("l1_jacobi")
class L1Jacobi(_DiagonalSmoother):
    """l1-Jacobi: ``M_ii = sum_j |a_ij|``.

    For SPD ``A`` we have ``M >= D >= A``'s diagonal dominance pattern,
    which gives ``2M - A`` SPD and hence monotone A-norm error decay;
    :meth:`is_provably_convergent` checks the operative inequality on
    request.
    """

    def __init__(self, A: sp.spmatrix):
        A = sp.csr_matrix(A)
        super().__init__(A, l1_row_norms(A))

    def is_provably_convergent(self) -> bool:
        """Check ``v^T (2M - A) v > 0`` on a few random vectors.

        A cheap necessary-condition probe of the SPD-ness of ``2M - A``
        (sufficient for smoother convergence); exact verification would
        need an eigendecomposition.
        """
        rng = np.random.default_rng(0)
        for _ in range(5):
            v = rng.standard_normal(self.n)
            q = 2.0 * float(v @ (self._d * v)) - float(v @ (self.A @ v))
            if q <= 0.0:
                return False
        return True
