"""SOR and SSOR smoothers (extension beyond the paper's four).

Successive over-relaxation generalizes Gauss-Seidel with a relaxation
parameter: ``M = D/omega + L_strict``.  SSOR is the symmetrized pair of
a forward and a backward SOR sweep, which — like the paper's
symmetrized Jacobi — yields a symmetric ``Lambda`` usable in Multadd
with exact equivalence to a symmetric multiplicative cycle.  Both reuse
the triangular-smoother machinery of the Gauss-Seidel module.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr, csr_diagonal, lower_triangle
from .base import Smoother, register
from .gauss_seidel import _TriangularSmoother

__all__ = ["SOR", "SSOR"]


@register("sor")
class SOR(_TriangularSmoother):
    """Forward SOR: ``M = D/omega + strict_lower(A)``.

    ``omega = 1`` is plain Gauss-Seidel; SPD matrices converge for
    ``0 < omega < 2``.
    """

    def __init__(self, A: sp.spmatrix, omega: float = 1.3):
        if not 0.0 < omega < 2.0:
            raise ValueError(f"omega must be in (0, 2), got {omega}")
        A = as_csr(A)
        d = csr_diagonal(A)
        M = sp.diags(d / omega) + lower_triangle(A, strict=True)
        super().__init__(A, as_csr(M.tocsr()))
        self.omega = float(omega)


@register("ssor")
class SSOR(Smoother):
    """Symmetric SOR: forward sweep then backward sweep.

    Implemented as the symmetrized operator of the forward SOR
    smoother, so ``minv`` is already symmetric: one SSOR application
    *is* ``M^{-T}(M + M^T - A)M^{-1}`` with ``M`` the SOR matrix —
    which is exactly the Multadd ``Lambda``, making SSOR the natural
    plug-in smoother for additive methods.
    """

    def __init__(self, A: sp.spmatrix, omega: float = 1.3):
        super().__init__(A)
        self._sor = SOR(A, omega=omega)
        self.omega = float(omega)

    def minv(self, r: np.ndarray) -> np.ndarray:
        return self._sor.symmetrized_apply(r)

    def minv_t(self, r: np.ndarray) -> np.ndarray:
        return self.minv(r)  # symmetric by construction

    def m_apply(self, v: np.ndarray) -> np.ndarray:
        # The SSOR smoothing matrix is M_ssor = M (M + M^T - A)^{-1} M^T
        # — applying it needs a solve with the middle factor, which for
        # SOR is the scaled diagonal (2/omega - 1) D.
        d = csr_diagonal(self.A)
        middle = (2.0 / self.omega - 1.0) * d
        return self._sor.m_apply((1.0 / middle) * self._sor.mt_apply(v))

    def mt_apply(self, v: np.ndarray) -> np.ndarray:
        return self.m_apply(v)  # symmetric

    def symmetrized_apply(self, r: np.ndarray) -> np.ndarray:
        # Already symmetric — one application is the Lambda.
        return self.minv(r)

    def minv_flops(self) -> float:
        return 2.0 * self._sor.minv_flops() + 4.0 * self.n + 2.0 * self.A.nnz
