"""Chebyshev polynomial smoother (extension beyond the paper).

Not part of the paper's smoother set, but the natural
synchronization-free *synchronous* competitor to asynchronous
smoothing: a degree-``k`` Chebyshev sweep needs only SpMVs (no
triangular solves, no data races), so we include it for the ablation
benchmarks that ask "does async GS still win against a good
communication-light smoother?".

The polynomial targets the interval ``[lmax/alpha, lmax]`` of the
diagonally-preconditioned operator, the standard multigrid practice
(only high frequencies are damped; the coarse grid handles the rest).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg import csr_diagonal, estimate_rho
from .base import Smoother, register

__all__ = ["Chebyshev"]


@register("chebyshev")
class Chebyshev(Smoother):
    """Chebyshev smoother of fixed degree on ``D^{-1} A``."""

    def __init__(
        self,
        A: sp.spmatrix,
        degree: int = 3,
        alpha: float = 30.0,
        lmax: float | None = None,
    ):
        super().__init__(A)
        if degree < 1:
            raise ValueError("degree must be >= 1")
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1")
        self.degree = int(degree)
        self._dinv = 1.0 / csr_diagonal(self.A)
        if lmax is None:
            lmax = 1.1 * estimate_rho(
                lambda v: self._dinv * (self.A @ v), n=self.n, iters=30
            )
        self.lmax = float(lmax)
        self.lmin = self.lmax / float(alpha)

    def minv(self, r: np.ndarray) -> np.ndarray:
        """Apply the Chebyshev polynomial ``p(D^{-1}A) D^{-1}`` to ``r``.

        Standard three-term recurrence on the shifted/scaled operator;
        the result approximates ``A^{-1} r`` on the high end of the
        spectrum.
        """
        theta = 0.5 * (self.lmax + self.lmin)
        delta = 0.5 * (self.lmax - self.lmin)
        apply_op = lambda v: self._dinv * (self.A @ v)  # noqa: E731
        rd = self._dinv * r
        # Chebyshev iteration for solving (D^{-1}A) y = D^{-1} r.
        y = rd / theta
        resid = rd - apply_op(y)
        d_vec = resid / theta
        sigma = theta / delta
        rho_old = 1.0 / sigma
        for _ in range(self.degree - 1):
            rho_new = 1.0 / (2.0 * sigma - rho_old)
            y = y + d_vec
            resid = rd - apply_op(y)
            d_vec = rho_new * rho_old * d_vec + (2.0 * rho_new / delta) * resid
            rho_old = rho_new
        return y

    def minv_t(self, r: np.ndarray) -> np.ndarray:
        # The polynomial in D^{-1}A is self-adjoint in the D inner
        # product; for SPD A with symmetric D this equals minv.
        return self.minv(r)

    def m_apply(self, v: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            "Chebyshev has no explicit M; use it only where minv suffices"
        )

    def mt_apply(self, v: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            "Chebyshev has no explicit M; use it only where minv suffices"
        )

    def symmetrized_apply(self, r: np.ndarray) -> np.ndarray:
        # Already symmetric as an operator: use it directly as Lambda.
        return self.minv(r)

    def minv_flops(self) -> float:
        return self.degree * (2.0 * self.A.nnz + 4.0 * self.n)
