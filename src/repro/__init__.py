"""repro — Asynchronous Multigrid Methods, reproduced in Python.

A from-scratch reproduction of Wolfson-Pou & Chow, "Asynchronous
Multigrid Methods" (2019): asynchronous additive multigrid (Multadd and
AFACx) with the paper's asynchronous-execution models, shared-memory
algorithms (global-res / local-res, lock-write / atomic-write), AMG
setup (HMIS coarsening, aggressive levels, classical modified
interpolation), smoothers (omega-Jacobi, l1-Jacobi, hybrid JGS,
asynchronous GS), the four test-matrix families, and a machine model
that regenerates the paper's timing tables and figures.

Quickstart
----------
>>> from repro import build_problem, setup_hierarchy, SetupOptions, Multadd
>>> from repro.core import run_async_engine
>>> p = build_problem("7pt", 12)
>>> h = setup_hierarchy(p.A, SetupOptions(aggressive_levels=1))
>>> solver = Multadd(h, smoother="jacobi", weight=0.9)
>>> result = run_async_engine(solver, p.b, tmax=20)
>>> result.rel_residual < 1e-3
True
"""

from .amg import Hierarchy, SetupOptions, setup_hierarchy
from .problems import (
    TEST_SETS,
    build_problem,
    laplacian_7pt,
    laplacian_27pt,
    random_rhs,
)
from .smoothers import make_smoother
from .solvers import AFACx, BPX, FCG, Multadd, MultiplicativeMultigrid, PCG
from .experiments import MethodSpec, TABLE1_METHODS

__version__ = "1.0.0"

__all__ = [
    "Hierarchy",
    "SetupOptions",
    "setup_hierarchy",
    "TEST_SETS",
    "build_problem",
    "laplacian_7pt",
    "laplacian_27pt",
    "random_rhs",
    "make_smoother",
    "AFACx",
    "BPX",
    "Multadd",
    "MultiplicativeMultigrid",
    "PCG",
    "FCG",
    "MethodSpec",
    "TABLE1_METHODS",
    "__version__",
]
