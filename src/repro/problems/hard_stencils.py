"""Harder stencil problems (extensions beyond the paper's test sets).

Three classical AMG stress tests, used by the ablation benchmarks and
tests to probe where asynchronous multigrid inherits classical
multigrid's sensitivities:

- :func:`anisotropic_laplacian_3d` — grid-aligned anisotropy
  ``-eps_x u_xx - eps_y u_yy - eps_z u_zz``: pointwise smoothers only
  smooth along strong directions, so coarsening must follow the
  anisotropy (which classical strength does automatically).
- :func:`convection_diffusion_3d` — a *nonsymmetric* upwind
  convection-diffusion operator.  None of the paper's theory needs
  symmetry except the Multadd equivalence; the asynchronous engines run
  unchanged, which these problems exercise.
- :func:`shifted_laplacian_3d` — ``A - sigma I``: reduced diagonal
  dominance; at large shifts ``rho(|G|)`` exceeds one and asynchronous
  smoothing loses its Chazan-Miranker guarantee (used by theory tests).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr
from .stencils import laplacian_1d

__all__ = [
    "anisotropic_laplacian_3d",
    "convection_diffusion_3d",
    "shifted_laplacian_3d",
]


def anisotropic_laplacian_3d(
    n: int, eps_x: float = 1.0, eps_y: float = 1.0, eps_z: float = 1e-2
) -> sp.csr_matrix:
    """7-point anisotropic Laplacian on the ``n^3`` Dirichlet grid."""
    if min(eps_x, eps_y, eps_z) <= 0:
        raise ValueError("anisotropy coefficients must be positive")
    K = laplacian_1d(n)
    eye = sp.identity(n, format="csr")
    A = (
        eps_x * sp.kron(sp.kron(K, eye), eye)
        + eps_y * sp.kron(sp.kron(eye, K), eye)
        + eps_z * sp.kron(sp.kron(eye, eye), K)
    )
    return as_csr(A)


def _upwind_1d(n: int, velocity: float) -> sp.csr_matrix:
    """First-order upwind difference of ``v u_x`` on ``n`` points."""
    if velocity >= 0:
        D = sp.diags([np.full(n - 1, -1.0), np.full(n, 1.0)], offsets=[-1, 0])
    else:
        D = sp.diags([np.full(n, -1.0), np.full(n - 1, 1.0)], offsets=[0, 1])
    return (abs(velocity) * D).tocsr()


def convection_diffusion_3d(
    n: int, peclet: float = 10.0, velocity=(1.0, 0.5, 0.25)
) -> sp.csr_matrix:
    """Upwind convection-diffusion ``-lap u + Pe (v . grad u)``.

    ``peclet`` scales the (grid) convection strength; the matrix is
    nonsymmetric but remains an M-matrix (upwinding), so classical
    strength/coarsening stay well-defined.
    """
    if peclet < 0:
        raise ValueError("peclet must be non-negative")
    K = laplacian_1d(n)
    eye = sp.identity(n, format="csr")
    A = (
        sp.kron(sp.kron(K, eye), eye)
        + sp.kron(sp.kron(eye, K), eye)
        + sp.kron(sp.kron(eye, eye), K)
    )
    vx, vy, vz = velocity
    C = (
        sp.kron(sp.kron(_upwind_1d(n, vx), eye), eye)
        + sp.kron(sp.kron(eye, _upwind_1d(n, vy)), eye)
        + sp.kron(sp.kron(eye, eye), _upwind_1d(n, vz))
    )
    return as_csr((A + peclet * C).tocsr())


def shifted_laplacian_3d(n: int, sigma: float = 0.5) -> sp.csr_matrix:
    """``laplacian_7pt(n) - sigma * I`` (must stay positive definite).

    Raises
    ------
    ValueError
        If ``sigma`` exceeds the smallest Laplacian eigenvalue
        ``3 * (2 - 2 cos(pi/(n+1)))`` — the shifted matrix would be
        indefinite and outside every solver's assumptions.
    """
    lam_min = 3.0 * (2.0 - 2.0 * np.cos(np.pi / (n + 1)))
    if sigma >= lam_min:
        raise ValueError(
            f"sigma={sigma} >= lambda_min={lam_min:.4f}: matrix would be indefinite"
        )
    K = laplacian_1d(n)
    eye = sp.identity(n, format="csr")
    A = (
        sp.kron(sp.kron(K, eye), eye)
        + sp.kron(sp.kron(eye, K), eye)
        + sp.kron(sp.kron(eye, eye), K)
    ) - sigma * sp.identity(n**3, format="csr")
    return as_csr(A)
