"""Finite-difference / tensor-product Laplacians on a cube.

These are the ``7pt`` and ``27pt`` test sets of the paper: the 3-D
Laplace operator on an ``n x n x n`` interior grid of the unit cube with
homogeneous Dirichlet boundary conditions.

- ``7pt``: classical second-order centred differences, stencil
  ``[-1, ..., 6, ..., -1]``.
- ``27pt``: the 27-point centred-difference Laplacian — every one of
  the 26 neighbours couples with weight -1 against a centre weight of
  26.  The matrix is symmetric, irreducibly diagonally dominant (hence
  SPD with Dirichlet truncation) and reproduces the paper's Table-I
  dimensions exactly: 27,000 rows and 681,472 nonzeros at n=30.

(The trilinear-hex FEM Laplacian is *not* used for ``27pt`` because on
a uniform grid its face-neighbour couplings cancel, leaving a 21-point
stencil; it is still exposed as :func:`laplacian_27pt_fem` since it is
a useful harder-stencil variant.)
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr

__all__ = [
    "laplacian_5pt",
    "laplacian_7pt",
    "laplacian_27pt",
    "laplacian_27pt_fem",
    "laplacian_1d",
    "mass_1d",
]


def laplacian_1d(n: int, h_scaled: bool = False) -> sp.csr_matrix:
    """1-D Dirichlet Laplacian ``tridiag(-1, 2, -1)`` of size ``n``.

    With ``h_scaled`` the matrix is divided by ``h = 1/(n+1)`` (the FEM
    stiffness scaling); the unscaled version is the pure difference
    stencil.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    K = sp.diags(
        [-np.ones(n - 1), 2.0 * np.ones(n), -np.ones(n - 1)],
        offsets=[-1, 0, 1],
        format="csr",
    )
    if h_scaled:
        K = K * (n + 1.0)
    return as_csr(K)


def mass_1d(n: int, h_scaled: bool = False) -> sp.csr_matrix:
    """1-D P1 mass matrix ``tridiag(1, 4, 1)/6`` of size ``n``.

    With ``h_scaled`` the matrix is multiplied by ``h = 1/(n+1)``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    M = sp.diags(
        [np.ones(n - 1) / 6.0, 4.0 * np.ones(n) / 6.0, np.ones(n - 1) / 6.0],
        offsets=[-1, 0, 1],
        format="csr",
    )
    if h_scaled:
        M = M / (n + 1.0)
    return as_csr(M)


def laplacian_5pt(n: int) -> sp.csr_matrix:
    """5-point 2-D Laplacian on an ``n^2`` interior grid (Dirichlet).

    The standard centred-difference stencil ``[-1; -1, 4, -1; -1]`` —
    the benchmark workhorse for kernel timing (``n = 256`` gives 65,536
    rows, large enough that SpMV dominates without the 3-D sets'
    setup cost).
    """
    K = laplacian_1d(n)
    eye = sp.identity(n, format="csr")
    A = sp.kron(K, eye) + sp.kron(eye, K)
    return as_csr(A)


def laplacian_7pt(n: int) -> sp.csr_matrix:
    """7-point 3-D Laplacian on an ``n^3`` interior grid (Dirichlet).

    ``n`` is the paper's *grid length* (e.g. 30 gives the Table-I
    "27,000 rows" matrix).  Row count is ``n**3``; interior rows have 7
    nonzeros (183,600 nnz at n=30, matching the paper).
    """
    K = laplacian_1d(n)
    eye = sp.identity(n, format="csr")
    A = (
        sp.kron(sp.kron(K, eye), eye)
        + sp.kron(sp.kron(eye, K), eye)
        + sp.kron(sp.kron(eye, eye), K)
    )
    return as_csr(A)


def laplacian_27pt(n: int) -> sp.csr_matrix:
    """27-point 3-D Laplacian on an ``n^3`` interior grid (Dirichlet).

    All 26 neighbours have weight -1, the centre 26.  At n=30 this
    gives 27,000 rows and ``(3n-2)^3 = 681,472`` nonzeros — exactly the
    Table-I ``27pt`` matrix dimensions.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    ones = np.ones(n - 1)
    B = sp.diags([ones, np.ones(n), ones], offsets=[-1, 0, 1], format="csr")
    N = sp.kron(sp.kron(B, B), B)  # adjacency + self over the 27-neighbourhood
    A = 27.0 * sp.identity(n**3, format="csr") - N
    return as_csr(A)


def laplacian_27pt_fem(n: int) -> sp.csr_matrix:
    """Trilinear-hex FEM Laplacian on an ``n^3`` interior grid.

    Tensor sum ``K(x)M(x)M + M(x)K(x)M + M(x)M(x)K`` of 1-D stiffness
    and mass.  On a uniform grid the face couplings cancel, so this is
    a 21-point stencil — kept as an additional (harder) test operator.
    """
    K = laplacian_1d(n)
    M = mass_1d(n)
    A = (
        sp.kron(sp.kron(K, M), M)
        + sp.kron(sp.kron(M, K), M)
        + sp.kron(sp.kron(M, M), K)
    )
    return as_csr(A)
