"""Test-problem generators.

The paper evaluates on four matrix sets (Section V):

1. ``7pt``  — 3-D Laplacian on a cube, 7-point centred differences.
2. ``27pt`` — 3-D Laplacian on a cube, 27-point stencil.
3. ``MFEM Laplace``    — Laplace on a sphere, H1 nodal finite elements.
4. ``MFEM Elasticity`` — multi-material cantilever beam, linear
   elasticity, tetrahedral H1 elements.

We generate (1) and (2) directly (:mod:`repro.problems.stencils`) and
substitute MFEM with our own P1 tetrahedral finite-element assembly on
structured tet meshes (:mod:`repro.problems.fem`): a ball for the
Laplace set and a multi-material beam for the elasticity set.  The
:mod:`repro.problems.registry` exposes the four sets under the paper's
names so benchmarks read like the paper's tables.
"""

from .stencils import laplacian_5pt, laplacian_7pt, laplacian_27pt
from .hard_stencils import (
    anisotropic_laplacian_3d,
    convection_diffusion_3d,
    shifted_laplacian_3d,
)
from .rhs import random_rhs
from .registry import TEST_SETS, TestProblem, build_problem

__all__ = [
    "laplacian_5pt",
    "laplacian_7pt",
    "laplacian_27pt",
    "anisotropic_laplacian_3d",
    "convection_diffusion_3d",
    "shifted_laplacian_3d",
    "random_rhs",
    "TEST_SETS",
    "TestProblem",
    "build_problem",
]
