"""Vectorized P1 tetrahedral assembly.

Element matrices are computed for *all* elements at once with batched
NumPy linear algebra (inverse Jacobians via the adjugate), then
scattered into a COO triplet list — the standard HPC assembly pattern,
with no Python-level loop over elements.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from ...linalg import as_csr
from .mesh import TetMesh

__all__ = [
    "p1_gradients",
    "assemble_scalar_stiffness",
    "assemble_vector_stiffness",
    "eliminate_dirichlet",
]


def p1_gradients(mesh: TetMesh) -> Tuple[np.ndarray, np.ndarray]:
    """Gradients of the four P1 basis functions on every tet.

    Returns
    -------
    grads:
        ``(n_tets, 4, 3)`` array; ``grads[e, a]`` is the (constant)
        gradient of basis function ``a`` on element ``e``.
    vols:
        ``(n_tets,)`` element volumes.

    Notes
    -----
    With vertex matrix ``J = [p1-p0, p2-p0, p3-p0]`` the gradients of
    the barycentric coordinates are the rows of ``J^{-T}`` (for
    lambda_1..3) and their negative sum (for lambda_0).
    """
    p = mesh.nodes[mesh.tets]  # (m, 4, 3)
    J = p[:, 1:] - p[:, :1]  # (m, 3, 3), rows are edge vectors
    det = np.linalg.det(J)
    if np.any(np.abs(det) < 1e-14):
        raise ValueError("degenerate tetrahedron (zero volume) in mesh")
    vols = det / 6.0
    if np.any(vols <= 0):
        raise ValueError("negatively oriented tetrahedron; fix orientation first")
    Jinv = np.linalg.inv(J)  # (m, 3, 3)
    # grad lambda_a (a=1..3) are the columns of J^{-1} read as rows of J^{-T}.
    g123 = np.transpose(Jinv, (0, 2, 1))  # (m, 3, 3): g123[e, a-1] = grad lambda_a
    g0 = -g123.sum(axis=1, keepdims=True)  # (m, 1, 3)
    grads = np.concatenate([g0, g123], axis=1)  # (m, 4, 3)
    return grads, vols


def assemble_scalar_stiffness(
    mesh: TetMesh, kappa: np.ndarray | float = 1.0
) -> sp.csr_matrix:
    """Assemble the P1 stiffness matrix for ``-div(kappa grad u)``.

    Parameters
    ----------
    mesh:
        Tetrahedral mesh.
    kappa:
        Scalar diffusion coefficient, either a constant or one value
        per element (e.g. derived from ``mesh.material``).

    Returns
    -------
    The full (boundary rows included) symmetric stiffness matrix.
    """
    grads, vols = p1_gradients(mesh)
    kap = np.broadcast_to(np.asarray(kappa, dtype=np.float64), (mesh.n_tets,))
    # K_e[a, b] = kappa_e * vol_e * grad_a . grad_b
    Ke = np.einsum("e,e,eax,ebx->eab", kap, vols, grads, grads)
    rows = np.repeat(mesh.tets, 4, axis=1).ravel()
    cols = np.tile(mesh.tets, (1, 4)).ravel()
    A = sp.coo_matrix(
        (Ke.ravel(), (rows, cols)), shape=(mesh.n_nodes, mesh.n_nodes)
    )
    return as_csr(A)


def _elastic_moduli(E: np.ndarray, nu: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Lame parameters (lambda, mu) from Young's modulus / Poisson ratio."""
    lam = E * nu / ((1.0 + nu) * (1.0 - 2.0 * nu))
    mu = E / (2.0 * (1.0 + nu))
    return lam, mu


def assemble_vector_stiffness(
    mesh: TetMesh,
    youngs: np.ndarray | float = 1.0,
    poisson: np.ndarray | float = 0.3,
) -> sp.csr_matrix:
    """Assemble the P1 linear-elasticity stiffness matrix (3 dofs/node).

    Small-strain isotropic elasticity:
    ``a(u, v) = int lam (div u)(div v) + 2 mu eps(u):eps(v)``.

    Parameters
    ----------
    youngs, poisson:
        Constants or per-element arrays.  Pass per-element Young's
        moduli keyed on ``mesh.material`` to get the paper's
        multi-material beam.

    Notes
    -----
    Dof ordering is node-major: dof ``3*i + c`` is displacement
    component ``c`` of node ``i``.  Node-major ordering keeps the three
    dofs of a node adjacent, which is what AMG coarsening sees as a
    strongly-coupled block — the same layout hypre/MFEM use by default.
    """
    grads, vols = p1_gradients(mesh)
    m = mesh.n_tets
    E = np.broadcast_to(np.asarray(youngs, dtype=np.float64), (m,))
    nu = np.broadcast_to(np.asarray(poisson, dtype=np.float64), (m,))
    if np.any(nu >= 0.5) or np.any(nu <= -1.0):
        raise ValueError("Poisson ratio must lie in (-1, 0.5)")
    lam, mu = _elastic_moduli(E, nu)

    # Ke[(a,i),(b,j)] = vol * ( lam * g[a,i] g[b,j]
    #                           + mu  * g[a,j] g[b,i]
    #                           + mu  * delta_ij (g[a,.] . g[b,.]) )
    gagb = np.einsum("eax,ebx->eab", grads, grads)  # grad_a . grad_b
    term1 = np.einsum("e,eai,ebj->eaibj", lam * vols, grads, grads)
    term2 = np.einsum("e,eaj,ebi->eaibj", mu * vols, grads, grads)
    term3 = np.einsum("e,eab,ij->eaibj", mu * vols, gagb, np.eye(3))
    Ke = term1 + term2 + term3  # (m, 4, 3, 4, 3)

    dofs = (3 * mesh.tets[:, :, None] + np.arange(3)[None, None, :]).reshape(m, 12)
    rows = np.repeat(dofs, 12, axis=1).ravel()
    cols = np.tile(dofs, (1, 12)).ravel()
    n = 3 * mesh.n_nodes
    A = sp.coo_matrix((Ke.reshape(m, 144).ravel(), (rows, cols)), shape=(n, n))
    return as_csr(A)


def eliminate_dirichlet(
    A: sp.csr_matrix, constrained: np.ndarray
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Remove constrained dofs from ``A`` (homogeneous Dirichlet).

    Returns the reduced SPD matrix and the indices of the retained
    (free) dofs, so solutions can be scattered back if needed.
    """
    n = A.shape[0]
    constrained = np.asarray(constrained, dtype=np.int64)
    if constrained.size and (constrained.min() < 0 or constrained.max() >= n):
        raise ValueError("constrained dof index out of range")
    mask = np.ones(n, dtype=bool)
    mask[constrained] = False
    free = np.flatnonzero(mask)
    if free.size == 0:
        raise ValueError("all dofs constrained; nothing to solve")
    return as_csr(A[free][:, free]), free
