"""From-scratch P1 tetrahedral finite elements (MFEM substitute).

The paper's ``MFEM Laplace`` (sphere, NURBS mesh) and ``MFEM
Elasticity`` (multi-material cantilever, tet mesh) sets only enter the
experiments through the assembled matrices.  We reproduce matrices of
the same class with our own minimal FEM stack:

- :mod:`repro.problems.fem.mesh` — structured tetrahedral meshes of a
  cube, a ball (sphere-masked cube) and a slender beam, with boundary
  detection and per-element material regions.
- :mod:`repro.problems.fem.assembly` — vectorized P1 element matrices
  and global assembly, plus Dirichlet elimination that keeps SPD-ness.
- :mod:`repro.problems.fem.laplace` / :mod:`...fem.elasticity` — the
  two paper problems built on top.
"""

from .mesh import TetMesh, ball_mesh, beam_mesh, cube_mesh
from .laplace import laplace_on_ball, laplace_on_cube
from .elasticity import elasticity_cantilever

__all__ = [
    "TetMesh",
    "ball_mesh",
    "beam_mesh",
    "cube_mesh",
    "laplace_on_ball",
    "laplace_on_cube",
    "elasticity_cantilever",
]
