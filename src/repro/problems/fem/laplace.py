"""The ``MFEM Laplace`` substitute: Poisson on a ball (and cube).

The paper's set is the 3-D Laplacian on a sphere discretized with a
NURBS mesh and H1 nodal elements.  Ours is the P1 stiffness matrix on a
sphere-masked structured tet mesh with homogeneous Dirichlet boundary;
what multigrid sees — an SPD operator with irregular sparsity and
variable row sizes on a non-tensor-product domain — is the same class
of problem (see DESIGN.md section 2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from .assembly import assemble_scalar_stiffness, eliminate_dirichlet
from .mesh import TetMesh, ball_mesh, cube_mesh

__all__ = ["laplace_on_ball", "laplace_on_cube"]


def laplace_on_ball(
    n: int, radius: float = 1.0, return_mesh: bool = False
) -> sp.csr_matrix | Tuple[sp.csr_matrix, TetMesh, np.ndarray]:
    """P1 Laplace stiffness on a ball, Dirichlet boundary eliminated.

    Parameters
    ----------
    n:
        Cells per side of the background grid; the row count grows like
        ``(pi/6) n^3``.  ``n = 48`` lands near the paper's 29,521-row
        MFEM Laplace matrix.
    return_mesh:
        Also return the mesh and the free-dof index map.
    """
    mesh = ball_mesh(n, radius=radius)
    A_full = assemble_scalar_stiffness(mesh)
    A, free = eliminate_dirichlet(A_full, mesh.boundary_nodes)
    if return_mesh:
        return A, mesh, free
    return A


def laplace_on_cube(
    n: int, return_mesh: bool = False
) -> sp.csr_matrix | Tuple[sp.csr_matrix, TetMesh, np.ndarray]:
    """P1 Laplace stiffness on the unit cube (tets), Dirichlet eliminated.

    A cross-check problem: the same PDE as the ``7pt`` set but through
    the FEM pipeline, used in tests to validate the assembly against
    the stencil operators (both must be SPD with the same null-space
    free behaviour and comparable extreme eigenvalues after scaling).
    """
    mesh = cube_mesh(n)
    A_full = assemble_scalar_stiffness(mesh)
    A, free = eliminate_dirichlet(A_full, mesh.boundary_nodes)
    if return_mesh:
        return A, mesh, free
    return A
