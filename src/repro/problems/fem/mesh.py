"""Structured tetrahedral mesh generation.

A hexahedral ``nx x ny x nz`` grid of the requested domain is split
into 6 tetrahedra per hex (the standard Kuhn/Freudenthal subdivision,
which tiles space conformingly).  From the cube mesh we derive:

- :func:`ball_mesh` — keep only tetrahedra whose centroid lies inside a
  ball; the resulting jagged boundary plays the role of the paper's
  NURBS sphere (the multigrid-relevant property is an unstructured
  SPD operator on a non-tensor domain, not boundary smoothness).
- :func:`beam_mesh` — a slender ``Lx >> Ly, Lz`` box with per-element
  material ids split along x (the paper's multi-material cantilever).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

__all__ = ["TetMesh", "cube_mesh", "ball_mesh", "beam_mesh"]

# Kuhn subdivision of the unit hex into 6 tets.  Vertices of the hex are
# numbered by binary (dx, dy, dz) -> dx + 2*dy + 4*dz.  Every tet
# contains the main diagonal (0, 7), which makes the subdivision
# conforming across neighbouring hexes.
_KUHN_TETS = np.array(
    [
        [0, 1, 3, 7],
        [0, 1, 5, 7],
        [0, 2, 3, 7],
        [0, 2, 6, 7],
        [0, 4, 5, 7],
        [0, 4, 6, 7],
    ],
    dtype=np.int64,
)


@dataclass
class TetMesh:
    """A tetrahedral mesh.

    Attributes
    ----------
    nodes:
        ``(n_nodes, 3)`` vertex coordinates.
    tets:
        ``(n_tets, 4)`` vertex indices (positive orientation after
        :func:`_fix_orientation`).
    boundary_nodes:
        Indices of nodes on the Dirichlet boundary.
    material:
        ``(n_tets,)`` integer material id per element (all zero unless
        the generator assigns regions).
    """

    nodes: np.ndarray
    tets: np.ndarray
    boundary_nodes: np.ndarray
    material: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.float64)
        self.tets = np.asarray(self.tets, dtype=np.int64)
        self.boundary_nodes = np.asarray(self.boundary_nodes, dtype=np.int64)
        if self.material is None:
            self.material = np.zeros(len(self.tets), dtype=np.int64)
        if self.nodes.ndim != 2 or self.nodes.shape[1] != 3:
            raise ValueError("nodes must be (n, 3)")
        if self.tets.ndim != 2 or self.tets.shape[1] != 4:
            raise ValueError("tets must be (m, 4)")
        if len(self.material) != len(self.tets):
            raise ValueError("material must have one id per tet")

    @property
    def n_nodes(self) -> int:
        return self.nodes.shape[0]

    @property
    def n_tets(self) -> int:
        return self.tets.shape[0]

    def interior_nodes(self) -> np.ndarray:
        """Complement of :attr:`boundary_nodes`."""
        mask = np.ones(self.n_nodes, dtype=bool)
        mask[self.boundary_nodes] = False
        return np.flatnonzero(mask)

    def volumes(self) -> np.ndarray:
        """Signed volumes of all tets (positive after orientation fix)."""
        p = self.nodes[self.tets]
        d1 = p[:, 1] - p[:, 0]
        d2 = p[:, 2] - p[:, 0]
        d3 = p[:, 3] - p[:, 0]
        return np.einsum("ij,ij->i", d1, np.cross(d2, d3)) / 6.0


def _hex_grid(
    nx: int, ny: int, nz: int, extent: Tuple[float, float, float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Nodes and 6-tet-per-hex connectivity of a structured box grid."""
    if min(nx, ny, nz) < 1:
        raise ValueError("need at least one cell in each direction")
    lx, ly, lz = extent
    xs = np.linspace(0.0, lx, nx + 1)
    ys = np.linspace(0.0, ly, ny + 1)
    zs = np.linspace(0.0, lz, nz + 1)
    X, Y, Z = np.meshgrid(xs, ys, zs, indexing="ij")
    nodes = np.column_stack([X.ravel(), Y.ravel(), Z.ravel()])

    def node_id(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
        return (ix * (ny + 1) + iy) * (nz + 1) + iz

    ix, iy, iz = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    ix, iy, iz = ix.ravel(), iy.ravel(), iz.ravel()
    corners = np.empty((ix.size, 8), dtype=np.int64)
    for c in range(8):
        dx, dy, dz = c & 1, (c >> 1) & 1, (c >> 2) & 1
        corners[:, c] = node_id(ix + dx, iy + dy, iz + dz)
    tets = corners[:, _KUHN_TETS].reshape(-1, 4)
    return nodes, tets


def _fix_orientation(nodes: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Swap two vertices of negatively-oriented tets."""
    p = nodes[tets]
    vol6 = np.einsum(
        "ij,ij->i", p[:, 1] - p[:, 0], np.cross(p[:, 2] - p[:, 0], p[:, 3] - p[:, 0])
    )
    flip = vol6 < 0
    tets = tets.copy()
    tets[flip, 2], tets[flip, 3] = tets[flip, 3].copy(), tets[flip, 2].copy()
    return tets


def _compress(nodes: np.ndarray, tets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Drop unreferenced nodes and renumber connectivity."""
    used = np.unique(tets)
    remap = -np.ones(nodes.shape[0], dtype=np.int64)
    remap[used] = np.arange(used.size)
    return nodes[used], remap[tets]


def _surface_nodes(tets: np.ndarray) -> np.ndarray:
    """Nodes on faces that belong to exactly one tet (the mesh surface)."""
    faces = np.concatenate(
        [
            tets[:, [0, 1, 2]],
            tets[:, [0, 1, 3]],
            tets[:, [0, 2, 3]],
            tets[:, [1, 2, 3]],
        ]
    )
    key = np.sort(faces, axis=1)
    _, idx, counts = np.unique(key, axis=0, return_index=True, return_counts=True)
    boundary_faces = key[idx[counts == 1]]
    return np.unique(boundary_faces)


def cube_mesh(n: int, extent: float = 1.0) -> TetMesh:
    """Tet mesh of the cube ``[0, extent]^3`` with ``n`` cells per side.

    All surface nodes are Dirichlet.
    """
    nodes, tets = _hex_grid(n, n, n, (extent, extent, extent))
    tets = _fix_orientation(nodes, tets)
    return TetMesh(nodes, tets, _surface_nodes(tets))


def ball_mesh(n: int, radius: float = 1.0) -> TetMesh:
    """Tet mesh of (approximately) a ball of the given radius.

    A ``[-r, r]^3`` cube grid with ``n`` cells per side is masked to
    tets whose centroid lies inside the sphere; the jagged surface is
    the Dirichlet boundary.  This is our substitute for the paper's
    NURBS sphere (see DESIGN.md section 2).
    """
    if n < 3:
        raise ValueError("ball_mesh needs n >= 3 for a non-degenerate interior")
    nodes, tets = _hex_grid(n, n, n, (2 * radius, 2 * radius, 2 * radius))
    nodes = nodes - radius  # centre at the origin
    tets = _fix_orientation(nodes, tets)
    centroids = nodes[tets].mean(axis=1)
    inside = np.einsum("ij,ij->i", centroids, centroids) <= radius * radius
    if not inside.any():
        raise ValueError("mask removed every tet; increase n")
    nodes2, tets2 = _compress(nodes, tets[inside])
    return TetMesh(nodes2, tets2, _surface_nodes(tets2))


def beam_mesh(
    nx: int,
    ny: int,
    nz: int,
    length: float = 8.0,
    width: float = 1.0,
    height: float = 1.0,
    n_materials: int = 2,
) -> TetMesh:
    """Slender multi-material cantilever beam mesh.

    The beam occupies ``[0, length] x [0, width] x [0, height]``; the
    face at ``x = 0`` is clamped (Dirichlet).  Elements are assigned
    ``n_materials`` material ids in equal slabs along x, mirroring the
    paper's multi-material cantilever.
    """
    if n_materials < 1:
        raise ValueError("n_materials must be >= 1")
    nodes, tets = _hex_grid(nx, ny, nz, (length, width, height))
    tets = _fix_orientation(nodes, tets)
    clamped = np.flatnonzero(np.isclose(nodes[:, 0], 0.0))
    centroids = nodes[tets].mean(axis=1)
    material = np.minimum(
        (centroids[:, 0] / length * n_materials).astype(np.int64), n_materials - 1
    )
    return TetMesh(nodes, tets, clamped, material)
