"""The ``MFEM Elasticity`` substitute: a multi-material cantilever beam.

Linear elasticity on a slender beam clamped at ``x = 0``, with two (or
more) materials of different stiffness along the beam — the same model
problem MFEM's elasticity example (and the paper) uses.  Elasticity is
the hard case for classical AMG because the near-null space is
six-dimensional (rigid body modes) while classical interpolation only
captures constants; the paper's Table I shows exactly this via much
higher V-cycle counts, and our substitute preserves that difficulty.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .assembly import assemble_vector_stiffness, eliminate_dirichlet
from .mesh import TetMesh, beam_mesh

__all__ = ["elasticity_cantilever"]


def elasticity_cantilever(
    nx: int,
    ny: int,
    nz: int,
    youngs_by_material: Sequence[float] = (1.0, 10.0),
    poisson: float = 0.3,
    length: float = 8.0,
    return_mesh: bool = False,
) -> sp.csr_matrix | Tuple[sp.csr_matrix, TetMesh, np.ndarray]:
    """Elasticity stiffness for the clamped multi-material beam.

    Parameters
    ----------
    nx, ny, nz:
        Cells along the beam and across the section.  Rows ≈
        ``3 * (nx+1)(ny+1)(nz+1)`` minus the clamped face.  For the
        paper's 37,281-row matrix use roughly ``nx=48, ny=15, nz=15``.
    youngs_by_material:
        One Young's modulus per material slab along the beam (the
        number of slabs equals ``len(youngs_by_material)``).
    poisson:
        Poisson ratio shared by all materials.
    return_mesh:
        Also return the mesh and the free-dof index map (into the
        node-major 3-dof-per-node numbering).
    """
    youngs = np.asarray(list(youngs_by_material), dtype=np.float64)
    if youngs.size < 1 or np.any(youngs <= 0):
        raise ValueError("need at least one positive Young's modulus")
    mesh = beam_mesh(nx, ny, nz, length=length, n_materials=youngs.size)
    E_per_elem = youngs[mesh.material]
    A_full = assemble_vector_stiffness(mesh, youngs=E_per_elem, poisson=poisson)
    clamped_dofs = (3 * mesh.boundary_nodes[:, None] + np.arange(3)).ravel()
    A, free = eliminate_dirichlet(A_full, clamped_dofs)
    if return_mesh:
        return A, mesh, free
    return A
