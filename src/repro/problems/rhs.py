"""Right-hand sides for the experiments.

The paper uses "random right-hand sides with values in [-1, 1]"
(Section V).  Every generator here takes an explicit seed so the same
RHS can be replayed across methods within one experiment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_rhs", "ones_rhs", "smooth_rhs"]


def random_rhs(n: int, seed: int = 0) -> np.ndarray:
    """Uniform random vector in ``[-1, 1]`` of length ``n`` (paper's RHS)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=n)


def ones_rhs(n: int) -> np.ndarray:
    """All-ones RHS (handy for deterministic debugging)."""
    return np.ones(n, dtype=np.float64)


def smooth_rhs(n: int, waves: int = 1) -> np.ndarray:
    """A smooth (low-frequency) RHS — stresses the coarse-grid path.

    ``sin(pi * waves * i / (n+1))`` over a 1-D index; useful in tests
    that must separate smoother action from coarse-grid correction.
    """
    i = np.arange(1, n + 1, dtype=np.float64)
    return np.sin(np.pi * waves * i / (n + 1.0))
