"""Named test sets mirroring the paper (Section V).

Benchmarks refer to problems by the paper's names (``7pt``, ``27pt``,
``mfem_laplace``, ``mfem_elasticity``) and a size parameter.  The
registry also records the smoother weight each set uses in Table I
(omega = .9 for the stencil sets, .5 for the FEM sets) so benchmark
code does not hard-code paper constants in multiple places.  The 2-D
``5pt`` set is not in the paper's Table I; it is the kernel-benchmark
workhorse (``repro bench`` runs it at grid length 256).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np
import scipy.sparse as sp

from .fem import elasticity_cantilever, laplace_on_ball
from .rhs import random_rhs
from .stencils import laplacian_5pt, laplacian_7pt, laplacian_27pt

__all__ = ["TestProblem", "TEST_SETS", "build_problem", "table1_sizes"]


@dataclass(frozen=True)
class TestProblem:
    """A built test problem: matrix, RHS, and paper metadata."""

    name: str
    A: sp.csr_matrix
    b: np.ndarray
    size_param: int
    jacobi_weight: float

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def nnz(self) -> int:
        return int(self.A.nnz)


def _build_5pt(n: int) -> sp.csr_matrix:
    return laplacian_5pt(n)


def _build_7pt(n: int) -> sp.csr_matrix:
    return laplacian_7pt(n)


def _build_27pt(n: int) -> sp.csr_matrix:
    return laplacian_27pt(n)


def _build_mfem_laplace(n: int) -> sp.csr_matrix:
    return laplace_on_ball(n)


def _build_mfem_elasticity(n: int) -> sp.csr_matrix:
    # A 2:1 cantilever (length 2, unit section).  Slender beams (the
    # 8:1 default of :func:`elasticity_cantilever`) produce bending
    # near-kernels that classical AMG interpolation cannot represent
    # at any scale — rates degrade to ~0.999 — so the registry's
    # benchmark matrix uses the stockier geometry, which preserves the
    # paper's qualitative ordering (elasticity slowest of the four
    # sets) while remaining solvable by classical-AMG-based multigrid.
    return elasticity_cantilever(n, n, n, length=2.0)


_BUILDERS: Dict[str, Callable[[int], sp.csr_matrix]] = {
    "5pt": _build_5pt,
    "7pt": _build_7pt,
    "27pt": _build_27pt,
    "mfem_laplace": _build_mfem_laplace,
    "mfem_elasticity": _build_mfem_elasticity,
}

# Jacobi weights per set: Table I values for the paper's four sets;
# the 2-D ``5pt`` benchmark set uses the stencil-set weight.
_WEIGHTS: Dict[str, float] = {
    "5pt": 0.9,
    "7pt": 0.9,
    "27pt": 0.9,
    "mfem_laplace": 0.5,
    "mfem_elasticity": 0.5,
}

TEST_SETS = tuple(_BUILDERS)


def build_problem(name: str, size: int, rhs_seed: int = 0) -> TestProblem:
    """Build a named test problem at the given size parameter.

    ``size`` is the grid length for the stencil sets, the background
    resolution for the ball, and the beam length in cells for
    elasticity.
    """
    if name not in _BUILDERS:
        raise KeyError(f"unknown test set {name!r}; choose from {TEST_SETS}")
    A = _BUILDERS[name](size)
    b = random_rhs(A.shape[0], seed=rhs_seed)
    return TestProblem(name, A, b, size, _WEIGHTS[name])


def table1_sizes(scale: float = 1.0) -> Dict[str, int]:
    """Size parameters approximating Table I's four matrices.

    ``scale = 1.0`` reproduces the paper's row counts (27k–37k rows);
    smaller scales shrink every set proportionally for quick runs.
    """
    base = {"7pt": 30, "27pt": 30, "mfem_laplace": 38, "mfem_elasticity": 23}
    return {k: max(4, int(round(v * scale))) for k, v in base.items()}
