"""Thread-to-grid partitioning (Section IV).

"Threads are distributed among the grids to balance the amount of
'work', where the work for a grid is approximately the number of flops
required for that grid to carry out its correction."
"""

from .work import largest_remainder, partition_ranks, partition_threads

__all__ = ["partition_threads", "partition_ranks", "largest_remainder"]
