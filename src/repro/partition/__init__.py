"""Thread-to-grid partitioning (Section IV).

"Threads are distributed among the grids to balance the amount of
'work', where the work for a grid is approximately the number of flops
required for that grid to carry out its correction."
"""

from .work import partition_threads, largest_remainder

__all__ = ["partition_threads", "largest_remainder"]
