"""Work-proportional integer partitioning of threads among grids."""

from __future__ import annotations

import numpy as np

__all__ = ["largest_remainder", "partition_threads", "partition_ranks"]


def largest_remainder(weights: np.ndarray, total: int) -> np.ndarray:
    """Apportion ``total`` integer units proportionally to ``weights``.

    The largest-remainder (Hamilton) method: floor the ideal shares,
    then hand the leftover units to the largest fractional remainders.
    Deterministic (ties broken by index) and exact
    (``sum(out) == total``).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if total < 0:
        raise ValueError("total must be non-negative")
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0) or weights.sum() == 0.0:
        raise ValueError("weights must be non-negative with positive sum")
    ideal = weights / weights.sum() * total
    out = np.floor(ideal).astype(np.int64)
    rem = total - int(out.sum())
    if rem > 0:
        frac = ideal - out
        order = np.lexsort((np.arange(weights.size), -frac))
        out[order[:rem]] += 1
    return out


def partition_threads(work: np.ndarray, nthreads: int) -> np.ndarray:
    """Threads per grid, proportional to per-correction work, >= 1 each.

    Every grid must make progress in an asynchronous method, so each
    gets at least one thread; when ``nthreads < ngrids`` the deficit is
    taken from the smallest-work grids last (they share what is left —
    modeled by still granting 1, i.e. oversubscription, which is what
    an OpenMP runtime would do with more "teams" than cores).
    """
    work = np.asarray(work, dtype=np.float64)
    ngrids = work.size
    if nthreads < 1:
        raise ValueError("nthreads must be >= 1")
    if ngrids == 0:
        raise ValueError("need at least one grid")
    if nthreads <= ngrids:
        return np.ones(ngrids, dtype=np.int64)
    extra = largest_remainder(np.maximum(work, 1e-12), nthreads - ngrids)
    return extra + 1


def partition_ranks(work: np.ndarray, nranks: int) -> np.ndarray:
    """Ranks per grid under elastic membership; zero-rank grids allowed.

    With at least one rank per grid available this is exactly
    :func:`partition_threads` (so a full-strength elastic run is
    bit-identical to a static one).  With fewer live ranks than grids
    there is no oversubscription to fall back on — each rank is a
    simulated process, not an OpenMP team — so the ``nranks``
    largest-work grids get one rank each and the rest get **zero**
    (parked: the solve continues degraded without their corrections,
    see :mod:`repro.distributed.elastic`).
    """
    work = np.asarray(work, dtype=np.float64)
    ngrids = work.size
    if nranks < 0:
        raise ValueError("nranks must be non-negative")
    if ngrids == 0:
        raise ValueError("need at least one grid")
    if nranks >= ngrids:
        return partition_threads(work, nranks)
    out = np.zeros(ngrids, dtype=np.int64)
    if nranks:
        # Deterministic: largest work first, ties broken by grid index.
        order = np.lexsort((np.arange(ngrids), -work))
        out[order[:nranks]] = 1
    return out
