"""Shared solver machinery.

:class:`AdditiveMultigrid` is the common base of BPX, Multadd and
AFACx.  Its central abstraction is ``correction(k, r)``: the fine-grid
correction contributed by grid ``k`` given a fine-grid residual ``r``.
One synchronous "V-cycle" (the paper's loose usage for additive
methods) is::

    r = b - A x
    x = x + sum_k correction(k, r)

and the asynchronous engines call ``correction`` with *stale* residuals
or residuals recomputed from *stale* iterates — that is the only
difference between the synchronous and asynchronous methods, exactly as
in the paper's models.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np
import scipy.sparse as sp

from ..amg import Hierarchy
from ..linalg import rel_residual_norm
from ..resilience import FaultTelemetry
from ..smoothers import Smoother, make_smoother
from .coarse import CoarseSolver

__all__ = ["SolveResult", "AdditiveMultigrid", "build_level_smoothers"]


@dataclass
class SolveResult:
    """Outcome of a fixed-cycle solve.

    Attributes
    ----------
    x:
        Final iterate.
    residual_history:
        ``||r||/||b||`` after each cycle (index 0 = after 1 cycle).
    cycles:
        Number of cycles performed.
    corrections:
        Total grid corrections performed (== ``cycles * ngrids`` for
        synchronous additive methods; asynchronous engines report their
        own counts).
    diverged:
        True when the final relative residual exceeds the divergence
        threshold (the paper's dagger entries).
    stalled / telemetry:
        The uniform result contract (RPR005): a synchronous fixed-cycle
        solve cannot stall and injects no faults, so these stay at
        their defaults — but consumers that mix sync and async results
        never need ``hasattr`` probes.
    """

    x: np.ndarray
    residual_history: List[float] = field(default_factory=list)
    cycles: int = 0
    corrections: int = 0
    diverged: bool = False
    stalled: bool = False
    telemetry: FaultTelemetry = field(default_factory=FaultTelemetry)

    @property
    def final_relres(self) -> float:
        return self.residual_history[-1] if self.residual_history else np.inf


def build_level_smoothers(
    hierarchy: Hierarchy, smoother: str, **kwargs
) -> List[Smoother]:
    """One smoother per non-coarsest level (the paper smooths k < l)."""
    return [
        make_smoother(smoother, lv.A, **kwargs) for lv in hierarchy.levels[:-1]
    ]


class AdditiveMultigrid(ABC):
    """Base class for additive multigrid solvers.

    Parameters
    ----------
    hierarchy:
        AMG hierarchy from :func:`repro.amg.setup_hierarchy`.
    smoother:
        Registry name (``"jacobi"``, ``"l1_jacobi"``, ``"hybrid_jgs"``,
        ``"async_gs"``, ...).
    smoother_kwargs:
        Forwarded to the smoother constructor on every level.
    """

    #: display name used by benchmark tables
    method_name: str = "additive"

    def __init__(
        self,
        hierarchy: Hierarchy,
        smoother: str = "jacobi",
        **smoother_kwargs,
    ):
        self.hierarchy = hierarchy
        self.smoother_name = smoother
        self.smoother_kwargs = dict(smoother_kwargs)
        self.smoothers = build_level_smoothers(hierarchy, smoother, **smoother_kwargs)
        self.coarse = CoarseSolver(hierarchy.levels[-1].A)

    # ------------------------------------------------------------------
    @property
    def A(self) -> sp.csr_matrix:
        return self.hierarchy.levels[0].A

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def ngrids(self) -> int:
        """Number of grids contributing corrections (the paper's l+1)."""
        return self.hierarchy.nlevels

    # ------------------------------------------------------------------
    @abstractmethod
    def correction(self, k: int, r: np.ndarray) -> np.ndarray:
        """Grid ``k``'s fine-grid correction from fine-grid residual ``r``.

        This is ``B_k`` evaluated at the point where ``b - A x = r``
        (solution-based models) and ``C_k(r)`` (residual-based models).
        """

    def correction_from_x(
        self, k: int, x: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """``B_k(x)``: recompute the residual from ``x`` then correct.

        The local-res path: the grid owns its residual computation.
        """
        return self.correction(k, b - self.A @ x)

    def correction_into(
        self, k: int, r: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Accumulate grid ``k``'s correction: ``out += correction(k, r)``.

        Subclasses fuse the final fine-grid prolongation through
        :func:`repro.kernels.prolong_add`, so accumulating a correction
        skips the full-length temporary the generic form allocates.
        Bit-identical to ``out += self.correction(k, r)`` under the
        numpy kernel backend.
        """
        out += self.correction(k, r)
        return out

    # ------------------------------------------------------------------
    def cycle(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        """One synchronous additive cycle (all grids, one fresh residual)."""
        r = b - self.A @ x
        out = np.array(x, copy=True)
        for k in range(self.ngrids):
            self.correction_into(k, r, out)
        return out

    def solve(
        self,
        b: np.ndarray,
        tmax: int = 20,
        x0: Optional[np.ndarray] = None,
        divergence_threshold: float = 1e6,
        callback: Optional[Callable[[int, float], None]] = None,
    ) -> SolveResult:
        """Run ``tmax`` synchronous cycles, recording relative residuals.

        The residual-norm recording happens *outside* the method (as in
        the paper, which never evaluates norms inside the solve loop).
        """
        x = np.zeros(self.n) if x0 is None else np.array(x0, dtype=np.float64)
        res = SolveResult(x=x)
        for t in range(1, tmax + 1):
            x = self.cycle(x, b)
            rel = rel_residual_norm(self.A, x, b)
            res.residual_history.append(rel)
            res.cycles = t
            res.corrections += self.ngrids
            if callback is not None:
                callback(t, rel)
            if not np.isfinite(rel) or rel > divergence_threshold:
                res.diverged = True
                break
        res.x = x
        res.diverged = res.diverged or not np.isfinite(res.final_relres)
        return res

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    @abstractmethod
    def correction_flops(self, k: int) -> float:
        """Approximate flops of one ``correction(k, .)`` call."""

    def residual_flops(self) -> float:
        """Cost of one fine-grid residual (SpMV + axpy)."""
        return 2.0 * self.A.nnz + self.n

    def work_per_grid(self) -> np.ndarray:
        """Per-grid work vector used for thread partitioning (Section IV)."""
        return np.array(
            [self.correction_flops(k) for k in range(self.ngrids)], dtype=np.float64
        )
