"""Preconditioned conjugate gradients (extension).

The paper uses Multadd/AFACx as stand-alone solvers; BPX is
historically a *preconditioner*.  PCG closes that loop: any additive
solver's symmetric one-cycle operator ``B`` (``x += B r``) can
precondition CG, which also turns the divergent BPX solver into a
convergent method — one of our ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr, two_norm
from .base import SolveResult

__all__ = ["PCG"]


class PCG:
    """CG preconditioned by a (symmetric) operator ``precond(r) -> z``."""

    method_name = "pcg"

    def __init__(
        self,
        A: sp.spmatrix,
        precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        self.A = as_csr(A)
        self.precond = precond if precond is not None else (lambda r: r.copy())

    @classmethod
    def with_additive_preconditioner(cls, solver) -> "PCG":
        """Build PCG using one additive cycle (from zero) as ``B r``.

        ``solver`` is any :class:`~repro.solvers.base.AdditiveMultigrid`;
        the preconditioner application is ``sum_k correction(k, r)``.
        """

        def apply_B(r: np.ndarray) -> np.ndarray:
            z = np.zeros_like(r)
            for k in range(solver.ngrids):
                z += solver.correction(k, r)
            return z

        return cls(solver.A, apply_B)

    def solve(
        self,
        b: np.ndarray,
        tol: float = 1e-9,
        maxiter: int = 500,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Standard PCG; stops on ``||r|| / ||b|| < tol``."""
        n = self.A.shape[0]
        x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
        r = b - self.A @ x
        z = self.precond(r)
        p = z.copy()
        rz = float(r @ z)
        nb = two_norm(b) or 1.0
        res = SolveResult(x=x)
        for it in range(1, maxiter + 1):
            Ap = self.A @ p
            pAp = float(p @ Ap)
            if pAp <= 0.0:
                # Indefinite preconditioned system — stop and report.
                res.diverged = True
                break
            alpha = rz / pAp
            x += alpha * p
            r -= alpha * Ap
            rel = two_norm(r) / nb
            res.residual_history.append(rel)
            res.cycles = it
            if rel < tol:
                break
            z = self.precond(r)
            rz_new = float(r @ z)
            p = z + (rz_new / rz) * p
            rz = rz_new
        res.x = x
        return res
