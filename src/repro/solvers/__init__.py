"""Multigrid solvers.

- :class:`MultiplicativeMultigrid` — the classical V(s1,s2)-cycle
  (Algorithm 1 of the paper), the ``Mult`` baseline.
- :class:`BPX` — the classical additive preconditioner (Eq. 1); kept
  both as a preconditioner and as the divergent-as-a-solver baseline
  the paper discusses.
- :class:`Multadd` — additive variants of multiplicative multigrid
  (Eq. 2; Vassilevski & Yang) with smoothed interpolants and the
  symmetrized smoother.
- :class:`AFACx` — the asynchronous fast adaptive composite grid
  method with smoothing (Algorithm 2).
- :class:`PCG` — conjugate gradients preconditioned by any of the
  above (extension; the paper uses the methods as solvers only).

Additive solvers share the :class:`AdditiveMultigrid` interface:
``correction(k, r)`` returns grid ``k``'s fine-grid correction from a
fine-grid residual, which is exactly the ``B_k`` / ``C_k`` of the
asynchronous models (Section III) and the unit of work of the
shared-memory algorithms (Section IV).
"""

from .base import AdditiveMultigrid, SolveResult
from .coarse import CoarseSolver
from .mult import MultiplicativeMultigrid
from .bpx import BPX
from .multadd import Multadd
from .afacx import AFACx
from .pcg import PCG
from .fcg import FCG

__all__ = [
    "AdditiveMultigrid",
    "SolveResult",
    "CoarseSolver",
    "MultiplicativeMultigrid",
    "BPX",
    "Multadd",
    "AFACx",
    "PCG",
    "FCG",
]
