"""BPX — the classical additive multigrid preconditioner (Eq. 1).

``x += sum_k P_k^0 Lambda_k (P_k^0)^T r`` with *plain* interpolants and
``Lambda_k = M_k^{-1}`` (``Lambda_l = A_l^{-1}``).  As the paper notes,
the coarse right-hand sides are nearly identical across grids, so the
summed corrections over-correct and BPX *diverges as a solver* — it is
meant to be used inside CG.  We keep it for exactly that contrast: the
over-correction benchmark, and as a PCG preconditioner.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..amg import Hierarchy
from .base import AdditiveMultigrid

__all__ = ["BPX"]


class BPX(AdditiveMultigrid):
    """BPX additive multigrid (Bramble-Pasciak-Xu)."""

    method_name = "bpx"

    def __init__(
        self,
        hierarchy: Hierarchy,
        smoother: str = "jacobi",
        scale: float = 1.0,
        **smoother_kwargs,
    ):
        """``scale`` multiplies every correction — a damped BPX with
        ``scale ~ 1/(l+1)`` is a crude convergent fallback used in one
        ablation."""
        super().__init__(hierarchy, smoother, **smoother_kwargs)
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def _level_correction(self, k: int, r: np.ndarray) -> np.ndarray:
        c = self.hierarchy.restrict_from_fine(k, r)
        return self.coarse(c) if k == self.hierarchy.coarsest else self.smoothers[k].minv(c)

    def correction(self, k: int, r: np.ndarray) -> np.ndarray:
        """``scale * P_k^0 Lambda_k (P_k^0)^T r``."""
        d = self._level_correction(k, r)
        return self.scale * self.hierarchy.interpolate_to_fine(k, d)

    def correction_into(
        self, k: int, r: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Accumulating form: the final factor is a fused scaled
        prolong-add (``scale`` rides along as the omega weight)."""
        d = self._level_correction(k, r)
        if k == 0:
            out += self.scale * d
            return out
        hier = self.hierarchy
        for j in range(k - 1, 0, -1):
            d = hier.levels[j].P @ d
        return kernels.prolong_add(out, hier.levels[0].P, d, omega=self.scale)

    def correction_flops(self, k: int) -> float:
        total = 0.0
        for j in range(k):
            total += 4.0 * self.hierarchy.levels[j].P.nnz
        if k == self.hierarchy.coarsest:
            total += self.coarse.flops()
        else:
            total += self.smoothers[k].minv_flops()
        return total
