"""Coarsest-grid solver.

Multadd and the multiplicative cycle use ``Lambda_l = A_l^{-1}``
(paper Eq. 1/2): an exact solve on the coarsest grid.  We cache a
sparse LU factorization; the coarsest grid is tiny (``max_coarse``
rows) so setup cost is negligible.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..linalg import as_csr

__all__ = ["CoarseSolver"]


class CoarseSolver:
    """Cached exact solver for the coarsest-grid operator."""

    def __init__(self, A: sp.spmatrix):
        self.A = as_csr(A)
        if self.A.shape[0] != self.A.shape[1]:
            raise ValueError("coarse solver needs a square matrix")
        self._lu = spla.splu(self.A.tocsc())

    def __call__(self, r: np.ndarray) -> np.ndarray:
        """Solve ``A e = r`` exactly."""
        return self._lu.solve(np.asarray(r, dtype=np.float64))

    def flops(self) -> float:
        """Approximate solve cost (two triangular sweeps over the LU)."""
        return 2.0 * (self._lu.L.nnz + self._lu.U.nnz)
