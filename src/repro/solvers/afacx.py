"""AFACx — the asynchronous fast adaptive composite grid method with
smoothing (Algorithm 2 of the paper).

Grid ``k``'s correction for ``k < l``:

1. Restrict the fine residual through the *plain* interpolants:
   ``r_k = (P_k^0)^T r`` and ``r_{k+1} = (P^k_{k+1})^T r_k``.
2. ``e_{k+1} = Smooth(A_{k+1}, r_{k+1})`` — ``s2`` sweeps, zero guess.
3. ``e_k = Smooth(A_k, r_k - A_k P e_{k+1})`` — ``s1`` sweeps, zero
   guess.  This is the *modified right-hand side* form of Algorithm 2
   lines 8-9, algebraically identical to smoothing from the initial
   guess ``P e_{k+1}`` and then subtracting ``P_{k+1}^0 e_{k+1}`` from
   the prolonged correction (the anti-over-correction step of AFAC);
   the identity holds for any sweep count and is unit tested.
4. The correction is ``P_k^0 e_k``.

On the coarsest grid the correction is plain smoothing of
``A_l e = r_l`` (AFACx smooths everywhere — that is its point), with an
optional exact solve for ablations.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..amg import Hierarchy
from .base import AdditiveMultigrid

__all__ = ["AFACx"]


class AFACx(AdditiveMultigrid):
    """AFACx additive multigrid with V(s1/s2, 0) inner cycles."""

    method_name = "afacx"

    def __init__(
        self,
        hierarchy: Hierarchy,
        smoother: str = "jacobi",
        s1: int = 1,
        s2: int = 1,
        coarse_sweeps: int = 1,
        exact_coarse: bool = False,
        **smoother_kwargs,
    ):
        """
        Parameters
        ----------
        s1, s2:
            Sweeps for ``e_k`` and ``e_{k+1}`` (the paper's V(1/1,0)).
        coarse_sweeps:
            Smoothing sweeps on the coarsest grid.
        exact_coarse:
            Replace coarsest smoothing by an exact solve (ablation).
        """
        super().__init__(hierarchy, smoother, **smoother_kwargs)
        if s1 < 1 or s2 < 1 or coarse_sweeps < 1:
            raise ValueError("sweep counts must be >= 1")
        self.s1 = int(s1)
        self.s2 = int(s2)
        self.coarse_sweeps = int(coarse_sweeps)
        self.exact_coarse = bool(exact_coarse)
        # AFACx smooths on every grid *including* the coarsest, so it
        # needs a smoother there too (the base class only builds k < l).
        from ..smoothers import make_smoother

        self._coarse_smoother = make_smoother(
            self.smoother_name, hierarchy.levels[-1].A, **self.smoother_kwargs
        )

    # ------------------------------------------------------------------
    def _smooth_zero_guess(self, level: int, rhs: np.ndarray, sweeps: int) -> np.ndarray:
        """``sweeps`` stationary iterations on ``A_level e = rhs``, zero guess."""
        sm = (
            self._coarse_smoother
            if level == self.hierarchy.coarsest
            else self.smoothers[level]
        )
        return sm.sweep(np.zeros_like(rhs), rhs, nsweeps=sweeps)

    def _level_correction(self, k: int, r: np.ndarray) -> np.ndarray:
        """Grid-``k`` correction ``e_k`` before fine-grid interpolation."""
        hier = self.hierarchy
        ell = hier.coarsest
        r_k = hier.restrict_from_fine(k, r)
        if k == ell:
            return self.coarse(r_k) if self.exact_coarse else self._smooth_zero_guess(
                ell, r_k, self.coarse_sweeps
            )
        lv = hier.levels[k]
        r_k1 = lv.R @ r_k
        e_k1 = self._smooth_zero_guess(k + 1, r_k1, self.s2)
        rhs = r_k - lv.A @ (lv.P @ e_k1)
        return self._smooth_zero_guess(k, rhs, self.s1)

    def correction(self, k: int, r: np.ndarray) -> np.ndarray:
        """AFACx correction of grid ``k`` from fine residual ``r``."""
        return self.hierarchy.interpolate_to_fine(k, self._level_correction(k, r))

    def correction_into(
        self, k: int, r: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Accumulating form with the final interpolation factor fused."""
        e_k = self._level_correction(k, r)
        if k == 0:
            out += e_k
            return out
        hier = self.hierarchy
        for j in range(k - 1, 0, -1):
            e_k = hier.levels[j].P @ e_k
        return kernels.prolong_add(out, hier.levels[0].P, e_k)

    # ------------------------------------------------------------------
    def correction_flops(self, k: int) -> float:
        hier = self.hierarchy
        total = 0.0
        for j in range(k):
            total += 4.0 * hier.levels[j].P.nnz  # restrict + prolong
        if k == hier.coarsest:
            if self.exact_coarse:
                total += self.coarse.flops()
            else:
                total += self.coarse_sweeps * self._coarse_smoother.flops_per_sweep()
        else:
            lv = hier.levels[k]
            total += 2.0 * lv.R.nnz  # extra restriction to k+1
            total += self.s2 * self.smoothers_flops(k + 1)
            total += 2.0 * lv.P.nnz + 2.0 * lv.A.nnz  # P e and A (P e)
            total += self.s1 * self.smoothers[k].flops_per_sweep()
        return total

    def smoothers_flops(self, level: int) -> float:
        if level == self.hierarchy.coarsest:
            return self._coarse_smoother.flops_per_sweep()
        return self.smoothers[level].flops_per_sweep()
