"""Flexible conjugate gradients (FCG) — asynchronous preconditioning.

Classical PCG assumes a *fixed* SPD preconditioner.  An asynchronous
multigrid cycle is not a fixed operator — every application uses a
different schedule — so wrapping it in plain CG breaks the short
recurrence.  FCG (Notay's flexible variant with explicit
orthogonalization against the last ``mmax`` directions) tolerates a
changing preconditioner, which makes "asynchronous Multadd as a Krylov
preconditioner" well-posed: an extension the paper's framework invites
but does not explore.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from ..linalg import as_csr, two_norm
from .base import SolveResult

__all__ = ["FCG"]


class FCG:
    """Flexible CG with truncated explicit orthogonalization."""

    method_name = "fcg"

    def __init__(
        self,
        A: sp.spmatrix,
        precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        mmax: int = 2,
    ):
        """``mmax`` past directions are kept for A-orthogonalization
        (Notay's FCG(1) corresponds to ``mmax=1``; 2 is a robust
        default for mildly varying preconditioners)."""
        if mmax < 1:
            raise ValueError("mmax must be >= 1")
        self.A = as_csr(A)
        self.precond = precond if precond is not None else (lambda r: r.copy())
        self.mmax = int(mmax)

    @classmethod
    def with_async_preconditioner(
        cls,
        solver,
        tmax: int = 1,
        alpha: float = 0.5,
        seed: int = 0,
        mmax: int = 2,
    ) -> "FCG":
        """FCG preconditioned by asynchronous additive multigrid.

        Each preconditioner application runs ``tmax`` asynchronous
        V-cycle-equivalents of ``solver`` via the sequential engine,
        with a *fresh schedule every call* (that is the whole point of
        using a flexible method).
        """
        from ..core.engine import run_async_engine

        counter = {"calls": 0}

        def apply_B(r: np.ndarray) -> np.ndarray:
            counter["calls"] += 1
            res = run_async_engine(
                solver,
                r,
                tmax=tmax,
                rescomp="local",
                write="lock",
                criterion="criterion2",
                alpha=alpha,
                seed=seed + counter["calls"],
            )
            return res.x

        return cls(solver.A, apply_B, mmax=mmax)

    def solve(
        self,
        b: np.ndarray,
        tol: float = 1e-9,
        maxiter: int = 500,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """FCG iteration; stops on ``||r|| / ||b|| < tol``."""
        n = self.A.shape[0]
        x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
        r = b - self.A @ x
        nb = two_norm(b) or 1.0
        res = SolveResult(x=x)
        # deque of (p, Ap, pAp) for explicit A-orthogonalization.
        history: deque = deque(maxlen=self.mmax)
        for it in range(1, maxiter + 1):
            z = self.precond(r)
            p = z.copy()
            for p_old, Ap_old, pAp_old in history:
                beta = float(z @ Ap_old) / pAp_old
                p -= beta * p_old
            Ap = self.A @ p
            pAp = float(p @ Ap)
            if pAp <= 0.0:
                res.diverged = True
                break
            alpha_cg = float(p @ r) / pAp
            x += alpha_cg * p
            r -= alpha_cg * Ap
            history.append((p, Ap, pAp))
            rel = two_norm(r) / nb
            res.residual_history.append(rel)
            res.cycles = it
            if rel < tol:
                break
        res.x = x
        return res
