"""Classical multiplicative multigrid (Algorithm 1) — the Mult baseline.

A V(s1, s2)-cycle: pre-smooth and restrict down the hierarchy, solve
the coarsest grid exactly, prolong and post-smooth back up.  The
``symmetric`` flag makes post-smoothing use ``M^T`` (the transposed
sweep), which is the variant Multadd with the symmetrized smoother is
mathematically equivalent to (Section II.B.1) — that identity is unit
tested.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..amg import Hierarchy
from ..linalg import rel_residual_norm
from .base import SolveResult, build_level_smoothers
from .coarse import CoarseSolver

__all__ = ["MultiplicativeMultigrid"]


class MultiplicativeMultigrid:
    """V-cycle multiplicative multigrid solver."""

    method_name = "mult"

    def __init__(
        self,
        hierarchy: Hierarchy,
        smoother: str = "jacobi",
        pre_sweeps: int = 1,
        post_sweeps: int = 1,
        symmetric: bool = False,
        gamma: int = 1,
        f_cycle: bool = False,
        **smoother_kwargs,
    ):
        """``gamma`` is the cycle index: 1 = V-cycle (Algorithm 1),
        2 = W-cycle (each coarse problem visited twice).  ``f_cycle``
        runs an F-cycle: the first coarse visit recurses like a
        W-cycle, later ones like a V-cycle — the classical compromise.
        """
        if pre_sweeps < 0 or post_sweeps < 0:
            raise ValueError("sweep counts must be non-negative")
        if gamma < 1:
            raise ValueError("gamma must be >= 1")
        self.hierarchy = hierarchy
        self.pre_sweeps = int(pre_sweeps)
        self.post_sweeps = int(post_sweeps)
        self.symmetric = bool(symmetric)
        self.gamma = int(gamma)
        self.f_cycle = bool(f_cycle)
        self.smoothers = build_level_smoothers(hierarchy, smoother, **smoother_kwargs)
        self.coarse = CoarseSolver(hierarchy.levels[-1].A)

    @property
    def A(self):
        return self.hierarchy.levels[0].A

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def ngrids(self) -> int:
        return self.hierarchy.nlevels

    # ------------------------------------------------------------------
    def _solve_level(self, k: int, rhs: np.ndarray, gamma: int) -> np.ndarray:
        """Recursive cycle on level ``k``'s error equation ``A_k e = rhs``.

        ``gamma`` coarse visits per level (V: 1, W: 2); an F-cycle's
        first visit passes its own gamma down, subsequent visits use 1.
        """
        levels = self.hierarchy.levels
        ell = self.hierarchy.coarsest
        if k == ell:
            return self.coarse(rhs)
        sm = self.smoothers[k]
        lv = levels[k]
        ek = np.zeros(lv.n)
        for _ in range(self.pre_sweeps):
            ek = ek + sm.minv(rhs - lv.A @ ek)
        for visit in range(gamma):
            r_coarse = lv.R @ (rhs - lv.A @ ek)
            sub_gamma = gamma if not self.f_cycle else (gamma if visit == 0 else 1)
            ek = ek + lv.P @ self._solve_level(k + 1, r_coarse, sub_gamma)
        for _ in range(self.post_sweeps):
            defect = rhs - lv.A @ ek
            ek = ek + (sm.minv_t(defect) if self.symmetric else sm.minv(defect))
        return ek

    def cycle(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        """One multigrid cycle applied to ``x`` (returns the new iterate).

        V-cycle for ``gamma = 1`` (Algorithm 1 of the paper), W-cycle
        for ``gamma = 2``, F-cycle with ``f_cycle=True``.
        """
        r0 = b - self.A @ x
        return x + self._solve_level(0, r0, self.gamma)

    # ------------------------------------------------------------------
    def solve(
        self,
        b: np.ndarray,
        tmax: int = 20,
        x0: Optional[np.ndarray] = None,
        divergence_threshold: float = 1e6,
    ) -> SolveResult:
        """Run ``tmax`` V-cycles, recording relative residual norms."""
        x = np.zeros(self.n) if x0 is None else np.array(x0, dtype=np.float64)
        res = SolveResult(x=x)
        for t in range(1, tmax + 1):
            x = self.cycle(x, b)
            rel = rel_residual_norm(self.A, x, b)
            res.residual_history.append(rel)
            res.cycles = t
            res.corrections += self.ngrids
            if not np.isfinite(rel) or rel > divergence_threshold:
                res.diverged = True
                break
        res.x = x
        return res

    # ------------------------------------------------------------------
    def residual_flops(self) -> float:
        """Cost of one fine-grid residual (SpMV + axpy)."""
        return 2.0 * self.A.nnz + self.n

    def cycle_flops(self) -> float:
        """Approximate flops of one V-cycle (feeds the machine model)."""
        total = 2.0 * self.A.nnz + self.n  # fine residual
        for k in range(self.hierarchy.coarsest):
            lv = self.hierarchy.levels[k]
            sweeps = self.pre_sweeps + self.post_sweeps
            total += sweeps * self.smoothers[k].flops_per_sweep()
            total += 2.0 * lv.A.nnz  # defect SpMV before restriction
            total += 2.0 * lv.R.nnz + 2.0 * lv.P.nnz
        total += self.coarse.flops()
        return total
