"""Multadd — additive variants of multiplicative multigrid (Eq. 2).

One cycle is ``x += sum_k Pbar_k^0 Lambda_k (Pbar_k^0)^T r`` with

- smoothed interpolants ``Pbar^k_{k+1} = G_k P^k_{k+1}`` built from a
  *diagonal* iteration matrix (omega-Jacobi, or l1-Jacobi when the
  cycle smoother is l1-Jacobi — the paper's performance compromise),
- ``Lambda_k`` the symmetrized smoother
  ``M^{-T}(M + M^T - A)M^{-1}`` (making Multadd mathematically
  equivalent to a symmetric multiplicative V(1,1)-cycle) or an
  approximation of it (``lambda_mode="minv"`` — one plain sweep, used
  for the hybrid/asynchronous smoothers exactly as in the paper),
- ``Lambda_l = A_l^{-1}`` (exact coarsest solve).

``correction(k, r)`` restricts ``r`` through the *smoothed* transposes,
applies ``Lambda_k``, and prolongs back through the smoothed
interpolants — grid ``k``'s ``B_k``/``C_k`` in the asynchronous models.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..amg import Hierarchy
from ..kernels.setupcache import cached_smoothed_interpolants
from .base import AdditiveMultigrid

__all__ = ["Multadd"]

_LAMBDA_MODES = ("symmetrized", "minv", "sweep")


class Multadd(AdditiveMultigrid):
    """Additive variant of the multiplicative method (Multadd)."""

    method_name = "multadd"

    def __init__(
        self,
        hierarchy: Hierarchy,
        smoother: str = "jacobi",
        lambda_mode: str | None = None,
        interp_smoother_kind: str | None = None,
        interp_weight: float | None = None,
        **smoother_kwargs,
    ):
        """
        Parameters
        ----------
        lambda_mode:
            ``"symmetrized"`` (default for the Jacobi smoothers),
            ``"minv"`` (default for hybrid/async GS: Lambda is the
            block forward solve, the paper's choice), or ``"sweep"``
            (one full smoothing sweep, for the asynchronous smoother's
            nondeterministic application).
        interp_smoother_kind / interp_weight:
            Diagonal iteration matrix used for the smoothed
            interpolants.  Defaults follow the paper: l1-Jacobi when
            the smoother is l1-Jacobi, else omega-Jacobi with the
            smoother's weight (or 0.9).
        """
        super().__init__(hierarchy, smoother, **smoother_kwargs)
        if lambda_mode is None:
            lambda_mode = (
                "symmetrized" if smoother in ("jacobi", "l1_jacobi") else "minv"
            )
        if lambda_mode not in _LAMBDA_MODES:
            raise ValueError(f"lambda_mode must be one of {_LAMBDA_MODES}")
        self.lambda_mode = lambda_mode

        if interp_smoother_kind is None:
            interp_smoother_kind = "l1_jacobi" if smoother == "l1_jacobi" else "jacobi"
        if interp_weight is None:
            interp_weight = float(smoother_kwargs.get("weight", 0.9))
        self.interp_smoother_kind = interp_smoother_kind
        self.interp_weight = interp_weight
        # Memoized on the hierarchy: building several Multadd variants
        # over one hierarchy (benchmark harnesses do) pays for the
        # interpolant triple products once.
        self.P_bar = cached_smoothed_interpolants(
            hierarchy, kind=interp_smoother_kind, weight=interp_weight
        )

    # ------------------------------------------------------------------
    def _apply_lambda(self, k: int, c: np.ndarray) -> np.ndarray:
        sm = self.smoothers[k]
        if self.lambda_mode == "symmetrized":
            return sm.symmetrized_apply(c)
        if self.lambda_mode == "minv":
            return sm.minv(c)
        return sm.sweep(np.zeros_like(c), c, nsweeps=1)

    def _level_correction(self, k: int, r: np.ndarray) -> np.ndarray:
        """``Lambda_k (Pbar_k^0)^T r`` — the grid-``k`` part before
        prolongation back to the fine grid."""
        c = r
        for j in range(k):
            c = self.P_bar[j].T @ c
        return self.coarse(c) if k == self.hierarchy.coarsest else self._apply_lambda(k, c)

    def correction(self, k: int, r: np.ndarray) -> np.ndarray:
        """``Pbar_k^0 Lambda_k (Pbar_k^0)^T r`` applied factor by factor."""
        d = self._level_correction(k, r)
        for j in range(k - 1, -1, -1):
            d = self.P_bar[j] @ d
        return d

    def correction_into(
        self, k: int, r: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Accumulating form with the final prolongation factor fused."""
        d = self._level_correction(k, r)
        if k == 0:
            out += d
            return out
        for j in range(k - 1, 0, -1):
            d = self.P_bar[j] @ d
        return kernels.prolong_add(out, self.P_bar[0], d)

    # ------------------------------------------------------------------
    def correction_flops(self, k: int) -> float:
        total = 0.0
        for j in range(k):
            total += 4.0 * self.P_bar[j].nnz  # restrict + prolong
        if k == self.hierarchy.coarsest:
            total += self.coarse.flops()
        else:
            sm = self.smoothers[k]
            if self.lambda_mode == "symmetrized":
                # minv + (M, M^T, A) applies + minv_t
                total += 2.0 * sm.minv_flops() + 2.0 * self.hierarchy.levels[k].nnz * 2.0
            else:
                total += sm.minv_flops()
        return total
