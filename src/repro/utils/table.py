"""Minimal ASCII table formatting for benchmark output.

Benchmarks print tables shaped like the paper's (method rows, smoother
column groups); this helper keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table.

    ``None`` cells render as the paper's dagger for divergence.
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[j]) for r in cells)) if cells else len(str(h))
        for j, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(c: object) -> str:
    if c is None:
        return "+"  # dagger: divergence
    if isinstance(c, float):
        if c != c:  # NaN
            return "+"
        if c == 0:
            return "0"
        if abs(c) < 1e-3 or abs(c) >= 1e5:
            return f"{c:.3e}"
        return f"{c:.4f}"
    return str(c)
