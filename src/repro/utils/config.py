"""Benchmark run configuration.

Every benchmark reads two environment variables so the same code runs
at laptop scale by default and at paper scale on demand:

- ``REPRO_SCALE``  (float, default 0.25): multiplies every mesh size.
  ``REPRO_SCALE=1`` reproduces the paper's problem sizes (27k-512k
  rows); the default keeps a full benchmark pass in minutes.
- ``REPRO_RUNS``   (int, default 3): runs averaged per data point
  (the paper uses 20).
"""

from __future__ import annotations

import os
from typing import Sequence

__all__ = ["env_float", "env_int", "scaled_sizes"]


def env_float(name: str, default: float) -> float:
    """Read a float environment variable with a default."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise ValueError(f"environment variable {name}={raw!r} is not a float") from exc


def env_int(name: str, default: int) -> int:
    """Read an int environment variable with a default."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"environment variable {name}={raw!r} is not an int") from exc


def scaled_sizes(paper_sizes: Sequence[int], minimum: int = 6) -> list[int]:
    """Scale the paper's mesh sizes by ``REPRO_SCALE``.

    Duplicate sizes after rounding are collapsed (preserving order) so
    small scales do not run the same problem twice.
    """
    scale = env_float("REPRO_SCALE", 0.25)
    if scale <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    out: list[int] = []
    for s in paper_sizes:
        v = max(minimum, int(round(s * scale)))
        if v not in out:
            out.append(v)
    return out
