"""Flop-count conventions used across solvers and the machine model.

One place for the arithmetic so cost accounting cannot drift between
the solvers' ``*_flops`` methods and the performance model.
"""

from __future__ import annotations

__all__ = ["spmv_flops", "axpy_flops", "dot_flops"]


def spmv_flops(nnz: int) -> float:
    """A sparse matrix-vector product: one multiply + one add per nnz."""
    return 2.0 * nnz


def axpy_flops(n: int) -> float:
    """``y += a * x``: one multiply + one add per element."""
    return 2.0 * n


def dot_flops(n: int) -> float:
    """Inner product: one multiply + one add per element."""
    return 2.0 * n
