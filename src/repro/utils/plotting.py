"""Terminal plotting: ASCII semilog convergence curves and timelines.

Matplotlib is deliberately not a dependency; these render the two plot
shapes the paper uses — residual-vs-cycles curves (Figs. 1-5) and
per-grid activity timelines (the mental model behind Fig. 3) — as
fixed-width text, good enough to eyeball shapes in a terminal or commit
into EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

__all__ = ["ascii_semilogy", "ascii_timeline"]


def ascii_semilogy(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render named positive series on a shared log-y / linear-x grid.

    Each series gets a distinct marker; non-finite and non-positive
    values are skipped (a diverged run simply leaves the canvas).
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "ox+*#@%&"
    pts = []
    for vals in series.values():
        pts += [v for v in vals if np.isfinite(v) and v > 0]
    if not pts:
        raise ValueError("no positive finite data to plot")
    lo, hi = math.log10(min(pts)), math.log10(max(pts))
    if hi - lo < 1e-12:
        hi = lo + 1.0
    max_len = max(len(v) for v in series.values())
    if max_len < 2:
        raise ValueError("series need at least two points")

    canvas = [[" "] * width for _ in range(height)]
    for si, (name, vals) in enumerate(series.items()):
        m = markers[si % len(markers)]
        for i, v in enumerate(vals):
            if not (np.isfinite(v) and v > 0):
                continue
            x = round(i * (width - 1) / (max_len - 1))
            y = (math.log10(v) - lo) / (hi - lo)
            row = height - 1 - round(y * (height - 1))
            canvas[row][x] = m
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(canvas):
        # y-axis label: decade at this row
        frac = (height - 1 - r) / (height - 1)
        label = f"1e{lo + frac * (hi - lo):+06.1f} |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "-" * width)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def ascii_timeline(
    events: Sequence[tuple],
    ngrids: int,
    width: int = 72,
    title: str | None = None,
) -> str:
    """Render per-grid activity intervals as a text Gantt chart.

    ``events`` is a sequence of ``(grid, t_start, t_end)`` tuples; each
    grid gets one row with ``#`` marking busy spans — a quick way to
    *see* an asynchronous schedule (no aligned columns = no barriers).
    """
    if ngrids < 1:
        raise ValueError("ngrids must be >= 1")
    events = list(events)
    if not events:
        raise ValueError("no events to draw")
    t_max = max(e[2] for e in events)
    t_min = min(e[1] for e in events)
    span = max(t_max - t_min, 1e-300)
    rows = [[" "] * width for _ in range(ngrids)]
    for grid, t0, t1 in events:
        if not 0 <= grid < ngrids:
            raise ValueError(f"grid id {grid} out of range")
        a = int((t0 - t_min) / span * (width - 1))
        z = max(a + 1, int((t1 - t_min) / span * (width - 1)) + 1)
        for x in range(a, min(z, width)):
            rows[grid][x] = "#"
    lines = []
    if title:
        lines.append(title)
    for g, row in enumerate(rows):
        lines.append(f"grid {g:2d} |" + "".join(row) + "|")
    lines.append(
        " " * 8 + f"t = {t_min:.3g} ... {t_max:.3g} (each column ~ {span / width:.3g})"
    )
    return "\n".join(lines)
