"""Deterministic seed derivation.

Experiments average over many runs; each run must be independent yet
replayable.  ``spawn_seeds`` derives child seeds from a root seed with
NumPy's SeedSequence (collision-resistant, unlike ``seed + i``
arithmetic which correlates adjacent generators).
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds"]


def spawn_seeds(root: int, count: int) -> list[int]:
    """``count`` independent 32-bit seeds derived from ``root``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    ss = np.random.SeedSequence(root)
    return [int(s.generate_state(1)[0]) for s in ss.spawn(count)]
