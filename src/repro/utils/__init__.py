"""Utilities: run configuration, seeding, flop accounting, ASCII tables."""

from .config import env_float, env_int, scaled_sizes
from .seeds import spawn_seeds
from .table import format_table
from .flops import spmv_flops, axpy_flops, dot_flops
from .plotting import ascii_semilogy, ascii_timeline

__all__ = [
    "env_float",
    "env_int",
    "scaled_sizes",
    "spawn_seeds",
    "format_table",
    "spmv_flops",
    "axpy_flops",
    "dot_flops",
    "ascii_semilogy",
    "ascii_timeline",
]
