"""Asynchronous convergence diagnostics.

Two quantities the paper leans on implicitly:

- the Chazan-Miranker margin ``1 - rho(|G|)`` of a smoother — positive
  means the *smoother* converges under every asynchronous schedule
  (Section II.C); we expose it per hierarchy level so a user can see
  where an asynchronous Gauss-Seidel run is at risk.
- an empirical staleness penalty for the Section-III models: the ratio
  of the residual after a fixed correction budget under a given
  ``(alpha, delta)`` schedule to the synchronous baseline, averaged
  over seeds.  Figures 1-2 are exactly sweeps of this number.
"""

from __future__ import annotations


import numpy as np

from ..core.models import simulate_semi_async, simulate_full_async_solution
from ..core.schedule import ScheduleParams
from ..linalg import abs_iteration_matrix_rho
from ..utils import spawn_seeds

__all__ = ["async_smoother_margin", "staleness_penalty"]


def async_smoother_margin(hierarchy, weight: float = 0.9) -> np.ndarray:
    """Per-level ``1 - rho(|I - w D^{-1} A_k|)`` margins.

    Positive margins on every level mean asynchronous weighted-Jacobi
    smoothing is unconditionally safe there; a negative margin flags a
    level where an asynchronous smoother may diverge for adversarial
    schedules (it often still converges for benign ones — the margin
    is sufficient, not necessary).
    """
    out = []
    for lv in hierarchy.levels:
        out.append(1.0 - abs_iteration_matrix_rho(lv.A, weight=weight))
    return np.array(out)


def staleness_penalty(
    solver,
    b: np.ndarray,
    alpha: float = 0.1,
    delta: int = 0,
    updates: int = 20,
    runs: int = 3,
    seed: int = 0,
    model: str = "semi",
) -> float:
    """Residual ratio (async / sync) after ``updates`` corrections/grid.

    1.0 means asynchrony was free; the paper's Figs. 1-2 are this
    number swept over ``alpha`` (semi-async) and ``delta``
    (full-async).  ``inf`` when the asynchronous run diverges.
    """
    if model == "semi":
        simulate = simulate_semi_async
    elif model == "full":
        simulate = simulate_full_async_solution
    else:
        raise ValueError("model must be 'semi' or 'full'")
    sync = solver.solve(b, tmax=updates)
    if sync.diverged or sync.final_relres == 0.0:
        raise ValueError("synchronous baseline did not converge sanely")
    vals = []
    for s in spawn_seeds(seed, runs):
        res = simulate(
            solver,
            b,
            ScheduleParams(alpha=alpha, delta=delta, updates_per_grid=updates, seed=s),
        )
        if not np.isfinite(res.rel_residual):
            return float("inf")
        vals.append(res.rel_residual)
    return float(np.mean(vals) / sync.final_relres)
