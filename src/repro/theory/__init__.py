"""Convergence theory utilities.

Quantitative backing for the paper's qualitative claims:

- :mod:`repro.theory.twogrid` — exact/estimated error-propagator
  spectral radii for the multiplicative, Multadd, AFACx and BPX
  two-grid (and multigrid) operators; predicted-vs-observed rate
  comparison.
- :mod:`repro.theory.asynchronous` — Chazan-Miranker-style checks for
  asynchronous smoothers (``rho(|G|) < 1``) and a staleness-penalty
  estimate for the Section-III models.
"""

from .twogrid import (
    error_propagator_rho,
    method_operator,
    observed_rate,
    predicted_vs_observed,
)
from .asynchronous import async_smoother_margin, staleness_penalty

__all__ = [
    "error_propagator_rho",
    "method_operator",
    "observed_rate",
    "predicted_vs_observed",
    "async_smoother_margin",
    "staleness_penalty",
]
