"""Error-propagator analysis for the paper's methods.

Every method in the paper is a stationary iteration ``x <- x + B r``
for some correction operator ``B``; its asymptotic rate is
``rho(E)`` with ``E = I - B A``.  We estimate ``rho(E)`` matrix-free
with the power method, applying ``E`` as "one cycle on the homogeneous
problem" — no matrices are formed, so the analysis scales to every
hierarchy the solvers accept.

This module turns the paper's "method X converges faster than Y"
statements into numbers and lets tests assert them as spectra rather
than finite-run residuals.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..linalg import estimate_rho

__all__ = [
    "method_operator",
    "error_propagator_rho",
    "observed_rate",
    "predicted_vs_observed",
]


def method_operator(solver) -> Callable[[np.ndarray], np.ndarray]:
    """The error propagator ``E: e -> e_after_one_cycle`` of a solver.

    Uses the homogeneous problem: an iterate ``x`` with ``b = 0`` *is*
    the (negated) error, and one cycle maps it by ``E``.
    """
    n = solver.n
    zero = np.zeros(n)

    def apply_E(e: np.ndarray) -> np.ndarray:
        return solver.cycle(e, zero)

    return apply_E


def error_propagator_rho(solver, iters: int = 60, seed: int = 0) -> float:
    """Power-method estimate of ``rho(E)`` for one synchronous cycle.

    Note: for a *divergent* method (BPX as a solver) this exceeds 1 —
    the analysis covers that case too and a test asserts it.
    """
    return estimate_rho(method_operator(solver), n=solver.n, iters=iters, seed=seed)


def observed_rate(solver, b: np.ndarray, cycles: int = 25, skip: int = 10) -> float:
    """Geometric-mean residual reduction over the late cycles of a solve.

    ``skip`` cycles are discarded so the transient (non-asymptotic)
    phase does not bias the estimate.
    """
    if cycles <= skip + 1:
        raise ValueError("cycles must exceed skip + 1")
    res = solver.solve(b, tmax=cycles)
    hist = res.residual_history
    if len(hist) <= skip + 1:
        return float("inf")
    a, z = hist[skip], hist[-1]
    if a == 0.0:
        return 0.0
    return float((z / a) ** (1.0 / (len(hist) - 1 - skip)))


def predicted_vs_observed(
    solver, b: np.ndarray, cycles: int = 25, seed: int = 0
) -> tuple[float, float]:
    """``(rho(E) estimate, observed asymptotic rate)`` for one solver.

    For normal-ish error propagators the two agree closely; strongly
    non-normal cycles can transiently beat their spectral radius, so
    consumers should compare with a tolerance.
    """
    return (
        error_propagator_rho(solver, seed=seed),
        observed_rate(solver, b, cycles=cycles),
    )
