"""The ``naive`` backend — the seed implementation, kept as reference.

These are the pre-kernel-layer code paths, preserved verbatim (modulo
routing) so that

- ``REPRO_KERNELS=off`` reproduces the original allocation behaviour
  exactly, and
- the backend-parity suite can assert that the optimized ``numpy``
  backend is *bit-identical* to what the repo shipped before the
  kernel layer existed (same products, same left-to-right accumulation
  per row).

Nothing here consults the plan's precomputed machinery beyond the raw
CSR arrays — the ``np.repeat``/``np.zeros`` per call is the point.
"""

from __future__ import annotations

import numpy as np

from ..plans import RowRangePlan

__all__ = [
    "range_matvec",
    "range_residual",
    "range_matvec_block",
    "range_residual_block",
    "jacobi_sweep",
    "prolong_add",
    "residual_norm",
]

name = "naive"


def _range_product(plan: RowRangePlan, x: np.ndarray) -> np.ndarray:
    """``(A @ x)[start:stop]`` the seed way: repeat + bincount."""
    lo = int(plan.indptr_window[0])
    hi = int(plan.indptr_window[-1])
    seg = plan.data[lo:hi] * x[plan.indices[lo:hi]]
    local_rows = np.repeat(np.arange(plan.nrows), np.diff(plan.indptr_window))
    return np.bincount(local_rows, weights=seg, minlength=plan.nrows)


def range_matvec(plan: RowRangePlan, x: np.ndarray, out: np.ndarray) -> None:
    if plan.nrows == 0:
        return
    out[:] = _range_product(plan, x)


def range_residual(
    plan: RowRangePlan, x: np.ndarray, b: np.ndarray, out: np.ndarray
) -> None:
    if plan.nrows == 0:
        return
    range_matvec(plan, x, out)
    np.subtract(b[plan.start : plan.stop], out, out=out)


def range_matvec_block(plan: RowRangePlan, X: np.ndarray, out: np.ndarray) -> None:
    """Reference blocked product: one seed-style column at a time."""
    if plan.nrows == 0:
        return
    for j in range(X.shape[1]):
        out[:, j] = _range_product(plan, np.ascontiguousarray(X[:, j]))


def range_residual_block(
    plan: RowRangePlan, X: np.ndarray, B: np.ndarray, out: np.ndarray
) -> None:
    if plan.nrows == 0:
        return
    range_matvec_block(plan, X, out)
    np.subtract(B[plan.start : plan.stop], out, out=out)


def jacobi_sweep(
    plan: RowRangePlan,
    dinv: np.ndarray,
    rhs: np.ndarray,
    y: np.ndarray,
    tmp: np.ndarray,
) -> None:
    """One sweep ``y += dinv * (rhs - A y)`` via fresh temporaries."""
    A = _matrix_view(plan)
    y += dinv * (rhs - A @ y)


def prolong_add(
    plan: RowRangePlan,
    e: np.ndarray,
    y: np.ndarray,
    omega: float,
    tmp: np.ndarray,
) -> None:
    """``y += omega * (P @ e)`` via a fresh fine-grid temporary."""
    P = _matrix_view(plan)
    if omega == 1.0:
        y += P @ e
    else:
        y += omega * (P @ e)


def residual_norm(
    plan: RowRangePlan, x: np.ndarray, b: np.ndarray, tmp: np.ndarray
) -> float:
    A = _matrix_view(plan)
    return float(np.linalg.norm(b - A @ x))


def _matrix_view(plan: RowRangePlan):
    """Rebuild a csr_matrix over the plan's (shared) arrays.

    Cheap — no copies — and lets the reference backend keep using
    scipy's operator products exactly as the seed code did.
    """
    import scipy.sparse as sp

    return sp.csr_matrix(
        (plan.data, plan.indices, plan.indptr),
        shape=(plan.n, plan.ncols),
        copy=False,
    )
