"""Kernel backend implementations.

Every backend module exposes the same five low-level entry points
operating on a :class:`~repro.kernels.plans.RowRangePlan` plus caller
buffers (the dispatch layer in :mod:`repro.kernels` owns buffer
acquisition and statistics):

=====================  ==============================================
``range_matvec``       ``out[:] = (A @ x)[start:stop]`` (local length)
``range_residual``     ``out[:] = (b - A @ x)[start:stop]``
``jacobi_sweep``       one fused diagonal sweep, in place on ``y``
``prolong_add``        ``y += omega * (P @ e)`` (fused axpy-SpMV)
``residual_norm``      ``||b - A x||_2`` without a persistent temporary
=====================  ==============================================

Backends:

- ``naive`` — the seed code paths, kept verbatim as the bit-exact
  reference (and the ``REPRO_KERNELS=off`` escape hatch).
- ``numpy`` — allocation-free plan-driven kernels on scipy's compiled
  CSR routines; bit-identical to ``naive`` (same operation order).
- ``numba`` — JIT-compiled loops; available only when numba imports,
  agrees with ``numpy`` to tight floating-point tolerance (1e-14
  relative) but not bitwise (different reduction code).
"""
