"""The ``numpy`` backend — allocation-free plan-driven CSR kernels.

Always available, and the default.  The row-wise products go through
scipy's compiled ``csr_matvec`` routine (the same C code behind
``A @ x``) driven directly with the plan's absolute ``indptr`` window,
so a row-range product touches only the owned rows and writes into a
caller/plan buffer — no full-length zero vector, no per-call
``np.repeat``, no Python-level reduction.

Bit-identity with the ``naive`` reference is by construction: both
paths form the per-entry products with the same operands and
accumulate each row strictly left to right from zero, and the fused
epilogues (`rhs - Ax`, `dinv *`, `+=`) perform the same elementwise
operations in the same order the seed expressions did.

``csr_matvec`` *accumulates* (``y += A x``), so every product below
zero-fills its target first; the helper degrades to a bincount
fallback if a scipy release ever drops the private symbol.
"""

from __future__ import annotations

import numpy as np

from ..plans import RowRangePlan

__all__ = [
    "range_matvec",
    "range_residual",
    "range_matvec_block",
    "range_residual_block",
    "jacobi_sweep",
    "prolong_add",
    "residual_norm",
]

name = "numpy"

try:  # scipy's compiled CSR routines (stable private module since 0.x)
    from scipy.sparse import _sparsetools as _st

    _csr_matvec = _st.csr_matvec
    _csr_matvecs = getattr(_st, "csr_matvecs", None)
except (ImportError, AttributeError):  # pragma: no cover - old/odd scipy
    _csr_matvec = None
    _csr_matvecs = None


def _product_into(plan: RowRangePlan, x: np.ndarray, out: np.ndarray) -> None:
    """``out[:] = (A @ x)[start:stop]`` (local length) via compiled CSR."""
    out[:] = 0.0
    if _csr_matvec is not None:
        _csr_matvec(
            plan.nrows, plan.ncols, plan.indptr_window, plan.indices, plan.data, x, out
        )
    else:  # pragma: no cover - exercised only without scipy._sparsetools
        lo = int(plan.indptr_window[0])
        hi = int(plan.indptr_window[-1])
        seg = plan.data[lo:hi] * x[plan.indices[lo:hi]]
        out += np.bincount(plan.local_rows, weights=seg, minlength=plan.nrows)


def range_matvec(plan: RowRangePlan, x: np.ndarray, out: np.ndarray) -> None:
    if plan.nrows == 0:
        return
    _product_into(plan, x, out)


def range_residual(
    plan: RowRangePlan, x: np.ndarray, b: np.ndarray, out: np.ndarray
) -> None:
    if plan.nrows == 0:
        return
    _product_into(plan, x, out)
    np.subtract(b[plan.start : plan.stop], out, out=out)


def range_matvec_block(plan: RowRangePlan, X: np.ndarray, out: np.ndarray) -> None:
    """``out[:, :] = (A @ X)[start:stop, :]`` via compiled blocked CSR.

    ``csr_matvecs`` accumulates each output row over the row's
    nonzeros strictly left to right, exactly like ``csr_matvec`` does
    per column — so every column is bit-identical to the scalar
    kernel's result.  Falls back to a per-column ``csr_matvec`` loop
    (same accumulation order) when the blocked symbol is missing.
    """
    if plan.nrows == 0:
        return
    out[...] = 0.0
    if _csr_matvecs is not None:
        _csr_matvecs(
            plan.nrows,
            plan.ncols,
            X.shape[1],
            plan.indptr_window,
            plan.indices,
            plan.data,
            X.reshape(-1),
            out.reshape(-1),
        )
    else:  # pragma: no cover - exercised only without csr_matvecs
        col = np.empty(plan.nrows, dtype=np.float64)
        for j in range(X.shape[1]):
            _product_into(plan, np.ascontiguousarray(X[:, j]), col)
            out[:, j] = col


def range_residual_block(
    plan: RowRangePlan, X: np.ndarray, B: np.ndarray, out: np.ndarray
) -> None:
    if plan.nrows == 0:
        return
    range_matvec_block(plan, X, out)
    np.subtract(B[plan.start : plan.stop], out, out=out)


def jacobi_sweep(
    plan: RowRangePlan,
    dinv: np.ndarray,
    rhs: np.ndarray,
    y: np.ndarray,
    tmp: np.ndarray,
) -> None:
    """Fused ``y += dinv * (rhs - A y)`` with one scratch vector."""
    _product_into(plan, y, tmp)
    np.subtract(rhs, tmp, out=tmp)
    tmp *= dinv
    y += tmp


def prolong_add(
    plan: RowRangePlan,
    e: np.ndarray,
    y: np.ndarray,
    omega: float,
    tmp: np.ndarray,
) -> None:
    """Fused ``y += omega * (P @ e)`` with one scratch vector."""
    _product_into(plan, e, tmp)
    if omega != 1.0:
        tmp *= omega
    y += tmp


def residual_norm(
    plan: RowRangePlan, x: np.ndarray, b: np.ndarray, tmp: np.ndarray
) -> float:
    range_residual(plan, x, b, tmp)
    return float(np.linalg.norm(tmp))
