"""The ``numba`` backend — JIT-compiled CSR kernels.

Importing this module requires numba; the dispatch layer import-gates
it, so environments without numba silently fall back to the ``numpy``
backend (``available_backends()`` tells you which you got).

The loops mirror the compiled scipy routine row for row — sequential
left-to-right accumulation per row — so results agree with the
``numpy`` backend to tight floating-point tolerance (the parity suite
asserts 1e-14 relative); they are not guaranteed bitwise identical
because LLVM may vectorize the reductions differently.  ``fastmath``
stays off for exactly that reason.  ``cache=True`` persists the
compiled artifacts next to the package so repeated benchmark runs skip
recompilation.

Why it wins: one pass over the row range with zero temporaries — the
fused kernels (residual, sweep, prolong-add, norm) do in a single
C-speed loop what the numpy backend does in 2-4 vector passes over
full-length arrays.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401 - import failure gates the backend

from ..plans import RowRangePlan

__all__ = [
    "range_matvec",
    "range_residual",
    "range_matvec_block",
    "range_residual_block",
    "jacobi_sweep",
    "prolong_add",
    "residual_norm",
]

name = "numba"

_JIT = {"nopython": True, "nogil": True, "cache": True, "fastmath": False}


@njit(**_JIT)
def _range_matvec(indptr_w, indices, data, x, out):  # pragma: no cover - jitted
    for i in range(out.shape[0]):
        acc = 0.0
        for jj in range(indptr_w[i], indptr_w[i + 1]):
            acc += data[jj] * x[indices[jj]]
        out[i] = acc


@njit(**_JIT)
def _range_residual(indptr_w, indices, data, x, b, start, out):  # pragma: no cover
    for i in range(out.shape[0]):
        acc = 0.0
        for jj in range(indptr_w[i], indptr_w[i + 1]):
            acc += data[jj] * x[indices[jj]]
        out[i] = b[start + i] - acc


@njit(**_JIT)
def _range_matvec_block(indptr_w, indices, data, X, out):  # pragma: no cover
    k = X.shape[1]
    for i in range(out.shape[0]):
        for j in range(k):
            out[i, j] = 0.0
        for jj in range(indptr_w[i], indptr_w[i + 1]):
            v = data[jj]
            c = indices[jj]
            for j in range(k):
                out[i, j] += v * X[c, j]


@njit(**_JIT)
def _range_residual_block(indptr_w, indices, data, X, B, start, out):  # pragma: no cover
    k = X.shape[1]
    for i in range(out.shape[0]):
        for j in range(k):
            out[i, j] = 0.0
        for jj in range(indptr_w[i], indptr_w[i + 1]):
            v = data[jj]
            c = indices[jj]
            for j in range(k):
                out[i, j] += v * X[c, j]
        for j in range(k):
            out[i, j] = B[start + i, j] - out[i, j]


@njit(**_JIT)
def _jacobi_sweep(indptr_w, indices, data, dinv, rhs, y, tmp):  # pragma: no cover
    n = y.shape[0]
    for i in range(n):
        acc = 0.0
        for jj in range(indptr_w[i], indptr_w[i + 1]):
            acc += data[jj] * y[indices[jj]]
        tmp[i] = dinv[i] * (rhs[i] - acc)
    for i in range(n):
        y[i] += tmp[i]


@njit(**_JIT)
def _prolong_add(indptr_w, indices, data, e, y, omega):  # pragma: no cover
    for i in range(y.shape[0]):
        acc = 0.0
        for jj in range(indptr_w[i], indptr_w[i + 1]):
            acc += data[jj] * e[indices[jj]]
        y[i] += omega * acc
    return y


@njit(**_JIT)
def _residual_sqnorm(indptr_w, indices, data, x, b, start):  # pragma: no cover
    total = 0.0
    for i in range(indptr_w.shape[0] - 1):
        acc = 0.0
        for jj in range(indptr_w[i], indptr_w[i + 1]):
            acc += data[jj] * x[indices[jj]]
        r = b[start + i] - acc
        total += r * r
    return total


def range_matvec(plan: RowRangePlan, x: np.ndarray, out: np.ndarray) -> None:
    if plan.nrows == 0:
        return
    _range_matvec(plan.indptr_window, plan.indices, plan.data, x, out)


def range_residual(
    plan: RowRangePlan, x: np.ndarray, b: np.ndarray, out: np.ndarray
) -> None:
    if plan.nrows == 0:
        return
    _range_residual(
        plan.indptr_window, plan.indices, plan.data, x, b, plan.start, out
    )


def range_matvec_block(plan: RowRangePlan, X: np.ndarray, out: np.ndarray) -> None:
    if plan.nrows == 0:
        return
    _range_matvec_block(plan.indptr_window, plan.indices, plan.data, X, out)


def range_residual_block(
    plan: RowRangePlan, X: np.ndarray, B: np.ndarray, out: np.ndarray
) -> None:
    if plan.nrows == 0:
        return
    _range_residual_block(
        plan.indptr_window,
        plan.indices,
        plan.data,
        X,
        np.ascontiguousarray(B, dtype=np.float64),
        plan.start,
        out,
    )


def jacobi_sweep(
    plan: RowRangePlan,
    dinv: np.ndarray,
    rhs: np.ndarray,
    y: np.ndarray,
    tmp: np.ndarray,
) -> None:
    _jacobi_sweep(plan.indptr_window, plan.indices, plan.data, dinv, rhs, y, tmp)


def prolong_add(
    plan: RowRangePlan,
    e: np.ndarray,
    y: np.ndarray,
    omega: float,
    tmp: np.ndarray,
) -> None:
    _prolong_add(plan.indptr_window, plan.indices, plan.data, e, y, float(omega))


def residual_norm(
    plan: RowRangePlan, x: np.ndarray, b: np.ndarray, tmp: np.ndarray
) -> float:
    return float(
        np.sqrt(
            _residual_sqnorm(
                plan.indptr_window, plan.indices, plan.data, x, b, plan.start
            )
        )
    )
