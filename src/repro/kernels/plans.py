"""Per-``(matrix, row-range)`` kernel plans.

The seed implementation of :func:`repro.linalg.row_range_matvec`
rebuilt its row-index machinery (``np.repeat(np.arange(...))``) and a
full-length zero output vector on *every* micro-step — pure overhead
in the steady-state loop, where the matrix and the owned row range
never change.  A :class:`RowRangePlan` hoists everything that depends
only on ``(A, start, stop)`` out of the hot path:

- the absolute ``indptr`` window of the range (what the CSR kernels
  index with),
- the lazily-built local row map (only the bincount fallback needs it),
- reusable output buffers for the ``out=None`` convenience paths.

Plans are cached per matrix *object* (``id``-keyed with a weakref
cleanup so a collected matrix drops its plans) and validated by array
identity: a plan stores references to the matrix's ``indptr`` /
``indices`` / ``data`` arrays, so

- **in-place value edits** (``A.data[...] = ...``) flow through the
  shared reference and never stale a plan, while
- **structural mutation** (anything that rebinds ``A.indptr`` /
  ``A.indices`` / ``A.data`` — ``A[i, j] = v`` on a new position,
  ``sum_duplicates`` after construction, ...) changes array identity
  and forces a rebuild on the next lookup.

Plans' precomputed fields are immutable after construction, so sharing
one plan across worker threads is safe; the *scratch buffers* are the
only mutable state and are handed out per-thread (see
:func:`scratch`).
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["RowRangePlan", "plan_for", "clear_plans", "plan_cache_info", "scratch"]


class RowRangePlan:
    """Precomputed index machinery for one ``(matrix, row range)``."""

    __slots__ = (
        "n",
        "ncols",
        "start",
        "stop",
        "indptr",
        "indices",
        "data",
        "indptr_window",
        "_local_rows",
        "_out_local",
        "_out_full",
        "__weakref__",
    )

    def __init__(self, A: sp.csr_matrix, start: int, stop: int) -> None:
        n = A.shape[0]
        if not (0 <= start <= stop <= n):
            raise ValueError(f"bad row range ({start}, {stop}) for n={n}")
        self.n = int(n)
        self.ncols = int(A.shape[1])
        self.start = int(start)
        self.stop = int(stop)
        # Identity anchors: the plan is valid exactly as long as the
        # matrix still carries these arrays (see module docstring).
        self.indptr = A.indptr
        self.indices = A.indices
        self.data = A.data
        #: absolute offsets into indices/data for rows [start, stop]
        self.indptr_window = np.ascontiguousarray(A.indptr[start : stop + 1])
        self._local_rows: Optional[np.ndarray] = None
        self._out_local: Optional[np.ndarray] = None
        self._out_full: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.stop - self.start

    def matches(self, A: sp.csr_matrix) -> bool:
        """True while ``A`` still carries the arrays the plan captured."""
        return (
            self.indptr is A.indptr
            and self.indices is A.indices
            and self.data is A.data
        )

    @property
    def local_rows(self) -> np.ndarray:
        """Row index per nonzero of the range, 0-based at ``start``.

        Built on first use (only the bincount fallback path needs it);
        this is exactly the ``np.repeat(np.arange(...))`` product the
        seed code rebuilt per call.
        """
        if self._local_rows is None:
            self._local_rows = np.repeat(
                np.arange(self.nrows), np.diff(self.indptr_window)
            )
        return self._local_rows

    def out_local(self) -> np.ndarray:
        """Reusable ``(stop - start,)`` output buffer.

        Owned by the plan: the contents are only valid until the next
        borrowing call for the same plan.  Hot loops that keep results
        across calls must pass their own ``out``.
        """
        if self._out_local is None:
            self._out_local = np.empty(self.nrows, dtype=np.float64)
        return self._out_local

    def out_full(self) -> np.ndarray:
        """Reusable full-length output buffer, zero outside the range.

        Same borrowing contract as :meth:`out_local`.  Entries outside
        ``[start, stop)`` are zeroed once at allocation and never
        written afterwards, so repeat borrowers see the seed
        ``np.zeros(n)`` semantics without the per-call allocation.
        """
        if self._out_full is None:
            self._out_full = np.zeros(self.n, dtype=np.float64)
        return self._out_full


# Plan cache: id(A) -> (weakref(A), {(start, stop): plan}).  The
# weakref callback evicts the entry when the matrix is collected, so a
# recycled id can never serve another matrix's plans; array-identity
# validation in plan_for covers the in-between mutations.
_CacheEntry = Tuple["weakref.ref[sp.csr_matrix]", Dict[Tuple[int, int], RowRangePlan]]
_PLANS: Dict[int, _CacheEntry] = {}
_HITS = 0
_MISSES = 0


def plan_for(A: sp.csr_matrix, start: int, stop: int) -> RowRangePlan:
    """Fetch (or build) the plan for ``A`` rows ``[start, stop)``.

    Lookup is two dict probes plus three identity checks; a structural
    mutation of ``A`` (rebound CSR arrays) invalidates transparently.
    Safe to call from concurrent worker threads: plans are immutable
    and the worst race outcome is a redundant rebuild.
    """
    global _HITS, _MISSES
    key = id(A)
    entry = _PLANS.get(key)
    if entry is None or entry[0]() is not A:
        ref = weakref.ref(A, lambda _ref, _key=key: _PLANS.pop(_key, None))
        entry = (ref, {})
        _PLANS[key] = entry
    plans = entry[1]
    plan = plans.get((start, stop))
    if plan is None or not plan.matches(A):
        plan = RowRangePlan(A, start, stop)
        plans[(start, stop)] = plan
        _MISSES += 1
    else:
        _HITS += 1
    return plan


def clear_plans() -> None:
    """Drop every cached plan (tests / memory pressure)."""
    global _HITS, _MISSES
    _PLANS.clear()
    _HITS = 0
    _MISSES = 0


def plan_cache_info() -> Dict[str, int]:
    """Cache statistics: matrices, plans, hits, misses."""
    return {
        "matrices": len(_PLANS),
        "plans": sum(len(entry[1]) for entry in _PLANS.values()),
        "hits": _HITS,
        "misses": _MISSES,
    }


# ----------------------------------------------------------------------
# Per-thread scratch vectors.
#
# Kernels that need a temporary (fused residual norm, Jacobi sweeps,
# prolongation adds) borrow it here instead of allocating: each thread
# owns its buffers, so the threaded executor's workers never contend
# or alias, and the steady-state loop performs zero allocations.
# ----------------------------------------------------------------------
_scratch_local = threading.local()


def scratch(n: int, slot: int = 0) -> np.ndarray:
    """A per-thread float64 scratch vector of length ``n``.

    ``slot`` separates simultaneously-live temporaries of the same
    length within one kernel call chain.  Contents are undefined on
    entry and only valid until the next ``scratch`` borrow of the same
    ``(n, slot)`` on the same thread.
    """
    buffers = getattr(_scratch_local, "buffers", None)
    if buffers is None:
        buffers = {}
        _scratch_local.buffers = buffers
    buf = buffers.get((n, slot))
    if buf is None:
        buf = np.empty(n, dtype=np.float64)
        buffers[(n, slot)] = buf
    return buf
