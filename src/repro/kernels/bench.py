"""Kernel-layer performance bench — the ``repro bench`` backend.

Times the five hot kernels (:data:`repro.kernels.KERNEL_NAMES`)
against the ``naive`` seed reference on every *available* backend,
plus an end-to-end asynchronous engine solve per backend and the
setup-cache cold/warm split, and emits one schema-versioned JSON
payload (``repro.bench_perf/1``) suitable for checking in or uploading
as a CI artifact.

Honesty contract: backends that cannot be imported in this
environment (numba is an optional extra) are *reported as missing*,
never silently dropped — the payload always distinguishes "numba was
not measured here" from "numba was measured and slow".

The benchmark problem is the registry's 2-D ``5pt`` set at grid
length 256 (65,536 rows) — large enough that SpMV dominates, cheap
enough to set up; ``--quick`` shrinks it for CI smoke runs.
"""

from __future__ import annotations

import json
import math
import subprocess
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import kernels
from ..amg import SetupOptions
from .setupcache import cached_setup_hierarchy, clear_setup_cache

__all__ = ["SCHEMA", "run_bench", "format_report"]

#: Payload schema identifier; bump on breaking layout changes.
SCHEMA = "repro.bench_perf/1"

_PROBLEM_SET = "5pt"
_FULL_SIZE = 256
_QUICK_SIZE = 64


def _git_commit() -> Optional[str]:
    """Current commit hash, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _best_of(fn: Callable[[], None], repeats: int, inner: int) -> float:
    """Best-of-``repeats`` mean seconds per call over ``inner`` calls."""
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / inner


def _kernel_cases(problem, hierarchy, seed: int):
    """The five kernels as closures over preallocated operands.

    Each case exercises the public dispatch exactly as the executors
    do: explicit ``out`` buffers where the contract takes one, the
    per-thread scratch pool elsewhere.
    """
    A = problem.A
    b = problem.b
    n = A.shape[0]
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    dinv = 1.0 / A.diagonal()
    # One stripe of a 4-way row partition — the per-thread share the
    # global-res executors actually compute.
    lo, hi = n // 4, n // 2
    out_local = np.empty(hi - lo, dtype=np.float64)
    P = hierarchy.levels[0].P
    e = rng.standard_normal(P.shape[1])
    y = np.zeros(n, dtype=np.float64)
    return {
        "range_matvec": lambda: kernels.range_matvec(A, x, lo, hi, out=out_local),
        "range_residual": lambda: kernels.range_residual(A, x, b, lo, hi, out=out_local),
        "jacobi_sweep": lambda: kernels.jacobi_sweeps(A, dinv, b, x0=x, nsweeps=1),
        "prolong_add": lambda: kernels.prolong_add(y, P, e),
        "residual_norm": lambda: kernels.residual_norm(A, x, b),
    }


def _end_to_end(problem, hierarchy, tmax: int, repeats: int, seed: int) -> Dict[str, Any]:
    """One asynchronous engine solve on the active backend."""
    from ..core import run_async_engine
    from ..solvers import Multadd

    solver = Multadd(hierarchy, smoother="jacobi", weight=problem.jacobi_weight)
    res = None
    best = math.inf
    prev = kernels.enable_stats(True)
    before = kernels.stats()
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = run_async_engine(solver, problem.b, tmax=tmax, seed=seed)
        best = min(best, time.perf_counter() - t0)
    per_kernel = {
        k: {"calls": calls, "seconds": secs}
        for k, (calls, secs) in sorted(kernels.stats_delta(before).items())
    }
    kernels.enable_stats(prev)
    assert res is not None
    return {
        "seconds": best,
        "tmax": tmax,
        "rel_residual": float(res.rel_residual),
        "corrects": float(res.corrects),
        "kernel_backend": res.kernel_backend,
        "kernels": per_kernel,
    }


def _setup_cache_split(problem) -> Dict[str, float]:
    """Cold-vs-warm wall time for memoized AMG setup on the problem."""
    clear_setup_cache()
    opts = SetupOptions()
    t0 = time.perf_counter()
    cached_setup_hierarchy(problem.A, opts)
    cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    cached_setup_hierarchy(problem.A, opts)
    warm = time.perf_counter() - t0
    return {"cold_seconds": cold, "warm_seconds": warm}


def run_bench(
    quick: bool = False,
    backends: Optional[Sequence[str]] = None,
    out: Optional[str] = None,
    size: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Run the kernel + end-to-end bench; return (and optionally write)
    the ``repro.bench_perf/1`` payload.

    ``backends=None`` requests every *known* backend and measures the
    importable ones; the rest land in the payload's
    ``backends.missing`` so a checked-in artifact from a numba-less
    box says so explicitly.  ``--quick`` shrinks the problem and
    repetition counts for CI.
    """
    from ..problems import build_problem

    available = kernels.available_backends()
    requested: List[str] = list(backends) if backends else list(kernels._KNOWN)
    requested = [kernels._ALIASES.get(b, b) for b in requested]
    missing = [b for b in requested if b not in available]
    measured = [b for b in requested if b in available]
    if "naive" not in measured:
        # The reference is the bench's denominator; always measure it.
        measured.append("naive")

    psize = size if size is not None else (_QUICK_SIZE if quick else _FULL_SIZE)
    problem = build_problem(_PROBLEM_SET, psize, rhs_seed=seed)
    hierarchy = cached_setup_hierarchy(problem.A, SetupOptions())

    repeats, inner = (3, 3) if quick else (7, 10)
    tmax, e2e_repeats = (3, 1) if quick else (10, 3)

    prev_backend = kernels.current_backend()
    kernel_times: Dict[str, Dict[str, float]] = {k: {} for k in kernels.KERNEL_NAMES}
    end_to_end: Dict[str, Any] = {}
    try:
        for backend in measured:
            kernels.use(backend)
            cases = _kernel_cases(problem, hierarchy, seed)
            for kname, fn in cases.items():
                fn()  # warm: build plans, trigger any JIT compile
                kernel_times[kname][backend] = _best_of(fn, repeats, inner)
            end_to_end[backend] = _end_to_end(
                problem, hierarchy, tmax, e2e_repeats, seed
            )
    finally:
        kernels.use(prev_backend)

    kernels_out: Dict[str, Any] = {}
    for kname, per_backend in kernel_times.items():
        ref = per_backend.get("naive")
        entry: Dict[str, Any] = {
            b: {"seconds_per_call": s} for b, s in per_backend.items()
        }
        if ref:
            for b, s in per_backend.items():
                entry[b]["speedup_vs_naive"] = ref / s if s > 0 else None
        kernels_out[kname] = entry

    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "commit": _git_commit(),
        "quick": quick,
        "seed": seed,
        "problem": {
            "set": _PROBLEM_SET,
            "size": psize,
            "n": problem.n,
            "nnz": problem.nnz,
        },
        "backends": {
            "available": list(available),
            "measured": measured,
            "missing": missing,
            "default": prev_backend,
        },
        "methodology": {
            "kernel_repeats": repeats,
            "kernel_inner_calls": inner,
            "end_to_end_repeats": e2e_repeats,
            "timing": "best-of-repeats mean seconds per call",
        },
        "kernels": kernels_out,
        "end_to_end": end_to_end,
        "setup_cache": _setup_cache_split(problem),
    }
    if out:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return payload


def format_report(payload: Dict[str, Any]) -> str:
    """Human-readable digest of a ``repro.bench_perf/1`` payload."""
    from ..utils import format_table

    prob = payload["problem"]
    back = payload["backends"]
    lines = [
        f"bench {payload['schema']} — {prob['set']} size {prob['size']} "
        f"({prob['n']} rows, {prob['nnz']} nnz)",
        f"backends measured: {', '.join(back['measured'])}"
        + (
            f"; missing (not importable): {', '.join(back['missing'])}"
            if back["missing"]
            else ""
        ),
    ]
    measured: List[str] = back["measured"]
    rows = []
    for kname, entry in payload["kernels"].items():
        row = [kname]
        for b in measured:
            cell = entry.get(b)
            if cell is None:
                row.append("-")
            else:
                us = cell["seconds_per_call"] * 1e6
                sp = cell.get("speedup_vs_naive")
                row.append(f"{us:9.1f} us" + (f" ({sp:4.1f}x)" if sp else ""))
        rows.append(row)
    lines.append(
        format_table(["kernel"] + [f"{b}" for b in measured], rows,
                     title="per-kernel time (speedup vs naive)")
    )
    e2e_rows = []
    for b in measured:
        e = payload["end_to_end"].get(b)
        if e:
            e2e_rows.append(
                [b, f"{e['seconds']:.3f}", f"{e['rel_residual']:.3e}", f"{e['corrects']:.1f}"]
            )
    lines.append(
        format_table(
            ["backend", "engine solve (s)", "relres", "corrects"],
            e2e_rows,
            title=f"end-to-end async engine, tmax={next(iter(payload['end_to_end'].values()))['tmax']}",
        )
    )
    sc = payload["setup_cache"]
    lines.append(
        f"setup cache: cold {sc['cold_seconds']:.3f}s, "
        f"warm {sc['warm_seconds']*1e3:.2f}ms"
    )
    return "\n".join(lines)
