"""Hierarchy setup cache — memoized AMG setup across repeated runs.

The paper's timing experiments (Table I, Figs. 4-6) average many runs
of the same problem; the reproduction's benchmark harnesses do the
same.  AMG setup — strength, coarsening, interpolation, Galerkin
products — dominated every such sweep (seconds per run at 256²-sized
problems) while being a pure function of ``(matrix, options)``.  This
module memoizes it:

- :func:`cached_setup_hierarchy` keys on a content hash of the matrix
  (shape + CSR array bytes) plus the full ``SetupOptions`` tuple, so
  two *equal* matrices share a hierarchy even when they are distinct
  objects (each benchmark repetition rebuilds its problem).
- :func:`cached_smoothed_interpolants` memoizes Multadd's smoothed
  interpolants ``P̄ᵏₖ₊₁ = G_k Pᵏₖ₊₁`` per ``(hierarchy, kind,
  weight)`` directly on the hierarchy object, so building several
  solver variants over one hierarchy (the Table-I harness does) pays
  for the triple products once.

The cache is process-local and bounded (LRU, small: hierarchies are
large).  Correctness relies on hierarchies being treated as immutable
after setup — which every solver in the repo already assumes.  Callers
that mutate a matrix between runs get a fresh hierarchy automatically
(the content hash changes); :func:`clear_setup_cache` is the explicit
reset for tests.

**Thread safety.**  The solve server (:mod:`repro.serve`) hits this
cache from a pool of worker threads with mixed-tenant keys, so every
access to the LRU dict and its counters goes through one module lock.
The expensive part — :func:`repro.amg.setup_hierarchy` itself — runs
*outside* the lock: two threads missing on the same key may both build
the hierarchy, but the first insertion wins (both callers still get a
usable hierarchy, and later calls converge on the cached one), so the
lock is only ever held for dict-sized critical sections, never for
seconds of AMG setup.  :func:`register_setupcache_metrics` exposes the
hit/miss/eviction counters to a :class:`repro.observe.Metrics`
registry as a provider.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import astuple
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..amg import Hierarchy, SetupOptions, setup_hierarchy, smoothed_interpolants
from ..linalg import as_csr

__all__ = [
    "problem_fingerprint",
    "cached_setup_hierarchy",
    "adopt_hierarchy",
    "cached_smoothed_interpolants",
    "clear_setup_cache",
    "setup_cache_info",
    "register_setupcache_metrics",
]

#: Retained hierarchies; small on purpose — a 256² hierarchy is ~10 MB.
_MAX_ENTRIES = 8

_CACHE: "OrderedDict[Tuple[str, tuple, Optional[bytes]], Hierarchy]" = OrderedDict()
#: Guards ``_CACHE`` and the counters below.  Never held across
#: ``setup_hierarchy`` (the multi-second part) — only across dict ops.
_CACHE_LOCK = threading.Lock()
_HITS = 0
_MISSES = 0
_EVICTIONS = 0
#: Misses that lost the build race: the key appeared while this thread
#: was computing the hierarchy outside the lock (first insertion wins).
_RACE_LOSSES = 0


def problem_fingerprint(A: sp.spmatrix) -> str:
    """Content hash of a matrix: shape + canonical CSR array bytes.

    blake2b over ~``16 * nnz`` bytes — microseconds at benchmark sizes,
    amortized against seconds of AMG setup.
    """
    A = as_csr(A)
    h = hashlib.blake2b(digest_size=16)
    h.update(np.asarray(A.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.indptr).tobytes())
    h.update(np.ascontiguousarray(A.indices).tobytes())
    h.update(np.ascontiguousarray(A.data).tobytes())
    return h.hexdigest()


def _insert_locked(key: Tuple[str, tuple, Optional[bytes]], hier: Hierarchy) -> None:
    """Insert under the already-held lock, evicting LRU overflow."""
    global _EVICTIONS
    _CACHE[key] = hier
    while len(_CACHE) > _MAX_ENTRIES:
        _CACHE.popitem(last=False)
        _EVICTIONS += 1


def cached_setup_hierarchy(
    A: sp.spmatrix,
    options: Optional[SetupOptions] = None,
    functions: Optional[np.ndarray] = None,
) -> Hierarchy:
    """Memoizing drop-in for :func:`repro.amg.setup_hierarchy`.

    Safe under concurrent mixed-key access: lookups and insertions are
    serialized by the module lock, while the AMG setup itself runs
    unlocked (a lost build race is counted, not an error).
    """
    global _HITS, _MISSES, _RACE_LOSSES
    opts = options or SetupOptions()
    key = (
        problem_fingerprint(A),
        astuple(opts),
        None if functions is None else np.asarray(functions, dtype=np.int64).tobytes(),
    )
    with _CACHE_LOCK:
        hier = _CACHE.get(key)
        if hier is not None:
            _CACHE.move_to_end(key)
            _HITS += 1
            return hier
        _MISSES += 1
    built = setup_hierarchy(A, opts, functions=functions)
    with _CACHE_LOCK:
        hier = _CACHE.get(key)
        if hier is not None:
            # Another thread won the build race; converge on its copy.
            _CACHE.move_to_end(key)
            _RACE_LOSSES += 1
            return hier
        _insert_locked(key, built)
    return built


def adopt_hierarchy(hierarchy: Hierarchy, fingerprint: str) -> None:
    """Seed the cache with an externally built hierarchy.

    The procs backend ships a pickled hierarchy to worker processes;
    adopting it under the parent-computed content hash makes the
    worker's cache warm, so any later ``cached_setup_hierarchy`` call
    for the same ``(matrix, options)`` — e.g. a solver rebuilt inside
    the worker — reuses the shipped setup instead of redoing it.
    Existing entries win (first adoption sticks).
    """
    key = (fingerprint, astuple(hierarchy.options), None)
    with _CACHE_LOCK:
        if key not in _CACHE:
            _insert_locked(key, hierarchy)


def cached_smoothed_interpolants(
    hierarchy: Hierarchy, kind: str = "jacobi", weight: float = 0.9
) -> List[sp.csr_matrix]:
    """Memoizing drop-in for :func:`repro.amg.smoothed_interpolants`.

    The result list is cached on the hierarchy object itself, so its
    lifetime tracks the hierarchy's and a cached hierarchy reused
    across benchmark repetitions also reuses its interpolants.

    Concurrent callers for the same hierarchy may both compute the
    interpolants; ``setdefault`` makes the first store win and both
    callers return the same (immutable-after-build) list thereafter.
    """
    cache: Dict[Tuple[str, float], List[sp.csr_matrix]]
    cache = getattr(hierarchy, "_pbar_cache", None)  # type: ignore[assignment]
    if cache is None:
        with _CACHE_LOCK:
            cache = getattr(hierarchy, "_pbar_cache", None)  # type: ignore[assignment]
            if cache is None:
                cache = {}
                hierarchy._pbar_cache = cache  # type: ignore[attr-defined]
    key = (kind, float(weight))
    got = cache.get(key)
    if got is None:
        built = smoothed_interpolants(hierarchy, kind=kind, weight=weight)
        got = cache.setdefault(key, built)
    return got


def clear_setup_cache() -> None:
    """Drop every memoized hierarchy (tests / memory pressure)."""
    global _HITS, _MISSES, _EVICTIONS, _RACE_LOSSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
        _EVICTIONS = 0
        _RACE_LOSSES = 0


def setup_cache_info() -> Dict[str, int]:
    """Cache statistics: entries, hits, misses, evictions, race losses."""
    with _CACHE_LOCK:
        return {
            "entries": len(_CACHE),
            "hits": _HITS,
            "misses": _MISSES,
            "evictions": _EVICTIONS,
            "race_losses": _RACE_LOSSES,
        }


def register_setupcache_metrics(metrics: Any, name: str = "setupcache") -> None:
    """Register the cache counters as a :class:`repro.observe.Metrics`
    provider: ``setupcache.hits`` / ``.misses`` / ``.evictions`` /
    ``.entries`` / ``.race_losses`` in every ``collect()`` snapshot."""

    def provide() -> Dict[str, float]:
        return {k: float(v) for k, v in setup_cache_info().items()}

    metrics.register_provider(name, provide)
