"""Hierarchy setup cache — memoized AMG setup across repeated runs.

The paper's timing experiments (Table I, Figs. 4-6) average many runs
of the same problem; the reproduction's benchmark harnesses do the
same.  AMG setup — strength, coarsening, interpolation, Galerkin
products — dominated every such sweep (seconds per run at 256²-sized
problems) while being a pure function of ``(matrix, options)``.  This
module memoizes it:

- :func:`cached_setup_hierarchy` keys on a content hash of the matrix
  (shape + CSR array bytes) plus the full ``SetupOptions`` tuple, so
  two *equal* matrices share a hierarchy even when they are distinct
  objects (each benchmark repetition rebuilds its problem).
- :func:`cached_smoothed_interpolants` memoizes Multadd's smoothed
  interpolants ``P̄ᵏₖ₊₁ = G_k Pᵏₖ₊₁`` per ``(hierarchy, kind,
  weight)`` directly on the hierarchy object, so building several
  solver variants over one hierarchy (the Table-I harness does) pays
  for the triple products once.

The cache is process-local and bounded (LRU, small: hierarchies are
large).  Correctness relies on hierarchies being treated as immutable
after setup — which every solver in the repo already assumes.  Callers
that mutate a matrix between runs get a fresh hierarchy automatically
(the content hash changes); :func:`clear_setup_cache` is the explicit
reset for tests.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import astuple
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..amg import Hierarchy, SetupOptions, setup_hierarchy, smoothed_interpolants
from ..linalg import as_csr

__all__ = [
    "problem_fingerprint",
    "cached_setup_hierarchy",
    "adopt_hierarchy",
    "cached_smoothed_interpolants",
    "clear_setup_cache",
    "setup_cache_info",
]

#: Retained hierarchies; small on purpose — a 256² hierarchy is ~10 MB.
_MAX_ENTRIES = 8

_CACHE: "OrderedDict[Tuple[str, tuple, Optional[bytes]], Hierarchy]" = OrderedDict()
_HITS = 0
_MISSES = 0


def problem_fingerprint(A: sp.spmatrix) -> str:
    """Content hash of a matrix: shape + canonical CSR array bytes.

    blake2b over ~``16 * nnz`` bytes — microseconds at benchmark sizes,
    amortized against seconds of AMG setup.
    """
    A = as_csr(A)
    h = hashlib.blake2b(digest_size=16)
    h.update(np.asarray(A.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(A.indptr).tobytes())
    h.update(np.ascontiguousarray(A.indices).tobytes())
    h.update(np.ascontiguousarray(A.data).tobytes())
    return h.hexdigest()


def cached_setup_hierarchy(
    A: sp.spmatrix,
    options: Optional[SetupOptions] = None,
    functions: Optional[np.ndarray] = None,
) -> Hierarchy:
    """Memoizing drop-in for :func:`repro.amg.setup_hierarchy`."""
    global _HITS, _MISSES
    opts = options or SetupOptions()
    key = (
        problem_fingerprint(A),
        astuple(opts),
        None if functions is None else np.asarray(functions, dtype=np.int64).tobytes(),
    )
    hier = _CACHE.get(key)
    if hier is not None:
        _CACHE.move_to_end(key)
        _HITS += 1
        return hier
    _MISSES += 1
    hier = setup_hierarchy(A, opts, functions=functions)
    _CACHE[key] = hier
    while len(_CACHE) > _MAX_ENTRIES:
        _CACHE.popitem(last=False)
    return hier


def adopt_hierarchy(hierarchy: Hierarchy, fingerprint: str) -> None:
    """Seed the cache with an externally built hierarchy.

    The procs backend ships a pickled hierarchy to worker processes;
    adopting it under the parent-computed content hash makes the
    worker's cache warm, so any later ``cached_setup_hierarchy`` call
    for the same ``(matrix, options)`` — e.g. a solver rebuilt inside
    the worker — reuses the shipped setup instead of redoing it.
    Existing entries win (first adoption sticks).
    """
    key = (fingerprint, astuple(hierarchy.options), None)
    if key not in _CACHE:
        _CACHE[key] = hierarchy
        while len(_CACHE) > _MAX_ENTRIES:
            _CACHE.popitem(last=False)


def cached_smoothed_interpolants(
    hierarchy: Hierarchy, kind: str = "jacobi", weight: float = 0.9
) -> List[sp.csr_matrix]:
    """Memoizing drop-in for :func:`repro.amg.smoothed_interpolants`.

    The result list is cached on the hierarchy object itself, so its
    lifetime tracks the hierarchy's and a cached hierarchy reused
    across benchmark repetitions also reuses its interpolants.
    """
    cache: Dict[Tuple[str, float], List[sp.csr_matrix]]
    cache = getattr(hierarchy, "_pbar_cache", None)  # type: ignore[assignment]
    if cache is None:
        cache = {}
        hierarchy._pbar_cache = cache  # type: ignore[attr-defined]
    key = (kind, float(weight))
    got = cache.get(key)
    if got is None:
        got = smoothed_interpolants(hierarchy, kind=kind, weight=weight)
        cache[key] = got
    return got


def clear_setup_cache() -> None:
    """Drop every memoized hierarchy (tests / memory pressure)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


def setup_cache_info() -> Dict[str, int]:
    """Cache statistics: entries, hits, misses."""
    return {"entries": len(_CACHE), "hits": _HITS, "misses": _MISSES}
