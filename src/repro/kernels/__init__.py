"""Backend-selectable compiled/cached kernel layer.

The paper's claim is that asynchronous additive multigrid runs "as
fast as the hardware allows"; the reproduction's hot loops should not
spend their time rebuilding index arrays and allocating temporaries.
This package provides the five hot kernels every executor shares —

- **row-range SpMV** (the per-thread share of the global-res parfor),
- **row-range residual** (``(b - A x)[start:stop]``),
- **fused diagonal (ω-/l1-)Jacobi sweep**,
- **fused correction prolongation** (``y += ω · P @ e``),
- **residual norm** (``||b - A x||_2`` without a persistent temporary)

— behind one dispatch point with three backends:

``numpy``
    Default; allocation-free plan-driven kernels on scipy's compiled
    CSR routines.  Bit-identical to the seed code paths.
``numba``
    JIT loops, auto-detected (import-gated); fastest, agrees with
    ``numpy`` to 1e-14 relative but not bitwise.
``naive`` (alias ``off``)
    The seed implementation kept verbatim as the reference.

Selection: the ``REPRO_KERNELS`` environment variable at import time
(``numpy`` / ``numba`` / ``naive`` / ``off`` / ``auto``), or
:func:`use` at runtime.  ``auto`` picks numba when importable, else
numpy.

Setup-phase artifacts (AMG hierarchies, smoothed interpolants) are
memoized separately in :mod:`repro.kernels.setupcache`; per-``(matrix,
row-range)`` index machinery and buffers live in
:mod:`repro.kernels.plans`.

Per-kernel timing: :func:`enable_stats` turns on lightweight
per-thread timing shards (perf_counter pairs around each kernel);
executors handed a tracer enable it for the run and record one
``kernel`` trace event per kernel with the accumulated seconds and
call count, so observability can attribute speedups kernel by kernel.
"""

from __future__ import annotations

import os
import threading
import time
from types import ModuleType
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .plans import (
    RowRangePlan,
    clear_plans,
    plan_cache_info,
    plan_for,
    scratch,
)

__all__ = [
    "KERNEL_NAMES",
    "BLOCK_KERNEL_NAMES",
    "available_backends",
    "current_backend",
    "use",
    "range_matvec",
    "range_residual",
    "range_matvec_block",
    "range_residual_block",
    "jacobi_sweeps",
    "prolong_add",
    "residual_norm",
    "row_range_matvec",
    "residual_rows",
    "plan_for",
    "clear_plans",
    "plan_cache_info",
    "RowRangePlan",
    "scratch",
    "enable_stats",
    "stats_enabled",
    "stats",
    "stats_delta",
    "reset_stats",
    "register_stats",
]

#: The five scalar hot kernels, in dispatch order (the perf bench
#: sweeps exactly these; the blocked multi-RHS variants below are
#: dispatched and timed under their own names).
KERNEL_NAMES: Tuple[str, ...] = (
    "range_matvec",
    "range_residual",
    "jacobi_sweep",
    "prolong_add",
    "residual_norm",
)

#: The blocked multi-RHS kernels over ``(n, k)`` right-hand-side
#: blocks (the solver-as-a-service prerequisite; the procs backend
#: uses them when a worker owns several RHS columns).
BLOCK_KERNEL_NAMES: Tuple[str, ...] = (
    "range_matvec_block",
    "range_residual_block",
)


# ----------------------------------------------------------------------
# Backend registry and selection
# ----------------------------------------------------------------------
def _load_backend(name: str) -> ModuleType:
    if name == "numpy":
        from .backends import numpy_backend

        return numpy_backend
    if name == "naive":
        from .backends import naive

        return naive
    if name == "numba":
        from .backends import numba_backend  # raises ImportError without numba

        return numba_backend
    raise ValueError(f"unknown kernel backend {name!r}; known: {_KNOWN}")


_KNOWN = ("numpy", "numba", "naive")
_ALIASES = {"off": "naive", "auto": "auto"}
_backend: ModuleType


def available_backends() -> Tuple[str, ...]:
    """Backends importable in this environment (numba is optional)."""
    names: List[str] = ["numpy", "naive"]
    try:
        _load_backend("numba")
    except ImportError:
        pass
    else:
        names.insert(1, "numba")
    return tuple(names)


def use(name: str = "auto") -> str:
    """Select the kernel backend; returns the resolved backend name.

    ``"auto"`` resolves to numba when importable, else numpy.
    ``"off"`` is an alias for the ``naive`` reference backend.
    Selection is process-global; switching mid-run is supported (the
    kernels are stateless beyond the shared, backend-agnostic plans).
    """
    global _backend
    name = _ALIASES.get(name, name)
    if name == "auto":
        try:
            _backend = _load_backend("numba")
        except ImportError:
            _backend = _load_backend("numpy")
    else:
        _backend = _load_backend(name)
    return _backend.name


def current_backend() -> str:
    """Name of the active backend (``numpy`` / ``numba`` / ``naive``)."""
    return _backend.name


use(os.environ.get("REPRO_KERNELS", "auto"))


# ----------------------------------------------------------------------
# Per-kernel timing (opt-in; per-thread shards, merged on read)
# ----------------------------------------------------------------------
class _KernelStats:
    """Per-thread (calls, seconds) shards — no locking on the hot path.

    Each thread bumps only its own shard dict (registered once under a
    lock); :meth:`totals` sums shards at read time.  With ``enabled``
    False the kernels skip the perf_counter pair entirely.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._local = threading.local()
        self._shards: List[Dict[str, Tuple[int, float]]] = []
        self._lock = threading.Lock()

    def shard(self) -> Dict[str, Tuple[int, float]]:
        d = getattr(self._local, "d", None)
        if d is None:
            d = {}
            self._local.d = d
            with self._lock:
                self._shards.append(d)
        return d

    def bump(self, kernel: str, seconds: float) -> None:
        d = self.shard()
        calls, total = d.get(kernel, (0, 0.0))
        d[kernel] = (calls + 1, total + seconds)

    def totals(self) -> Dict[str, Tuple[int, float]]:
        out: Dict[str, Tuple[int, float]] = {}
        with self._lock:
            shards = list(self._shards)
        for d in shards:
            for kernel, (calls, secs) in list(d.items()):
                c0, s0 = out.get(kernel, (0, 0.0))
                out[kernel] = (c0 + calls, s0 + secs)
        return out

    def reset(self) -> None:
        with self._lock:
            for d in self._shards:
                d.clear()


_stats = _KernelStats()


def enable_stats(on: bool = True) -> bool:
    """Toggle per-kernel timing; returns the previous setting."""
    prev = _stats.enabled
    _stats.enabled = bool(on)
    return prev


def stats_enabled() -> bool:
    return _stats.enabled


def stats() -> Dict[str, Tuple[int, float]]:
    """Accumulated ``{kernel: (calls, seconds)}`` across all threads."""
    return _stats.totals()


def stats_delta(
    before: Dict[str, Tuple[int, float]],
) -> Dict[str, Tuple[int, float]]:
    """Per-kernel (calls, seconds) accumulated since ``before``."""
    now = _stats.totals()
    out: Dict[str, Tuple[int, float]] = {}
    for kernel, (calls, secs) in now.items():
        c0, s0 = before.get(kernel, (0, 0.0))
        if calls - c0 > 0:
            out[kernel] = (calls - c0, secs - s0)
    return out


def reset_stats() -> None:
    _stats.reset()


def register_stats(metrics) -> None:
    """Register a kernel-time provider on a :class:`repro.observe.Metrics`.

    Collected lazily at ``metrics.collect()`` time: one
    ``kernels.<name>.calls`` / ``kernels.<name>.seconds`` pair per
    kernel, plus the active backend name.
    """

    def provide() -> Dict[str, object]:
        snap: Dict[str, object] = {"kernels.backend": current_backend()}
        for kernel, (calls, secs) in stats().items():
            snap[f"kernels.{kernel}.calls"] = calls
            snap[f"kernels.{kernel}.seconds"] = secs
        return snap

    metrics.register_provider("kernels", provide)


# ----------------------------------------------------------------------
# The five kernels (public dispatch)
# ----------------------------------------------------------------------
def range_matvec(
    A: sp.csr_matrix,
    x: np.ndarray,
    start: int,
    stop: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``(A @ x)[start:stop]`` into a local-length vector.

    ``out`` must have length ``stop - start``; when omitted the plan's
    reusable local buffer is borrowed (valid until the next borrowing
    call for the same plan — hot loops should pass their own).
    """
    plan = plan_for(A, start, stop)
    if out is None:
        out = plan.out_local()
    if _stats.enabled:
        t0 = time.perf_counter()
        _backend.range_matvec(plan, x, out)
        _stats.bump("range_matvec", time.perf_counter() - t0)
    else:
        _backend.range_matvec(plan, x, out)
    return out


def range_residual(
    A: sp.csr_matrix,
    x: np.ndarray,
    b: np.ndarray,
    start: int,
    stop: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``(b - A x)[start:stop]`` into a local-length vector.

    Same buffer contract as :func:`range_matvec`.  With ``start=0,
    stop=n`` this is the fused full residual.
    """
    plan = plan_for(A, start, stop)
    if out is None:
        out = plan.out_local()
    if _stats.enabled:
        t0 = time.perf_counter()
        _backend.range_residual(plan, x, b, out)
        _stats.bump("range_residual", time.perf_counter() - t0)
    else:
        _backend.range_residual(plan, x, b, out)
    return out


def _block_operands(
    X: np.ndarray, nrows: int, out: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate/shape the ``(ncols, k)`` block input and ``(nrows, k)``
    output of the blocked kernels.

    ``X`` must be 2-D; a non-C-contiguous block is copied (scipy's
    ``csr_matvecs`` walks it row-major).  ``out`` is allocated fresh
    when omitted — the blocked kernels serve per-correction solves, not
    the per-micro-step loop, so they do not borrow plan buffers.
    """
    if X.ndim != 2:
        raise ValueError(f"blocked kernels need a 2-D (n, k) block, got {X.shape}")
    Xc = np.ascontiguousarray(X, dtype=np.float64)
    k = Xc.shape[1]
    if out is None:
        out = np.empty((nrows, k), dtype=np.float64)
    elif out.shape != (nrows, k):
        raise ValueError(f"out must have shape {(nrows, k)}, got {out.shape}")
    return Xc, out


def range_matvec_block(
    A: sp.csr_matrix,
    X: np.ndarray,
    start: int,
    stop: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``(A @ X)[start:stop, :]`` for an ``(n, k)`` RHS block.

    Column ``j`` of the result is bit-identical to
    ``range_matvec(A, X[:, j], start, stop)`` on every backend (same
    per-row left-to-right accumulation, one column at a time or fused).
    """
    plan = plan_for(A, start, stop)
    X, out = _block_operands(X, plan.nrows, out)
    if _stats.enabled:
        t0 = time.perf_counter()
        _backend.range_matvec_block(plan, X, out)
        _stats.bump("range_matvec_block", time.perf_counter() - t0)
    else:
        _backend.range_matvec_block(plan, X, out)
    return out


def range_residual_block(
    A: sp.csr_matrix,
    X: np.ndarray,
    B: np.ndarray,
    start: int,
    stop: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``(B - A X)[start:stop, :]`` for ``(n, k)`` iterate/RHS blocks.

    Same column-wise bit-parity contract as :func:`range_matvec_block`.
    """
    plan = plan_for(A, start, stop)
    X, out = _block_operands(X, plan.nrows, out)
    if B.ndim != 2 or B.shape[1] != X.shape[1]:
        raise ValueError(f"B must be (n, {X.shape[1]}), got {B.shape}")
    if _stats.enabled:
        t0 = time.perf_counter()
        _backend.range_residual_block(plan, X, B, out)
        _stats.bump("range_residual_block", time.perf_counter() - t0)
    else:
        _backend.range_residual_block(plan, X, B, out)
    return out


def jacobi_sweeps(
    A: sp.csr_matrix,
    dinv: np.ndarray,
    rhs: np.ndarray,
    x0: Optional[np.ndarray] = None,
    nsweeps: int = 1,
) -> np.ndarray:
    """``nsweeps`` fused diagonal sweeps ``y += dinv * (rhs - A y)``.

    Returns a fresh vector (the caller owns it); ``x0=None`` starts
    from zero.  This is the smoother hot loop of every diagonal
    smoother — per sweep it performs exactly one row pass and three
    elementwise passes, with the single temporary borrowed from the
    per-thread scratch pool.
    """
    if nsweeps < 0:
        raise ValueError("nsweeps must be non-negative")
    n = A.shape[0]
    y = np.zeros(n, dtype=np.float64) if x0 is None else np.array(
        x0, dtype=np.float64, copy=True
    )
    if nsweeps == 0:
        return y
    plan = plan_for(A, 0, n)
    tmp = scratch(n, slot=2)
    if _stats.enabled:
        t0 = time.perf_counter()
        for _ in range(nsweeps):
            _backend.jacobi_sweep(plan, dinv, rhs, y, tmp)
        _stats.bump("jacobi_sweep", time.perf_counter() - t0)
    else:
        for _ in range(nsweeps):
            _backend.jacobi_sweep(plan, dinv, rhs, y, tmp)
    return y


def prolong_add(
    y: np.ndarray, P: sp.csr_matrix, e: np.ndarray, omega: float = 1.0
) -> np.ndarray:
    """Fused correction prolongation ``y += omega * (P @ e)`` in place."""
    plan = plan_for(P, 0, P.shape[0])
    tmp = scratch(P.shape[0], slot=3)
    if _stats.enabled:
        t0 = time.perf_counter()
        _backend.prolong_add(plan, e, y, omega, tmp)
        _stats.bump("prolong_add", time.perf_counter() - t0)
    else:
        _backend.prolong_add(plan, e, y, omega, tmp)
    return y


def residual_norm(A: sp.csr_matrix, x: np.ndarray, b: np.ndarray) -> float:
    """``||b - A x||_2`` without a caller-visible temporary."""
    n = A.shape[0]
    plan = plan_for(A, 0, n)
    tmp = scratch(n, slot=4)
    if _stats.enabled:
        t0 = time.perf_counter()
        val = _backend.residual_norm(plan, x, b, tmp)
        _stats.bump("residual_norm", time.perf_counter() - t0)
        return val
    return _backend.residual_norm(plan, x, b, tmp)


# ----------------------------------------------------------------------
# Seed-API compatibility wrappers (full-length out, zeros elsewhere)
# ----------------------------------------------------------------------
def row_range_matvec(
    A: sp.csr_matrix,
    x: np.ndarray,
    start: int,
    stop: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``out[start:stop] = (A @ x)[start:stop]``, full-length ``out``.

    The historical :func:`repro.linalg.row_range_matvec` contract.
    When ``out`` is omitted the plan's cached full-length buffer is
    borrowed (zero outside the range, valid until the next borrowing
    call for the same plan) instead of allocating ``np.zeros(n)`` per
    call; callers that keep the result must pass their own ``out``.
    """
    plan = plan_for(A, start, stop)
    if out is None:
        out = plan.out_full()
    if stop > start:
        range_matvec(A, x, start, stop, out=out[start:stop])
    return out


def residual_rows(
    A: sp.csr_matrix,
    x: np.ndarray,
    b: np.ndarray,
    start: int,
    stop: int,
    out: np.ndarray,
) -> np.ndarray:
    """``out[start:stop] = (b - A x)[start:stop]`` in place."""
    if stop > start:
        range_residual(A, x, b, start, stop, out=out[start:stop])
    return out
