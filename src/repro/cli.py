"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``setup``    Build a hierarchy for a test problem, print its summary.
``solve``    Run one solver (sync or async) on a test problem.
``models``   Run the Section-III asynchronous-model simulators.
``table1``   Produce one matrix's Table-I block.
``analyze``  Static concurrency lint (RPR rules) + optional
             instrumented model-conformance run.

Examples
--------
::

    python -m repro setup --set 27pt --size 12 --aggressive 1
    python -m repro solve --set 7pt --size 12 --method multadd --run-async \\
        --rescomp local --write lock --tmax 20 --alpha 0.5
    python -m repro solve --set 27pt --size 8 --run-async --tmax 40 \\
        --faults "crash:1@5;corrupt:p=0.01" --guards
    python -m repro solve --set 7pt --size 8 --run-async --backend distributed \\
        --faults "drop:p=0.05" --guards --tmax 20
    python -m repro models --set 27pt --size 10 --model full_res --delta 4
    python -m repro table1 --set 7pt --size 10 --smoother jacobi --tol 1e-6
    python -m repro analyze --strict
    python -m repro analyze --conformance --set 27pt --size 8 --tmax 5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


from .amg import SetupOptions, setup_hierarchy
from .core import (
    ScheduleParams,
    run_async_engine,
    simulate_full_async_residual,
    simulate_full_async_solution,
    simulate_semi_async,
)
from .core import run_threaded
from .distributed import NetworkModel, simulate_distributed
from .experiments import TABLE1_METHODS, paper_hierarchy, table1_entry
from .problems import TEST_SETS, build_problem
from .resilience import GuardPolicy, parse_fault_spec
from .solvers import AFACx, BPX, Multadd, MultiplicativeMultigrid
from .utils import format_table

__all__ = ["main"]


def _add_problem_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--set", dest="test_set", choices=TEST_SETS, default="7pt")
    p.add_argument("--size", type=int, default=12)
    p.add_argument("--rhs-seed", type=int, default=0)


def _add_setup_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--aggressive", type=int, default=1, help="aggressive levels")
    p.add_argument("--theta", type=float, default=0.25)
    p.add_argument(
        "--coarsen", choices=("hmis", "pmis", "rs"), default="hmis"
    )


def _build(args) -> tuple:
    problem = build_problem(args.test_set, args.size, rhs_seed=args.rhs_seed)
    if args.test_set == "mfem_elasticity":
        hierarchy = paper_hierarchy("mfem_elasticity", problem.A)
    else:
        hierarchy = setup_hierarchy(
            problem.A,
            SetupOptions(
                coarsen_type=getattr(args, "coarsen", "hmis"),
                aggressive_levels=getattr(args, "aggressive", 1),
                theta=getattr(args, "theta", 0.25),
            ),
        )
    return problem, hierarchy


def _cmd_setup(args) -> int:
    problem, hierarchy = _build(args)
    print(f"{args.test_set} size {args.size}: {problem.n} rows, {problem.nnz} nnz")
    print(hierarchy.summary())
    return 0


def _make_solver(args, hierarchy):
    kw = {}
    if args.smoother == "jacobi":
        kw["weight"] = args.weight
    elif args.smoother in ("hybrid_jgs", "async_gs"):
        kw["nblocks"] = args.nblocks
    if args.method == "mult":
        return MultiplicativeMultigrid(hierarchy, smoother=args.smoother, **kw)
    if args.method == "multadd":
        return Multadd(hierarchy, smoother=args.smoother, **kw)
    if args.method == "afacx":
        return AFACx(hierarchy, smoother=args.smoother, **kw)
    return BPX(hierarchy, smoother=args.smoother, **kw)


def _cmd_solve(args) -> int:
    problem, hierarchy = _build(args)
    solver = _make_solver(args, hierarchy)
    faults = None
    if args.faults:
        try:
            faults = parse_fault_spec(args.faults, seed=args.seed)
        except ValueError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return 2
    guard = GuardPolicy() if args.guards else None
    if (faults is not None or guard is not None) and not args.run_async:
        print("error: --faults/--guards require --run-async", file=sys.stderr)
        return 2
    if args.run_async:
        if args.method == "mult":
            print("error: the multiplicative method cannot run asynchronously", file=sys.stderr)
            return 2
        try:
            res, label = _dispatch_async(args, solver, problem, faults, guard)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        stalled = getattr(res, "stalled", False)
        print(
            f"{label}: relres = {res.rel_residual:.6e}, "
            f"corrects = {res.corrects:.1f}, diverged = {res.diverged}, "
            f"stalled = {stalled}"
        )
        if faults is not None or guard is not None:
            print(f"faults/guards: {res.telemetry.summary()}")
    else:
        res = solver.solve(problem.b, tmax=args.tmax)
        print(
            f"sync {args.method}: relres after {res.cycles} cycles = "
            f"{res.final_relres:.6e}, diverged = {res.diverged}"
        )
    return 0


def _dispatch_async(args, solver, problem, faults, guard):
    """Run the chosen async backend; returns (result, display label)."""
    if args.backend == "engine":
        res = run_async_engine(
            solver,
            problem.b,
            tmax=args.tmax,
            rescomp=args.rescomp,
            write=args.write,
            criterion=args.criterion,
            alpha=args.alpha,
            seed=args.seed,
            faults=faults,
            guard=guard,
        )
        label = f"async {args.method} ({args.rescomp}-res, {args.write}-write, {args.criterion})"
    elif args.backend == "threaded":
        res = run_threaded(
            solver,
            problem.b,
            tmax=args.tmax,
            rescomp=args.rescomp,
            write=args.write,
            criterion=args.criterion,
            faults=faults,
            guard=guard,
        )
        label = f"threaded {args.method} ({args.rescomp}-res, {args.write}-write, {args.criterion})"
    else:  # distributed
        res = simulate_distributed(
            solver,
            problem.b,
            tmax=args.tmax,
            strategy="global" if args.rescomp != "local" else "local",
            network=NetworkModel(seed=args.seed),
            criterion=args.criterion,
            seed=args.seed,
            faults=faults,
            guard=guard,
        )
        label = f"distributed {args.method} ({res.strategy}-res, {args.criterion})"
    return res, label


def _cmd_models(args) -> int:
    problem, hierarchy = _build(args)
    solver = Multadd(hierarchy, smoother="jacobi", weight=problem.jacobi_weight)
    params = ScheduleParams(
        alpha=args.alpha, delta=args.delta, updates_per_grid=args.tmax, seed=args.seed
    )
    sim = {
        "semi": simulate_semi_async,
        "full_sol": simulate_full_async_solution,
        "full_res": simulate_full_async_residual,
    }[args.model]
    res = sim(solver, problem.b, params)
    print(
        f"{args.model} model: relres = {res.rel_residual:.6e} after "
        f"{res.instants} instants; p_k = "
        + ", ".join(f"{v:.2f}" for v in res.update_probabilities)
    )
    return 0


def _cmd_table1(args) -> int:
    problem, hierarchy = _build(args)
    kw = {"weight": problem.jacobi_weight} if args.smoother == "jacobi" else {}
    if args.smoother in ("hybrid_jgs", "async_gs"):
        kw["nblocks"] = args.nblocks
    rows = []
    for spec in TABLE1_METHODS:
        e = table1_entry(
            spec,
            hierarchy,
            problem.b,
            args.smoother,
            nthreads=args.threads,
            tol=args.tol,
            runs=args.runs,
            alpha=args.alpha,
            max_cycles=args.max_cycles,
            **kw,
        )
        t, c, v = e.cells()
        rows.append([spec.label, t, c, v])
    print(
        format_table(
            ["method", "time(s)", "corrects", "V-cycles"],
            rows,
            title=(
                f"Table I block — {args.test_set} ({problem.n} rows), "
                f"smoother {args.smoother}, tol {args.tol:g}"
            ),
        )
    )
    return 0


def _cmd_analyze(args) -> int:
    from .analysis import run_conformance, run_linter

    report = run_linter(strict=args.strict)
    print(report.format())
    ok = report.ok
    if args.conformance:
        problem, hierarchy = _build(args)
        solver = Multadd(hierarchy, smoother="jacobi", weight=problem.jacobi_weight)
        for write in ("lock", "atomic"):
            conf = run_conformance(
                solver,
                problem.b,
                write=write,
                tmax=args.tmax,
                delta=args.delta,
            )
            print(conf.summary())
            ok = ok and conf.passed
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Asynchronous multigrid reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("setup", help="build and summarize a hierarchy")
    _add_problem_args(p)
    _add_setup_args(p)
    p.set_defaults(func=_cmd_setup)

    p = sub.add_parser("solve", help="run a solver")
    _add_problem_args(p)
    _add_setup_args(p)
    p.add_argument("--method", choices=("mult", "multadd", "afacx", "bpx"), default="multadd")
    p.add_argument("--smoother", default="jacobi")
    p.add_argument("--weight", type=float, default=0.9)
    p.add_argument("--nblocks", type=int, default=8)
    p.add_argument("--tmax", type=int, default=20)
    p.add_argument("--run-async", action="store_true")
    p.add_argument("--rescomp", choices=("local", "global", "rupdate"), default="local")
    p.add_argument("--write", choices=("lock", "atomic"), default="lock")
    p.add_argument("--criterion", choices=("criterion1", "criterion2"), default="criterion2")
    p.add_argument("--alpha", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--backend",
        choices=("engine", "threaded", "distributed"),
        default="engine",
        help="async executor: deterministic engine, real threads, or "
        "the distributed discrete-event simulator",
    )
    p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault-injection spec, e.g. "
        "'crash:1@5;corrupt:p=0.01,mode=nan;drop:p=0.05' "
        "(kinds: crash, stall, corrupt, drop, dup, delay)",
    )
    p.add_argument(
        "--guards",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="enable the resilience guard layer (screening, "
        "checkpoint/rollback, watchdog restart, retransmission)",
    )
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("models", help="run a Section-III model simulator")
    _add_problem_args(p)
    _add_setup_args(p)
    p.add_argument("--model", choices=("semi", "full_sol", "full_res"), default="semi")
    p.add_argument("--alpha", type=float, default=0.1)
    p.add_argument("--delta", type=int, default=0)
    p.add_argument("--tmax", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_models)

    p = sub.add_parser("table1", help="one Table-I block")
    _add_problem_args(p)
    _add_setup_args(p)
    p.add_argument("--smoother", default="jacobi")
    p.add_argument("--nblocks", type=int, default=4)
    p.add_argument("--threads", type=int, default=272)
    p.add_argument("--tol", type=float, default=1e-6)
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--alpha", type=float, default=0.7)
    p.add_argument("--max-cycles", type=int, default=250)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser(
        "analyze",
        help="concurrency-correctness analysis: static RPR lint + "
        "optional instrumented conformance run",
    )
    _add_problem_args(p)
    _add_setup_args(p)
    p.add_argument(
        "--strict",
        action="store_true",
        help="fail on any unsuppressed finding; require justified noqa",
    )
    p.add_argument(
        "--conformance",
        action="store_true",
        help="also run a CheckedWrite-instrumented threaded solve "
        "(lock and atomic policies) and report model conformance",
    )
    p.add_argument("--tmax", type=int, default=5)
    p.add_argument(
        "--delta",
        type=int,
        default=None,
        help="staleness bound to verify (default: the sound "
        "criterion-1 bound (ngrids-1)*tmax)",
    )
    p.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
